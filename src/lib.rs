//! # ace-platform
//!
//! A full Rust reproduction of **"Enabling Compute-Communication Overlap in
//! Distributed Deep Learning Training Platforms"** (ACE, ISCA 2021,
//! arXiv:2007.00156).
//!
//! ACE is a dedicated collective-communication accelerator that sits at the
//! endpoint of a DL training platform, next to the Accelerator Fabric
//! Interface. It frees NPU streaming multiprocessors and memory bandwidth
//! from collective processing by caching gradients in a local SRAM, running
//! reductions on local ALUs, and forwarding multi-hop traffic without
//! bouncing through main memory.
//!
//! This crate re-exports the whole workspace as a single façade:
//!
//! * [`simcore`] — discrete-event primitives (time, events, servers, stats)
//! * [`trace`] — zero-cost instrumentation: the `Tracer` trait, the
//!   recording arena behind `--trace`, the Chrome/Perfetto exporter and
//!   the per-pipe bottleneck attribution report
//! * [`net`] — accelerator fabrics behind one `Topology` abstraction:
//!   tori of any dimension (the paper's 3D torus with XYZ routing),
//!   central crossbars, and hierarchical scale-up/scale-out fabrics
//! * [`mem`] — HBM bandwidth partitioning and the NPU-AFI bus
//! * [`compute`] — roofline NPU compute model
//! * [`collectives`] — topology-aware collective algorithms and planning
//! * [`engine`] — the ACE microarchitecture (SRAM, FSMs, ALUs, DMAs)
//! * [`endpoint`] — baseline / ACE / ideal endpoint resource pipelines
//! * [`workloads`] — the task-graph workload IR (`Program`), the
//!   builtin ResNet-50 / GNMT / DLRM / Transformer-LM layer models, and
//!   TOML-loadable custom `WorkloadSpec`s
//! * [`serve`] — continuous-batching inference serving with open-loop
//!   arrivals and exact-order-statistic latency percentiles
//! * [`system`] — the graph-scheduler training simulator, the five
//!   system configurations from Table VI, and the [`system::RunSpec`] /
//!   [`system::TrainSpec`] run entry points with first-class fault,
//!   contention, and straggler conditions
//! * [`sweep`] — declarative scenario specs and the parallel design-space
//!   sweep engine behind the `sweep` CLI
//! * [`toml`] — the std-only TOML-subset parser those specs share
//!
//! # Quickstart
//!
//! ```
//! use ace_platform::system::{SystemBuilder, SystemConfig};
//! use ace_platform::workloads::Workload;
//!
//! // Simulate 2 training iterations of ResNet-50 on a 16-NPU (4x2x2) torus.
//! let report = SystemBuilder::new()
//!     .topology(4, 2, 2)
//!     .config(SystemConfig::Ace)
//!     .workload(Workload::resnet50())
//!     .build()
//!     .expect("valid system")
//!     .run();
//! assert!(report.iteration_time_us() > 0.0);
//! ```

pub use ace_collectives as collectives;
pub use ace_compute as compute;
pub use ace_endpoint as endpoint;
pub use ace_engine as engine;
pub use ace_mem as mem;
pub use ace_net as net;
pub use ace_serve as serve;
pub use ace_simcore as simcore;
pub use ace_sweep as sweep;
pub use ace_system as system;
pub use ace_toml as toml;
pub use ace_trace as trace;
pub use ace_workloads as workloads;
