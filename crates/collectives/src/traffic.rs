//! Closed-form endpoint memory-traffic model (paper Section VI-A).
//!
//! The paper's analytical argument: in the baseline, a ring all-reduce
//! reads 2 N bytes from memory per N network bytes during reduce-scatter
//! (local operand + received operand) and N per N during all-gather, i.e.
//! **1.5 N reads per N sent** on average — which is why ≈450 GB/s of
//! memory bandwidth is needed to drive ≈300 GB/s of network. ACE instead
//! caches each payload byte once: on a 4×4×4 torus a cached byte is reused
//! to send 2.25 bytes (¾ + 2·6⁄16 + ¾), so ≈133 GB/s suffices — the 3.5×
//! memory-bandwidth reduction headline.

use crate::plan::{CollectivePlan, PhaseKind};

/// Endpoint memory traffic generated while executing a collective.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct MemTraffic {
    /// Bytes read from main memory.
    pub reads: f64,
    /// Bytes written to main memory.
    pub writes: f64,
}

impl MemTraffic {
    /// Total bytes moved.
    pub fn total(&self) -> f64 {
        self.reads + self.writes
    }
}

/// Baseline endpoint memory traffic for executing `plan` on a per-node
/// payload of `payload_bytes` (per node, one collective).
///
/// Per phase of ring size `k` on input fraction `f` (of payload `D`):
///
/// * **Reduce-scatter**: the first send reads its shard (`fD/k`); each of
///   the remaining `k-2` sends reads the received shard plus the local
///   shard (`2fD/k`); the final (non-sending) reduction reads another
///   `2fD/k` and writes its result. Every received shard is first written
///   to memory.
/// * **All-gather**: every send reads `fD` from memory; every received
///   shard is written.
/// * **Ring all-reduce**: reduce-scatter followed by all-gather on the
///   phase input.
/// * **Direct all-to-all**: every sent byte is read once; every received
///   byte is written once.
pub fn baseline_traffic(plan: &CollectivePlan, payload_bytes: u64) -> MemTraffic {
    let d = payload_bytes as f64;
    let mut t = MemTraffic::default();
    for phase in plan.phases() {
        let k = phase.ring_size as f64;
        let f = phase.input_fraction * d;
        match phase.kind {
            PhaseKind::ReduceScatter => {
                accumulate_rs(&mut t, f, k);
            }
            PhaseKind::AllGather => {
                accumulate_ag(&mut t, f, k);
            }
            PhaseKind::RingAllReduce => {
                accumulate_rs(&mut t, f, k);
                accumulate_ag(&mut t, f / k, k);
            }
            PhaseKind::DirectAllToAll => {
                let sent = f * (k - 1.0) / k;
                t.reads += sent;
                t.writes += sent;
            }
        }
    }
    t
}

fn accumulate_rs(t: &mut MemTraffic, input: f64, k: f64) {
    let shard = input / k;
    // First send: read local shard only.
    t.reads += shard;
    // Middle sends: read received + local.
    t.reads += (k - 2.0).max(0.0) * 2.0 * shard;
    // Final reduction (no send): read received + local, write result.
    t.reads += 2.0 * shard;
    t.writes += shard;
    // Every received shard lands in memory first.
    t.writes += (k - 1.0) * shard;
}

fn accumulate_ag(t: &mut MemTraffic, input: f64, k: f64) {
    // Each of the k-1 sends reads `input` bytes from memory.
    t.reads += (k - 1.0) * input;
    // Each of the k-1 received shards is written to memory.
    t.writes += (k - 1.0) * input;
}

/// ACE endpoint memory traffic: one TX-DMA load and one RX-DMA store of
/// the payload, independent of topology — the SRAM absorbs all reuse.
pub fn ace_traffic(payload_bytes: u64) -> MemTraffic {
    let d = payload_bytes as f64;
    MemTraffic {
        reads: d,
        writes: d,
    }
}

/// Memory-read bytes per network byte for the baseline on `plan`
/// (→ 1.5 asymptotically for a single-ring all-reduce, Section VI-A).
pub fn baseline_reads_per_network_byte(plan: &CollectivePlan, payload_bytes: u64) -> f64 {
    let sent = plan.bytes_sent_per_node(payload_bytes);
    if sent == 0.0 {
        return 0.0;
    }
    baseline_traffic(plan, payload_bytes).reads / sent
}

/// Memory-read bytes per network byte for ACE on `plan`.
pub fn ace_reads_per_network_byte(plan: &CollectivePlan, payload_bytes: u64) -> f64 {
    let sent = plan.bytes_sent_per_node(payload_bytes);
    if sent == 0.0 {
        return 0.0;
    }
    ace_traffic(payload_bytes).reads / sent
}

/// Memory bandwidth (GB/s) required to sustain `target_net_gbps` of
/// per-node network injection, counting read traffic as the paper does.
pub fn required_mem_bw_gbps(reads_per_net_byte: f64, target_net_gbps: f64) -> f64 {
    reads_per_net_byte * target_net_gbps
}

/// The headline ratio: baseline memory bandwidth requirement over ACE's
/// for the same plan and target network bandwidth (paper: ≈3.5×).
pub fn mem_bw_reduction(plan: &CollectivePlan, payload_bytes: u64) -> f64 {
    let b = baseline_reads_per_network_byte(plan, payload_bytes);
    let a = ace_reads_per_network_byte(plan, payload_bytes);
    b / a
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::CollectiveOp;
    use ace_net::TorusShape;

    fn plan(shape: (usize, usize, usize)) -> CollectivePlan {
        CollectivePlan::for_op(
            CollectiveOp::AllReduce,
            TorusShape::new(shape.0, shape.1, shape.2).unwrap(),
        )
    }

    #[test]
    fn single_ring_reads_approach_one_point_five() {
        // Large single ring: RS reads → 2N per N sent, AG reads → N per N
        // sent, equal send volumes → 1.5 N reads per N sent.
        let p = plan((1, 64, 1));
        let r = baseline_reads_per_network_byte(&p, 1 << 30);
        assert!((r - 1.5).abs() < 0.05, "reads/byte {r}");
    }

    #[test]
    fn hierarchical_reads_are_above_one() {
        let p = plan((4, 4, 4));
        let r = baseline_reads_per_network_byte(&p, 64 << 20);
        assert!(r > 1.0 && r < 2.0, "reads/byte {r}");
    }

    #[test]
    fn ace_sends_2_25_bytes_per_cached_byte_on_4x4x4() {
        let p = plan((4, 4, 4));
        let r = ace_reads_per_network_byte(&p, 64 << 20);
        // 1 read per 2.25 sent.
        assert!((r - 1.0 / 2.25).abs() < 1e-9, "reads/byte {r}");
    }

    #[test]
    fn paper_memory_bw_numbers() {
        // Baseline: ~1.5 reads/byte × 300 GB/s ≈ 450 GB/s.
        let ring = plan((1, 64, 1));
        let need = required_mem_bw_gbps(baseline_reads_per_network_byte(&ring, 1 << 30), 300.0);
        assert!((need - 450.0).abs() < 15.0, "baseline needs {need} GB/s");
        // ACE on 4x4x4: 300/2.25 ≈ 133 GB/s.
        let h = plan((4, 4, 4));
        let ace = required_mem_bw_gbps(ace_reads_per_network_byte(&h, 1 << 30), 300.0);
        assert!((ace - 133.3).abs() < 1.0, "ace needs {ace} GB/s");
    }

    #[test]
    fn headline_reduction_is_about_3_5x() {
        let p = plan((4, 4, 4));
        let red = mem_bw_reduction(&p, 64 << 20);
        assert!(red > 2.5 && red < 4.5, "reduction {red}");
    }

    #[test]
    fn ace_traffic_is_topology_independent() {
        let t = ace_traffic(1000);
        assert_eq!(t.reads, 1000.0);
        assert_eq!(t.writes, 1000.0);
        assert_eq!(t.total(), 2000.0);
    }

    #[test]
    fn baseline_traffic_grows_with_ring_size() {
        let small = baseline_traffic(&plan((1, 4, 1)), 1 << 20);
        let large = baseline_traffic(&plan((1, 64, 1)), 1 << 20);
        assert!(large.reads > small.reads);
    }

    #[test]
    fn all_to_all_traffic_reads_equal_writes() {
        let p = CollectivePlan::for_op(CollectiveOp::AllToAll, TorusShape::new(4, 4, 4).unwrap());
        let t = baseline_traffic(&p, 64 << 20);
        assert!((t.reads - t.writes).abs() < 1e-6);
        // 63/64 of the payload is read once for sending.
        assert!((t.reads - (64u64 << 20) as f64 * 63.0 / 64.0).abs() < 1.0);
    }

    #[test]
    fn zero_payload_has_zero_ratios() {
        let p = plan((4, 4, 4));
        assert_eq!(baseline_reads_per_network_byte(&p, 0), 0.0);
        assert_eq!(ace_reads_per_network_byte(&p, 0), 0.0);
    }
}
