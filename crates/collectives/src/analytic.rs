//! Closed-form α–β performance model of collective execution.
//!
//! The event-driven executor charges every message to every resource it
//! crosses; this module instead predicts a collective's completion time
//! from the standard first-order α–β decomposition the paper itself uses
//! to size ACE's SRAM and link bandwidth: per phase, `steps × α` of
//! serial latency plus `bytes / β` of serialization on each contended
//! resource, with the whole collective pipelined at chunk granularity so
//! concurrent resources *max* rather than sum.
//!
//! The model is a **max over bottlenecks**:
//!
//! * per-link serialization — each `(dimension, direction)` link carries
//!   its share of every phase riding that dimension (bidirectional rings
//!   split chunks across the two directions, mirroring the executor);
//! * endpoint staging — the engine-specific node-level pipes (HBM
//!   read/write channels, the NPU-AFI bus, SM drive bandwidth, TX/RX
//!   DMA) each pass their total byte load once;
//! * ACE SRAM residency — with a scratchpad of `S` bytes the chunk
//!   pipeline can only keep `S` payload bytes in flight, so throughput
//!   is `S / κ` bytes per cycle ([`SRAM_RESIDENCY_CYCLES`]);
//! * ACE FSM dispatch — each egress message occupies one of the phase's
//!   FSMs for `message/bus_width + 4` cycles ([`FSM_PIPELINE_EFFICIENCY`]);
//! * a latency ramp — one chunk's serial walk through all phases
//!   (`Σ steps × (α + message/β_link)`), the pipeline-fill cost that
//!   dominates small payloads.
//!
//! Two constants are *calibrated* against the exact executor (see the
//! `validate` binary, which regenerates the `BENCH_analytic.json` error
//! table): the SRAM residency factor and the FSM pipeline efficiency.
//! Everything else is derived from the same Table V / Table VI parameter
//! structs the simulator itself consumes. On the Fig. 9a design-space
//! grid the model lands within a few percent of the executor; expect
//! larger errors for deeply contended all-to-alls and tiny payloads
//! (latency-dominated, below the model's chunk granularity).

use ace_net::{FaultPlan, LinkClass, LinkParams, NetworkParams, NodeId, Topology, TopologySpec};

use crate::granularity::Granularity;
use crate::plan::{CollectivePlan, PhaseLink, PhaseSpec};
use crate::traffic;

/// Calibrated SRAM residency: the effective number of cycles one
/// SRAM-resident byte takes to produce one network byte, fitted against
/// the exact executor on the Fig. 9a grid (both tori agree within 1 %).
/// The SRAM-bound completion time is
/// `SRAM_RESIDENCY_CYCLES × bytes_sent_per_node / sram_bytes`.
pub const SRAM_RESIDENCY_CYCLES: f64 = 19_477.0;

/// Calibrated FSM pipeline efficiency: the fraction of an FSM's cycles
/// spent in dispatch (the rest waits on message arrival and SRAM-port
/// turnaround). Fitted on the Fig. 9a FSM axis.
pub const FSM_PIPELINE_EFFICIENCY: f64 = 0.75;

/// Fixed per-dispatch FSM control overhead in cycles (mirrors the ACE
/// endpoint's `fsm_cycles`: `bytes / bus_width + FSM_DISPATCH_OVERHEAD`).
pub const FSM_DISPATCH_OVERHEAD: f64 = 4.0;

/// Endpoint-side constants of the engine being modeled, in bytes per
/// cycle. Constructed by `ace-system` from the same parameter structs the
/// event-driven endpoints consume (Table VI resource splits), so the two
/// tiers cannot drift apart silently.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum EndpointModel {
    /// One-cycle magical endpoint: only the fabric constrains.
    Ideal,
    /// SM-driven baseline (Section III pipeline: HBM → SM drive → bus).
    Baseline {
        /// HBM communication-partition bandwidth, bytes/cycle (per
        /// direction — the read and write channels are independent).
        mem_bytes_per_cycle: f64,
        /// Aggregate SM drive bandwidth, bytes/cycle.
        drive_bytes_per_cycle: f64,
        /// NPU-AFI bus bandwidth, bytes/cycle.
        bus_bytes_per_cycle: f64,
    },
    /// The ACE engine (Section IV): DMA staging + SRAM-resident steps.
    Ace {
        /// HBM DMA carve-out, bytes/cycle (per direction).
        dma_bytes_per_cycle: f64,
        /// NPU-AFI bus bandwidth, bytes/cycle.
        bus_bytes_per_cycle: f64,
        /// Scratchpad SRAM size in bytes.
        sram_bytes: u64,
        /// Programmable FSM count.
        fsms: usize,
        /// FSM streaming bus width in bytes (64 in the paper).
        fsm_bus_bytes: u64,
    },
}

/// The analytic estimate for one collective.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AnalyticEstimate {
    /// Predicted completion time in cycles.
    pub cycles: f64,
    /// Bytes each node sends to the fabric (forwarded hops included).
    pub network_bytes_per_node: f64,
    /// Per-node HBM traffic of the communication path, bytes.
    pub mem_traffic_bytes_per_node: f64,
}

impl AnalyticEstimate {
    /// Predicted achieved network bandwidth per NPU in GB/s under `net`'s
    /// clock (the Fig. 5/6 y-axis).
    pub fn gbps_per_npu(&self, net: &NetworkParams) -> f64 {
        if self.cycles <= 0.0 {
            return 0.0;
        }
        net.freq.gbps(self.network_bytes_per_node / self.cycles)
    }
}

/// Per-phase fabric footprint resolved against a concrete topology.
struct PhaseLoad {
    /// Bytes each node sends during the phase (first-hop only).
    sent_bytes: f64,
    /// Bytes each node forwards for other nodes (all-to-all multi-hop).
    forwarded_bytes: f64,
    /// Serialization bandwidth of the narrowest link the phase rides,
    /// bytes/cycle (after the 94 % efficiency derating).
    link_bytes_per_cycle: f64,
    /// Propagation latency of that link, cycles.
    link_latency_cycles: f64,
    /// Number of distinct unidirectional links per node the phase can
    /// spread over (2 for bidirectional rings, 1 for crossbar dims).
    fanout: f64,
    /// Serial steps of the phase.
    steps: f64,
}

/// Estimates the completion time of `plan` with per-node `payload_bytes`
/// on the endpoint described by `endpoint`. The plan's topology is
/// rebuilt from its [`TopologySpec`] to resolve per-dimension link
/// parameters (switch uplink overrides included).
pub fn estimate_collective(
    plan: &CollectivePlan,
    net: &NetworkParams,
    payload_bytes: u64,
    endpoint: &EndpointModel,
) -> AnalyticEstimate {
    estimate_inner(plan, net, payload_bytes, endpoint, None)
}

/// [`estimate_collective`] on a degraded fabric: each ring/exchange
/// phase's wire rate is derated by its dimension's resolved
/// [`FaultPlan`] slowdown (worst surviving-link load over bandwidth —
/// detour congestion included), and global all-to-all phases by the
/// fabric-wide worst-link slowdown. This mirrors, in α–β form, what the
/// exact executor experiences on the same plan, so `hybrid` sweeps stay
/// honest under faults (the `validate` tier checks the bound).
pub fn estimate_collective_degraded(
    plan: &CollectivePlan,
    net: &NetworkParams,
    payload_bytes: u64,
    endpoint: &EndpointModel,
    faults: &FaultPlan,
) -> AnalyticEstimate {
    estimate_inner(plan, net, payload_bytes, endpoint, Some(faults))
}

fn estimate_inner(
    plan: &CollectivePlan,
    net: &NetworkParams,
    payload_bytes: u64,
    endpoint: &EndpointModel,
    faults: Option<&FaultPlan>,
) -> AnalyticEstimate {
    let spec = plan.spec();
    let topo = spec.build();
    let payload = payload_bytes as f64;
    let gran = Granularity::paper_default();
    let message = gran.message_bytes as f64;

    let mut loads: Vec<PhaseLoad> = plan
        .phases()
        .iter()
        .map(|p| phase_load(p, topo.as_ref(), net, payload))
        .collect();

    // Degradation: derate each phase's wire rate by the fault plan's
    // per-dimension (or fabric-global) slowdown before the bottleneck max.
    if let Some(fp) = faults {
        for (p, load) in plan.phases().iter().zip(loads.iter_mut()) {
            let slow = match p.link {
                PhaseLink::Dim { index, .. } => fp.dim_slowdown(index as usize),
                PhaseLink::Global { .. } => fp.global_slowdown(),
            };
            load.link_bytes_per_cycle /= slow;
        }
    }

    // --- Per-link serialization ------------------------------------
    // Phases riding the same dimension (the torus all-reduce sandwich
    // reduce-scatters and all-gathers on dim 0) share its links, so byte
    // loads accumulate per (dim, direction) before dividing by the wire
    // rate. Global phases load every link class they touch.
    let mut per_dim_bytes: Vec<f64> = vec![0.0; topo.dims().len()];
    let mut t_link: f64 = 0.0;
    for (p, load) in plan.phases().iter().zip(&loads) {
        match p.link {
            PhaseLink::Dim { index, .. } => {
                let carried = (load.sent_bytes + load.forwarded_bytes) / load.fanout;
                per_dim_bytes[index as usize] += carried / load.link_bytes_per_cycle;
            }
            PhaseLink::Global { .. } => {
                let slow = faults.map_or(1.0, FaultPlan::global_slowdown);
                t_link = t_link.max(global_link_time(topo.as_ref(), net, load.sent_bytes) * slow);
            }
        }
    }
    t_link = per_dim_bytes.iter().copied().fold(t_link, f64::max);

    // --- Totals through the endpoint -------------------------------
    let sent: f64 = loads.iter().map(|l| l.sent_bytes).sum();
    let forwarded: f64 = loads.iter().map(|l| l.forwarded_bytes).sum();
    let received = sent; // every sent byte is received by a peer

    // --- Node-level engine pipes ------------------------------------
    let mem = mem_traffic(plan, payload_bytes, endpoint);
    let t_node = match *endpoint {
        EndpointModel::Ideal => 0.0,
        EndpointModel::Baseline {
            mem_bytes_per_cycle,
            drive_bytes_per_cycle,
            bus_bytes_per_cycle,
        } => {
            let t_mem_rd = mem.reads / mem_bytes_per_cycle;
            let t_mem_wr = mem.writes / mem_bytes_per_cycle;
            let t_drive = (sent + forwarded) / drive_bytes_per_cycle;
            let t_bus = (sent + forwarded + received) / bus_bytes_per_cycle;
            t_mem_rd.max(t_mem_wr).max(t_drive).max(t_bus)
        }
        EndpointModel::Ace {
            dma_bytes_per_cycle,
            bus_bytes_per_cycle,
            sram_bytes,
            fsms,
            fsm_bus_bytes,
        } => {
            // Staging: the chunk crosses HBM + bus once in, once out.
            let t_dma = payload / dma_bytes_per_cycle;
            let t_bus = 2.0 * payload / bus_bytes_per_cycle;
            // SRAM residency (Little's law on the scratchpad).
            let t_sram = SRAM_RESIDENCY_CYCLES * (sent + forwarded) / sram_bytes as f64;
            // FSM dispatch: round-robin FSM groups per phase, each
            // egress message holding an FSM for `message/width + 4`
            // cycles at the calibrated pipeline efficiency.
            let t_fsm = loads
                .iter()
                .enumerate()
                .map(|(i, l)| {
                    let group = fsm_group_size(fsms, loads.len(), i) as f64;
                    let msgs = ((l.sent_bytes + l.forwarded_bytes) / message).ceil();
                    let per_msg = message / fsm_bus_bytes as f64 + FSM_DISPATCH_OVERHEAD;
                    msgs * per_msg / (group * FSM_PIPELINE_EFFICIENCY)
                })
                .fold(0.0, f64::max);
            t_dma.max(t_bus).max(t_sram).max(t_fsm)
        }
    };

    // --- Latency ramp -----------------------------------------------
    // One chunk's serial walk through every phase: the pipeline-fill
    // term that dominates small payloads and adds the per-step link
    // latencies for large ones.
    let t_ramp: f64 = loads
        .iter()
        .map(|l| {
            let step_bytes = if l.steps > 0.0 {
                (l.sent_bytes / l.steps).min(message).max(1.0)
            } else {
                0.0
            };
            l.steps * (l.link_latency_cycles + step_bytes / l.link_bytes_per_cycle)
        })
        .sum();

    let cycles = if payload_bytes == 0 {
        0.0
    } else {
        t_link.max(t_node) + t_ramp
    };

    AnalyticEstimate {
        cycles,
        network_bytes_per_node: sent + forwarded,
        mem_traffic_bytes_per_node: mem.total(),
    }
}

/// Endpoint HBM traffic of `plan` under `endpoint` (per node). Reuses the
/// Section VI-A closed forms.
fn mem_traffic(
    plan: &CollectivePlan,
    payload_bytes: u64,
    endpoint: &EndpointModel,
) -> traffic::MemTraffic {
    match endpoint {
        EndpointModel::Ideal => traffic::MemTraffic::default(),
        EndpointModel::Baseline { .. } => traffic::baseline_traffic(plan, payload_bytes),
        EndpointModel::Ace { .. } => traffic::ace_traffic(payload_bytes),
    }
}

/// FSM group size for `phase` when `fsms` FSMs spread round-robin over
/// `phases` phases with a floor of one (mirrors `FsmPool::new`).
fn fsm_group_size(fsms: usize, phases: usize, phase: usize) -> usize {
    let base = fsms / phases;
    let extra = fsms % phases;
    (base + usize::from(phase < extra)).max(1)
}

/// Resolves one phase's byte load and link parameters on `topo`.
fn phase_load(
    phase: &PhaseSpec,
    topo: &dyn Topology,
    net: &NetworkParams,
    payload: f64,
) -> PhaseLoad {
    let sent = phase.send_fraction() * payload;
    match phase.link {
        PhaseLink::Dim { index, .. } => {
            let info = topo.dims()[index as usize];
            let params = topo
                .link_params_for(info.port_plus, net)
                .unwrap_or_else(|| class_params(net, info.class));
            // Bidirectional rings alternate chunks across the two
            // directions; crossbar-backed dims expose a single uplink.
            let fanout = if info.port_minus != info.port_plus {
                2.0
            } else {
                1.0
            };
            PhaseLoad {
                sent_bytes: sent,
                forwarded_bytes: 0.0,
                link_bytes_per_cycle: bytes_per_cycle(net, &params),
                link_latency_cycles: params.latency_cycles as f64,
                fanout,
                steps: phase.steps() as f64,
            }
        }
        PhaseLink::Global { .. } => {
            // Direct all-to-all: each destination slice travels its
            // route; hops beyond the first are forwarded by intermediate
            // endpoints. Topologies are vertex-transitive, so node 0's
            // route lengths give the fabric-wide average.
            let n = topo.nodes();
            let slice = sent / (n as f64 - 1.0).max(1.0);
            let mut forwarded = 0.0;
            let mut worst: Option<LinkParams> = None;
            for dst in 1..n {
                let route = topo.route(NodeId(0), NodeId(dst));
                if route.len() > 1 {
                    forwarded += slice * (route.len() - 1) as f64;
                }
                for hop in &route {
                    if let Some(p) = topo.link_params_for(hop.port, net) {
                        let replace = match &worst {
                            Some(w) => p.effective_gbps() < w.effective_gbps(),
                            None => true,
                        };
                        if replace {
                            worst = Some(p);
                        }
                    }
                }
            }
            let params = worst.unwrap_or(net.inter);
            PhaseLoad {
                sent_bytes: sent,
                forwarded_bytes: forwarded,
                link_bytes_per_cycle: bytes_per_cycle(net, &params),
                link_latency_cycles: params.latency_cycles as f64,
                fanout: 1.0,
                steps: phase.steps() as f64,
            }
        }
    }
}

/// Per-link time of a direct all-to-all under uniform traffic: total
/// link-crossings divided evenly over the fabric's live links.
fn global_link_time(topo: &dyn Topology, net: &NetworkParams, sent_per_node: f64) -> f64 {
    let n = topo.nodes();
    let slice = sent_per_node / (n as f64 - 1.0).max(1.0);
    // Node 0's routes, split per link class (vertex-transitivity again).
    let mut class_bytes = [0.0f64; 2];
    for dst in 1..n {
        for hop in topo.route(NodeId(0), NodeId(dst)) {
            match topo.port_class(hop.port) {
                Some(LinkClass::IntraPackage) => class_bytes[0] += slice,
                Some(LinkClass::InterPackage) => class_bytes[1] += slice,
                None => {}
            }
        }
    }
    // Live ports per node, per class.
    let mut class_ports = [0.0f64; 2];
    for idx in 0..topo.ports_per_node() {
        match topo.port_class(ace_net::Port::from_index(idx)) {
            Some(LinkClass::IntraPackage) => class_ports[0] += 1.0,
            Some(LinkClass::InterPackage) => class_ports[1] += 1.0,
            None => {}
        }
    }
    let mut t: f64 = 0.0;
    for (class, (&bytes, &ports)) in [LinkClass::IntraPackage, LinkClass::InterPackage]
        .iter()
        .zip(class_bytes.iter().zip(&class_ports))
    {
        if bytes > 0.0 && ports > 0.0 {
            let params = class_params(net, *class);
            t = t.max(bytes / ports / bytes_per_cycle(net, &params));
        }
    }
    t
}

fn class_params(net: &NetworkParams, class: LinkClass) -> LinkParams {
    match class {
        LinkClass::IntraPackage => net.intra,
        LinkClass::InterPackage => net.inter,
    }
}

fn bytes_per_cycle(net: &NetworkParams, params: &LinkParams) -> f64 {
    net.freq.bytes_per_cycle(params.effective_gbps())
}

/// Convenience: plan + estimate in one call.
pub fn estimate_on_spec(
    op: crate::CollectiveOp,
    spec: impl Into<TopologySpec>,
    net: &NetworkParams,
    payload_bytes: u64,
    endpoint: &EndpointModel,
) -> AnalyticEstimate {
    let plan = CollectivePlan::for_spec(op, spec.into());
    estimate_collective(&plan, net, payload_bytes, endpoint)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::CollectiveOp;

    fn net() -> NetworkParams {
        NetworkParams::paper_default()
    }

    fn ace(sram_mb: u64, fsms: usize) -> EndpointModel {
        let freq = ace_simcore::npu_frequency();
        EndpointModel::Ace {
            dma_bytes_per_cycle: freq.bytes_per_cycle(128.0),
            bus_bytes_per_cycle: freq.bytes_per_cycle(500.0),
            sram_bytes: sram_mb << 20,
            fsms,
            fsm_bus_bytes: 64,
        }
    }

    fn estimate(spec: &str, payload: u64, ep: &EndpointModel) -> AnalyticEstimate {
        estimate_on_spec(
            CollectiveOp::AllReduce,
            spec.parse::<TopologySpec>().unwrap(),
            &net(),
            payload,
            ep,
        )
    }

    #[test]
    fn zero_payload_takes_zero_cycles() {
        let e = estimate("4x2x2", 0, &ace(4, 16));
        assert_eq!(e.cycles, 0.0);
        assert_eq!(e.network_bytes_per_node, 0.0);
    }

    #[test]
    fn monotone_in_payload() {
        let ep = ace(4, 16);
        let mut last = 0.0;
        for p in [1 << 16, 1 << 20, 16 << 20, 64 << 20] {
            let e = estimate("4x2x2", p, &ep);
            assert!(e.cycles > last, "payload {p} gave {} <= {last}", e.cycles);
            last = e.cycles;
        }
    }

    #[test]
    fn monotone_in_alpha() {
        // Raising the link latency (the α of the α–β model) can only
        // slow the estimate.
        let ep = ace(4, 16);
        let spec: TopologySpec = "4x2x2".parse().unwrap();
        let plan = CollectivePlan::for_spec(CollectiveOp::AllReduce, spec);
        let base = estimate_collective(&plan, &net(), 16 << 20, &ep);
        let mut slow = net();
        slow.inter.latency_cycles *= 10;
        slow.intra.latency_cycles *= 10;
        let slowed = estimate_collective(&plan, &slow, 16 << 20, &ep);
        assert!(slowed.cycles > base.cycles);
    }

    #[test]
    fn sram_bound_halves_with_doubled_sram() {
        // The Fig. 9a staircase: below the knee, time ∝ 1/SRAM.
        let t1 = estimate("4x2x2", 64 << 20, &ace(1, 16)).cycles;
        let t2 = estimate("4x2x2", 64 << 20, &ace(2, 16)).cycles;
        let ratio = t1 / t2;
        assert!((ratio - 2.0).abs() < 0.1, "ratio {ratio}");
    }

    #[test]
    fn fig09a_design_points_match_exact_tier_shape() {
        // Spot-check the calibration against the exact executor's
        // completion cycles on the design-space grid (values from the
        // checked-in BENCH_analytic.json validation run).
        let cases = [
            ("4x2x2", 1u64, 16usize, 2_493_060.0),
            ("4x2x2", 4, 16, 662_008.0),
            ("4x2x2", 4, 4, 1_080_607.0),
            ("4x4x4", 1, 16, 2_789_147.0),
            ("4x4x4", 8, 16, 696_565.0),
        ];
        for (spec, sram, fsms, exact) in cases {
            let e = estimate(spec, 64 << 20, &ace(sram, fsms));
            let err = (e.cycles - exact).abs() / exact;
            assert!(
                err < 0.10,
                "{spec} sram={sram} fsms={fsms}: analytic {} vs exact {exact} ({:.1}% off)",
                e.cycles,
                err * 100.0
            );
        }
    }

    #[test]
    fn baseline_scales_with_memory_bandwidth() {
        let freq = ace_simcore::npu_frequency();
        let mk = |gbps: f64| EndpointModel::Baseline {
            mem_bytes_per_cycle: freq.bytes_per_cycle(gbps),
            drive_bytes_per_cycle: 64.0 * 80.0,
            bus_bytes_per_cycle: freq.bytes_per_cycle(500.0),
        };
        let slow = estimate("4x2x2", 64 << 20, &mk(64.0)).cycles;
        let fast = estimate("4x2x2", 64 << 20, &mk(450.0)).cycles;
        assert!(slow > fast * 1.5, "64 GB/s {slow} vs 450 GB/s {fast}");
    }

    #[test]
    fn ideal_is_a_lower_bound_for_every_engine() {
        for payload in [1u64 << 20, 64 << 20] {
            for spec in ["4x2x2", "4x4x4", "switch:16", "hier:4x8"] {
                let ideal = estimate(spec, payload, &EndpointModel::Ideal).cycles;
                let a = estimate(spec, payload, &ace(4, 16)).cycles;
                assert!(ideal <= a, "{spec}/{payload}: ideal {ideal} > ace {a}");
            }
        }
    }

    #[test]
    fn all_to_all_accounts_forwarding() {
        let e = estimate_on_spec(
            CollectiveOp::AllToAll,
            "4x4x4".parse::<TopologySpec>().unwrap(),
            &net(),
            16 << 20,
            &EndpointModel::Ideal,
        );
        // Multi-hop XYZ routes forward through intermediate nodes, so the
        // fabric carries more than the injected bytes.
        let injected = 63.0 / 64.0 * (16 << 20) as f64;
        assert!(e.network_bytes_per_node > injected * 1.2);
    }

    #[test]
    fn degraded_estimate_is_never_faster_than_pristine() {
        let spec: TopologySpec = "4x4".parse().unwrap();
        let plan = CollectivePlan::for_spec(CollectiveOp::AllReduce, spec);
        let topo = spec.build();
        let ep = ace(4, 16);
        let base = estimate_collective(&plan, &net(), 64 << 20, &ep);
        for faults in ["kill:1@seed:3", "kill:2@seed:3", "degrade:50:link:0-1"] {
            let fp = FaultPlan::resolve(
                topo.as_ref(),
                &net(),
                &faults.parse().unwrap(),
                &ace_net::ContentionSpec::None,
            )
            .unwrap();
            let degraded = estimate_collective_degraded(&plan, &net(), 64 << 20, &ep, &fp);
            assert!(
                degraded.cycles >= base.cycles,
                "{faults}: degraded {} < pristine {}",
                degraded.cycles,
                base.cycles
            );
            // Byte loads are a property of the plan, not the fabric.
            assert_eq!(degraded.network_bytes_per_node, base.network_bytes_per_node);
        }
        // A pristine fault plan reproduces the pristine estimate exactly.
        let fp = FaultPlan::pristine(topo.as_ref(), &net());
        let same = estimate_collective_degraded(&plan, &net(), 64 << 20, &ep, &fp);
        assert_eq!(same.cycles, base.cycles);
    }

    #[test]
    fn contention_slows_the_analytic_estimate() {
        let spec: TopologySpec = "4x4".parse().unwrap();
        let plan = CollectivePlan::for_spec(CollectiveOp::AllReduce, spec);
        let topo = spec.build();
        let base = estimate_collective(&plan, &net(), 64 << 20, &EndpointModel::Ideal);
        let fp = FaultPlan::resolve(
            topo.as_ref(),
            &net(),
            &ace_net::FaultSpec::none(),
            &"uniform:20".parse().unwrap(),
        )
        .unwrap();
        let slowed =
            estimate_collective_degraded(&plan, &net(), 64 << 20, &EndpointModel::Ideal, &fp);
        assert!(slowed.cycles > base.cycles);
    }

    #[test]
    fn switch_uplink_override_speeds_up_the_estimate() {
        let plain = estimate("switch:16", 64 << 20, &EndpointModel::Ideal).cycles;
        let fast = estimate("switch:16@100", 64 << 20, &EndpointModel::Ideal).cycles;
        assert!(fast < plain, "100 GB/s uplinks must beat 25 GB/s");
    }
}
