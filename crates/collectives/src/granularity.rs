//! Data granularity at different levels of collective execution
//! (paper Table III).

/// The payload → chunk → message → packet decomposition (Table III and
/// Table V).
///
/// * **Chunk** (64 kB): the pipelining unit; multiple chunks are in flight
///   concurrently and each is scheduled independently.
/// * **Message** (8 kB): the collective algorithm's unit; the number of
///   messages per chunk step is a multiple of the ring size.
/// * **Packet** (256 B): the network transfer unit (one flit).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Granularity {
    /// Chunk size in bytes.
    pub chunk_bytes: u64,
    /// Message size in bytes.
    pub message_bytes: u64,
    /// Packet size in bytes.
    pub packet_bytes: u64,
}

impl Granularity {
    /// Paper defaults: 64 kB chunks, 8 kB messages (Table V), 256 B packets.
    pub fn paper_default() -> Granularity {
        Granularity {
            chunk_bytes: 64 * 1024,
            message_bytes: 8 * 1024,
            packet_bytes: 256,
        }
    }

    /// Validates the hierarchy: chunk ≥ message ≥ packet, all nonzero.
    pub fn validate(&self) -> Result<(), String> {
        if self.packet_bytes == 0 || self.message_bytes == 0 || self.chunk_bytes == 0 {
            return Err("granularity levels must be nonzero".into());
        }
        if self.message_bytes > self.chunk_bytes {
            return Err("message must not exceed chunk".into());
        }
        if self.packet_bytes > self.message_bytes {
            return Err("packet must not exceed message".into());
        }
        Ok(())
    }

    /// Splits a payload into chunk sizes (last chunk may be short).
    pub fn chunks(&self, payload_bytes: u64) -> Vec<u64> {
        split_into(payload_bytes, self.chunk_bytes)
    }

    /// Splits a shard into message sizes (last message may be short).
    pub fn messages(&self, shard_bytes: u64) -> Vec<u64> {
        split_into(shard_bytes, self.message_bytes)
    }

    /// Number of packets a transfer of `bytes` decomposes into.
    pub fn packets(&self, bytes: u64) -> u64 {
        bytes.div_ceil(self.packet_bytes)
    }
}

impl Default for Granularity {
    fn default() -> Self {
        Granularity::paper_default()
    }
}

fn split_into(total: u64, unit: u64) -> Vec<u64> {
    assert!(unit > 0, "split unit must be nonzero");
    if total == 0 {
        return Vec::new();
    }
    let full = total / unit;
    let rem = total % unit;
    let mut out = vec![unit; full as usize];
    if rem > 0 {
        out.push(rem);
    }
    out
}

/// Splits `total` bytes into `parts` near-even shares (ring shards): the
/// first `total % parts` shares get one extra byte. Never returns a zero
/// share unless `total < parts`, in which case trailing shares are zero —
/// callers treat zero shares as no-op sends.
///
/// ```
/// use ace_collectives::split_even;
/// assert_eq!(split_even(10, 4), vec![3, 3, 2, 2]);
/// assert_eq!(split_even(2, 4), vec![1, 1, 0, 0]);
/// ```
pub fn split_even(total: u64, parts: usize) -> Vec<u64> {
    assert!(parts > 0, "cannot split into zero parts");
    let base = total / parts as u64;
    let extra = (total % parts as u64) as usize;
    (0..parts).map(|i| base + u64::from(i < extra)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_defaults_match_tables() {
        let g = Granularity::paper_default();
        assert_eq!(g.chunk_bytes, 65536);
        assert_eq!(g.message_bytes, 8192);
        assert_eq!(g.packet_bytes, 256);
        assert!(g.validate().is_ok());
    }

    #[test]
    fn chunking_covers_payload() {
        let g = Granularity::paper_default();
        let payload = 1_000_000u64;
        let chunks = g.chunks(payload);
        assert_eq!(chunks.iter().sum::<u64>(), payload);
        assert!(chunks[..chunks.len() - 1]
            .iter()
            .all(|&c| c == g.chunk_bytes));
        assert!(*chunks.last().unwrap() <= g.chunk_bytes);
    }

    #[test]
    fn empty_payload_has_no_chunks() {
        assert!(Granularity::paper_default().chunks(0).is_empty());
    }

    #[test]
    fn message_split_covers_shard() {
        let g = Granularity::paper_default();
        let msgs = g.messages(20_000);
        assert_eq!(msgs.iter().sum::<u64>(), 20_000);
        assert_eq!(msgs.len(), 3);
    }

    #[test]
    fn packet_count_rounds_up() {
        let g = Granularity::paper_default();
        assert_eq!(g.packets(256), 1);
        assert_eq!(g.packets(257), 2);
        assert_eq!(g.packets(8192), 32);
    }

    #[test]
    fn validation_rejects_inverted_hierarchy() {
        let mut g = Granularity::paper_default();
        g.message_bytes = g.chunk_bytes * 2;
        assert!(g.validate().is_err());
        let mut g = Granularity::paper_default();
        g.packet_bytes = 0;
        assert!(g.validate().is_err());
    }

    #[test]
    fn split_even_conserves_and_balances() {
        let parts = split_even(1001, 8);
        assert_eq!(parts.iter().sum::<u64>(), 1001);
        let max = *parts.iter().max().unwrap();
        let min = *parts.iter().min().unwrap();
        assert!(max - min <= 1);
    }

    #[test]
    fn split_even_small_total() {
        assert_eq!(split_even(0, 3), vec![0, 0, 0]);
        assert_eq!(split_even(2, 3), vec![1, 1, 0]);
    }
}
