//! Topology-aware collective communication algorithms.
//!
//! Distributed DNN training exchanges gradients and activations through
//! four collective operations (paper Fig. 3): reduce-scatter, all-gather,
//! all-reduce, and all-to-all. On the paper's `LxVxH` torus platforms the
//! all-reduce is *hierarchical and multi-phase* (Section V): a
//! reduce-scatter on the high-bandwidth intra-package (local) ring, a ring
//! all-reduce on the vertical ring, a ring all-reduce on the horizontal
//! ring, and finally an all-gather back on the local ring. All-to-all is
//! *direct*: every NPU sends a distinct slice to every other NPU over XYZ
//! routes.
//!
//! This crate provides:
//!
//! * [`CollectiveOp`] / [`CollectivePlan`] / [`PhaseSpec`] — the logical
//!   algorithm plans executed by the endpoint engines,
//! * [`Granularity`] and [`split_even`] — the payload → chunk → message →
//!   packet decomposition of Table III,
//! * [`traffic`] — the closed-form endpoint memory-traffic model of
//!   Section VI-A (baseline reads 1.5 N bytes per N network bytes; ACE
//!   sends 2.25 N per N cached on a 4×4×4 torus).
//!
//! # Example
//!
//! ```
//! use ace_collectives::{CollectiveOp, CollectivePlan};
//! use ace_net::TorusShape;
//!
//! let shape = TorusShape::new(4, 4, 4).unwrap();
//! let plan = CollectivePlan::for_op(CollectiveOp::AllReduce, shape);
//! assert_eq!(plan.phases().len(), 4); // RS-local, AR-vert, AR-horiz, AG-local
//! // Per byte cached, 2.25 bytes hit the network (Section VI-A).
//! let sent = plan.bytes_sent_per_node(1_000_000);
//! assert!((sent - 2_250_000.0).abs() < 1.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod analytic;
mod granularity;
mod partition;
mod plan;
pub mod traffic;

pub use analytic::{
    estimate_collective, estimate_collective_degraded, estimate_on_spec, AnalyticEstimate,
    EndpointModel,
};
pub use granularity::{split_even, Granularity};
pub use partition::partition_bounds;
pub use plan::{CollectiveOp, CollectivePlan, PhaseKind, PhaseLink, PhaseSpec};
