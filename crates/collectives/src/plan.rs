//! Collective operations and their topology-aware execution plans.

use std::fmt;

use ace_net::{LinkClass, Topology, TopologySpec, TorusShape};

/// The four collective operations of DNN training (paper Fig. 3).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CollectiveOp {
    /// Sum-reduce all data so every node holds the full reduced payload.
    /// Dominant in data-parallel training (weight-gradient exchange).
    AllReduce,
    /// Reduce all data, leaving each node one scattered share.
    ReduceScatter,
    /// Gather scattered shares so every node holds all data.
    AllGather,
    /// Each node sends a distinct slice to every other node. Used for
    /// embedding exchange in recommendation models (DLRM).
    AllToAll,
    /// Neighbor exchange: every node pushes its full payload one hop to
    /// its successor along the outermost (scale-out) fabric dimension.
    /// Models the stage-boundary point-to-point activation/gradient
    /// transfers of pipeline-parallel schedules, where consecutive
    /// pipeline stages are mapped to consecutive positions of the
    /// slowest-changing dimension.
    SendRecv,
}

impl fmt::Display for CollectiveOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            CollectiveOp::AllReduce => "all-reduce",
            CollectiveOp::ReduceScatter => "reduce-scatter",
            CollectiveOp::AllGather => "all-gather",
            CollectiveOp::AllToAll => "all-to-all",
            CollectiveOp::SendRecv => "send-recv",
        };
        f.write_str(s)
    }
}

impl ace_toml::Spelling for CollectiveOp {
    const WHAT: &'static str = "op";

    fn keywords() -> &'static [&'static str] {
        &[
            "all-reduce",
            "reduce-scatter",
            "all-gather",
            "all-to-all",
            "send-recv",
        ]
    }

    fn spellings() -> &'static str {
        "all-reduce, reduce-scatter, all-gather, all-to-all, send-recv"
    }

    /// Accepts hyphen/underscore/bare spellings (`all-reduce`,
    /// `all_reduce`, `allreduce` all work).
    fn parse_spelling(s: &str) -> Result<Self, ace_toml::SpellingError> {
        match s
            .trim()
            .to_ascii_lowercase()
            .replace(['-', '_'], "")
            .as_str()
        {
            "allreduce" => Ok(CollectiveOp::AllReduce),
            "reducescatter" => Ok(CollectiveOp::ReduceScatter),
            "allgather" => Ok(CollectiveOp::AllGather),
            "alltoall" => Ok(CollectiveOp::AllToAll),
            "sendrecv" => Ok(CollectiveOp::SendRecv),
            _ => Err(ace_toml::SpellingError::Unknown),
        }
    }
}

impl std::str::FromStr for CollectiveOp {
    type Err = String;

    /// Parses a spec-file op name via the shared [`ace_toml::Spelling`]
    /// trait; unknown names get a did-you-mean hint.
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        use ace_toml::Spelling;
        CollectiveOp::from_spelling(s)
    }
}

/// The algorithm run within one phase of a plan.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PhaseKind {
    /// Ring reduce-scatter over the phase dimension. On a ring of size 2
    /// this is one halving exchange — the building block of
    /// halving-doubling on switch topologies.
    ReduceScatter,
    /// Ring all-gather over the phase dimension (a doubling exchange on
    /// rings of size 2).
    AllGather,
    /// Ring all-reduce (reduce-scatter + all-gather) over the phase
    /// dimension.
    RingAllReduce,
    /// Direct all-to-all across the whole fabric (single phase).
    DirectAllToAll,
}

impl fmt::Display for PhaseKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            PhaseKind::ReduceScatter => "reduce-scatter",
            PhaseKind::AllGather => "all-gather",
            PhaseKind::RingAllReduce => "ring-all-reduce",
            PhaseKind::DirectAllToAll => "direct-all-to-all",
        };
        f.write_str(s)
    }
}

/// The fabric footprint of one phase: either a single topology dimension
/// (ring phases) or every port at once (global phases).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PhaseLink {
    /// A ring phase over topology dimension `index`, riding links of
    /// `class`.
    Dim {
        /// Index into [`Topology::dims`].
        index: u8,
        /// Link technology of the dimension.
        class: LinkClass,
    },
    /// A global phase (direct all-to-all) spanning every egress port;
    /// the per-node port counts drive the SRAM-partition weight
    /// heuristic.
    Global {
        /// Intra-package egress ports per node.
        intra_ports: u8,
        /// Inter-package egress ports per node.
        inter_ports: u8,
    },
}

/// One phase of a hierarchical collective plan.
///
/// `input_fraction` is the share of the *original per-node payload* this
/// phase operates on (1.0 in the first phase; `1/L` for the inter-package
/// phases of the torus all-reduce after the local reduce-scatter).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PhaseSpec {
    /// Algorithm run in this phase.
    pub kind: PhaseKind,
    /// The dimension (or global footprint) the phase runs over.
    pub link: PhaseLink,
    /// Number of ring participants (or total nodes for all-to-all).
    pub ring_size: usize,
    /// Fraction of the original per-node payload entering this phase.
    pub input_fraction: f64,
}

impl PhaseSpec {
    /// The topology dimension this phase rings over; `None` for global
    /// phases.
    pub fn dim_index(&self) -> Option<usize> {
        match self.link {
            PhaseLink::Dim { index, .. } => Some(index as usize),
            PhaseLink::Global { .. } => None,
        }
    }

    /// Link class of the phase's dimension; `None` for global phases.
    pub fn link_class(&self) -> Option<LinkClass> {
        match self.link {
            PhaseLink::Dim { class, .. } => Some(class),
            PhaseLink::Global { .. } => None,
        }
    }

    /// Fraction of the original payload each node holds after this phase.
    pub fn output_fraction(&self) -> f64 {
        let k = self.ring_size as f64;
        match self.kind {
            PhaseKind::ReduceScatter => self.input_fraction / k,
            PhaseKind::AllGather => self.input_fraction * k,
            PhaseKind::RingAllReduce | PhaseKind::DirectAllToAll => self.input_fraction,
        }
    }

    /// Fraction of the original payload each node *sends to the network*
    /// during this phase (Section VI-A accounting).
    pub fn send_fraction(&self) -> f64 {
        let k = self.ring_size as f64;
        let f = self.input_fraction;
        match self.kind {
            PhaseKind::ReduceScatter => f * (k - 1.0) / k,
            PhaseKind::AllGather => f * (k - 1.0),
            PhaseKind::RingAllReduce => 2.0 * f * (k - 1.0) / k,
            PhaseKind::DirectAllToAll => f * (k - 1.0) / k,
        }
    }

    /// Number of serial ring steps in this phase.
    pub fn steps(&self) -> usize {
        match self.kind {
            PhaseKind::ReduceScatter | PhaseKind::AllGather => self.ring_size - 1,
            PhaseKind::RingAllReduce => 2 * (self.ring_size - 1),
            PhaseKind::DirectAllToAll => self.ring_size - 1,
        }
    }

    /// Whether steps of this phase perform a reduction (consume ALU /
    /// reduction memory traffic).
    pub fn reduces(&self) -> bool {
        matches!(
            self.kind,
            PhaseKind::ReduceScatter | PhaseKind::RingAllReduce
        )
    }
}

impl fmt::Display for PhaseSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.link {
            PhaseLink::Dim { index, .. } => {
                write!(f, "{} on d{} ring (k={})", self.kind, index, self.ring_size)
            }
            PhaseLink::Global { .. } => write!(f, "{} (n={})", self.kind, self.ring_size),
        }
    }
}

/// A topology-aware execution plan: the ordered phases a collective runs
/// through on a given fabric.
///
/// For all-reduce on the paper's torus this is the 4-phase hierarchy
/// (Section V): reduce-scatter (local) → ring all-reduce (vertical) →
/// ring all-reduce (horizontal) → all-gather (local), skipping any
/// dimension of size 1. The plan deliberately exercises the
/// high-bandwidth intra-package links with the full payload and the slow
/// inter-package links with only `1/L`-sized shards.
///
/// The same machinery plans every [`Topology`]: the leading
/// [`sandwich_dims`](Topology::sandwich_dims) dimensions reduce-scatter
/// on the way in and all-gather (in reverse order) on the way out, while
/// the remaining dimensions run ring all-reduces on the shrunken shards.
/// On a power-of-two [`Switch`](ace_net::Switch), whose dimensions are
/// all pairwise exchanges, this degenerates to recursive
/// halving-doubling; on a [`Hierarchical`](ace_net::Hierarchical) fabric
/// the scale-up crossbar takes the sandwich and the scale-out ring the
/// middle.
#[derive(Debug, Clone, PartialEq)]
pub struct CollectivePlan {
    op: CollectiveOp,
    spec: TopologySpec,
    phases: Vec<PhaseSpec>,
}

impl CollectivePlan {
    /// Builds the plan for `op` on the legacy 3-dimension torus `shape`.
    pub fn for_op(op: CollectiveOp, shape: TorusShape) -> CollectivePlan {
        CollectivePlan::for_spec(op, shape.into())
    }

    /// Builds the plan for `op` on the topology identified by `spec`.
    pub fn for_spec(op: CollectiveOp, spec: TopologySpec) -> CollectivePlan {
        CollectivePlan::for_topology(op, spec.build().as_ref())
    }

    /// Builds the plan for `op` on `topo`.
    pub fn for_topology(op: CollectiveOp, topo: &dyn Topology) -> CollectivePlan {
        let phases = match op {
            CollectiveOp::AllReduce => Self::all_reduce_phases(topo),
            CollectiveOp::ReduceScatter => {
                Self::sweep_phases(topo, PhaseKind::ReduceScatter, false)
            }
            CollectiveOp::AllGather => Self::sweep_phases(topo, PhaseKind::AllGather, true),
            CollectiveOp::AllToAll => {
                let (intra_ports, inter_ports) = topo.global_port_profile();
                vec![PhaseSpec {
                    kind: PhaseKind::DirectAllToAll,
                    link: PhaseLink::Global {
                        intra_ports,
                        inter_ports,
                    },
                    ring_size: topo.nodes(),
                    input_fraction: 1.0,
                }]
            }
            CollectiveOp::SendRecv => {
                // One hop along the outermost populated dimension: a
                // 2-participant all-gather exchange is a single ring step
                // in which every node pushes its full payload to its
                // successor — the stage-boundary transfer of a pipeline
                // schedule mapped along the scale-out dimension.
                let dims = topo.dims();
                let dim = dims
                    .iter()
                    .rposition(|d| d.len > 1)
                    .expect("send-recv needs a fabric with at least two nodes");
                vec![PhaseSpec {
                    kind: PhaseKind::AllGather,
                    link: PhaseLink::Dim {
                        index: dim as u8,
                        class: dims[dim].class,
                    },
                    ring_size: 2,
                    input_fraction: 1.0,
                }]
            }
        };
        assert!(
            !phases.is_empty(),
            "a {}-node topology must plan at least one phase",
            topo.nodes()
        );
        CollectivePlan {
            op,
            spec: topo.spec(),
            phases,
        }
    }

    fn dim_phase(topo: &dyn Topology, kind: PhaseKind, dim: usize, frac: f64) -> PhaseSpec {
        let info = topo.dims()[dim];
        PhaseSpec {
            kind,
            link: PhaseLink::Dim {
                index: dim as u8,
                class: info.class,
            },
            ring_size: info.len,
            input_fraction: frac,
        }
    }

    /// The all-reduce hierarchy: reduce-scatter over the sandwich
    /// dimensions, ring all-reduce over the rest, all-gather back out.
    fn all_reduce_phases(topo: &dyn Topology) -> Vec<PhaseSpec> {
        let dims = topo.dims();
        let s = topo.sandwich_dims().min(dims.len());
        let sandwich: Vec<usize> = (0..s).filter(|&d| dims[d].len > 1).collect();
        let mut phases = Vec::new();
        let mut frac = 1.0;
        for &d in &sandwich {
            phases.push(Self::dim_phase(topo, PhaseKind::ReduceScatter, d, frac));
            frac /= dims[d].len as f64;
        }
        for (d, info) in dims.iter().enumerate().skip(s) {
            if info.len > 1 {
                phases.push(Self::dim_phase(topo, PhaseKind::RingAllReduce, d, frac));
            }
        }
        for &d in sandwich.iter().rev() {
            phases.push(Self::dim_phase(topo, PhaseKind::AllGather, d, frac));
            frac *= dims[d].len as f64;
        }
        phases
    }

    /// Dimension sweep for standalone reduce-scatter / all-gather.
    /// All-gather sweeps dimensions in reverse so that it exactly mirrors
    /// the reduce-scatter sweep.
    fn sweep_phases(topo: &dyn Topology, kind: PhaseKind, reverse: bool) -> Vec<PhaseSpec> {
        let dims = topo.dims();
        let mut order: Vec<usize> = (0..dims.len()).filter(|&d| dims[d].len > 1).collect();
        if reverse {
            order.reverse();
        }
        let mut phases = Vec::new();
        let mut frac = 1.0;
        for d in order {
            let k = dims[d].len;
            phases.push(Self::dim_phase(topo, kind, d, frac));
            frac = match kind {
                PhaseKind::ReduceScatter => frac / k as f64,
                PhaseKind::AllGather => frac * k as f64,
                _ => frac,
            };
        }
        phases
    }

    /// The collective this plan implements.
    pub fn op(&self) -> CollectiveOp {
        self.op
    }

    /// The topology the plan targets.
    pub fn spec(&self) -> TopologySpec {
        self.spec
    }

    /// The ordered phases.
    pub fn phases(&self) -> &[PhaseSpec] {
        &self.phases
    }

    /// Total bytes each node sends to the network for a per-node payload
    /// of `payload_bytes` (Section VI-A: 2.25 N on a 4×4×4 torus).
    pub fn bytes_sent_per_node(&self, payload_bytes: u64) -> f64 {
        self.phases
            .iter()
            .map(|p| p.send_fraction() * payload_bytes as f64)
            .sum()
    }

    /// Total serial ring steps across all phases (a latency proxy).
    pub fn total_steps(&self) -> usize {
        self.phases.iter().map(PhaseSpec::steps).sum()
    }
}

impl fmt::Display for CollectivePlan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} on {}: ", self.op, self.spec)?;
        for (i, p) in self.phases.iter().enumerate() {
            if i > 0 {
                write!(f, " -> ")?;
            }
            match p.link {
                PhaseLink::Dim { index, .. } => write!(
                    f,
                    "{} on {} ring (k={})",
                    p.kind,
                    self.spec.dim_name(index as usize),
                    p.ring_size
                )?,
                PhaseLink::Global { .. } => write!(f, "{} (n={})", p.kind, p.ring_size)?,
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn torus444() -> TorusShape {
        TorusShape::new(4, 4, 4).unwrap()
    }

    #[test]
    fn all_reduce_plan_has_four_phases() {
        let plan = CollectivePlan::for_op(CollectiveOp::AllReduce, torus444());
        let kinds: Vec<PhaseKind> = plan.phases().iter().map(|p| p.kind).collect();
        assert_eq!(
            kinds,
            vec![
                PhaseKind::ReduceScatter,
                PhaseKind::RingAllReduce,
                PhaseKind::RingAllReduce,
                PhaseKind::AllGather,
            ]
        );
        assert_eq!(plan.phases()[0].dim_index(), Some(0));
        assert_eq!(plan.phases()[1].dim_index(), Some(1));
        assert_eq!(plan.phases()[2].dim_index(), Some(2));
        assert_eq!(plan.phases()[3].dim_index(), Some(0));
        assert_eq!(plan.phases()[0].link_class(), Some(LinkClass::IntraPackage));
        assert_eq!(plan.phases()[1].link_class(), Some(LinkClass::InterPackage));
    }

    #[test]
    fn section_vi_a_send_fractions() {
        // 4x4x4: 3/4 N + 6/16 N + 6/16 N + 3/4 N = 2.25 N.
        let plan = CollectivePlan::for_op(CollectiveOp::AllReduce, torus444());
        let fr: Vec<f64> = plan.phases().iter().map(PhaseSpec::send_fraction).collect();
        assert!((fr[0] - 0.75).abs() < 1e-12);
        assert!((fr[1] - 6.0 / 16.0).abs() < 1e-12);
        assert!((fr[2] - 6.0 / 16.0).abs() < 1e-12);
        assert!((fr[3] - 0.75).abs() < 1e-12);
        assert!((plan.bytes_sent_per_node(1 << 20) - 2.25 * (1u64 << 20) as f64).abs() < 1.0);
    }

    #[test]
    fn inter_package_phases_shrink_after_local_rs() {
        let plan = CollectivePlan::for_op(CollectiveOp::AllReduce, torus444());
        assert_eq!(plan.phases()[1].input_fraction, 0.25);
        assert_eq!(plan.phases()[2].input_fraction, 0.25);
        assert_eq!(plan.phases()[3].output_fraction(), 1.0);
    }

    #[test]
    fn dimension_of_size_one_is_skipped() {
        let shape = TorusShape::new(4, 1, 2).unwrap();
        let plan = CollectivePlan::for_op(CollectiveOp::AllReduce, shape);
        assert!(plan.phases().iter().all(|p| p.dim_index() != Some(1)));
        assert_eq!(plan.phases().len(), 3); // RS local, AR horizontal, AG local
    }

    #[test]
    fn one_dimensional_ring_uses_single_ring_all_reduce() {
        let shape = TorusShape::new(1, 8, 1).unwrap();
        let plan = CollectivePlan::for_op(CollectiveOp::AllReduce, shape);
        assert_eq!(plan.phases().len(), 1);
        assert_eq!(plan.phases()[0].kind, PhaseKind::RingAllReduce);
        // Bandwidth-optimal ring all-reduce sends 2(k-1)/k of the payload.
        let sent = plan.bytes_sent_per_node(1000);
        assert!((sent - 2.0 * 7.0 / 8.0 * 1000.0).abs() < 1e-9);
    }

    #[test]
    fn all_to_all_is_single_phase() {
        let plan = CollectivePlan::for_op(CollectiveOp::AllToAll, torus444());
        assert_eq!(plan.phases().len(), 1);
        let p = plan.phases()[0];
        assert_eq!(p.kind, PhaseKind::DirectAllToAll);
        assert_eq!(p.ring_size, 64);
        assert_eq!(
            p.link,
            PhaseLink::Global {
                intra_ports: 2,
                inter_ports: 4
            }
        );
        // Each node keeps 1/64 and sends 63/64.
        assert!((p.send_fraction() - 63.0 / 64.0).abs() < 1e-12);
    }

    #[test]
    fn reduce_scatter_and_all_gather_mirror() {
        let rs = CollectivePlan::for_op(CollectiveOp::ReduceScatter, torus444());
        let ag = CollectivePlan::for_op(CollectiveOp::AllGather, torus444());
        assert_eq!(rs.phases().len(), 3);
        assert_eq!(ag.phases().len(), 3);
        // RS ends with 1/64 of the payload; AG ends with 64x.
        let rs_out = rs.phases().last().unwrap().output_fraction();
        assert!((rs_out - 1.0 / 64.0).abs() < 1e-12);
        let ag_out = ag.phases().last().unwrap().output_fraction();
        assert!((ag_out - 64.0).abs() < 1e-9);
        // AG sweeps dimensions in reverse order of RS.
        assert_eq!(
            rs.phases()[0].dim_index(),
            ag.phases().last().unwrap().dim_index()
        );
    }

    #[test]
    fn ring_steps() {
        let plan = CollectivePlan::for_op(CollectiveOp::AllReduce, torus444());
        // (4-1) + 2(4-1) + 2(4-1) + (4-1) = 18.
        assert_eq!(plan.total_steps(), 18);
    }

    #[test]
    fn send_recv_is_one_hop_on_the_outermost_dimension() {
        let plan = CollectivePlan::for_op(CollectiveOp::SendRecv, torus444());
        assert_eq!(plan.phases().len(), 1);
        let p = plan.phases()[0];
        assert_eq!(p.kind, PhaseKind::AllGather);
        assert_eq!(p.ring_size, 2);
        assert_eq!(p.dim_index(), Some(2), "outermost populated dimension");
        assert_eq!(p.steps(), 1);
        // The full payload crosses the wire exactly once per node.
        assert!((plan.bytes_sent_per_node(1 << 20) - (1u64 << 20) as f64).abs() < 1.0);
        // Inner-dimension-only fabric still finds a populated dimension.
        let flat =
            CollectivePlan::for_op(CollectiveOp::SendRecv, TorusShape::new(4, 1, 1).unwrap());
        assert_eq!(flat.phases()[0].dim_index(), Some(0));
        assert_eq!(
            "send-recv".parse::<CollectiveOp>().unwrap(),
            CollectiveOp::SendRecv
        );
    }

    #[test]
    fn reduces_flag() {
        let plan = CollectivePlan::for_op(CollectiveOp::AllReduce, torus444());
        assert!(plan.phases()[0].reduces());
        assert!(plan.phases()[1].reduces());
        assert!(!plan.phases()[3].reduces());
    }

    #[test]
    fn display_is_informative() {
        let plan = CollectivePlan::for_op(CollectiveOp::AllReduce, torus444());
        let s = plan.to_string();
        assert!(s.contains("all-reduce") && s.contains("->") && s.contains("local"));
    }

    #[test]
    fn switch_all_reduce_is_halving_doubling() {
        let spec: TopologySpec = "switch:16".parse().unwrap();
        let plan = CollectivePlan::for_spec(CollectiveOp::AllReduce, spec);
        let kinds: Vec<PhaseKind> = plan.phases().iter().map(|p| p.kind).collect();
        // 4 halving exchanges then 4 doubling exchanges.
        assert_eq!(kinds[..4], [PhaseKind::ReduceScatter; 4]);
        assert_eq!(kinds[4..], [PhaseKind::AllGather; 4]);
        assert!(plan.phases().iter().all(|p| p.ring_size == 2));
        // Fractions halve on the way in and double back out.
        assert_eq!(plan.phases()[3].input_fraction, 0.125);
        assert_eq!(plan.phases()[4].input_fraction, 1.0 / 16.0);
        assert_eq!(plan.phases()[7].output_fraction(), 1.0);
        // Halving-doubling is bandwidth-optimal: 2(n-1)/n of the payload.
        let sent = plan.bytes_sent_per_node(1 << 20);
        let optimal = 2.0 * 15.0 / 16.0 * (1u64 << 20) as f64;
        assert!((sent - optimal).abs() < 1e-6, "sent {sent} vs {optimal}");
        // And takes log2(n) exchanges each way.
        assert_eq!(plan.total_steps(), 8);
    }

    #[test]
    fn non_power_of_two_switch_falls_back_to_a_ring() {
        let spec: TopologySpec = "switch:6".parse().unwrap();
        let plan = CollectivePlan::for_spec(CollectiveOp::AllReduce, spec);
        assert_eq!(plan.phases().len(), 1);
        assert_eq!(plan.phases()[0].kind, PhaseKind::RingAllReduce);
        assert_eq!(plan.phases()[0].ring_size, 6);
    }

    #[test]
    fn hierarchical_plan_sandwiches_the_crossbar() {
        let spec: TopologySpec = "hier:4x8".parse().unwrap();
        let plan = CollectivePlan::for_spec(CollectiveOp::AllReduce, spec);
        let kinds: Vec<PhaseKind> = plan.phases().iter().map(|p| p.kind).collect();
        assert_eq!(
            kinds,
            vec![
                PhaseKind::ReduceScatter,
                PhaseKind::ReduceScatter,
                PhaseKind::RingAllReduce,
                PhaseKind::AllGather,
                PhaseKind::AllGather,
            ]
        );
        // The scale-out ring works on 1/4-sized shards.
        assert_eq!(plan.phases()[2].input_fraction, 0.25);
        assert_eq!(plan.phases()[2].link_class(), Some(LinkClass::InterPackage));
        assert_eq!(plan.phases()[0].link_class(), Some(LinkClass::IntraPackage));
        assert_eq!(plan.phases().last().unwrap().output_fraction(), 1.0);
    }

    #[test]
    fn two_dim_torus_plans_like_a_torus() {
        let spec: TopologySpec = "4x8".parse().unwrap();
        let plan = CollectivePlan::for_spec(CollectiveOp::AllReduce, spec);
        let kinds: Vec<PhaseKind> = plan.phases().iter().map(|p| p.kind).collect();
        assert_eq!(
            kinds,
            vec![
                PhaseKind::ReduceScatter,
                PhaseKind::RingAllReduce,
                PhaseKind::AllGather,
            ]
        );
        assert_eq!(plan.phases()[1].ring_size, 8);
        assert_eq!(plan.phases()[1].input_fraction, 0.25);
    }
}
