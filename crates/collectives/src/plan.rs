//! Collective operations and their topology-aware execution plans.

use std::fmt;

use ace_net::{Dim, TorusShape};

/// The four collective operations of DNN training (paper Fig. 3).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CollectiveOp {
    /// Sum-reduce all data so every node holds the full reduced payload.
    /// Dominant in data-parallel training (weight-gradient exchange).
    AllReduce,
    /// Reduce all data, leaving each node one scattered share.
    ReduceScatter,
    /// Gather scattered shares so every node holds all data.
    AllGather,
    /// Each node sends a distinct slice to every other node. Used for
    /// embedding exchange in recommendation models (DLRM).
    AllToAll,
}

impl fmt::Display for CollectiveOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            CollectiveOp::AllReduce => "all-reduce",
            CollectiveOp::ReduceScatter => "reduce-scatter",
            CollectiveOp::AllGather => "all-gather",
            CollectiveOp::AllToAll => "all-to-all",
        };
        f.write_str(s)
    }
}

/// The algorithm run within one phase of a plan.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PhaseKind {
    /// Ring reduce-scatter over the phase dimension.
    ReduceScatter,
    /// Ring all-gather over the phase dimension.
    AllGather,
    /// Ring all-reduce (reduce-scatter + all-gather) over the phase
    /// dimension.
    RingAllReduce,
    /// Direct all-to-all across the whole fabric (single phase).
    DirectAllToAll,
}

impl fmt::Display for PhaseKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            PhaseKind::ReduceScatter => "reduce-scatter",
            PhaseKind::AllGather => "all-gather",
            PhaseKind::RingAllReduce => "ring-all-reduce",
            PhaseKind::DirectAllToAll => "direct-all-to-all",
        };
        f.write_str(s)
    }
}

/// One phase of a hierarchical collective plan.
///
/// `input_fraction` is the share of the *original per-node payload* this
/// phase operates on (1.0 in the first phase; `1/L` for the inter-package
/// phases of the torus all-reduce after the local reduce-scatter).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PhaseSpec {
    /// Algorithm run in this phase.
    pub kind: PhaseKind,
    /// Torus dimension the phase's ring lives on; `None` for the global
    /// direct all-to-all.
    pub dim: Option<Dim>,
    /// Number of ring participants (or total nodes for all-to-all).
    pub ring_size: usize,
    /// Fraction of the original per-node payload entering this phase.
    pub input_fraction: f64,
}

impl PhaseSpec {
    /// Fraction of the original payload each node holds after this phase.
    pub fn output_fraction(&self) -> f64 {
        let k = self.ring_size as f64;
        match self.kind {
            PhaseKind::ReduceScatter => self.input_fraction / k,
            PhaseKind::AllGather => self.input_fraction * k,
            PhaseKind::RingAllReduce | PhaseKind::DirectAllToAll => self.input_fraction,
        }
    }

    /// Fraction of the original payload each node *sends to the network*
    /// during this phase (Section VI-A accounting).
    pub fn send_fraction(&self) -> f64 {
        let k = self.ring_size as f64;
        let f = self.input_fraction;
        match self.kind {
            PhaseKind::ReduceScatter => f * (k - 1.0) / k,
            PhaseKind::AllGather => f * (k - 1.0),
            PhaseKind::RingAllReduce => 2.0 * f * (k - 1.0) / k,
            PhaseKind::DirectAllToAll => f * (k - 1.0) / k,
        }
    }

    /// Number of serial ring steps in this phase.
    pub fn steps(&self) -> usize {
        match self.kind {
            PhaseKind::ReduceScatter | PhaseKind::AllGather => self.ring_size - 1,
            PhaseKind::RingAllReduce => 2 * (self.ring_size - 1),
            PhaseKind::DirectAllToAll => self.ring_size - 1,
        }
    }

    /// Whether steps of this phase perform a reduction (consume ALU /
    /// reduction memory traffic).
    pub fn reduces(&self) -> bool {
        matches!(
            self.kind,
            PhaseKind::ReduceScatter | PhaseKind::RingAllReduce
        )
    }
}

impl fmt::Display for PhaseSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.dim {
            Some(d) => write!(f, "{} on {} ring (k={})", self.kind, d, self.ring_size),
            None => write!(f, "{} (n={})", self.kind, self.ring_size),
        }
    }
}

/// A topology-aware execution plan: the ordered phases a collective runs
/// through on a given torus.
///
/// For all-reduce this is the paper's 4-phase hierarchy (Section V):
/// reduce-scatter (local) → ring all-reduce (vertical) → ring all-reduce
/// (horizontal) → all-gather (local), skipping any dimension of size 1.
/// The plan deliberately exercises the high-bandwidth intra-package links
/// with the full payload and the slow inter-package links with only
/// `1/L`-sized shards.
#[derive(Debug, Clone, PartialEq)]
pub struct CollectivePlan {
    op: CollectiveOp,
    shape: TorusShape,
    phases: Vec<PhaseSpec>,
}

impl CollectivePlan {
    /// Builds the plan for `op` on `shape`.
    pub fn for_op(op: CollectiveOp, shape: TorusShape) -> CollectivePlan {
        let phases = match op {
            CollectiveOp::AllReduce => Self::all_reduce_phases(shape),
            CollectiveOp::ReduceScatter => {
                Self::sweep_phases(shape, PhaseKind::ReduceScatter, false)
            }
            CollectiveOp::AllGather => Self::sweep_phases(shape, PhaseKind::AllGather, true),
            CollectiveOp::AllToAll => vec![PhaseSpec {
                kind: PhaseKind::DirectAllToAll,
                dim: None,
                ring_size: shape.nodes(),
                input_fraction: 1.0,
            }],
        };
        CollectivePlan { op, shape, phases }
    }

    fn all_reduce_phases(shape: TorusShape) -> Vec<PhaseSpec> {
        let mut phases = Vec::new();
        let mut frac = 1.0;
        let l = shape.len(Dim::Local);
        if l > 1 {
            phases.push(PhaseSpec {
                kind: PhaseKind::ReduceScatter,
                dim: Some(Dim::Local),
                ring_size: l,
                input_fraction: frac,
            });
            frac /= l as f64;
        }
        for dim in [Dim::Vertical, Dim::Horizontal] {
            let k = shape.len(dim);
            if k > 1 {
                phases.push(PhaseSpec {
                    kind: PhaseKind::RingAllReduce,
                    dim: Some(dim),
                    ring_size: k,
                    input_fraction: frac,
                });
            }
        }
        if l > 1 {
            phases.push(PhaseSpec {
                kind: PhaseKind::AllGather,
                dim: Some(Dim::Local),
                ring_size: l,
                input_fraction: frac,
            });
        }
        if phases.is_empty() {
            // Degenerate 1-D shapes still need a ring all-reduce over
            // whichever dimension exists.
            let dim = Dim::ALL
                .into_iter()
                .find(|d| shape.len(*d) > 1)
                .expect("torus has at least two nodes");
            phases.push(PhaseSpec {
                kind: PhaseKind::RingAllReduce,
                dim: Some(dim),
                ring_size: shape.len(dim),
                input_fraction: 1.0,
            });
        }
        phases
    }

    /// Dimension sweep for standalone reduce-scatter / all-gather.
    /// All-gather sweeps dimensions in reverse so that it exactly mirrors
    /// the reduce-scatter sweep.
    fn sweep_phases(shape: TorusShape, kind: PhaseKind, reverse: bool) -> Vec<PhaseSpec> {
        let mut dims: Vec<Dim> = Dim::ALL.into_iter().filter(|d| shape.len(*d) > 1).collect();
        if reverse {
            dims.reverse();
        }
        let mut phases = Vec::new();
        let mut frac = 1.0;
        for dim in dims {
            let k = shape.len(dim);
            phases.push(PhaseSpec {
                kind,
                dim: Some(dim),
                ring_size: k,
                input_fraction: frac,
            });
            frac = match kind {
                PhaseKind::ReduceScatter => frac / k as f64,
                PhaseKind::AllGather => frac * k as f64,
                _ => frac,
            };
        }
        phases
    }

    /// The collective this plan implements.
    pub fn op(&self) -> CollectiveOp {
        self.op
    }

    /// The torus the plan targets.
    pub fn shape(&self) -> TorusShape {
        self.shape
    }

    /// The ordered phases.
    pub fn phases(&self) -> &[PhaseSpec] {
        &self.phases
    }

    /// Total bytes each node sends to the network for a per-node payload
    /// of `payload_bytes` (Section VI-A: 2.25 N on a 4×4×4 torus).
    pub fn bytes_sent_per_node(&self, payload_bytes: u64) -> f64 {
        self.phases
            .iter()
            .map(|p| p.send_fraction() * payload_bytes as f64)
            .sum()
    }

    /// Total serial ring steps across all phases (a latency proxy).
    pub fn total_steps(&self) -> usize {
        self.phases.iter().map(PhaseSpec::steps).sum()
    }
}

impl fmt::Display for CollectivePlan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} on {}: ", self.op, self.shape)?;
        for (i, p) in self.phases.iter().enumerate() {
            if i > 0 {
                write!(f, " -> ")?;
            }
            write!(f, "{p}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn torus444() -> TorusShape {
        TorusShape::new(4, 4, 4).unwrap()
    }

    #[test]
    fn all_reduce_plan_has_four_phases() {
        let plan = CollectivePlan::for_op(CollectiveOp::AllReduce, torus444());
        let kinds: Vec<PhaseKind> = plan.phases().iter().map(|p| p.kind).collect();
        assert_eq!(
            kinds,
            vec![
                PhaseKind::ReduceScatter,
                PhaseKind::RingAllReduce,
                PhaseKind::RingAllReduce,
                PhaseKind::AllGather,
            ]
        );
        assert_eq!(plan.phases()[0].dim, Some(Dim::Local));
        assert_eq!(plan.phases()[1].dim, Some(Dim::Vertical));
        assert_eq!(plan.phases()[2].dim, Some(Dim::Horizontal));
        assert_eq!(plan.phases()[3].dim, Some(Dim::Local));
    }

    #[test]
    fn section_vi_a_send_fractions() {
        // 4x4x4: 3/4 N + 6/16 N + 6/16 N + 3/4 N = 2.25 N.
        let plan = CollectivePlan::for_op(CollectiveOp::AllReduce, torus444());
        let fr: Vec<f64> = plan.phases().iter().map(PhaseSpec::send_fraction).collect();
        assert!((fr[0] - 0.75).abs() < 1e-12);
        assert!((fr[1] - 6.0 / 16.0).abs() < 1e-12);
        assert!((fr[2] - 6.0 / 16.0).abs() < 1e-12);
        assert!((fr[3] - 0.75).abs() < 1e-12);
        assert!((plan.bytes_sent_per_node(1 << 20) - 2.25 * (1u64 << 20) as f64).abs() < 1.0);
    }

    #[test]
    fn inter_package_phases_shrink_after_local_rs() {
        let plan = CollectivePlan::for_op(CollectiveOp::AllReduce, torus444());
        assert_eq!(plan.phases()[1].input_fraction, 0.25);
        assert_eq!(plan.phases()[2].input_fraction, 0.25);
        assert_eq!(plan.phases()[3].output_fraction(), 1.0);
    }

    #[test]
    fn dimension_of_size_one_is_skipped() {
        let shape = TorusShape::new(4, 1, 2).unwrap();
        let plan = CollectivePlan::for_op(CollectiveOp::AllReduce, shape);
        assert!(plan.phases().iter().all(|p| p.dim != Some(Dim::Vertical)));
        assert_eq!(plan.phases().len(), 3); // RS local, AR horizontal, AG local
    }

    #[test]
    fn one_dimensional_ring_uses_single_ring_all_reduce() {
        let shape = TorusShape::new(1, 8, 1).unwrap();
        let plan = CollectivePlan::for_op(CollectiveOp::AllReduce, shape);
        assert_eq!(plan.phases().len(), 1);
        assert_eq!(plan.phases()[0].kind, PhaseKind::RingAllReduce);
        // Bandwidth-optimal ring all-reduce sends 2(k-1)/k of the payload.
        let sent = plan.bytes_sent_per_node(1000);
        assert!((sent - 2.0 * 7.0 / 8.0 * 1000.0).abs() < 1e-9);
    }

    #[test]
    fn all_to_all_is_single_phase() {
        let plan = CollectivePlan::for_op(CollectiveOp::AllToAll, torus444());
        assert_eq!(plan.phases().len(), 1);
        let p = plan.phases()[0];
        assert_eq!(p.kind, PhaseKind::DirectAllToAll);
        assert_eq!(p.ring_size, 64);
        // Each node keeps 1/64 and sends 63/64.
        assert!((p.send_fraction() - 63.0 / 64.0).abs() < 1e-12);
    }

    #[test]
    fn reduce_scatter_and_all_gather_mirror() {
        let rs = CollectivePlan::for_op(CollectiveOp::ReduceScatter, torus444());
        let ag = CollectivePlan::for_op(CollectiveOp::AllGather, torus444());
        assert_eq!(rs.phases().len(), 3);
        assert_eq!(ag.phases().len(), 3);
        // RS ends with 1/64 of the payload; AG ends with 64x.
        let rs_out = rs.phases().last().unwrap().output_fraction();
        assert!((rs_out - 1.0 / 64.0).abs() < 1e-12);
        let ag_out = ag.phases().last().unwrap().output_fraction();
        assert!((ag_out - 64.0).abs() < 1e-9);
        // AG sweeps dimensions in reverse order of RS.
        assert_eq!(rs.phases()[0].dim, ag.phases().last().unwrap().dim);
    }

    #[test]
    fn ring_steps() {
        let plan = CollectivePlan::for_op(CollectiveOp::AllReduce, torus444());
        // (4-1) + 2(4-1) + 2(4-1) + (4-1) = 18.
        assert_eq!(plan.total_steps(), 18);
    }

    #[test]
    fn reduces_flag() {
        let plan = CollectivePlan::for_op(CollectiveOp::AllReduce, torus444());
        assert!(plan.phases()[0].reduces());
        assert!(plan.phases()[1].reduces());
        assert!(!plan.phases()[3].reduces());
    }

    #[test]
    fn display_is_informative() {
        let plan = CollectivePlan::for_op(CollectiveOp::AllReduce, torus444());
        let s = plan.to_string();
        assert!(s.contains("all-reduce") && s.contains("->") && s.contains("local"));
    }
}
