//! Plan-aware partition assignment for the domain-partitioned executor.
//!
//! The parallel executor splits the node id space into contiguous ranges,
//! one per worker. Where the boundaries land decides which links cross
//! partitions and therefore how much conservative lookahead the windowed
//! synchronization gets: a boundary aligned to a topology's outer-
//! dimension stride is only crossed by slow inter-package links (hundreds
//! of cycles of propagation → wide windows), while an arbitrary boundary
//! cuts through intra-package rings (tens of cycles → narrow windows).
//! [`partition_bounds`] prefers an aligned split whenever it stays within
//! 25 % of a perfectly even one.

/// Splits `nodes` node ids into at most `threads` contiguous ranges.
///
/// `align` is the topology's preferred boundary stride (the outermost
/// ring dimension's stride on a torus, the scale-up domain size on a
/// hierarchical fabric, 1 when alignment buys nothing). An aligned split
/// is chosen when its largest partition is within 1.25× of the even
/// split's; otherwise the even split wins — load balance beats lookahead
/// once the imbalance would idle workers longer than the narrow windows
/// cost.
///
/// The returned `(first, end)` ranges are nonempty, ascending, and tile
/// `0..nodes` exactly. The result is deterministic in its inputs.
pub fn partition_bounds(nodes: usize, threads: usize, align: usize) -> Vec<(usize, usize)> {
    assert!(nodes > 0, "cannot partition an empty fabric");
    let parts = threads.clamp(1, nodes);
    let even = split_ranges(nodes, parts, 1);
    if align > 1 && nodes.is_multiple_of(align) {
        let blocks = nodes / align;
        if blocks >= 2 {
            let aligned = split_ranges(blocks, parts.min(blocks), align);
            let max_len = |v: &[(usize, usize)]| v.iter().map(|(a, b)| b - a).max().unwrap();
            if max_len(&aligned) * 4 <= max_len(&even) * 5 {
                return aligned;
            }
        }
    }
    even
}

/// Even split of `units * scale` ids into `parts` ranges whose lengths
/// are multiples of `scale`, larger ranges first.
fn split_ranges(units: usize, parts: usize, scale: usize) -> Vec<(usize, usize)> {
    let base = units / parts;
    let extra = units % parts;
    let mut out = Vec::with_capacity(parts);
    let mut lo = 0usize;
    for i in 0..parts {
        let len = (base + usize::from(i < extra)) * scale;
        out.push((lo, lo + len));
        lo += len;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_tiles(bounds: &[(usize, usize)], nodes: usize) {
        let mut covered = 0;
        for &(lo, hi) in bounds {
            assert_eq!(lo, covered, "ranges must be contiguous");
            assert!(hi > lo, "ranges must be nonempty");
            covered = hi;
        }
        assert_eq!(covered, nodes, "ranges must cover every node");
    }

    #[test]
    fn unaligned_split_is_even() {
        let b = partition_bounds(625, 4, 1);
        assert_tiles(&b, 625);
        let lens: Vec<usize> = b.iter().map(|(a, z)| z - a).collect();
        assert_eq!(lens, vec![157, 156, 156, 156]);
    }

    #[test]
    fn aligned_split_wins_when_balanced() {
        // 5x5x25 torus: outer-dimension stride 25. 25 blocks over 4
        // workers → 175-node max partition, within 1.25× of the even
        // 157 — alignment wins and every boundary is a multiple of 25.
        let b = partition_bounds(625, 4, 25);
        assert_tiles(&b, 625);
        assert!(b.iter().all(|&(lo, _)| lo % 25 == 0));
        let max = b.iter().map(|(a, z)| z - a).max().unwrap();
        assert_eq!(max, 175);
    }

    #[test]
    fn imbalanced_alignment_falls_back_to_even() {
        // 10 nodes, stride 5, 4 workers: the aligned variant would be two
        // 5-node partitions against the even split's max of 3 — too
        // lopsided, so the even split wins.
        let b = partition_bounds(10, 4, 5);
        assert_tiles(&b, 10);
        assert_eq!(b.len(), 4);
        assert_eq!(b.iter().map(|(a, z)| z - a).max().unwrap(), 3);
    }

    #[test]
    fn degenerate_inputs_stay_sane() {
        assert_eq!(partition_bounds(8, 1, 4), vec![(0, 8)]);
        assert_eq!(partition_bounds(1, 8, 1), vec![(0, 1)]);
        assert_eq!(partition_bounds(3, 0, 1), vec![(0, 3)]);
        // More threads than nodes: one node per partition.
        let b = partition_bounds(3, 8, 1);
        assert_eq!(b, vec![(0, 1), (1, 2), (2, 3)]);
        // align == nodes leaves a single block — nothing to split on.
        let b = partition_bounds(8, 2, 8);
        assert_tiles(&b, 8);
        assert_eq!(b.len(), 2);
    }

    #[test]
    fn bounds_are_deterministic() {
        for nodes in [2usize, 7, 64, 125, 625, 4096] {
            for threads in [1usize, 2, 3, 4, 8] {
                for align in [1usize, 4, 25] {
                    let a = partition_bounds(nodes, threads, align);
                    let b = partition_bounds(nodes, threads, align);
                    assert_eq!(a, b);
                    assert_tiles(&a, nodes);
                    assert!(a.len() <= threads.max(1));
                }
            }
        }
    }
}
