//! Fabric degradation: killed and degraded links, background-traffic
//! contention, and the resolved [`FaultPlan`] the simulator tiers share.
//!
//! A [`FaultSpec`] names *what breaks* — specific cables, whole nodes,
//! or `k` links chosen by a seeded splitmix64 draw — and *how badly*
//! (killed outright or degraded to a fraction of their bandwidth). A
//! [`ContentionSpec`] overlays deterministic background traffic that
//! subtracts bandwidth uniformly or around one hotspot node,
//! generalizing the paper's Fig. 4 contention study into a sweep axis.
//!
//! Both specs are *declarative identities*: they parse from (and print
//! back to) canonical spellings so they can sit in sweep grids and cache
//! keys. [`FaultPlan::resolve`] turns them into per-link facts against a
//! concrete [`Topology`]: which egress links are dead, the surviving
//! bandwidth multiplier of every other link, BFS detour routes around
//! each killed ring hop, and the α–β slowdown terms the analytic tier
//! mirrors. Resolution fails loudly — a spec that disconnects the fabric
//! or saturates a link is an error, never a hang or a silently wrong
//! number.

use std::collections::{BTreeSet, HashMap, VecDeque};
use std::fmt;
use std::hash::{Hash, Hasher};
use std::str::FromStr;

use ace_toml::{Spelling, SpellingError};

use crate::link::Port;
use crate::network::NetworkParams;
use crate::topo::Topology;
use crate::topology::{Hop, NodeId, Route};

/// SplitMix64 step (Steele et al.) — the workspace's standard seeded
/// generator, duplicated here because the fault layer sits below the
/// serving crate that also carries one.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// What one fault clause targets.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FaultTarget {
    /// The cable(s) directly joining two named nodes (both directions).
    Link {
        /// One endpoint (normalized to the smaller id).
        a: u32,
        /// The other endpoint.
        b: u32,
    },
    /// Every link incident to one named node. Killing a node therefore
    /// always partitions it off — resolution reports
    /// [`FaultError::Disconnected`], the operator signal that the job
    /// cannot run without that node.
    Node(u32),
    /// `count` point-to-point cables drawn without replacement by a
    /// seeded Fisher–Yates pass over the canonical cable list. Crossbar
    /// uplinks are excluded from the draw (killing one is a node
    /// failure, not a cable failure).
    Random {
        /// Cables to pick.
        count: u32,
        /// splitmix64 seed for the draw.
        seed: u64,
    },
}

/// One clause of a [`FaultSpec`]: a target plus the fraction of its
/// bandwidth lost (`1.0` = killed).
#[derive(Debug, Clone, Copy)]
pub struct FaultClause {
    /// Fraction of bandwidth lost, in `(0, 1]`; exactly `1.0` kills.
    pub loss: f64,
    /// What the loss applies to.
    pub target: FaultTarget,
}

impl PartialEq for FaultClause {
    fn eq(&self, other: &Self) -> bool {
        self.loss.to_bits() == other.loss.to_bits() && self.target == other.target
    }
}

impl Eq for FaultClause {}

impl Hash for FaultClause {
    fn hash<H: Hasher>(&self, state: &mut H) {
        self.loss.to_bits().hash(state);
        self.target.hash(state);
    }
}

/// A declarative fault scenario: an ordered list of clauses applied in
/// spelling order. Spellings (joined with `+`):
///
/// * `none` — the pristine fabric;
/// * `kill:K` / `kill:K@seed:S` — kill `K` random cables (seed defaults
///   to 1);
/// * `kill:link:A-B` — kill the cable(s) between nodes `A` and `B`;
/// * `kill:node:N` — kill every link at node `N` (always reported as a
///   disconnection);
/// * `degrade:PCT:K[@seed:S]` / `degrade:PCT:link:A-B` /
///   `degrade:PCT:node:N` — same targets, losing `PCT`% of bandwidth
///   (0 < PCT < 100) instead of dying.
///
/// `Display` prints the canonical form (seeds made explicit, link
/// endpoints ordered), which re-parses to an equal value — the property
/// sweep cache keys rely on.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Default)]
pub struct FaultSpec {
    clauses: Vec<FaultClause>,
}

impl FaultSpec {
    /// The pristine fabric: no clauses.
    pub fn none() -> FaultSpec {
        FaultSpec::default()
    }

    /// Whether this spec changes nothing.
    pub fn is_none(&self) -> bool {
        self.clauses.is_empty()
    }

    /// The clauses, in application order.
    pub fn clauses(&self) -> &[FaultClause] {
        &self.clauses
    }

    /// A spec that kills `count` seeded-random cables.
    pub fn kill_random(count: u32, seed: u64) -> FaultSpec {
        FaultSpec {
            clauses: vec![FaultClause {
                loss: 1.0,
                target: FaultTarget::Random { count, seed },
            }],
        }
    }
}

/// Prints a percentage so that `Display` → parse round-trips bit-exactly
/// (Rust's shortest-representation float formatting guarantees this).
fn fmt_pct(loss: f64) -> String {
    format!("{}", loss * 100.0)
}

impl fmt::Display for FaultSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.clauses.is_empty() {
            return f.write_str("none");
        }
        for (i, c) in self.clauses.iter().enumerate() {
            if i > 0 {
                f.write_str("+")?;
            }
            let kill = c.loss >= 1.0;
            if kill {
                f.write_str("kill:")?;
            } else {
                write!(f, "degrade:{}:", fmt_pct(c.loss))?;
            }
            match c.target {
                FaultTarget::Link { a, b } => write!(f, "link:{a}-{b}")?,
                FaultTarget::Node(n) => write!(f, "node:{n}")?,
                FaultTarget::Random { count, seed } => write!(f, "{count}@seed:{seed}")?,
            }
        }
        Ok(())
    }
}

/// Parses the target part shared by `kill:` and `degrade:PCT:` clauses.
fn parse_target(body: &str) -> Result<FaultTarget, SpellingError> {
    let bad = |msg: String| SpellingError::Invalid(msg);
    if let Some(rest) = body.strip_prefix("link:") {
        let (a, b) = rest
            .split_once('-')
            .ok_or_else(|| bad(format!("fault link target '{rest}' is not A-B")))?;
        let a: u32 = a
            .trim()
            .parse()
            .map_err(|_| bad(format!("bad fault link endpoint '{a}'")))?;
        let b: u32 = b
            .trim()
            .parse()
            .map_err(|_| bad(format!("bad fault link endpoint '{b}'")))?;
        if a == b {
            return Err(bad(format!("fault link {a}-{b} joins a node to itself")));
        }
        return Ok(FaultTarget::Link {
            a: a.min(b),
            b: a.max(b),
        });
    }
    if let Some(rest) = body.strip_prefix("node:") {
        let n: u32 = rest
            .trim()
            .parse()
            .map_err(|_| bad(format!("bad fault node '{rest}'")))?;
        return Ok(FaultTarget::Node(n));
    }
    let (count_s, seed) = match body.split_once('@') {
        None => (body, 1u64),
        Some((c, s)) => {
            let s = s
                .strip_prefix("seed:")
                .ok_or_else(|| bad(format!("expected @seed:S after fault count, got '@{s}'")))?;
            let seed: u64 = s
                .trim()
                .parse()
                .map_err(|_| bad(format!("bad fault seed '{s}'")))?;
            (c, seed)
        }
    };
    let count: u32 = count_s
        .trim()
        .parse()
        .map_err(|_| bad(format!("bad fault count '{count_s}'")))?;
    Ok(FaultTarget::Random { count, seed })
}

impl Spelling for FaultSpec {
    const WHAT: &'static str = "fault spec";

    fn keywords() -> &'static [&'static str] {
        &["none", "kill", "degrade"]
    }

    fn spellings() -> &'static str {
        "none, kill:K[@seed:S], kill:link:A-B, kill:node:N, or degrade:PCT:<target>, \
         joined with '+'"
    }

    fn parse_spelling(s: &str) -> Result<FaultSpec, SpellingError> {
        let s = s.trim();
        if s.eq_ignore_ascii_case("none") || s.is_empty() {
            return Ok(FaultSpec::none());
        }
        let mut clauses = Vec::new();
        for clause in s.split('+') {
            let clause = clause.trim();
            if let Some(body) = clause.strip_prefix("kill:") {
                clauses.push(FaultClause {
                    loss: 1.0,
                    target: parse_target(body)?,
                });
            } else if let Some(body) = clause.strip_prefix("degrade:") {
                let (pct_s, target_s) = body.split_once(':').ok_or_else(|| {
                    SpellingError::invalid(format!(
                        "degrade clause '{clause}' needs degrade:PCT:<target>"
                    ))
                })?;
                let pct: f64 = pct_s.trim().trim_end_matches('%').parse().map_err(|_| {
                    SpellingError::invalid(format!("bad degrade percent '{pct_s}'"))
                })?;
                if !(pct > 0.0 && pct < 100.0) {
                    return Err(SpellingError::invalid(format!(
                        "degrade percent must be in (0, 100), got {pct} \
                         (use kill:... for a total failure)"
                    )));
                }
                clauses.push(FaultClause {
                    loss: pct / 100.0,
                    target: parse_target(target_s)?,
                });
            } else {
                return Err(SpellingError::Unknown);
            }
        }
        Ok(FaultSpec { clauses })
    }
}

impl FromStr for FaultSpec {
    type Err = String;

    fn from_str(s: &str) -> Result<FaultSpec, String> {
        FaultSpec::from_spelling(s)
    }
}

/// Deterministic background traffic stealing fabric bandwidth — the
/// Fig. 4 contention machinery as a sweep axis. Spellings: `none`,
/// `uniform:GBPS` (every link loses `GBPS` GB/s), `hotspot:NODE@GBPS`
/// (only links incident to `NODE` lose it).
#[derive(Debug, Clone, Copy, Default)]
pub enum ContentionSpec {
    /// No background traffic.
    #[default]
    None,
    /// Every link loses this many GB/s.
    Uniform {
        /// Background bandwidth per link, GB/s.
        gbps: f64,
    },
    /// Only links touching one node lose bandwidth.
    Hotspot {
        /// The congested node.
        node: u32,
        /// Background bandwidth on its links, GB/s.
        gbps: f64,
    },
}

impl ContentionSpec {
    /// Whether this spec changes nothing.
    pub fn is_none(&self) -> bool {
        matches!(self, ContentionSpec::None)
    }
}

impl PartialEq for ContentionSpec {
    fn eq(&self, other: &Self) -> bool {
        match (self, other) {
            (ContentionSpec::None, ContentionSpec::None) => true,
            (ContentionSpec::Uniform { gbps: a }, ContentionSpec::Uniform { gbps: b }) => {
                a.to_bits() == b.to_bits()
            }
            (
                ContentionSpec::Hotspot { node: n1, gbps: a },
                ContentionSpec::Hotspot { node: n2, gbps: b },
            ) => n1 == n2 && a.to_bits() == b.to_bits(),
            _ => false,
        }
    }
}

impl Eq for ContentionSpec {}

impl Hash for ContentionSpec {
    fn hash<H: Hasher>(&self, state: &mut H) {
        match self {
            ContentionSpec::None => 0u8.hash(state),
            ContentionSpec::Uniform { gbps } => {
                1u8.hash(state);
                gbps.to_bits().hash(state);
            }
            ContentionSpec::Hotspot { node, gbps } => {
                2u8.hash(state);
                node.hash(state);
                gbps.to_bits().hash(state);
            }
        }
    }
}

impl fmt::Display for ContentionSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ContentionSpec::None => f.write_str("none"),
            ContentionSpec::Uniform { gbps } => write!(f, "uniform:{gbps}"),
            ContentionSpec::Hotspot { node, gbps } => write!(f, "hotspot:{node}@{gbps}"),
        }
    }
}

impl Spelling for ContentionSpec {
    const WHAT: &'static str = "contention spec";

    fn keywords() -> &'static [&'static str] {
        &["none", "uniform", "hotspot"]
    }

    fn spellings() -> &'static str {
        "none, uniform:GBPS, or hotspot:NODE@GBPS"
    }

    fn parse_spelling(s: &str) -> Result<ContentionSpec, SpellingError> {
        let s = s.trim();
        if s.eq_ignore_ascii_case("none") || s.is_empty() {
            return Ok(ContentionSpec::None);
        }
        if let Some(g) = s.strip_prefix("uniform:") {
            let gbps: f64 = g
                .trim()
                .parse()
                .map_err(|_| SpellingError::invalid(format!("bad contention bandwidth '{g}'")))?;
            if !(gbps.is_finite() && gbps > 0.0) {
                return Err(SpellingError::invalid(format!(
                    "contention bandwidth must be positive, got {gbps}"
                )));
            }
            return Ok(ContentionSpec::Uniform { gbps });
        }
        if let Some(body) = s.strip_prefix("hotspot:") {
            let (n, g) = body.split_once('@').ok_or_else(|| {
                SpellingError::invalid(format!("hotspot spec '{body}' needs NODE@GBPS"))
            })?;
            let node: u32 = n
                .trim()
                .parse()
                .map_err(|_| SpellingError::invalid(format!("bad hotspot node '{n}'")))?;
            let gbps: f64 = g
                .trim()
                .parse()
                .map_err(|_| SpellingError::invalid(format!("bad contention bandwidth '{g}'")))?;
            if !(gbps.is_finite() && gbps > 0.0) {
                return Err(SpellingError::invalid(format!(
                    "contention bandwidth must be positive, got {gbps}"
                )));
            }
            return Ok(ContentionSpec::Hotspot { node, gbps });
        }
        Err(SpellingError::Unknown)
    }
}

impl FromStr for ContentionSpec {
    type Err = String;

    fn from_str(s: &str) -> Result<ContentionSpec, String> {
        ContentionSpec::from_spelling(s)
    }
}

/// Why a [`FaultSpec`]/[`ContentionSpec`] pair cannot run on a topology.
#[derive(Debug, Clone, PartialEq)]
pub enum FaultError {
    /// The surviving fabric is partitioned: collectives cannot complete.
    Disconnected {
        /// Nodes unreachable from node 0.
        unreachable: usize,
        /// The lowest unreachable node id.
        example: usize,
    },
    /// Background traffic meets or exceeds a link's (possibly degraded)
    /// capacity.
    Saturated {
        /// The saturated link's node.
        node: usize,
        /// The saturated link's egress port index.
        port: u8,
        /// Capacity left after faults, GB/s.
        capacity_gbps: f64,
        /// Background traffic demanded, GB/s.
        background_gbps: f64,
    },
    /// A named link target has no direct point-to-point cable.
    NoSuchLink {
        /// One endpoint.
        a: u32,
        /// The other endpoint.
        b: u32,
    },
    /// A named node is outside the topology.
    NoSuchNode(u32),
    /// A random draw asked for more cables than the fabric has.
    NotEnoughLinks {
        /// Cables requested.
        requested: u32,
        /// Point-to-point cables available.
        available: usize,
    },
}

impl fmt::Display for FaultError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FaultError::Disconnected {
                unreachable,
                example,
            } => write!(
                f,
                "fault spec disconnects the fabric: {unreachable} node(s) unreachable \
                 (first: npu{example}); collectives cannot complete on a partition"
            ),
            FaultError::Saturated {
                node,
                port,
                capacity_gbps,
                background_gbps,
            } => write!(
                f,
                "contention saturates npu{node} port{port}: {background_gbps} GB/s of \
                 background traffic on {capacity_gbps} GB/s of remaining capacity"
            ),
            FaultError::NoSuchLink { a, b } => write!(
                f,
                "no direct point-to-point link joins npu{a} and npu{b} \
                 (crossbar uplinks cannot be killed by name; use kill:node)"
            ),
            FaultError::NoSuchNode(n) => write!(f, "node {n} is outside the topology"),
            FaultError::NotEnoughLinks {
                requested,
                available,
            } => write!(
                f,
                "cannot fail {requested} cables: the fabric has only {available} \
                 point-to-point cables"
            ),
        }
    }
}

impl std::error::Error for FaultError {}

/// One physical cable: its two directed egress links.
type Cable = ((usize, Port), (usize, Port));

/// Enumerates the fabric's point-to-point cables in canonical order
/// (dimension-major, then node): each ring hop's positive-direction
/// egress paired with the receiving node's negative-direction egress.
fn cables(topo: &dyn Topology) -> Vec<Cable> {
    let mut out = Vec::new();
    for (d, info) in topo.dims().iter().enumerate() {
        if info.len <= 1 || info.port_plus == info.port_minus {
            continue;
        }
        for node in 0..topo.nodes() {
            let peer = topo.neighbor(NodeId(node), d, true).index();
            out.push(((node, info.port_plus), (peer, info.port_minus)));
        }
    }
    out
}

/// The cables directly joining `a` and `b` (0, 1, or — on length-2
/// rings / multi-dimension adjacency — several).
fn cables_between(topo: &dyn Topology, a: usize, b: usize) -> Vec<Cable> {
    let mut out = Vec::new();
    for (d, info) in topo.dims().iter().enumerate() {
        if info.len <= 1 || info.port_plus == info.port_minus {
            continue;
        }
        if topo.neighbor(NodeId(a), d, true).index() == b {
            out.push(((a, info.port_plus), (b, info.port_minus)));
        }
        if topo.neighbor(NodeId(a), d, false).index() == b {
            out.push(((a, info.port_minus), (b, info.port_plus)));
        }
    }
    out
}

/// A [`FaultSpec`]/[`ContentionSpec`] pair resolved against one concrete
/// topology: per-link survival facts plus the derived routing and
/// analytic terms. Resolution is cheap (microseconds on the paper's
/// fabrics), so report layers re-resolve on demand rather than caching.
#[derive(Debug, Clone)]
pub struct FaultPlan {
    nodes: usize,
    ports: usize,
    /// Killed directed egress links, as `(node, port_index)`.
    killed: BTreeSet<(usize, u8)>,
    /// Per-directed-link bandwidth multiplier, `links[node*ports+port]`;
    /// 1.0 = pristine. Meaningless for killed links.
    scale: Vec<f64>,
    /// BFS detour route for each killed ring hop, keyed by
    /// `(dim, plus, node)`.
    detours: HashMap<(usize, bool, usize), Route>,
    /// Per-dimension α–β slowdown: worst surviving-link load divided by
    /// its bandwidth multiplier, relative to the pristine 1×.
    dim_slowdowns: Vec<f64>,
    /// Worst-link slowdown fabric-wide, for global (all-to-all) phases.
    global_slowdown: f64,
    /// Physical cables fully killed.
    failed_links: usize,
    /// Fabric-aggregate bandwidth lost, percent.
    degradation_pct: f64,
}

impl FaultPlan {
    /// Resolves `faults` + `contention` against `topo`, validating that
    /// the surviving fabric is connected and no link is saturated.
    /// `net` supplies per-link capacities for the contention check.
    pub fn resolve(
        topo: &dyn Topology,
        net: &NetworkParams,
        faults: &FaultSpec,
        contention: &ContentionSpec,
    ) -> Result<FaultPlan, FaultError> {
        let nodes = topo.nodes();
        let ports = topo.ports_per_node();
        let mut plan = FaultPlan {
            nodes,
            ports,
            killed: BTreeSet::new(),
            scale: vec![1.0; nodes * ports],
            detours: HashMap::new(),
            dim_slowdowns: vec![1.0; topo.dims().len()],
            global_slowdown: 1.0,
            failed_links: 0,
            degradation_pct: 0.0,
        };

        for clause in faults.clauses() {
            plan.apply_clause(topo, clause)?;
        }
        plan.apply_contention(topo, net, contention)?;
        plan.check_connectivity(topo)?;
        plan.plan_detours(topo);
        plan.compute_slowdowns(topo);
        plan.compute_degradation(topo, net);
        Ok(plan)
    }

    /// Resolves the pristine plan (convenience for callers that always
    /// thread a plan).
    pub fn pristine(topo: &dyn Topology, net: &NetworkParams) -> FaultPlan {
        FaultPlan::resolve(topo, net, &FaultSpec::none(), &ContentionSpec::None)
            .expect("the pristine fabric resolves")
    }

    fn idx(&self, node: usize, port: Port) -> usize {
        node * self.ports + port.index()
    }

    fn apply_cable(&mut self, cable: Cable, loss: f64) {
        let ((a, pa), (b, pb)) = cable;
        if loss >= 1.0 {
            let fresh = self.killed.insert((a, pa.index() as u8));
            self.killed.insert((b, pb.index() as u8));
            if fresh {
                self.failed_links += 1;
            }
        } else {
            let ia = self.idx(a, pa);
            let ib = self.idx(b, pb);
            self.scale[ia] *= 1.0 - loss;
            self.scale[ib] *= 1.0 - loss;
        }
    }

    fn apply_clause(
        &mut self,
        topo: &dyn Topology,
        clause: &FaultClause,
    ) -> Result<(), FaultError> {
        let nodes = self.nodes;
        match clause.target {
            FaultTarget::Link { a, b } => {
                if a as usize >= nodes {
                    return Err(FaultError::NoSuchNode(a));
                }
                if b as usize >= nodes {
                    return Err(FaultError::NoSuchNode(b));
                }
                let found = cables_between(topo, a as usize, b as usize);
                if found.is_empty() {
                    return Err(FaultError::NoSuchLink { a, b });
                }
                for c in found {
                    self.apply_cable(c, clause.loss);
                }
            }
            FaultTarget::Node(n) => {
                if n as usize >= nodes {
                    return Err(FaultError::NoSuchNode(n));
                }
                let n = n as usize;
                // Point-to-point cables at n, both directions.
                let mut handled = BTreeSet::new();
                for (d, info) in topo.dims().iter().enumerate() {
                    if info.len <= 1 || info.port_plus == info.port_minus {
                        continue;
                    }
                    for plus in [true, false] {
                        let (p_out, p_in) = if plus {
                            (info.port_plus, info.port_minus)
                        } else {
                            (info.port_minus, info.port_plus)
                        };
                        let peer = topo.neighbor(NodeId(n), d, plus).index();
                        self.apply_cable(((n, p_out), (peer, p_in)), clause.loss);
                        handled.insert(p_out.index());
                    }
                }
                // Remaining live ports are fan-out uplinks: the loss
                // lands on the node's own egress.
                for p in 0..self.ports {
                    let port = Port::from_index(p);
                    if handled.contains(&p) || topo.port_class(port).is_none() {
                        continue;
                    }
                    if clause.loss >= 1.0 {
                        if self.killed.insert((n, p as u8)) {
                            self.failed_links += 1;
                        }
                    } else {
                        let i = self.idx(n, port);
                        self.scale[i] *= 1.0 - clause.loss;
                    }
                }
            }
            FaultTarget::Random { count, seed } => {
                let mut pool = cables(topo);
                if count as usize > pool.len() {
                    return Err(FaultError::NotEnoughLinks {
                        requested: count,
                        available: pool.len(),
                    });
                }
                // Partial Fisher–Yates: the first `count` slots are a
                // uniform sample, deterministic for a seed.
                let mut state = seed;
                for i in 0..count as usize {
                    let j = i + (splitmix64(&mut state) % (pool.len() - i) as u64) as usize;
                    pool.swap(i, j);
                    self.apply_cable(pool[i], clause.loss);
                }
            }
        }
        Ok(())
    }

    fn apply_contention(
        &mut self,
        topo: &dyn Topology,
        net: &NetworkParams,
        contention: &ContentionSpec,
    ) -> Result<(), FaultError> {
        if contention.is_none() {
            return Ok(());
        }
        for node in 0..self.nodes {
            for p in 0..self.ports {
                let port = Port::from_index(p);
                let Some(params) = topo.link_params_for(port, net) else {
                    continue;
                };
                if self.killed.contains(&(node, p as u8)) {
                    continue;
                }
                let sub = match *contention {
                    ContentionSpec::None => 0.0,
                    ContentionSpec::Uniform { gbps } => gbps,
                    ContentionSpec::Hotspot { node: h, gbps } => {
                        let h = h as usize;
                        if h >= self.nodes {
                            return Err(FaultError::NoSuchNode(h as u32));
                        }
                        let incident = node == h
                            || topo.link_peer(NodeId(node), port) == Some(NodeId(h))
                            || topo.fanout_peers(NodeId(node), port).contains(&NodeId(h));
                        if incident {
                            gbps
                        } else {
                            0.0
                        }
                    }
                };
                if sub <= 0.0 {
                    continue;
                }
                let i = self.idx(node, port);
                let capacity = params.bandwidth_gbps * self.scale[i];
                if capacity - sub <= 0.0 {
                    return Err(FaultError::Saturated {
                        node,
                        port: p as u8,
                        capacity_gbps: capacity,
                        background_gbps: sub,
                    });
                }
                self.scale[i] = (capacity - sub) / params.bandwidth_gbps;
            }
        }
        Ok(())
    }

    /// The nodes adjacent to `node` over surviving links, with the
    /// egress port used, in deterministic (port-major, then peer) order.
    fn surviving_edges(&self, topo: &dyn Topology, node: usize) -> Vec<(Port, usize)> {
        let mut out = Vec::new();
        for p in 0..self.ports {
            let port = Port::from_index(p);
            if topo.port_class(port).is_none() || self.killed.contains(&(node, p as u8)) {
                continue;
            }
            if let Some(peer) = topo.link_peer(NodeId(node), port) {
                out.push((port, peer.index()));
            } else {
                // Fan-out uplinks are bidirectional in the crossbar: a
                // peer whose own uplink is dead is unreachable.
                for peer in topo.fanout_peers(NodeId(node), port) {
                    if !self.killed.contains(&(peer.index(), p as u8)) {
                        out.push((port, peer.index()));
                    }
                }
            }
        }
        out
    }

    fn check_connectivity(&self, topo: &dyn Topology) -> Result<(), FaultError> {
        let mut seen = vec![false; self.nodes];
        let mut queue = VecDeque::from([0usize]);
        seen[0] = true;
        let mut reached = 1usize;
        while let Some(node) = queue.pop_front() {
            for (_, peer) in self.surviving_edges(topo, node) {
                if !seen[peer] {
                    seen[peer] = true;
                    reached += 1;
                    queue.push_back(peer);
                }
            }
        }
        if reached == self.nodes {
            return Ok(());
        }
        let example = seen.iter().position(|s| !s).expect("some node unseen");
        Err(FaultError::Disconnected {
            unreachable: self.nodes - reached,
            example,
        })
    }

    /// Deterministic BFS shortest path over surviving links. `None` only
    /// on a disconnected fabric, which [`resolve`](FaultPlan::resolve)
    /// rejects up front.
    pub fn route_around(&self, topo: &dyn Topology, src: NodeId, dst: NodeId) -> Option<Route> {
        if src == dst {
            return Some(Vec::new());
        }
        let mut parent: Vec<Option<(usize, Port)>> = vec![None; self.nodes];
        let mut seen = vec![false; self.nodes];
        seen[src.index()] = true;
        let mut queue = VecDeque::from([src.index()]);
        'bfs: while let Some(node) = queue.pop_front() {
            for (port, peer) in self.surviving_edges(topo, node) {
                if seen[peer] {
                    continue;
                }
                seen[peer] = true;
                parent[peer] = Some((node, port));
                if peer == dst.index() {
                    break 'bfs;
                }
                queue.push_back(peer);
            }
        }
        if !seen[dst.index()] {
            return None;
        }
        let mut hops = Vec::new();
        let mut cur = dst.index();
        while cur != src.index() {
            let (prev, port) = parent[cur].expect("parent chain reaches src");
            hops.push(Hop {
                from: NodeId(prev),
                port,
                to: NodeId(cur),
            });
            cur = prev;
        }
        hops.reverse();
        Some(hops)
    }

    fn plan_detours(&mut self, topo: &dyn Topology) {
        let dims: Vec<_> = topo.dims().to_vec();
        for (d, info) in dims.iter().enumerate() {
            if info.len <= 1 || info.port_plus == info.port_minus {
                continue;
            }
            for plus in [true, false] {
                let port = if plus {
                    info.port_plus
                } else {
                    info.port_minus
                };
                for node in 0..self.nodes {
                    if !self.killed.contains(&(node, port.index() as u8)) {
                        continue;
                    }
                    let dst = topo.neighbor(NodeId(node), d, plus);
                    let route = self
                        .route_around(topo, NodeId(node), dst)
                        .expect("connectivity was checked");
                    self.detours.insert((d, plus, node), route);
                }
            }
        }
    }

    fn compute_slowdowns(&mut self, topo: &dyn Topology) {
        for (d, info) in topo.dims().iter().enumerate() {
            if info.len <= 1 {
                continue;
            }
            let mut worst = 1.0f64;
            if info.port_plus == info.port_minus {
                // Fan-out dimension: the phase is paced by the slowest
                // surviving uplink.
                for node in 0..self.nodes {
                    let i = self.idx(node, info.port_plus);
                    if !self.killed.contains(&(node, info.port_plus.index() as u8)) {
                        worst = worst.max(1.0 / self.scale[i]);
                    }
                }
            } else {
                for plus in [true, false] {
                    let port = if plus {
                        info.port_plus
                    } else {
                        info.port_minus
                    };
                    // Unit load per pristine ring hop; detours spread a
                    // killed hop's unit across every link they traverse.
                    let mut load: HashMap<(usize, u8), f64> = HashMap::new();
                    for node in 0..self.nodes {
                        match self.detours.get(&(d, plus, node)) {
                            None => {
                                *load.entry((node, port.index() as u8)).or_insert(0.0) += 1.0;
                            }
                            Some(route) => {
                                for hop in route {
                                    *load
                                        .entry((hop.from.index(), hop.port.index() as u8))
                                        .or_insert(0.0) += 1.0;
                                }
                            }
                        }
                    }
                    for (&(node, p), &l) in &load {
                        let s = self.scale[node * self.ports + p as usize];
                        worst = worst.max(l / s);
                    }
                }
            }
            self.dim_slowdowns[d] = worst;
        }
        let mut global = 1.0f64;
        for node in 0..self.nodes {
            for p in 0..self.ports {
                if topo.port_class(Port::from_index(p)).is_none()
                    || self.killed.contains(&(node, p as u8))
                {
                    continue;
                }
                global = global.max(1.0 / self.scale[node * self.ports + p]);
            }
        }
        self.global_slowdown = global;
    }

    fn compute_degradation(&mut self, topo: &dyn Topology, net: &NetworkParams) {
        let (mut total, mut surviving) = (0.0f64, 0.0f64);
        for node in 0..self.nodes {
            for p in 0..self.ports {
                let port = Port::from_index(p);
                let Some(params) = topo.link_params_for(port, net) else {
                    continue;
                };
                total += params.bandwidth_gbps;
                if !self.killed.contains(&(node, p as u8)) {
                    surviving += params.bandwidth_gbps * self.scale[node * self.ports + p];
                }
            }
        }
        self.degradation_pct = if total > 0.0 {
            100.0 * (1.0 - surviving / total)
        } else {
            0.0
        };
    }

    /// Whether the plan changes nothing (no kills, every multiplier 1).
    pub fn is_pristine(&self) -> bool {
        self.killed.is_empty() && self.scale.iter().all(|&s| s == 1.0)
    }

    /// Whether any link is fully killed (degradation alone keeps the
    /// pristine routes).
    pub fn has_kills(&self) -> bool {
        !self.killed.is_empty()
    }

    /// Whether the directed link at `node`/`port` is killed.
    pub fn is_killed(&self, node: NodeId, port: Port) -> bool {
        self.killed.contains(&(node.index(), port.index() as u8))
    }

    /// The killed directed links.
    pub fn killed_links(&self) -> impl Iterator<Item = (NodeId, Port)> + '_ {
        self.killed
            .iter()
            .map(|&(n, p)| (NodeId(n), Port::from_index(p as usize)))
    }

    /// The surviving bandwidth multiplier of the directed link at
    /// `node`/`port` (1.0 = pristine).
    pub fn link_scale(&self, node: NodeId, port: Port) -> f64 {
        self.scale[node.index() * self.ports + port.index()]
    }

    /// The BFS detour replacing the killed ring hop out of `node` along
    /// `dim` in the `plus` direction, if that hop is killed.
    pub fn ring_detour(&self, dim: usize, plus: bool, node: NodeId) -> Option<&Route> {
        self.detours.get(&(dim, plus, node.index()))
    }

    /// Number of killed ring hops with detours planned.
    pub fn detour_count(&self) -> usize {
        self.detours.len()
    }

    /// The α–β slowdown of ring/exchange phases over dimension `dim`:
    /// the worst surviving link's load-over-bandwidth relative to the
    /// pristine fabric. 1.0 when untouched.
    pub fn dim_slowdown(&self, dim: usize) -> f64 {
        self.dim_slowdowns.get(dim).copied().unwrap_or(1.0)
    }

    /// The fabric-wide worst-link slowdown, applied to global
    /// (all-to-all) phases by the analytic tier.
    pub fn global_slowdown(&self) -> f64 {
        self.global_slowdown
    }

    /// Physical cables fully killed — the sweep report's `failed_links`
    /// column.
    pub fn failed_links(&self) -> usize {
        self.failed_links
    }

    /// Aggregate fabric bandwidth lost, percent — the sweep report's
    /// `degradation_pct` column.
    pub fn degradation_pct(&self) -> f64 {
        self.degradation_pct
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topo::TopologySpec;

    fn resolve(topo: &str, faults: &str, contention: &str) -> Result<FaultPlan, FaultError> {
        let spec: TopologySpec = topo.parse().unwrap();
        let topo = spec.build();
        FaultPlan::resolve(
            topo.as_ref(),
            &NetworkParams::paper_default(),
            &faults.parse().unwrap(),
            &contention.parse().unwrap(),
        )
    }

    #[test]
    fn spellings_round_trip_canonically() {
        for (input, canonical) in [
            ("none", "none"),
            ("kill:2", "kill:2@seed:1"),
            ("kill:2@seed:42", "kill:2@seed:42"),
            ("kill:link:3-1", "kill:link:1-3"),
            ("kill:node:7", "kill:node:7"),
            ("degrade:50:link:0-1", "degrade:50:link:0-1"),
            ("degrade:12.5:3@seed:9", "degrade:12.5:3@seed:9"),
            (
                "kill:1@seed:2+degrade:25:node:0",
                "kill:1@seed:2+degrade:25:node:0",
            ),
        ] {
            let spec: FaultSpec = input.parse().unwrap();
            assert_eq!(spec.to_string(), canonical, "canonical form of '{input}'");
            let back: FaultSpec = spec.to_string().parse().unwrap();
            assert_eq!(back, spec, "round trip of '{input}'");
        }
        for (input, canonical) in [
            ("none", "none"),
            ("uniform:12.5", "uniform:12.5"),
            ("hotspot:3@20", "hotspot:3@20"),
        ] {
            let spec: ContentionSpec = input.parse().unwrap();
            assert_eq!(spec.to_string(), canonical);
            let back: ContentionSpec = spec.to_string().parse().unwrap();
            assert_eq!(back, spec);
        }
    }

    #[test]
    fn bad_spellings_get_unified_errors() {
        let e = "kll:2".parse::<FaultSpec>().unwrap_err();
        assert!(e.contains("unknown fault spec"), "{e}");
        assert!(e.contains("did you mean 'kill'?"), "{e}");
        let e = "degrade:150:1".parse::<FaultSpec>().unwrap_err();
        assert!(e.contains("(0, 100)"), "{e}");
        let e = "kill:link:5".parse::<FaultSpec>().unwrap_err();
        assert!(e.contains("A-B"), "{e}");
        let e = "unifrm:10".parse::<ContentionSpec>().unwrap_err();
        assert!(e.contains("did you mean 'uniform'?"), "{e}");
    }

    #[test]
    fn pristine_plan_changes_nothing() {
        let plan = resolve("4x4", "none", "none").unwrap();
        assert!(plan.is_pristine());
        assert_eq!(plan.failed_links(), 0);
        assert_eq!(plan.degradation_pct(), 0.0);
        assert_eq!(plan.detour_count(), 0);
        assert_eq!(plan.global_slowdown(), 1.0);
    }

    #[test]
    fn random_kill_is_deterministic_and_detoured() {
        let a = resolve("4x4", "kill:2@seed:42", "none").unwrap();
        let b = resolve("4x4", "kill:2@seed:42", "none").unwrap();
        assert_eq!(
            a.killed_links().collect::<Vec<_>>(),
            b.killed_links().collect::<Vec<_>>()
        );
        assert_eq!(a.failed_links(), 2);
        // Both directions of each cable die.
        assert_eq!(a.killed_links().count(), 4);
        // Every killed ring hop gets a detour over surviving links.
        assert_eq!(a.detour_count(), 4);
        assert!(a.degradation_pct() > 0.0);
        let c = resolve("4x4", "kill:2@seed:43", "none").unwrap();
        assert_ne!(
            a.killed_links().collect::<Vec<_>>(),
            c.killed_links().collect::<Vec<_>>(),
            "a different seed picks different cables"
        );
    }

    #[test]
    fn detours_avoid_killed_links_and_connect() {
        let spec: TopologySpec = "4x4".parse().unwrap();
        let topo = spec.build();
        let plan = FaultPlan::resolve(
            topo.as_ref(),
            &NetworkParams::paper_default(),
            &"kill:3@seed:7".parse().unwrap(),
            &ContentionSpec::None,
        )
        .unwrap();
        for ((d, plus, node), _) in plan.detours.iter().map(|(k, v)| (*k, v)) {
            let route = plan.ring_detour(d, plus, NodeId(node)).unwrap();
            let dst = topo.neighbor(NodeId(node), d, plus);
            assert!(!route.is_empty());
            assert_eq!(route[0].from, NodeId(node));
            assert_eq!(route.last().unwrap().to, dst);
            for hop in route {
                assert!(
                    !plan.is_killed(hop.from, hop.port),
                    "detour uses a dead link"
                );
            }
            for w in route.windows(2) {
                assert_eq!(w[0].to, w[1].from);
            }
        }
    }

    #[test]
    fn killing_a_node_reports_disconnection() {
        let e = resolve("4x4", "kill:node:5", "none").unwrap_err();
        match e {
            FaultError::Disconnected {
                unreachable,
                example,
            } => {
                assert_eq!(unreachable, 1);
                assert_eq!(example, 5);
            }
            other => panic!("expected Disconnected, got {other:?}"),
        }
        // A switch node dies with its single uplink.
        let e = resolve("switch:8", "kill:node:3", "none").unwrap_err();
        assert!(matches!(e, FaultError::Disconnected { .. }));
    }

    #[test]
    fn degrading_keeps_routes_but_slows_dimensions() {
        let plan = resolve("4x4", "degrade:50:link:0-1", "none").unwrap();
        assert!(!plan.is_pristine());
        assert!(!plan.has_kills());
        assert_eq!(plan.failed_links(), 0);
        assert_eq!(plan.detour_count(), 0);
        // Link 0->1 is dimension 0's positive hop out of node 0.
        assert!(
            (plan.dim_slowdown(0) - 2.0).abs() < 1e-9,
            "{}",
            plan.dim_slowdown(0)
        );
        assert_eq!(plan.dim_slowdown(1), 1.0);
        assert!((plan.global_slowdown() - 2.0).abs() < 1e-9);
        assert!(plan.degradation_pct() > 0.0);
    }

    #[test]
    fn contention_subtracts_bandwidth_and_saturates() {
        let plan = resolve("4x4", "none", "uniform:20").unwrap();
        assert!(!plan.is_pristine());
        // Intra links: (200-20)/200; a 4x4 torus dim 1 is inter: (25-20)/25.
        let s0 = plan.link_scale(NodeId(0), Port::from_index(0));
        assert!((s0 - 0.9).abs() < 1e-9, "{s0}");
        let s2 = plan.link_scale(NodeId(0), Port::from_index(2));
        assert!((s2 - 0.2).abs() < 1e-9, "{s2}");
        let e = resolve("4x4", "none", "uniform:25").unwrap_err();
        assert!(matches!(e, FaultError::Saturated { .. }), "{e:?}");
        // Hotspot only touches links incident to the node.
        let hot = resolve("4x4", "none", "hotspot:0@20").unwrap();
        assert!(hot.link_scale(NodeId(0), Port::from_index(0)) < 1.0);
        assert_eq!(hot.link_scale(NodeId(2), Port::from_index(0)), 1.0);
        // Node 1's minus-direction link feeds node 0: incident.
        assert!(hot.link_scale(NodeId(1), Port::from_index(1)) < 1.0);
    }

    #[test]
    fn named_link_must_exist_and_counts_scale_with_fabric() {
        let e = resolve("4x4", "kill:link:0-5", "none").unwrap_err();
        assert!(matches!(e, FaultError::NoSuchLink { a: 0, b: 5 }), "{e:?}");
        let e = resolve("4x4", "kill:99", "none").unwrap_err();
        assert!(matches!(
            e,
            FaultError::NotEnoughLinks {
                requested: 99,
                available: 32
            }
        ));
        let e = resolve("4x4", "kill:node:99", "none").unwrap_err();
        assert!(matches!(e, FaultError::NoSuchNode(99)));
        // Switch fabrics expose no point-to-point cables to the draw.
        let e = resolve("switch:8", "kill:1", "none").unwrap_err();
        assert!(matches!(e, FaultError::NotEnoughLinks { available: 0, .. }));
    }

    #[test]
    fn hierarchical_scale_out_ring_detours_the_long_way() {
        // hier:4x4: killing one scale-out hop re-routes around the ring
        // (or through a neighboring domain) without disconnecting.
        let spec: TopologySpec = "hier:4x4".parse().unwrap();
        let topo = spec.build();
        let ring_dim = topo.dims().len() - 1;
        let plan = FaultPlan::resolve(
            topo.as_ref(),
            &NetworkParams::paper_default(),
            &"kill:1@seed:5".parse().unwrap(),
            &ContentionSpec::None,
        )
        .unwrap();
        assert_eq!(plan.failed_links(), 1);
        assert_eq!(plan.detour_count(), 2);
        assert!(plan.dim_slowdown(ring_dim) > 1.0);
    }

    #[test]
    fn route_around_matches_topology_when_pristine() {
        let spec: TopologySpec = "4x4".parse().unwrap();
        let topo = spec.build();
        let plan = FaultPlan::pristine(topo.as_ref(), &NetworkParams::paper_default());
        // BFS shortest-path length equals the torus route length.
        for dst in 1..16 {
            let bfs = plan
                .route_around(topo.as_ref(), NodeId(0), NodeId(dst))
                .unwrap();
            assert_eq!(bfs.len(), topo.route(NodeId(0), NodeId(dst)).len());
        }
    }
}
