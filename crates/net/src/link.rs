//! Link model: per-port FIFO serialization with propagation latency.

use std::fmt;

use ace_simcore::{BandwidthServer, Frequency, Grant, SimTime, UtilizationTracker};

use crate::topology::Dim;

/// The two physical link technologies in the platform (Table V).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum LinkClass {
    /// Silicon-interposer intra-package link: 200 GB/s, 90-cycle latency.
    IntraPackage,
    /// NVLink-class inter-package link: 25 GB/s, 500-cycle latency.
    InterPackage,
}

impl LinkClass {
    /// The link class used for dimension `dim`.
    pub fn for_dim(dim: Dim) -> LinkClass {
        match dim {
            Dim::Local => LinkClass::IntraPackage,
            Dim::Vertical | Dim::Horizontal => LinkClass::InterPackage,
        }
    }
}

impl fmt::Display for LinkClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LinkClass::IntraPackage => f.write_str("intra-package"),
            LinkClass::InterPackage => f.write_str("inter-package"),
        }
    }
}

/// Physical parameters of one link class.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LinkParams {
    /// Peak bandwidth in GB/s.
    pub bandwidth_gbps: f64,
    /// Propagation latency in cycles.
    pub latency_cycles: u64,
    /// Achievable fraction of peak bandwidth (Table V: 94 %).
    pub efficiency: f64,
}

impl LinkParams {
    /// Table V parameters for `class`.
    pub fn paper_default(class: LinkClass) -> LinkParams {
        match class {
            LinkClass::IntraPackage => LinkParams {
                bandwidth_gbps: 200.0,
                latency_cycles: 90,
                efficiency: 0.94,
            },
            LinkClass::InterPackage => LinkParams {
                bandwidth_gbps: 25.0,
                latency_cycles: 500,
                efficiency: 0.94,
            },
        }
    }

    /// Effective bandwidth after the efficiency derating, in GB/s.
    pub fn effective_gbps(&self) -> f64 {
        self.bandwidth_gbps * self.efficiency
    }
}

/// One egress port of a node, identified by its dense per-node index.
///
/// On a torus, dimension `d`'s positive-direction port is index `2d` and
/// its negative-direction port `2d + 1` — so on the 3-dimension torus the
/// six ports are `local±`, `vertical±`, `horizontal±` in the paper's
/// order. Other topologies lay out their own ports (a switch has a single
/// uplink at index 0).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Port {
    idx: u8,
}

impl Port {
    /// Creates a 3-dimension-torus port for `dim` in the positive
    /// (`plus = true`) or negative ring direction.
    pub fn new(dim: Dim, plus: bool) -> Port {
        let d = match dim {
            Dim::Local => 0,
            Dim::Vertical => 1,
            Dim::Horizontal => 2,
        };
        Port {
            idx: (d * 2 + u8::from(!plus)),
        }
    }

    /// The port at dense index `idx`.
    ///
    /// # Panics
    ///
    /// Panics if `idx` does not fit the index width.
    pub fn from_index(idx: usize) -> Port {
        assert!(idx <= u8::MAX as usize, "port index {idx} out of range");
        Port { idx: idx as u8 }
    }

    /// The six 3-dimension-torus ports in index order.
    pub const ALL: [Port; 6] = [
        Port { idx: 0 },
        Port { idx: 1 },
        Port { idx: 2 },
        Port { idx: 3 },
        Port { idx: 4 },
        Port { idx: 5 },
    ];

    /// The port's dimension, for ports of the 3-dimension torus.
    ///
    /// # Panics
    ///
    /// Panics for port indices beyond the torus's six.
    pub fn dim(self) -> Dim {
        match self.idx / 2 {
            0 => Dim::Local,
            1 => Dim::Vertical,
            2 => Dim::Horizontal,
            _ => panic!("port {} has no 3-dim-torus dimension", self.idx),
        }
    }

    /// Whether the port points in the positive ring direction (even
    /// index). Crossbar-backed topologies use one port for both
    /// directions, so this is only meaningful on tori.
    pub fn is_plus(self) -> bool {
        self.idx.is_multiple_of(2)
    }

    /// Dense per-node index for table lookups.
    pub fn index(self) -> usize {
        self.idx as usize
    }
}

impl fmt::Display for Port {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.idx < 6 {
            write!(
                f,
                "{}{}",
                self.dim(),
                if self.is_plus() { "+" } else { "-" }
            )
        } else {
            write!(f, "p{}", self.idx)
        }
    }
}

/// A unidirectional link: a bandwidth server plus propagation latency.
#[derive(Debug, Clone)]
pub struct Link {
    class: LinkClass,
    params: LinkParams,
    server: BandwidthServer,
    util: UtilizationTracker,
}

impl Link {
    /// Creates a link of `class` with `params` under NPU clock `freq`.
    pub fn new(class: LinkClass, params: LinkParams, freq: Frequency) -> Link {
        let bpc = freq.bytes_per_cycle(params.effective_gbps());
        Link {
            class,
            params,
            server: BandwidthServer::new(bpc),
            util: UtilizationTracker::new(),
        }
    }

    /// The link's class.
    pub fn class(&self) -> LinkClass {
        self.class
    }

    /// The link's physical parameters.
    pub fn params(&self) -> &LinkParams {
        &self.params
    }

    /// Serializes `bytes` onto the wire starting no earlier than `now`.
    /// The returned grant covers wire occupancy; the message is available
    /// at the downstream node at `grant.end + latency`.
    pub fn transmit(&mut self, now: SimTime, bytes: u64) -> Grant {
        let grant = self.server.request(now, bytes);
        self.util.record(grant.start, grant.end);
        grant
    }

    /// Arrival time at the downstream node for a transmission grant.
    pub fn arrival(&self, grant: Grant) -> SimTime {
        grant.end + self.params.latency_cycles
    }

    /// Earliest time the wire is free for a request issued at `now`.
    pub fn next_free(&self, now: SimTime) -> SimTime {
        self.server.next_free(now)
    }

    /// Total bytes carried.
    pub fn bytes_carried(&self) -> u64 {
        self.server.bytes_served()
    }

    /// Cycles the wire spent busy.
    pub fn busy_cycles(&self) -> f64 {
        self.server.busy_cycles()
    }

    /// Wire-busy fraction over `[0, horizon]`.
    pub fn utilization(&self, horizon: SimTime) -> f64 {
        self.server.utilization(horizon)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ace_simcore::npu_frequency;

    #[test]
    fn link_class_by_dimension() {
        assert_eq!(LinkClass::for_dim(Dim::Local), LinkClass::IntraPackage);
        assert_eq!(LinkClass::for_dim(Dim::Vertical), LinkClass::InterPackage);
        assert_eq!(LinkClass::for_dim(Dim::Horizontal), LinkClass::InterPackage);
    }

    #[test]
    fn paper_params_match_table_v() {
        let intra = LinkParams::paper_default(LinkClass::IntraPackage);
        assert_eq!(intra.bandwidth_gbps, 200.0);
        assert_eq!(intra.latency_cycles, 90);
        let inter = LinkParams::paper_default(LinkClass::InterPackage);
        assert_eq!(inter.bandwidth_gbps, 25.0);
        assert_eq!(inter.latency_cycles, 500);
        assert!((inter.effective_gbps() - 23.5).abs() < 1e-9);
    }

    #[test]
    fn port_indices_are_dense_and_unique() {
        let mut seen = [false; 6];
        for p in Port::ALL {
            assert!(!seen[p.index()]);
            seen[p.index()] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn port_display() {
        assert_eq!(Port::new(Dim::Local, true).to_string(), "local+");
        assert_eq!(Port::new(Dim::Horizontal, false).to_string(), "horizontal-");
    }

    #[test]
    fn transmit_serializes_and_adds_latency() {
        let freq = npu_frequency();
        let params = LinkParams::paper_default(LinkClass::InterPackage);
        let mut link = Link::new(LinkClass::InterPackage, params, freq);
        let g1 = link.transmit(SimTime::ZERO, 8 * 1024);
        let g2 = link.transmit(SimTime::ZERO, 8 * 1024);
        // Second message queues behind the first.
        assert!(g2.start >= g1.start);
        assert!(g2.end.cycles() >= 2 * (g1.end.cycles() / 2));
        // Arrival adds 500 cycles of propagation.
        assert_eq!(link.arrival(g1), g1.end + 500);
        assert_eq!(link.bytes_carried(), 16 * 1024);
    }

    #[test]
    fn intra_link_is_faster_than_inter() {
        let freq = npu_frequency();
        let mut intra = Link::new(
            LinkClass::IntraPackage,
            LinkParams::paper_default(LinkClass::IntraPackage),
            freq,
        );
        let mut inter = Link::new(
            LinkClass::InterPackage,
            LinkParams::paper_default(LinkClass::InterPackage),
            freq,
        );
        let gi = intra.transmit(SimTime::ZERO, 64 * 1024);
        let ge = inter.transmit(SimTime::ZERO, 64 * 1024);
        assert!(gi.end < ge.end, "200 GB/s must beat 25 GB/s");
    }

    #[test]
    fn utilization_reflects_busy_time() {
        let freq = npu_frequency();
        let mut link = Link::new(
            LinkClass::IntraPackage,
            LinkParams::paper_default(LinkClass::IntraPackage),
            freq,
        );
        let g = link.transmit(SimTime::ZERO, 1 << 20);
        let horizon = SimTime::from_cycles(g.end.cycles() * 2);
        let u = link.utilization(horizon);
        assert!(u > 0.4 && u <= 0.51, "utilization {u} should be ~0.5");
    }
}
