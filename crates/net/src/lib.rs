//! Accelerator-fabric (AF) network simulator.
//!
//! Models the point-to-point 3D-torus fabrics used by the paper's target
//! platforms (Section V): each package holds `L` NPUs on an intra-package
//! ring built from silicon-interposer links, and packages are joined by
//! vertical and horizontal inter-package rings (NVLink-class links). Every
//! NPU therefore owns six unidirectional egress ports: local ±, vertical ±,
//! and horizontal ±.
//!
//! Transfers are simulated at message granularity with per-link FIFO
//! serialization (bytes ÷ effective link bandwidth) plus a per-hop
//! propagation latency, reproducing the paper's Table V link parameters
//! (200 GB/s / 90 cycles intra-package, 25 GB/s / 500 cycles inter-package,
//! 94 % link efficiency). Multi-hop traffic follows XYZ routing: first the
//! local dimension, then vertical, then horizontal.
//!
//! # Example
//!
//! ```
//! use ace_net::{Network, NetworkParams, TorusShape};
//! use ace_simcore::SimTime;
//!
//! let shape = TorusShape::new(4, 2, 2).unwrap();
//! let mut net = Network::new(shape, NetworkParams::paper_default());
//! let route = net.shape().route(0.into(), 5.into());
//! assert!(!route.is_empty());
//! let arrival = net.send_route(SimTime::ZERO, 0.into(), &route, 8 * 1024);
//! assert!(arrival.cycles() > 0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod link;
mod network;
mod topology;

pub use link::{Link, LinkClass, LinkParams, Port};
pub use network::{HopOutcome, Network, NetworkParams};
pub use topology::{Coord, Dim, NodeId, Route, TorusShape};
