//! Accelerator-fabric (AF) network simulator.
//!
//! Models the fabrics of the paper's target platforms behind one
//! [`Topology`] abstraction. The paper's platform (Section V) is the
//! 3D torus: each package holds `L` NPUs on an intra-package ring built
//! from silicon-interposer links, and packages are joined by vertical and
//! horizontal inter-package rings (NVLink-class links), giving every NPU
//! six unidirectional egress ports. [`TopologySpec`] also describes
//! arbitrary-dimension tori (`4x8`), central crossbars (`switch:16`,
//! optionally `switch:16@100` with a 100 GB/s uplink), and hierarchical
//! scale-up/scale-out fabrics (`hier:4x8`).
//!
//! Transfers are simulated at message granularity with per-link FIFO
//! serialization (bytes ÷ effective link bandwidth) plus a per-hop
//! propagation latency, reproducing the paper's Table V link parameters
//! (200 GB/s / 90 cycles intra-package, 25 GB/s / 500 cycles inter-package,
//! 94 % link efficiency). Multi-hop torus traffic follows XYZ routing:
//! first the local dimension, then vertical, then horizontal; crossbar
//! traffic is one hop through the source uplink.
//!
//! # Example
//!
//! ```
//! use ace_net::{Network, NetworkParams, TorusShape};
//! use ace_simcore::SimTime;
//!
//! let shape = TorusShape::new(4, 2, 2).unwrap();
//! let mut net = Network::new(shape, NetworkParams::paper_default());
//! let route = net.topology().route(0.into(), 5.into());
//! assert!(!route.is_empty());
//! let arrival = net.send_route(SimTime::ZERO, 0.into(), &route, 8 * 1024);
//! assert!(arrival.cycles() > 0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod fault;
mod link;
mod network;
mod topo;
mod topology;

pub use fault::{ContentionSpec, FaultClause, FaultError, FaultPlan, FaultSpec, FaultTarget};
pub use link::{Link, LinkClass, LinkParams, Port};
pub use network::{HopOutcome, NetShard, NetTx, Network, NetworkParams};
pub use topo::{
    did_you_mean, unknown_spelling, DimInfo, Hierarchical, Spelling, SpellingError, Switch,
    Topology, TopologySpec, Torus, MAX_TORUS_DIMS,
};
pub use topology::{Coord, Dim, Hop, NodeId, Route, ShapeError, TorusShape};
