//! The assembled fabric: one [`Link`] per live node egress port, with
//! message-granularity transport and utilization accounting.

use ace_simcore::{BucketCursor, Frequency, Grant, RateMeter, SimTime, TimeSeries};

use crate::fault::FaultPlan;
use crate::link::{Link, LinkClass, LinkParams, Port};
use crate::topo::{Topology, TopologySpec};
use crate::topology::{NodeId, Route};

/// Fabric-wide configuration.
#[derive(Debug, Clone, Copy)]
pub struct NetworkParams {
    /// Intra-package link parameters.
    pub intra: LinkParams,
    /// Inter-package link parameters.
    pub inter: LinkParams,
    /// NPU clock used for GB/s → bytes/cycle conversion.
    pub freq: Frequency,
    /// Bucket width (cycles) for the utilization time series (Fig. 10 uses
    /// 1 K-cycle windows).
    pub util_bucket_cycles: u64,
}

impl NetworkParams {
    /// Table V parameters at the paper's 1245 MHz clock.
    pub fn paper_default() -> NetworkParams {
        NetworkParams {
            intra: LinkParams::paper_default(LinkClass::IntraPackage),
            inter: LinkParams::paper_default(LinkClass::InterPackage),
            freq: ace_simcore::npu_frequency(),
            util_bucket_cycles: 1000,
        }
    }

    /// Per-NPU aggregate egress bandwidth in GB/s, summed over the
    /// topology's live ports (Table V: 400 + 50 + 50 on the 3-dim torus).
    pub fn per_npu_total_gbps(&self, topo: &dyn Topology) -> f64 {
        (0..topo.ports_per_node())
            .filter_map(|idx| topo.link_params_for(Port::from_index(idx), self))
            .map(|p| p.bandwidth_gbps)
            .sum()
    }
}

/// The outcome of pushing a message across one hop.
#[derive(Debug, Clone, Copy)]
pub struct HopOutcome {
    /// Wire-occupancy grant on the egress link.
    pub grant: Grant,
    /// When the message is fully available at the downstream node.
    pub arrival: SimTime,
}

/// Message transmission on some view of the fabric — implemented by the
/// whole [`Network`] and by the per-partition [`NetShard`], so transport
/// logic can be generic over serial and domain-partitioned execution.
pub trait NetTx {
    /// Pushes `bytes` out of `node` through `port`; see
    /// [`Network::transmit`].
    fn transmit(&mut self, now: SimTime, node: NodeId, port: Port, bytes: u64) -> HopOutcome;
}

impl<T: NetTx + ?Sized> NetTx for &mut T {
    fn transmit(&mut self, now: SimTime, node: NodeId, port: Port, bytes: u64) -> HopOutcome {
        (**self).transmit(now, node, port, bytes)
    }
}

impl NetTx for Network {
    fn transmit(&mut self, now: SimTime, node: NodeId, port: Port, bytes: u64) -> HopOutcome {
        Network::transmit(self, now, node, port, bytes)
    }
}

/// A mutable view of one contiguous node range's egress links, with
/// partition-local throughput/utilization meters.
///
/// Domain-partitioned simulation hands each worker the shard covering its
/// nodes: every transmit issues from the sending node's own egress port,
/// so disjoint node ranges touch disjoint links and the borrow split is
/// safe. The local meters are folded back into the fabric-wide ones by
/// [`Network::merge_shard_meters`]; both meters merge exactly, so the
/// combined totals are byte-identical to a serial run's.
#[derive(Debug)]
pub struct NetShard<'a> {
    links: &'a mut [Option<Link>],
    cursors: &'a mut [BucketCursor],
    /// Global index of `links[0]` in the parent's link table.
    first_link: usize,
    ports_per_node: usize,
    meter: RateMeter,
    series: TimeSeries,
}

impl NetShard<'_> {
    /// Consumes the shard, returning its local meters for merging.
    pub fn into_meters(self) -> (RateMeter, TimeSeries) {
        (self.meter, self.series)
    }
}

impl NetTx for NetShard<'_> {
    fn transmit(&mut self, now: SimTime, node: NodeId, port: Port, bytes: u64) -> HopOutcome {
        let global = node.index() * self.ports_per_node + port.index();
        let idx = global
            .checked_sub(self.first_link)
            .filter(|i| *i < self.links.len())
            .unwrap_or_else(|| panic!("{node} {port} is outside this shard"));
        let link = self.links[idx]
            .as_mut()
            .unwrap_or_else(|| panic!("no {port} link at {node}"));
        let grant = link.transmit(now, bytes);
        let arrival = link.arrival(grant);
        self.meter.record(grant.end, bytes);
        self.series
            .add_busy_at(&mut self.cursors[idx], grant.start, grant.end);
        HopOutcome { grant, arrival }
    }
}

/// The accelerator-fabric network: every node's egress links plus
/// fabric-wide throughput/utilization meters. The link layout comes from
/// the [`Topology`]: `links[node * ports_per_node + port.index()]`, with
/// `None` for ports the topology leaves dead (e.g. size-1 torus
/// dimensions).
#[derive(Debug)]
pub struct Network {
    topo: Box<dyn Topology>,
    params: NetworkParams,
    nodes: usize,
    ports_per_node: usize,
    links: Vec<Option<Link>>,
    /// Per-link bucket cursor into `util_series`: each link's grants are
    /// monotone in time, so the series write is division-free in the
    /// common same-bucket case.
    util_cursors: Vec<BucketCursor>,
    meter: RateMeter,
    util_series: TimeSeries,
    active_links: usize,
}

impl Network {
    /// Builds the fabric for `spec` with `params`. Accepts anything
    /// convertible to a [`TopologySpec`] — in particular the legacy
    /// [`TorusShape`](crate::TorusShape).
    pub fn new(spec: impl Into<TopologySpec>, params: NetworkParams) -> Network {
        Network::for_topology(spec.into().build(), params)
    }

    /// Builds the fabric around an already-constructed topology.
    pub fn for_topology(topo: Box<dyn Topology>, params: NetworkParams) -> Network {
        let nodes = topo.nodes();
        let ports_per_node = topo.ports_per_node();
        let mut links = Vec::with_capacity(nodes * ports_per_node);
        for _node in 0..nodes {
            for idx in 0..ports_per_node {
                links.push(
                    topo.link_params_for(Port::from_index(idx), &params)
                        .map(|p| {
                            let class = topo
                                .port_class(Port::from_index(idx))
                                .expect("params imply a class");
                            Link::new(class, p, params.freq)
                        }),
                );
            }
        }
        let active_links = links.iter().filter(|l| l.is_some()).count();
        Network {
            topo,
            params,
            nodes,
            ports_per_node,
            util_cursors: vec![BucketCursor::default(); links.len()],
            links,
            meter: RateMeter::new(),
            util_series: TimeSeries::new(params.util_bucket_cycles),
            active_links,
        }
    }

    /// The fabric's topology.
    pub fn topology(&self) -> &dyn Topology {
        self.topo.as_ref()
    }

    /// The topology's identity.
    pub fn spec(&self) -> TopologySpec {
        self.topo.spec()
    }

    /// Number of NPUs in the fabric.
    pub fn nodes(&self) -> usize {
        self.nodes
    }

    /// The fabric's configuration.
    pub fn params(&self) -> &NetworkParams {
        &self.params
    }

    /// Number of live unidirectional links.
    pub fn active_links(&self) -> usize {
        self.active_links
    }

    fn link_index(&self, node: NodeId, port: Port) -> usize {
        node.index() * self.ports_per_node + port.index()
    }

    /// Immutable access to the link at `node`/`port`, if the topology
    /// wires one there.
    pub fn link(&self, node: NodeId, port: Port) -> Option<&Link> {
        self.links[self.link_index(node, port)].as_ref()
    }

    /// Pushes `bytes` out of `node` through `port`. Returns the wire grant
    /// and downstream arrival time.
    ///
    /// # Panics
    ///
    /// Panics if the topology has no link at that port.
    pub fn transmit(&mut self, now: SimTime, node: NodeId, port: Port, bytes: u64) -> HopOutcome {
        let idx = self.link_index(node, port);
        let link = self.links[idx]
            .as_mut()
            .unwrap_or_else(|| panic!("no {port} link at {node}"));
        let grant = link.transmit(now, bytes);
        let arrival = link.arrival(grant);
        self.meter.record(grant.end, bytes);
        self.util_series
            .add_busy_at(&mut self.util_cursors[idx], grant.start, grant.end);
        HopOutcome { grant, arrival }
    }

    /// Earliest time the egress wire at `node`/`port` frees up.
    ///
    /// # Panics
    ///
    /// Panics if the topology has no link at that port.
    pub fn next_free(&self, now: SimTime, node: NodeId, port: Port) -> SimTime {
        self.links[self.link_index(node, port)]
            .as_ref()
            .expect("link exists")
            .next_free(now)
    }

    /// Sends a message along a multi-hop route with store-and-forward at
    /// each hop, returning the final arrival time. Single-hop routes (ring
    /// collectives) degenerate to one [`transmit`](Network::transmit).
    ///
    /// This helper does not model intermediate-endpoint memory bounce; the
    /// baseline engine layers that on top by walking the route itself.
    pub fn send_route(&mut self, now: SimTime, src: NodeId, route: &Route, bytes: u64) -> SimTime {
        let mut t = now;
        let mut cur = src;
        for hop in route {
            debug_assert_eq!(hop.from, cur);
            let out = self.transmit(t, hop.from, hop.port, bytes);
            t = out.arrival;
            cur = hop.to;
        }
        t
    }

    /// Total bytes injected into the fabric.
    pub fn total_bytes(&self) -> u64 {
        self.meter.bytes()
    }

    /// Achieved fabric throughput in GB/s over the observation window,
    /// summed across all links.
    pub fn achieved_gbps(&self) -> f64 {
        self.params.freq.gbps(self.meter.rate())
    }

    /// Achieved *per-NPU* network bandwidth in GB/s — the metric on the
    /// y-axis of Fig. 5 and Fig. 6.
    pub fn achieved_gbps_per_npu(&self) -> f64 {
        self.achieved_gbps() / self.nodes as f64
    }

    /// End of the throughput observation window.
    pub fn window_end(&self) -> SimTime {
        self.meter.window_end()
    }

    /// Total busy cycles credited to the per-link [`BucketCursor`]
    /// meters: the sum over every transmit grant of its integer
    /// `end - start` wire occupancy, with no overlap merging. This is
    /// the fabric-side ground truth the trace layer reconciles against —
    /// a recording tracer that captures every transmit grant must sum to
    /// exactly this value.
    pub fn util_busy_total_cycles(&self) -> f64 {
        self.util_series.total()
    }

    /// Per-bucket fraction of links busy (Fig. 10's network-utilization
    /// metric: the share of links scheduling a flit in a cycle).
    pub fn utilization_series(&self) -> Vec<f64> {
        let denom = self.active_links as f64 * self.params.util_bucket_cycles as f64;
        self.util_series
            .bucket_totals()
            .iter()
            .map(|busy| (busy / denom).min(1.0))
            .collect()
    }

    /// Splits the fabric into per-partition [`NetShard`]s, one per
    /// `(first_node, end_node)` range. The ranges must be contiguous,
    /// ascending, and cover every node exactly once.
    ///
    /// # Panics
    ///
    /// Panics if the ranges do not tile `0..nodes`.
    pub fn shards(&mut self, ranges: &[(usize, usize)]) -> Vec<NetShard<'_>> {
        let mut out = Vec::with_capacity(ranges.len());
        let mut links = &mut self.links[..];
        let mut cursors = &mut self.util_cursors[..];
        let mut covered = 0usize;
        for &(lo, hi) in ranges {
            assert!(lo == covered && hi > lo, "ranges must tile the nodes");
            covered = hi;
            let n = (hi - lo) * self.ports_per_node;
            let (l, lrest) = std::mem::take(&mut links).split_at_mut(n);
            links = lrest;
            let (c, crest) = std::mem::take(&mut cursors).split_at_mut(n);
            cursors = crest;
            out.push(NetShard {
                links: l,
                cursors: c,
                first_link: lo * self.ports_per_node,
                ports_per_node: self.ports_per_node,
                meter: RateMeter::new(),
                series: TimeSeries::new(self.params.util_bucket_cycles),
            });
        }
        assert_eq!(covered, self.nodes, "ranges must cover every node");
        out
    }

    /// Folds a shard's local meters back into the fabric-wide ones.
    pub fn merge_shard_meters(&mut self, meter: &RateMeter, series: &TimeSeries) {
        self.meter.merge(meter);
        self.util_series.merge(series);
    }

    /// Applies a resolved [`FaultPlan`]: killed egress links become
    /// `None` (so any traffic still routed through them panics — a bug,
    /// since routes are re-planned around kills), and degraded links are
    /// rebuilt with their surviving bandwidth. Call once, right after
    /// construction, before any traffic.
    pub fn apply_fault_plan(&mut self, plan: &FaultPlan) {
        for node in 0..self.nodes {
            for p in 0..self.ports_per_node {
                let port = Port::from_index(p);
                let idx = self.link_index(NodeId(node), port);
                let Some(link) = self.links[idx].as_ref() else {
                    continue;
                };
                if plan.is_killed(NodeId(node), port) {
                    self.links[idx] = None;
                    self.active_links -= 1;
                    continue;
                }
                let scale = plan.link_scale(NodeId(node), port);
                if scale < 1.0 {
                    let mut params = *link.params();
                    params.bandwidth_gbps *= scale;
                    self.links[idx] = Some(Link::new(link.class(), params, self.params.freq));
                }
            }
        }
    }

    /// Mean link utilization over `[0, horizon]`.
    pub fn mean_utilization(&self, horizon: SimTime) -> f64 {
        if horizon.cycles() == 0 {
            return 0.0;
        }
        let busy: f64 = self.links.iter().flatten().map(|l| l.busy_cycles()).sum();
        (busy / (self.active_links as f64 * horizon.cycles() as f64)).min(1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topology::{Dim, TorusShape};

    fn small_net() -> Network {
        Network::new(
            TorusShape::new(4, 2, 2).unwrap(),
            NetworkParams::paper_default(),
        )
    }

    #[test]
    fn per_npu_bandwidth_matches_table_v() {
        let net = small_net();
        // 2 × 200 intra + 2 × 25 vertical + 2 × 25 horizontal = 500 GB/s.
        assert!((net.params().per_npu_total_gbps(net.topology()) - 500.0).abs() < 1e-9);
    }

    #[test]
    fn active_links_match_topology() {
        let net = small_net();
        assert_eq!(net.active_links(), net.topology().total_links());
        assert_eq!(
            net.active_links(),
            TorusShape::new(4, 2, 2).unwrap().total_links()
        );
    }

    #[test]
    fn transmit_records_throughput() {
        let mut net = small_net();
        let out = net.transmit(SimTime::ZERO, NodeId(0), Port::new(Dim::Local, true), 4096);
        assert!(out.arrival > out.grant.end);
        assert_eq!(net.total_bytes(), 4096);
        assert!(net.achieved_gbps() > 0.0);
    }

    #[test]
    fn multi_hop_route_arrives_later_than_single_hop() {
        let mut a = small_net();
        let mut b = small_net();
        let one_hop = a.topology().route(NodeId(0), NodeId(1));
        let long = a.topology().route(NodeId(0), NodeId(15));
        assert!(long.len() > one_hop.len());
        let t1 = a.send_route(SimTime::ZERO, NodeId(0), &one_hop, 8192);
        let t2 = b.send_route(SimTime::ZERO, NodeId(0), &long, 8192);
        assert!(t2 > t1);
    }

    #[test]
    fn contention_on_same_link_serializes() {
        let mut net = small_net();
        let p = Port::new(Dim::Vertical, true);
        let first = net.transmit(SimTime::ZERO, NodeId(0), p, 64 * 1024);
        let second = net.transmit(SimTime::ZERO, NodeId(0), p, 64 * 1024);
        assert!(second.grant.start.cycles() + 1 >= first.grant.end.cycles());
        // Different node's link does not contend.
        let other = net.transmit(SimTime::ZERO, NodeId(1), p, 64 * 1024);
        assert_eq!(other.grant.start, SimTime::ZERO);
    }

    #[test]
    fn utilization_series_bounded_by_one() {
        let mut net = small_net();
        for node in 0..16 {
            for port in Port::ALL {
                net.transmit(SimTime::ZERO, NodeId(node), port, 1 << 20);
            }
        }
        for u in net.utilization_series() {
            assert!((0.0..=1.0).contains(&u));
        }
        assert!(net.mean_utilization(net.window_end()) > 0.0);
    }

    #[test]
    fn util_busy_total_matches_grant_sum() {
        // The bucket-meter total is exactly the sum of the integer wire
        // grants — the identity the trace conservation tests lean on.
        let mut net = small_net();
        let mut grant_sum = 0u64;
        for node in 0..16 {
            for port in Port::ALL {
                for bytes in [4096u64, 64 * 1024, 1 << 20] {
                    let out = net.transmit(SimTime::ZERO, NodeId(node), port, bytes);
                    grant_sum += out.grant.service();
                }
            }
        }
        assert_eq!(net.util_busy_total_cycles(), grant_sum as f64);
    }

    #[test]
    fn sharded_transmits_merge_to_serial_meters() {
        // Drive the same traffic through a whole network and through two
        // node-range shards of an identical network; after merging the
        // shard meters, every fabric-wide metric must match exactly.
        let traffic: Vec<(u64, usize, Port, u64)> = (0..16)
            .flat_map(|node| {
                Port::ALL
                    .into_iter()
                    .map(move |p| (node * 13, node as usize, p, 4096 + node * 512))
            })
            .collect();
        let mut serial = small_net();
        for &(t, node, port, bytes) in &traffic {
            serial.transmit(SimTime::from_cycles(t), NodeId(node), port, bytes);
        }
        let mut sharded = small_net();
        let mut shards = sharded.shards(&[(0, 5), (5, 16)]);
        for &(t, node, port, bytes) in &traffic {
            let s = if node < 5 { 0 } else { 1 };
            NetTx::transmit(
                &mut shards[s],
                SimTime::from_cycles(t),
                NodeId(node),
                port,
                bytes,
            );
        }
        let meters: Vec<_> = shards.into_iter().map(NetShard::into_meters).collect();
        for (m, s) in &meters {
            sharded.merge_shard_meters(m, s);
        }
        assert_eq!(sharded.total_bytes(), serial.total_bytes());
        assert_eq!(sharded.window_end(), serial.window_end());
        assert_eq!(
            sharded.util_busy_total_cycles(),
            serial.util_busy_total_cycles()
        );
        assert_eq!(sharded.utilization_series(), serial.utilization_series());
        assert_eq!(sharded.achieved_gbps(), serial.achieved_gbps());
    }

    #[test]
    #[should_panic(expected = "outside this shard")]
    fn shard_rejects_foreign_nodes() {
        let mut net = small_net();
        let mut shards = net.shards(&[(0, 8), (8, 16)]);
        NetTx::transmit(
            &mut shards[0],
            SimTime::ZERO,
            NodeId(12),
            Port::from_index(0),
            64,
        );
    }

    #[test]
    fn empty_route_arrives_instantly() {
        let mut net = small_net();
        let t = net.send_route(SimTime::from_cycles(7), NodeId(3), &Vec::new(), 4096);
        assert_eq!(t, SimTime::from_cycles(7));
        assert_eq!(net.total_bytes(), 0);
    }

    #[test]
    fn zero_horizon_utilization_is_zero() {
        let net = small_net();
        assert_eq!(net.mean_utilization(SimTime::ZERO), 0.0);
    }

    #[test]
    #[should_panic(expected = "no ")]
    fn missing_dimension_link_panics() {
        let mut net = Network::new(
            TorusShape::new(4, 1, 1).unwrap(),
            NetworkParams::paper_default(),
        );
        net.transmit(SimTime::ZERO, NodeId(0), Port::new(Dim::Vertical, true), 64);
    }

    #[test]
    fn switch_network_has_one_uplink_per_node() {
        let spec: TopologySpec = "switch:8@100".parse().unwrap();
        let mut net = Network::new(spec, NetworkParams::paper_default());
        assert_eq!(net.active_links(), 8);
        // The uplink runs at the overridden 100 GB/s.
        let link = net.link(NodeId(0), Port::from_index(0)).unwrap();
        assert_eq!(link.params().bandwidth_gbps, 100.0);
        // Any pair is one crossbar hop apart.
        let route = net.topology().route(NodeId(2), NodeId(7));
        let t = net.send_route(SimTime::ZERO, NodeId(2), &route, 4096);
        assert!(t.cycles() > 0);
        assert_eq!(net.total_bytes(), 4096);
    }

    #[test]
    fn fault_plan_kills_and_degrades_links() {
        use crate::fault::{ContentionSpec, FaultPlan};
        let spec: TopologySpec = "4x4".parse().unwrap();
        let topo = spec.build();
        let plan = FaultPlan::resolve(
            topo.as_ref(),
            &NetworkParams::paper_default(),
            &"kill:link:0-1+degrade:50:link:2-3".parse().unwrap(),
            &ContentionSpec::None,
        )
        .unwrap();
        let mut net = Network::new(spec, NetworkParams::paper_default());
        let before = net.active_links();
        net.apply_fault_plan(&plan);
        // One cable = two directed links gone.
        assert_eq!(net.active_links(), before - 2);
        assert!(net.link(NodeId(0), Port::from_index(0)).is_none());
        assert!(net.link(NodeId(1), Port::from_index(1)).is_none());
        // The degraded cable keeps its links at half bandwidth.
        let l = net.link(NodeId(2), Port::from_index(0)).unwrap();
        assert!((l.params().bandwidth_gbps - 100.0).abs() < 1e-9);
        // Untouched links stay pristine.
        let l = net.link(NodeId(5), Port::from_index(0)).unwrap();
        assert_eq!(l.params().bandwidth_gbps, 200.0);
    }

    #[test]
    #[should_panic(expected = "no ")]
    fn transmit_on_killed_link_panics() {
        use crate::fault::{ContentionSpec, FaultPlan};
        let spec: TopologySpec = "4x4".parse().unwrap();
        let topo = spec.build();
        let plan = FaultPlan::resolve(
            topo.as_ref(),
            &NetworkParams::paper_default(),
            &"kill:link:0-1".parse().unwrap(),
            &ContentionSpec::None,
        )
        .unwrap();
        let mut net = Network::new(spec, NetworkParams::paper_default());
        net.apply_fault_plan(&plan);
        net.transmit(SimTime::ZERO, NodeId(0), Port::from_index(0), 64);
    }

    #[test]
    fn hierarchical_network_wires_crossbar_and_ring() {
        let spec: TopologySpec = "hier:4x4".parse().unwrap();
        let net = Network::new(spec, NetworkParams::paper_default());
        // 16 uplinks + 2 ring ports per node.
        assert_eq!(net.active_links(), 16 + 32);
        assert_eq!(
            net.link(NodeId(0), Port::from_index(0)).unwrap().class(),
            LinkClass::IntraPackage
        );
        assert_eq!(
            net.link(NodeId(0), Port::from_index(1)).unwrap().class(),
            LinkClass::InterPackage
        );
    }
}
