//! The topology abstraction: pluggable fabric shapes behind one trait.
//!
//! [`TopologySpec`] is the *identity* of a fabric — a small, copyable,
//! hashable value that parses from and prints to the sweep-scenario
//! spelling (`4x2x2`, `4x8`, `switch:16`, `hier:4x8`). [`Topology`] is the
//! *behavior*: node/dimension structure, ring membership, neighbor and
//! route lookup, and link enumeration. Three implementations ship:
//!
//! * [`Torus`] — an arbitrary-dimension torus. Dimension 0 is the
//!   intra-package (silicon-interposer) ring, every further dimension an
//!   inter-package (NVLink-class) ring. The 3-dimension case is exactly
//!   the paper's `LxVxH` [`TorusShape`](crate::TorusShape) platform.
//! * [`Switch`] — all nodes hang off a central crossbar through one
//!   uplink each (radix = node count, uplink bandwidth configurable via
//!   `switch:N@GBPS`). Power-of-two sizes plan all-reduce as hypercube
//!   halving-doubling; other sizes embed a ring in the crossbar.
//! * [`Hierarchical`] — a scale-up crossbar domain (intra-package links,
//!   NVSwitch-style) joined by a scale-out inter-package ring:
//!   `hier:UxO` = `U` NPUs per domain × `O` domains.
//!
//! Collective planning consumes [`Topology::dims`] plus
//! [`Topology::sandwich_dims`]: the leading `sandwich_dims()` entries are
//! planned as a reduce-scatter … all-gather sandwich around ring
//! all-reduces over the remaining dimensions, which reproduces the
//! paper's 4-phase torus hierarchy and degenerates to halving-doubling on
//! a power-of-two switch.

use std::fmt;

use crate::link::{LinkClass, LinkParams, Port};
use crate::network::NetworkParams;
use crate::topology::{Hop, NodeId, Route, ShapeError, TorusShape};

/// Maximum number of torus dimensions a [`TopologySpec`] can carry (keeps
/// the spec `Copy` for cheap cache keys).
pub const MAX_TORUS_DIMS: usize = 6;

/// The identity of a fabric: enough to rebuild the [`Topology`], cheap to
/// copy, hash and compare — the sweep layer keys caches on it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TopologySpec {
    /// An `N`-dimensional torus; `dims[..ndims]` are the ring lengths.
    Torus {
        /// Ring lengths, `dims[..ndims]` significant.
        dims: [u16; MAX_TORUS_DIMS],
        /// Number of significant dimensions.
        ndims: u8,
    },
    /// A central crossbar with one uplink per node.
    Switch {
        /// Number of endpoints (the crossbar radix).
        nodes: u32,
        /// Optional uplink bandwidth override in GB/s (defaults to the
        /// inter-package link bandwidth).
        gbps: Option<u32>,
    },
    /// A scale-up crossbar domain × a scale-out ring.
    Hierarchical {
        /// NPUs per scale-up domain.
        scale_up: u16,
        /// Number of domains on the scale-out ring.
        scale_out: u16,
    },
}

impl TopologySpec {
    /// A torus from a dimension list.
    pub fn torus(lens: &[usize]) -> Result<TopologySpec, ShapeError> {
        if lens.is_empty() || lens.len() > MAX_TORUS_DIMS {
            return Err(ShapeError::BadDimensionCount(lens.len()));
        }
        let mut dims = [0u16; MAX_TORUS_DIMS];
        let mut nodes = 1usize;
        for (i, &l) in lens.iter().enumerate() {
            if l == 0 {
                return Err(ShapeError::ZeroDimension);
            }
            if l > u16::MAX as usize {
                return Err(ShapeError::DimensionTooLarge(l));
            }
            dims[i] = l as u16;
            // Checked product: an overflowing node count must be rejected
            // here, not wrap later in `nodes()` / `Torus::new`.
            nodes = nodes.checked_mul(l).ok_or(ShapeError::TooManyNodes)?;
        }
        if nodes < 2 {
            return Err(ShapeError::TooSmall);
        }
        Ok(TopologySpec::Torus {
            dims,
            ndims: lens.len() as u8,
        })
    }

    /// The paper's 3-dimensional `LxVxH` torus.
    pub fn torus3(l: usize, v: usize, h: usize) -> Result<TopologySpec, ShapeError> {
        TopologySpec::torus(&[l, v, h])
    }

    /// A crossbar switch over `nodes` endpoints.
    pub fn switch(nodes: usize) -> Result<TopologySpec, ShapeError> {
        if nodes < 2 {
            return Err(ShapeError::TooSmall);
        }
        if nodes > u32::MAX as usize {
            return Err(ShapeError::DimensionTooLarge(nodes));
        }
        Ok(TopologySpec::Switch {
            nodes: nodes as u32,
            gbps: None,
        })
    }

    /// A crossbar switch with an uplink-bandwidth override in GB/s.
    pub fn switch_with_gbps(nodes: usize, gbps: u32) -> Result<TopologySpec, ShapeError> {
        let mut s = TopologySpec::switch(nodes)?;
        if gbps == 0 {
            return Err(ShapeError::ZeroDimension);
        }
        if let TopologySpec::Switch { gbps: g, .. } = &mut s {
            *g = Some(gbps);
        }
        Ok(s)
    }

    /// A hierarchical fabric: `scale_up` NPUs per crossbar domain,
    /// `scale_out` domains on a ring.
    pub fn hierarchical(scale_up: usize, scale_out: usize) -> Result<TopologySpec, ShapeError> {
        if scale_up == 0 || scale_out == 0 {
            return Err(ShapeError::ZeroDimension);
        }
        if scale_up > u16::MAX as usize || scale_out > u16::MAX as usize {
            return Err(ShapeError::DimensionTooLarge(scale_up.max(scale_out)));
        }
        if scale_up * scale_out < 2 {
            return Err(ShapeError::TooSmall);
        }
        Ok(TopologySpec::Hierarchical {
            scale_up: scale_up as u16,
            scale_out: scale_out as u16,
        })
    }

    /// Total number of NPUs.
    pub fn nodes(&self) -> usize {
        match *self {
            TopologySpec::Torus { dims, ndims } => {
                dims[..ndims as usize].iter().map(|&d| d as usize).product()
            }
            TopologySpec::Switch { nodes, .. } => nodes as usize,
            TopologySpec::Hierarchical {
                scale_up,
                scale_out,
            } => scale_up as usize * scale_out as usize,
        }
    }

    /// The torus dimension lengths, when this spec is a torus.
    pub fn torus_dims(&self) -> Option<Vec<usize>> {
        match *self {
            TopologySpec::Torus { dims, ndims } => {
                Some(dims[..ndims as usize].iter().map(|&d| d as usize).collect())
            }
            _ => None,
        }
    }

    /// Human name of planning dimension `dim` (used by plan displays):
    /// `local`/`vertical`/`horizontal` on a 3-dim torus, `d2` on other
    /// tori, `x0` (exchange bit) on a switch, `up`/`out` on a
    /// hierarchical fabric.
    pub fn dim_name(&self, dim: usize) -> String {
        match *self {
            TopologySpec::Torus { ndims: 3, .. } => match dim {
                0 => "local".into(),
                1 => "vertical".into(),
                2 => "horizontal".into(),
                other => format!("d{other}"),
            },
            TopologySpec::Torus { .. } => format!("d{dim}"),
            TopologySpec::Switch { nodes, .. } => {
                if (nodes as usize).is_power_of_two() {
                    format!("x{dim}")
                } else {
                    "ring".into()
                }
            }
            TopologySpec::Hierarchical { scale_up, .. } => {
                let up_dims = scale_up_dim_count(scale_up as usize);
                if dim < up_dims {
                    if up_dims > 1 {
                        format!("up{dim}")
                    } else {
                        "up".into()
                    }
                } else {
                    "out".into()
                }
            }
        }
    }

    /// Builds the runtime [`Topology`] for this spec.
    pub fn build(&self) -> Box<dyn Topology> {
        match *self {
            TopologySpec::Torus { .. } => Box::new(Torus::new(*self)),
            TopologySpec::Switch { .. } => Box::new(Switch::new(*self)),
            TopologySpec::Hierarchical { .. } => Box::new(Hierarchical::new(*self)),
        }
    }

    /// Valid spellings, for error messages and docs.
    pub fn spellings() -> &'static str {
        "a torus 'LxV[xH[...]]' (e.g. 4x2x2, 4x8), 'switch:N' or 'switch:N@GBPS' \
         (e.g. switch:16, switch:16@100), or 'hier:UxO' (e.g. hier:4x8)"
    }
}

impl From<TorusShape> for TopologySpec {
    fn from(s: TorusShape) -> TopologySpec {
        TopologySpec::torus3(s.local(), s.vertical(), s.horizontal())
            .expect("a valid TorusShape is a valid topology")
    }
}

impl fmt::Display for TopologySpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            TopologySpec::Torus { dims, ndims } => {
                for (i, d) in dims[..ndims as usize].iter().enumerate() {
                    if i > 0 {
                        f.write_str("x")?;
                    }
                    write!(f, "{d}")?;
                }
                Ok(())
            }
            TopologySpec::Switch { nodes, gbps: None } => write!(f, "switch:{nodes}"),
            TopologySpec::Switch {
                nodes,
                gbps: Some(g),
            } => write!(f, "switch:{nodes}@{g}"),
            TopologySpec::Hierarchical {
                scale_up,
                scale_out,
            } => write!(f, "hier:{scale_up}x{scale_out}"),
        }
    }
}

/// A `; did you mean '...'?` suffix for near-miss spellings — hoisted to
/// the shared `ace-toml` spec toolkit (workload and scenario parsers use
/// it too); re-exported here for the topology/system-config parsers.
pub use ace_toml::{did_you_mean, unknown_spelling, Spelling, SpellingError};

impl Spelling for TopologySpec {
    const WHAT: &'static str = "topology";

    fn keywords() -> &'static [&'static str] {
        &["switch", "hier", "torus"]
    }

    fn spellings() -> &'static str {
        TopologySpec::spellings()
    }

    fn parse_spelling(s: &str) -> Result<Self, SpellingError> {
        let s = s.trim();
        if let Some((kw, rest)) = s.split_once(':') {
            let kw_l = kw.trim().to_ascii_lowercase();
            return match kw_l.as_str() {
                "switch" => {
                    let (n, gbps) = match rest.split_once('@') {
                        Some((n, g)) => (n, Some(g)),
                        None => (rest, None),
                    };
                    let nodes: usize = n.trim().parse().map_err(|_| {
                        SpellingError::invalid(format!(
                            "switch topology '{s}': bad node count '{n}'"
                        ))
                    })?;
                    let spec = match gbps {
                        None => TopologySpec::switch(nodes),
                        Some(g) => {
                            let g: u32 = g.trim().parse().map_err(|_| {
                                SpellingError::invalid(format!(
                                    "switch topology '{s}': bad bandwidth '{g}'"
                                ))
                            })?;
                            TopologySpec::switch_with_gbps(nodes, g)
                        }
                    };
                    spec.map_err(|e| SpellingError::invalid(format!("switch topology '{s}': {e}")))
                }
                "hier" | "hierarchical" => {
                    let (u, o) = rest.split_once(['x', 'X']).ok_or_else(|| {
                        SpellingError::invalid(format!(
                            "hierarchical topology '{s}' must be hier:UxO"
                        ))
                    })?;
                    let parse = |d: &str| {
                        d.trim().parse::<usize>().map_err(|_| {
                            SpellingError::invalid(format!(
                                "hierarchical topology '{s}': bad size '{d}'"
                            ))
                        })
                    };
                    TopologySpec::hierarchical(parse(u)?, parse(o)?).map_err(|e| {
                        SpellingError::invalid(format!("hierarchical topology '{s}': {e}"))
                    })
                }
                "torus" => TopologySpec::parse_spelling(rest).and_then(|t| match t {
                    TopologySpec::Torus { .. } => Ok(t),
                    _ => Err(SpellingError::Unknown),
                }),
                _ => Err(SpellingError::Unknown),
            };
        }
        // No keyword: a bare torus dimension list.
        let parts: Vec<&str> = s.split(['x', 'X']).collect();
        let mut lens = Vec::with_capacity(parts.len());
        for d in &parts {
            match d.trim().parse::<usize>() {
                Ok(l) => lens.push(l),
                Err(_) => return Err(SpellingError::Unknown),
            }
        }
        TopologySpec::torus(&lens)
            .map_err(|e| SpellingError::invalid(format!("torus topology '{s}': {e}")))
    }
}

impl std::str::FromStr for TopologySpec {
    type Err = String;

    /// Parses the sweep-scenario spelling via the shared
    /// [`Spelling`] trait: errors carry the full list of valid
    /// spellings plus a did-you-mean hint for near-miss keywords.
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        TopologySpec::from_spelling(s)
    }
}

/// One planning dimension of a topology: a ring (or pairwise-exchange
/// group) collectives can phase over.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DimInfo {
    /// Ring length (number of participants).
    pub len: usize,
    /// Link technology this dimension's traffic rides on.
    pub class: LinkClass,
    /// Egress port for the positive ring direction.
    pub port_plus: Port,
    /// Egress port for the negative ring direction (may equal
    /// `port_plus` on crossbar-backed dimensions).
    pub port_minus: Port,
}

/// Fabric structure behind the network and the collective planner.
///
/// Implementations precompute their dimension table; all per-node queries
/// are O(dims) or better. The executor copies neighbor/route information
/// into flat tables at construction, so trait dispatch never sits on the
/// event hot path.
pub trait Topology: Send + Sync + fmt::Debug {
    /// The identity of this topology.
    fn spec(&self) -> TopologySpec;

    /// Total number of NPUs.
    fn nodes(&self) -> usize;

    /// Planning dimensions in phase order. Dimensions of length 1 are
    /// kept (with dead ports) so port numbering is stable; planners skip
    /// them.
    fn dims(&self) -> &[DimInfo];

    /// How many leading [`dims`](Topology::dims) entries the all-reduce
    /// planner wraps in a reduce-scatter … all-gather sandwich; the
    /// remaining dimensions run ring all-reduces.
    fn sandwich_dims(&self) -> usize;

    /// Size of the per-node egress port table.
    fn ports_per_node(&self) -> usize;

    /// Link class of egress port `port`, or `None` when the port has no
    /// physical link (e.g. a size-1 torus dimension).
    fn port_class(&self, port: Port) -> Option<LinkClass>;

    /// Physical parameters of the link behind `port`, given fabric-wide
    /// `params`. The default resolves [`port_class`](Topology::port_class)
    /// against the intra/inter parameter sets; topologies with custom
    /// link speeds (e.g. `switch:N@GBPS`) override.
    fn link_params_for(&self, port: Port, params: &NetworkParams) -> Option<LinkParams> {
        self.port_class(port).map(|class| match class {
            LinkClass::IntraPackage => params.intra,
            LinkClass::InterPackage => params.inter,
        })
    }

    /// The neighbor of `node` one step along dimension `dim` in the
    /// positive (`plus = true`) or negative direction.
    fn neighbor(&self, node: NodeId, dim: usize, plus: bool) -> NodeId;

    /// The single node reachable through `node`'s egress `port`, or
    /// `None` when the port has no link or the link fans out to more than
    /// one destination (a crossbar uplink). Conservative-lookahead
    /// partitioning uses this: a `None` port must be assumed to cross
    /// partitions. The default claims fan-out everywhere; point-to-point
    /// topologies override with the exact peer.
    fn link_peer(&self, node: NodeId, port: Port) -> Option<NodeId> {
        let _ = (node, port);
        None
    }

    /// Every node reachable through `node`'s egress `port` when the port
    /// is a fan-out (crossbar) uplink, in ascending id order. Empty for
    /// point-to-point ports (use [`link_peer`](Topology::link_peer)) and
    /// dead ports. Fault resolution walks this adjacency to re-route
    /// around killed links and to prove the surviving fabric connected.
    fn fanout_peers(&self, node: NodeId, port: Port) -> Vec<NodeId> {
        let _ = (node, port);
        Vec::new()
    }

    /// The members of the ring through `node` along `dim`, starting at
    /// `node` and following the positive direction.
    fn ring_members(&self, node: NodeId, dim: usize) -> Vec<NodeId> {
        let n = self.dims()[dim].len;
        let mut members = Vec::with_capacity(n);
        let mut cur = node;
        for _ in 0..n {
            members.push(cur);
            cur = self.neighbor(cur, dim, true);
        }
        members
    }

    /// A route from `src` to `dst` (empty when equal).
    fn route(&self, src: NodeId, dst: NodeId) -> Route;

    /// Total number of unidirectional links in the fabric.
    fn total_links(&self) -> usize {
        let mut total = 0;
        for port in 0..self.ports_per_node() {
            if self.port_class(Port::from_index(port)).is_some() {
                total += self.nodes();
            }
        }
        total
    }

    /// Per-node `(intra, inter)` egress-port counts used by the
    /// SRAM-partition weight heuristic for global (all-to-all) phases.
    /// The torus reports its full port complement regardless of
    /// dimension sizes, matching the paper's fixed 2-intra/4-inter
    /// weighting.
    fn global_port_profile(&self) -> (u8, u8);
}

// ---------------------------------------------------------------------
// Torus
// ---------------------------------------------------------------------

/// An arbitrary-dimension torus (dimension 0 intra-package, the rest
/// inter-package), generalizing the paper's `LxVxH` platform.
#[derive(Debug, Clone)]
pub struct Torus {
    spec: TopologySpec,
    lens: Vec<usize>,
    strides: Vec<usize>,
    dims: Vec<DimInfo>,
    nodes: usize,
}

impl Torus {
    /// Builds the torus for `spec`.
    ///
    /// # Panics
    ///
    /// Panics if `spec` is not a torus.
    pub fn new(spec: TopologySpec) -> Torus {
        let lens = spec.torus_dims().expect("Torus::new needs a torus spec");
        let mut strides = Vec::with_capacity(lens.len());
        let mut stride = 1usize;
        for &l in &lens {
            strides.push(stride);
            stride *= l;
        }
        let dims = lens
            .iter()
            .enumerate()
            .map(|(d, &len)| DimInfo {
                len,
                class: if d == 0 {
                    LinkClass::IntraPackage
                } else {
                    LinkClass::InterPackage
                },
                port_plus: Port::from_index(d * 2),
                port_minus: Port::from_index(d * 2 + 1),
            })
            .collect();
        Torus {
            spec,
            nodes: stride,
            lens,
            strides,
            dims,
        }
    }

    /// The coordinate of `node` along dimension `dim`.
    fn coord(&self, node: NodeId, dim: usize) -> usize {
        node.0 / self.strides[dim] % self.lens[dim]
    }

    fn with_coord(&self, node: NodeId, dim: usize, c: usize) -> NodeId {
        let old = self.coord(node, dim);
        NodeId(node.0 - old * self.strides[dim] + c * self.strides[dim])
    }
}

impl Topology for Torus {
    fn spec(&self) -> TopologySpec {
        self.spec
    }

    fn nodes(&self) -> usize {
        self.nodes
    }

    fn dims(&self) -> &[DimInfo] {
        &self.dims
    }

    fn sandwich_dims(&self) -> usize {
        // Dimension 0 (intra-package) takes the reduce-scatter /
        // all-gather sandwich; inter-package dimensions run ring
        // all-reduces on the shrunken shards (Section V).
        1
    }

    fn ports_per_node(&self) -> usize {
        self.lens.len() * 2
    }

    fn port_class(&self, port: Port) -> Option<LinkClass> {
        let dim = port.index() / 2;
        (dim < self.lens.len() && self.lens[dim] > 1).then(|| self.dims[dim].class)
    }

    fn neighbor(&self, node: NodeId, dim: usize, plus: bool) -> NodeId {
        let n = self.lens[dim];
        let c = self.coord(node, dim);
        let next = if plus { (c + 1) % n } else { (c + n - 1) % n };
        self.with_coord(node, dim, next)
    }

    fn link_peer(&self, node: NodeId, port: Port) -> Option<NodeId> {
        // Every torus link is point-to-point: port 2d goes to the
        // positive ring neighbor along dimension d, port 2d+1 to the
        // negative one.
        self.port_class(port)?;
        Some(self.neighbor(node, port.index() / 2, port.index().is_multiple_of(2)))
    }

    fn route(&self, src: NodeId, dst: NodeId) -> Route {
        // Dimension-ordered (XYZ) routing, shorter way around each ring,
        // ties to the positive direction — identical to
        // `TorusShape::route` on three dimensions.
        let mut hops = Vec::new();
        let mut cur = src;
        for (dim, info) in self.dims.iter().enumerate() {
            let n = info.len;
            if n == 1 {
                continue;
            }
            let b = self.coord(dst, dim);
            loop {
                let a = self.coord(cur, dim);
                if a == b {
                    break;
                }
                let fwd = (b + n - a) % n;
                let plus = fwd <= n - fwd;
                let next = self.neighbor(cur, dim, plus);
                hops.push(Hop {
                    from: cur,
                    port: if plus {
                        info.port_plus
                    } else {
                        info.port_minus
                    },
                    to: next,
                });
                cur = next;
            }
        }
        debug_assert_eq!(cur, dst);
        hops
    }

    fn global_port_profile(&self) -> (u8, u8) {
        (2, 2 * (self.lens.len() as u8 - 1))
    }
}

// ---------------------------------------------------------------------
// Switch
// ---------------------------------------------------------------------

/// The number of hypercube exchange dimensions a crossbar of `n` nodes
/// plans over (log2 n for powers of two, else a single embedded ring).
fn switch_dim_count(n: usize) -> usize {
    if n.is_power_of_two() {
        n.trailing_zeros() as usize
    } else {
        1
    }
}

/// A central non-blocking crossbar: every node owns one uplink, every
/// pair of nodes is one hop apart. Power-of-two sizes expose `log2(n)`
/// pairwise-exchange dimensions (halving-doubling); other sizes embed a
/// single ring.
#[derive(Debug, Clone)]
pub struct Switch {
    spec: TopologySpec,
    n: usize,
    dims: Vec<DimInfo>,
    gbps: Option<u32>,
}

impl Switch {
    /// Builds the switch for `spec`.
    ///
    /// # Panics
    ///
    /// Panics if `spec` is not a switch.
    pub fn new(spec: TopologySpec) -> Switch {
        let TopologySpec::Switch { nodes, gbps } = spec else {
            panic!("Switch::new needs a switch spec");
        };
        let n = nodes as usize;
        let uplink = Port::from_index(0);
        let dims = if n.is_power_of_two() {
            (0..switch_dim_count(n))
                .map(|_| DimInfo {
                    len: 2,
                    class: LinkClass::InterPackage,
                    port_plus: uplink,
                    port_minus: uplink,
                })
                .collect()
        } else {
            vec![DimInfo {
                len: n,
                class: LinkClass::InterPackage,
                port_plus: uplink,
                port_minus: uplink,
            }]
        };
        Switch {
            spec,
            n,
            dims,
            gbps,
        }
    }
}

impl Topology for Switch {
    fn spec(&self) -> TopologySpec {
        self.spec
    }

    fn nodes(&self) -> usize {
        self.n
    }

    fn dims(&self) -> &[DimInfo] {
        &self.dims
    }

    fn sandwich_dims(&self) -> usize {
        // Power of two: reduce-scatter then all-gather over every
        // exchange dimension — recursive halving-doubling. Otherwise the
        // single embedded ring runs a ring all-reduce.
        if self.n.is_power_of_two() {
            self.dims.len()
        } else {
            0
        }
    }

    fn ports_per_node(&self) -> usize {
        1
    }

    fn port_class(&self, port: Port) -> Option<LinkClass> {
        (port.index() == 0).then_some(LinkClass::InterPackage)
    }

    fn link_params_for(&self, port: Port, params: &NetworkParams) -> Option<LinkParams> {
        self.port_class(port).map(|_| match self.gbps {
            None => params.inter,
            Some(g) => LinkParams {
                bandwidth_gbps: g as f64,
                ..params.inter
            },
        })
    }

    fn neighbor(&self, node: NodeId, dim: usize, plus: bool) -> NodeId {
        if self.n.is_power_of_two() {
            // Hypercube exchange partner: both directions meet the same
            // peer.
            NodeId(node.0 ^ (1 << dim))
        } else if plus {
            NodeId((node.0 + 1) % self.n)
        } else {
            NodeId((node.0 + self.n - 1) % self.n)
        }
    }

    fn fanout_peers(&self, node: NodeId, port: Port) -> Vec<NodeId> {
        if port.index() != 0 {
            return Vec::new();
        }
        (0..self.n).map(NodeId).filter(|&p| p != node).collect()
    }

    fn route(&self, src: NodeId, dst: NodeId) -> Route {
        if src == dst {
            return Vec::new();
        }
        // One hop: serialize on the source uplink, cross the crossbar.
        vec![Hop {
            from: src,
            port: Port::from_index(0),
            to: dst,
        }]
    }

    fn global_port_profile(&self) -> (u8, u8) {
        (0, 1)
    }
}

// ---------------------------------------------------------------------
// Hierarchical
// ---------------------------------------------------------------------

/// Scale-up dimensions a domain of `su` NPUs exposes.
fn scale_up_dim_count(su: usize) -> usize {
    if su <= 1 {
        0
    } else if su.is_power_of_two() {
        su.trailing_zeros() as usize
    } else {
        1
    }
}

/// A scale-up crossbar domain (NVSwitch-style, intra-package links)
/// joined by a scale-out inter-package ring. Node ids are domain-major:
/// `id = u + scale_up * o`.
#[derive(Debug, Clone)]
pub struct Hierarchical {
    spec: TopologySpec,
    su: usize,
    so: usize,
    dims: Vec<DimInfo>,
}

impl Hierarchical {
    /// Builds the fabric for `spec`.
    ///
    /// # Panics
    ///
    /// Panics if `spec` is not hierarchical.
    pub fn new(spec: TopologySpec) -> Hierarchical {
        let TopologySpec::Hierarchical {
            scale_up,
            scale_out,
        } = spec
        else {
            panic!("Hierarchical::new needs a hierarchical spec");
        };
        let (su, so) = (scale_up as usize, scale_out as usize);
        let crossbar = Port::from_index(0);
        let mut dims = Vec::new();
        if su.is_power_of_two() {
            for _ in 0..scale_up_dim_count(su) {
                dims.push(DimInfo {
                    len: 2,
                    class: LinkClass::IntraPackage,
                    port_plus: crossbar,
                    port_minus: crossbar,
                });
            }
        } else if su > 1 {
            dims.push(DimInfo {
                len: su,
                class: LinkClass::IntraPackage,
                port_plus: crossbar,
                port_minus: crossbar,
            });
        }
        dims.push(DimInfo {
            len: so,
            class: LinkClass::InterPackage,
            port_plus: Port::from_index(1),
            port_minus: Port::from_index(2),
        });
        Hierarchical { spec, su, so, dims }
    }

    fn domain_local(&self, node: NodeId) -> (usize, usize) {
        (node.0 % self.su, node.0 / self.su)
    }
}

impl Topology for Hierarchical {
    fn spec(&self) -> TopologySpec {
        self.spec
    }

    fn nodes(&self) -> usize {
        self.su * self.so
    }

    fn dims(&self) -> &[DimInfo] {
        &self.dims
    }

    fn sandwich_dims(&self) -> usize {
        // Every scale-up dimension reduces first / gathers last; the
        // scale-out ring all-reduces the shrunken shards in between —
        // the paper's hierarchy with the crossbar standing in for the
        // local ring.
        scale_up_dim_count(self.su)
    }

    fn ports_per_node(&self) -> usize {
        3
    }

    fn port_class(&self, port: Port) -> Option<LinkClass> {
        match port.index() {
            0 => (self.su > 1).then_some(LinkClass::IntraPackage),
            1 | 2 => (self.so > 1).then_some(LinkClass::InterPackage),
            _ => None,
        }
    }

    fn neighbor(&self, node: NodeId, dim: usize, plus: bool) -> NodeId {
        let (u, o) = self.domain_local(node);
        let up_dims = scale_up_dim_count(self.su);
        if dim < up_dims {
            let u2 = if self.su.is_power_of_two() {
                u ^ (1 << dim)
            } else if plus {
                (u + 1) % self.su
            } else {
                (u + self.su - 1) % self.su
            };
            NodeId(u2 + self.su * o)
        } else {
            let o2 = if plus {
                (o + 1) % self.so
            } else {
                (o + self.so - 1) % self.so
            };
            NodeId(u + self.su * o2)
        }
    }

    fn link_peer(&self, node: NodeId, port: Port) -> Option<NodeId> {
        // The scale-out ring ports are point-to-point; the crossbar
        // uplink (port 0) fans out across the whole domain and keeps the
        // fan-out default.
        self.port_class(port)?;
        match port.index() {
            1 | 2 => {
                let ring_dim = scale_up_dim_count(self.su);
                Some(self.neighbor(node, ring_dim, port.index() == 1))
            }
            _ => None,
        }
    }

    fn fanout_peers(&self, node: NodeId, port: Port) -> Vec<NodeId> {
        if port.index() != 0 || self.su <= 1 {
            return Vec::new();
        }
        let (_, o) = self.domain_local(node);
        (0..self.su)
            .map(|u| NodeId(u + self.su * o))
            .filter(|&p| p != node)
            .collect()
    }

    fn route(&self, src: NodeId, dst: NodeId) -> Route {
        let (us, os) = self.domain_local(src);
        let (ud, od) = self.domain_local(dst);
        let mut hops = Vec::new();
        let mut cur = src;
        // Scale-up first (one crossbar hop), then the scale-out ring the
        // shorter way, ties positive — mirroring XYZ order.
        if us != ud {
            let next = NodeId(ud + self.su * os);
            hops.push(Hop {
                from: cur,
                port: Port::from_index(0),
                to: next,
            });
            cur = next;
        }
        let n = self.so;
        let mut o = os;
        while o != od {
            let fwd = (od + n - o) % n;
            let plus = fwd <= n - fwd;
            o = if plus { (o + 1) % n } else { (o + n - 1) % n };
            let next = NodeId(ud + self.su * o);
            hops.push(Hop {
                from: cur,
                port: Port::from_index(if plus { 1 } else { 2 }),
                to: next,
            });
            cur = next;
        }
        hops
    }

    fn global_port_profile(&self) -> (u8, u8) {
        (1, 2)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spec_parse_and_display_round_trip() {
        for s in [
            "4x2x2",
            "4x8",
            "2x2x2x2",
            "8",
            "switch:16",
            "switch:16@100",
            "hier:4x8",
        ] {
            let spec: TopologySpec = s.parse().unwrap();
            assert_eq!(spec.to_string(), s, "round trip of '{s}'");
            let topo = spec.build();
            assert_eq!(topo.spec(), spec);
            assert_eq!(topo.nodes(), spec.nodes());
        }
        // Case-insensitive separators and an explicit torus prefix.
        assert_eq!(
            "4X2X2".parse::<TopologySpec>().unwrap(),
            TopologySpec::torus3(4, 2, 2).unwrap()
        );
        assert_eq!(
            "torus:4x2x2".parse::<TopologySpec>().unwrap(),
            TopologySpec::torus3(4, 2, 2).unwrap()
        );
    }

    #[test]
    fn parse_errors_carry_did_you_mean_hints() {
        let e = "swich:16".parse::<TopologySpec>().unwrap_err();
        assert!(e.contains("did you mean 'switch'"), "{e}");
        let e = "heir:4x8".parse::<TopologySpec>().unwrap_err();
        assert!(e.contains("did you mean 'hier'"), "{e}");
        let e = "switchh:16".parse::<TopologySpec>().unwrap_err();
        assert!(e.contains("did you mean 'switch'"), "{e}");
        // Every parse error names the valid spellings.
        for bad in ["swich:16", "4x", "blob", "hier:4", "switch:one"] {
            let e = bad.parse::<TopologySpec>().unwrap_err();
            assert!(
                e.contains("switch:N") || e.contains("bad") || e.contains("must be"),
                "unhelpful error for '{bad}': {e}"
            );
        }
    }

    #[test]
    fn invalid_specs_are_rejected() {
        assert!("0x2x2".parse::<TopologySpec>().is_err());
        assert!("1x1x1".parse::<TopologySpec>().is_err());
        assert!("2x2x2x2x2x2x2".parse::<TopologySpec>().is_err());
        // A node-count overflow is rejected at spec construction, never
        // wrapped later.
        assert_eq!(
            TopologySpec::torus(&[65535, 65535, 65535, 65535, 65535]).unwrap_err(),
            ShapeError::TooManyNodes
        );
        assert!("switch:1".parse::<TopologySpec>().is_err());
        assert!("switch:8@0".parse::<TopologySpec>().is_err());
        assert!("hier:0x4".parse::<TopologySpec>().is_err());
        assert!("hier:1x1".parse::<TopologySpec>().is_err());
    }

    #[test]
    fn link_peer_is_exact_on_point_to_point_links() {
        // Torus: every live port names its ring neighbor; dead ports
        // (size-1 dimensions) have no peer.
        let torus = Torus::new("4x1x2".parse::<TopologySpec>().unwrap());
        for node in (0..torus.nodes()).map(NodeId) {
            for (d, info) in torus.dims().iter().enumerate() {
                let (want_plus, want_minus) = if info.len > 1 {
                    (
                        Some(torus.neighbor(node, d, true)),
                        Some(torus.neighbor(node, d, false)),
                    )
                } else {
                    (None, None)
                };
                assert_eq!(torus.link_peer(node, info.port_plus), want_plus);
                assert_eq!(torus.link_peer(node, info.port_minus), want_minus);
            }
        }
        // Switch: the uplink fans out across the crossbar — no peer.
        let switch = "switch:8".parse::<TopologySpec>().unwrap().build();
        assert_eq!(switch.link_peer(NodeId(3), Port::from_index(0)), None);
        // Hierarchical: ring ports are exact, the crossbar uplink is not.
        let hier = "hier:4x3".parse::<TopologySpec>().unwrap().build();
        let ring_dim = hier.dims().len() - 1;
        assert_eq!(hier.link_peer(NodeId(1), Port::from_index(0)), None);
        assert_eq!(
            hier.link_peer(NodeId(1), Port::from_index(1)),
            Some(hier.neighbor(NodeId(1), ring_dim, true))
        );
        assert_eq!(
            hier.link_peer(NodeId(1), Port::from_index(2)),
            Some(hier.neighbor(NodeId(1), ring_dim, false))
        );
    }

    #[test]
    fn torus_matches_torus_shape() {
        // The generalized torus must agree with TorusShape on every query
        // the executor makes — this is what keeps the refactor
        // byte-identical.
        let shape = TorusShape::new(4, 3, 2).unwrap();
        let topo = Torus::new(shape.into());
        assert_eq!(topo.nodes(), shape.nodes());
        assert_eq!(topo.total_links(), shape.total_links());
        for node in shape.iter_nodes() {
            for (d, dim) in crate::topology::Dim::ALL.into_iter().enumerate() {
                for plus in [true, false] {
                    assert_eq!(
                        topo.neighbor(node, d, plus),
                        shape.neighbor(node, dim, plus),
                        "neighbor({node}, {dim}, {plus})"
                    );
                }
                assert_eq!(topo.ring_members(node, d), shape.ring_members(node, dim));
            }
            for dst in shape.iter_nodes() {
                assert_eq!(topo.route(node, dst), shape.route(node, dst));
            }
        }
    }

    #[test]
    fn torus_port_layout_matches_legacy() {
        let topo = Torus::new(TopologySpec::torus3(4, 1, 2).unwrap());
        assert_eq!(topo.ports_per_node(), 6);
        // Dimension 1 has size 1: its ports are dead, exactly like the
        // legacy Network's `None` links.
        assert_eq!(
            topo.port_class(Port::from_index(0)),
            Some(LinkClass::IntraPackage)
        );
        assert_eq!(topo.port_class(Port::from_index(2)), None);
        assert_eq!(topo.port_class(Port::from_index(3)), None);
        assert_eq!(
            topo.port_class(Port::from_index(4)),
            Some(LinkClass::InterPackage)
        );
        assert_eq!(topo.global_port_profile(), (2, 4));
    }

    #[test]
    fn switch_power_of_two_is_a_hypercube() {
        let topo = Switch::new(TopologySpec::switch(16).unwrap());
        assert_eq!(topo.dims().len(), 4);
        assert_eq!(topo.sandwich_dims(), 4);
        assert_eq!(topo.ports_per_node(), 1);
        assert_eq!(topo.total_links(), 16);
        // Exchange partners are symmetric and partition the node set.
        for d in 0..4 {
            for n in 0..16 {
                let p = topo.neighbor(NodeId(n), d, true);
                assert_eq!(topo.neighbor(p, d, true), NodeId(n));
                assert_eq!(topo.ring_members(NodeId(n), d), vec![NodeId(n), p]);
            }
        }
        // Any pair is one hop apart.
        let r = topo.route(NodeId(3), NodeId(11));
        assert_eq!(r.len(), 1);
        assert_eq!(r[0].to, NodeId(11));
        assert!(topo.route(NodeId(5), NodeId(5)).is_empty());
    }

    #[test]
    fn switch_non_power_of_two_embeds_a_ring() {
        let topo = Switch::new(TopologySpec::switch(6).unwrap());
        assert_eq!(topo.dims().len(), 1);
        assert_eq!(topo.dims()[0].len, 6);
        assert_eq!(topo.sandwich_dims(), 0);
        assert_eq!(topo.neighbor(NodeId(5), 0, true), NodeId(0));
        assert_eq!(topo.neighbor(NodeId(0), 0, false), NodeId(5));
        assert_eq!(topo.ring_members(NodeId(2), 0).len(), 6);
    }

    #[test]
    fn switch_bandwidth_override_applies() {
        let params = NetworkParams::paper_default();
        let plain = Switch::new(TopologySpec::switch(8).unwrap());
        let fast = Switch::new(TopologySpec::switch_with_gbps(8, 100).unwrap());
        let p0 = Port::from_index(0);
        assert_eq!(
            plain.link_params_for(p0, &params).unwrap().bandwidth_gbps,
            params.inter.bandwidth_gbps
        );
        assert_eq!(
            fast.link_params_for(p0, &params).unwrap().bandwidth_gbps,
            100.0
        );
        // Latency and efficiency inherit from the inter-package class.
        assert_eq!(
            fast.link_params_for(p0, &params).unwrap().latency_cycles,
            params.inter.latency_cycles
        );
    }

    #[test]
    fn hierarchical_structure() {
        let topo = Hierarchical::new(TopologySpec::hierarchical(4, 8).unwrap());
        assert_eq!(topo.nodes(), 32);
        // 4 = 2^2 scale-up exchange dims + 1 scale-out ring dim.
        assert_eq!(topo.dims().len(), 3);
        assert_eq!(topo.sandwich_dims(), 2);
        assert_eq!(topo.dims()[0].class, LinkClass::IntraPackage);
        assert_eq!(topo.dims()[2].class, LinkClass::InterPackage);
        // 32 crossbar uplinks + 2 ring links per node.
        assert_eq!(topo.total_links(), 32 + 64);
        // Scale-out neighbor keeps the local index.
        assert_eq!(topo.neighbor(NodeId(1), 2, true), NodeId(5));
        // Cross-domain, cross-local route: one crossbar hop + ring hops.
        let r = topo.route(NodeId(0), NodeId(4 * 3 + 2));
        assert_eq!(r[0].port.index(), 0);
        assert_eq!(r.len(), 1 + 3);
        assert_eq!(r.last().unwrap().to, NodeId(14));
        // Routes stay connected.
        for w in r.windows(2) {
            assert_eq!(w[0].to, w[1].from);
        }
    }

    #[test]
    fn hierarchical_degenerate_shapes() {
        // One domain: pure scale-up crossbar.
        let only_up = Hierarchical::new(TopologySpec::hierarchical(8, 1).unwrap());
        assert_eq!(only_up.dims().len(), 4); // 3 exchange dims + the size-1 out dim
        assert_eq!(only_up.port_class(Port::from_index(1)), None);
        // One NPU per domain: pure scale-out ring.
        let only_out = Hierarchical::new(TopologySpec::hierarchical(1, 8).unwrap());
        assert_eq!(only_out.dims().len(), 1);
        assert_eq!(only_out.sandwich_dims(), 0);
        assert_eq!(only_out.port_class(Port::from_index(0)), None);
    }

    #[test]
    fn dim_names_are_topology_aware() {
        let t3: TopologySpec = "4x2x2".parse().unwrap();
        assert_eq!(t3.dim_name(0), "local");
        assert_eq!(t3.dim_name(2), "horizontal");
        let t2: TopologySpec = "4x8".parse().unwrap();
        assert_eq!(t2.dim_name(1), "d1");
        let sw: TopologySpec = "switch:16".parse().unwrap();
        assert_eq!(sw.dim_name(0), "x0");
        let hier: TopologySpec = "hier:4x8".parse().unwrap();
        assert_eq!(hier.dim_name(0), "up0");
        assert_eq!(hier.dim_name(2), "out");
    }
}
