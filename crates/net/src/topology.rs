//! 3D-torus topology: coordinates, dimensions, rings, and XYZ routing.

use std::fmt;

use crate::link::Port;

/// Identifies one NPU in the fabric.
///
/// Node ids are dense indices in `[0, shape.nodes())`, laid out
/// local-major: `id = l + L*(v + V*h)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct NodeId(pub usize);

impl NodeId {
    /// The raw index.
    pub fn index(self) -> usize {
        self.0
    }
}

impl From<usize> for NodeId {
    fn from(v: usize) -> Self {
        NodeId(v)
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "npu{}", self.0)
    }
}

/// The three torus dimensions in the paper's `LxVxH` notation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Dim {
    /// Intra-package (local) ring — the highest-bandwidth dimension.
    Local,
    /// Inter-package vertical ring.
    Vertical,
    /// Inter-package horizontal ring.
    Horizontal,
}

impl Dim {
    /// All dimensions in XYZ routing order (local, vertical, horizontal).
    pub const ALL: [Dim; 3] = [Dim::Local, Dim::Vertical, Dim::Horizontal];
}

impl fmt::Display for Dim {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Dim::Local => "local",
            Dim::Vertical => "vertical",
            Dim::Horizontal => "horizontal",
        };
        f.write_str(s)
    }
}

/// A coordinate in the torus: `(l, v, h)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Coord {
    /// Position on the intra-package ring.
    pub l: usize,
    /// Position on the vertical ring.
    pub v: usize,
    /// Position on the horizontal ring.
    pub h: usize,
}

impl Coord {
    /// Component along `dim`.
    pub fn along(&self, dim: Dim) -> usize {
        match dim {
            Dim::Local => self.l,
            Dim::Vertical => self.v,
            Dim::Horizontal => self.h,
        }
    }
}

impl fmt::Display for Coord {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({},{},{})", self.l, self.v, self.h)
    }
}

/// One hop of a route: leave `from` on egress `port`, arriving at `to`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Hop {
    /// Node the hop leaves from.
    pub from: NodeId,
    /// Egress port used.
    pub port: Port,
    /// Node the hop arrives at.
    pub to: NodeId,
}

/// A source-to-destination path: the sequence of hops chosen by XYZ routing.
pub type Route = Vec<Hop>;

/// The `LxVxH` torus describing the whole platform (Section V).
///
/// The paper's evaluated sizes are `4x2x2` (16 NPUs), `4x4x2` (32),
/// `4x4x4` (64) and `4x8x4` (128).
///
/// ```
/// use ace_net::TorusShape;
/// let shape = TorusShape::new(4, 8, 4).unwrap();
/// assert_eq!(shape.nodes(), 128);
/// assert_eq!(shape.to_string(), "4x8x4");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TorusShape {
    l: usize,
    v: usize,
    h: usize,
}

impl TorusShape {
    /// Creates a torus shape; every dimension must be at least 1 and the
    /// total size at least 2.
    pub fn new(l: usize, v: usize, h: usize) -> Result<Self, ShapeError> {
        if l == 0 || v == 0 || h == 0 {
            return Err(ShapeError::ZeroDimension);
        }
        if l * v * h < 2 {
            return Err(ShapeError::TooSmall);
        }
        Ok(TorusShape { l, v, h })
    }

    /// The paper's four evaluated system sizes, smallest to largest.
    pub fn paper_sizes() -> Vec<TorusShape> {
        vec![
            TorusShape::new(4, 2, 2).expect("valid"),
            TorusShape::new(4, 4, 2).expect("valid"),
            TorusShape::new(4, 4, 4).expect("valid"),
            TorusShape::new(4, 8, 4).expect("valid"),
        ]
    }

    /// Intra-package (local) dimension size.
    pub fn local(&self) -> usize {
        self.l
    }

    /// Vertical dimension size.
    pub fn vertical(&self) -> usize {
        self.v
    }

    /// Horizontal dimension size.
    pub fn horizontal(&self) -> usize {
        self.h
    }

    /// Size of dimension `dim`.
    pub fn len(&self, dim: Dim) -> usize {
        match dim {
            Dim::Local => self.l,
            Dim::Vertical => self.v,
            Dim::Horizontal => self.h,
        }
    }

    /// Total number of NPUs.
    pub fn nodes(&self) -> usize {
        self.l * self.v * self.h
    }

    /// Converts a node id to its coordinate.
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of range.
    pub fn coord(&self, node: NodeId) -> Coord {
        assert!(node.0 < self.nodes(), "node {} out of range", node);
        let l = node.0 % self.l;
        let rest = node.0 / self.l;
        let v = rest % self.v;
        let h = rest / self.v;
        Coord { l, v, h }
    }

    /// Converts a coordinate to its node id.
    ///
    /// # Panics
    ///
    /// Panics if any component is out of range.
    pub fn node_at(&self, c: Coord) -> NodeId {
        assert!(
            c.l < self.l && c.v < self.v && c.h < self.h,
            "coord out of range"
        );
        NodeId(c.l + self.l * (c.v + self.v * c.h))
    }

    /// The neighbor of `node` one step in the positive (`plus = true`) or
    /// negative direction along `dim`, wrapping around the ring.
    pub fn neighbor(&self, node: NodeId, dim: Dim, plus: bool) -> NodeId {
        let mut c = self.coord(node);
        let n = self.len(dim);
        let cur = c.along(dim);
        let next = if plus {
            (cur + 1) % n
        } else {
            (cur + n - 1) % n
        };
        match dim {
            Dim::Local => c.l = next,
            Dim::Vertical => c.v = next,
            Dim::Horizontal => c.h = next,
        }
        self.node_at(c)
    }

    /// The members of the ring through `node` along `dim`, starting at
    /// `node` and following the positive direction.
    ///
    /// Ring collectives (reduce-scatter / all-gather / all-reduce) run over
    /// exactly these groups.
    pub fn ring_members(&self, node: NodeId, dim: Dim) -> Vec<NodeId> {
        let n = self.len(dim);
        let mut members = Vec::with_capacity(n);
        let mut cur = node;
        for _ in 0..n {
            members.push(cur);
            cur = self.neighbor(cur, dim, true);
        }
        members
    }

    /// XYZ (dimension-ordered: local, vertical, horizontal) route from
    /// `src` to `dst`, taking the shorter way around each ring (ties go to
    /// the positive direction). Returns an empty route when `src == dst`.
    pub fn route(&self, src: NodeId, dst: NodeId) -> Route {
        let mut hops = Vec::new();
        let mut cur = src;
        let dst_c = self.coord(dst);
        for dim in Dim::ALL {
            let n = self.len(dim);
            if n == 1 {
                continue;
            }
            loop {
                let cur_c = self.coord(cur);
                let a = cur_c.along(dim);
                let b = dst_c.along(dim);
                if a == b {
                    break;
                }
                let fwd = (b + n - a) % n;
                let plus = fwd <= n - fwd;
                let next = self.neighbor(cur, dim, plus);
                hops.push(Hop {
                    from: cur,
                    port: Port::new(dim, plus),
                    to: next,
                });
                cur = next;
            }
        }
        debug_assert_eq!(cur, dst);
        hops
    }

    /// Iterator over all node ids.
    pub fn iter_nodes(&self) -> impl Iterator<Item = NodeId> {
        (0..self.nodes()).map(NodeId)
    }

    /// Total number of unidirectional links in the fabric.
    ///
    /// Each node contributes one egress link per dimension-direction whose
    /// ring has more than one member (a ring of size 2 still has distinct
    /// plus and minus links, matching Table V's "2 intra-package links").
    pub fn total_links(&self) -> usize {
        let mut per_node = 0;
        for dim in Dim::ALL {
            if self.len(dim) > 1 {
                per_node += 2;
            }
        }
        per_node * self.nodes()
    }
}

impl fmt::Display for TorusShape {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}x{}x{}", self.l, self.v, self.h)
    }
}

/// Errors constructing a [`TorusShape`] or a
/// [`TopologySpec`](crate::TopologySpec).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShapeError {
    /// A dimension was zero.
    ZeroDimension,
    /// The topology has fewer than two nodes.
    TooSmall,
    /// A torus needs between 1 and [`MAX_TORUS_DIMS`](crate::MAX_TORUS_DIMS)
    /// dimensions; this many were given.
    BadDimensionCount(usize),
    /// A dimension length exceeds the spec's storage width.
    DimensionTooLarge(usize),
    /// The topology's total node count overflows the address space.
    TooManyNodes,
}

impl fmt::Display for ShapeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ShapeError::ZeroDimension => f.write_str("torus dimensions must be nonzero"),
            ShapeError::TooSmall => f.write_str("torus must contain at least two nodes"),
            ShapeError::BadDimensionCount(n) => {
                write!(f, "torus needs 1..=6 dimensions, got {n}")
            }
            ShapeError::DimensionTooLarge(n) => write!(f, "dimension {n} is too large"),
            ShapeError::TooManyNodes => f.write_str("topology node count overflows"),
        }
    }
}

impl std::error::Error for ShapeError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_sizes_match_section_v() {
        let sizes: Vec<usize> = TorusShape::paper_sizes()
            .iter()
            .map(|s| s.nodes())
            .collect();
        assert_eq!(sizes, vec![16, 32, 64, 128]);
    }

    #[test]
    fn coord_roundtrip() {
        let s = TorusShape::new(4, 8, 4).unwrap();
        for id in s.iter_nodes() {
            assert_eq!(s.node_at(s.coord(id)), id);
        }
    }

    #[test]
    fn neighbor_wraps_around() {
        let s = TorusShape::new(4, 2, 2).unwrap();
        let n0 = NodeId(0);
        assert_eq!(s.neighbor(n0, Dim::Local, true), NodeId(1));
        assert_eq!(s.neighbor(n0, Dim::Local, false), NodeId(3));
        let last_local = NodeId(3);
        assert_eq!(s.neighbor(last_local, Dim::Local, true), NodeId(0));
    }

    #[test]
    fn neighbor_vertical_stride_is_l() {
        let s = TorusShape::new(4, 4, 4).unwrap();
        assert_eq!(s.neighbor(NodeId(0), Dim::Vertical, true), NodeId(4));
        assert_eq!(s.neighbor(NodeId(0), Dim::Horizontal, true), NodeId(16));
    }

    #[test]
    fn ring_members_cover_dimension() {
        let s = TorusShape::new(4, 8, 4).unwrap();
        let ring = s.ring_members(NodeId(0), Dim::Vertical);
        assert_eq!(ring.len(), 8);
        // All members share l and h coordinates.
        let c0 = s.coord(NodeId(0));
        for &m in &ring {
            let c = s.coord(m);
            assert_eq!((c.l, c.h), (c0.l, c0.h));
        }
        // Distinct members.
        let mut sorted: Vec<usize> = ring.iter().map(|n| n.0).collect();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), 8);
    }

    #[test]
    fn route_is_empty_for_self() {
        let s = TorusShape::new(4, 2, 2).unwrap();
        assert!(s.route(NodeId(3), NodeId(3)).is_empty());
    }

    #[test]
    fn route_follows_xyz_order() {
        let s = TorusShape::new(4, 4, 4).unwrap();
        let src = s.node_at(Coord { l: 0, v: 0, h: 0 });
        let dst = s.node_at(Coord { l: 2, v: 1, h: 3 });
        let route = s.route(src, dst);
        // Hops must be grouped: all local, then vertical, then horizontal.
        let dims: Vec<Dim> = route.iter().map(|h| h.port.dim()).collect();
        let first_v = dims.iter().position(|d| *d == Dim::Vertical);
        let first_h = dims.iter().position(|d| *d == Dim::Horizontal);
        if let (Some(fv), Some(fh)) = (first_v, first_h) {
            assert!(fv < fh);
        }
        assert!(dims.iter().take_while(|d| **d == Dim::Local).count() >= 1);
        // Route ends at destination.
        assert_eq!(route.last().unwrap().to, dst);
        // Route is connected.
        for w in route.windows(2) {
            assert_eq!(w[0].to, w[1].from);
        }
    }

    #[test]
    fn route_takes_shorter_way() {
        let s = TorusShape::new(8, 1, 1).unwrap();
        // 0 -> 6 is shorter going minus (2 hops) than plus (6 hops).
        let route = s.route(NodeId(0), NodeId(6));
        assert_eq!(route.len(), 2);
        assert!(!route[0].port.is_plus());
    }

    #[test]
    fn route_hop_count_is_sum_of_ring_distances() {
        let s = TorusShape::new(4, 8, 4).unwrap();
        let src = NodeId(0);
        let dst = s.node_at(Coord { l: 2, v: 4, h: 2 });
        // Distances: local 2, vertical 4, horizontal 2.
        assert_eq!(s.route(src, dst).len(), 8);
    }

    #[test]
    fn total_links_counts_directions() {
        let s = TorusShape::new(4, 2, 2).unwrap();
        // 6 egress links per node (all three dims have size > 1).
        assert_eq!(s.total_links(), 6 * 16);
        let flat = TorusShape::new(4, 1, 1).unwrap();
        assert_eq!(flat.total_links(), 2 * 4);
    }

    #[test]
    fn shape_errors() {
        assert_eq!(
            TorusShape::new(0, 2, 2).unwrap_err(),
            ShapeError::ZeroDimension
        );
        assert_eq!(TorusShape::new(1, 1, 1).unwrap_err(), ShapeError::TooSmall);
        assert_eq!(
            TorusShape::new(1, 1, 1).unwrap_err().to_string(),
            "torus must contain at least two nodes"
        );
    }
}
