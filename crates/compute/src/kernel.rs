//! Kernel descriptors: the unit of work the compute model times.

use std::fmt;

/// A compute kernel characterized by its arithmetic and memory demands.
///
/// Workload layers are lowered to one `KernelDesc` per pass (forward,
/// input-gradient, weight-gradient) per layer.
#[derive(Debug, Clone, PartialEq)]
pub struct KernelDesc {
    name: String,
    flops: f64,
    mem_bytes: f64,
}

impl KernelDesc {
    /// Creates a kernel with `flops` floating-point operations and
    /// `mem_bytes` of main-memory traffic.
    ///
    /// # Panics
    ///
    /// Panics if either quantity is negative or non-finite.
    pub fn new(name: impl Into<String>, flops: f64, mem_bytes: f64) -> KernelDesc {
        assert!(
            flops.is_finite() && flops >= 0.0,
            "flops must be non-negative"
        );
        assert!(
            mem_bytes.is_finite() && mem_bytes >= 0.0,
            "mem_bytes must be non-negative"
        );
        KernelDesc {
            name: name.into(),
            flops,
            mem_bytes,
        }
    }

    /// The kernel's name (for reports).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Floating-point operations.
    pub fn flops(&self) -> f64 {
        self.flops
    }

    /// Main-memory bytes moved.
    pub fn mem_bytes(&self) -> f64 {
        self.mem_bytes
    }

    /// Arithmetic intensity in flops/byte; `f64::INFINITY` for kernels with
    /// no memory traffic.
    pub fn intensity(&self) -> f64 {
        if self.mem_bytes == 0.0 {
            f64::INFINITY
        } else {
            self.flops / self.mem_bytes
        }
    }

    /// Returns a copy scaled by `factor` in both flops and bytes (used for
    /// batch-size scaling).
    pub fn scaled(&self, factor: f64) -> KernelDesc {
        KernelDesc::new(
            self.name.clone(),
            self.flops * factor,
            self.mem_bytes * factor,
        )
    }
}

impl fmt::Display for KernelDesc {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} ({:.2} GFLOP, {:.2} MB)",
            self.name,
            self.flops / 1e9,
            self.mem_bytes / 1e6
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intensity_is_flops_per_byte() {
        let k = KernelDesc::new("k", 100.0, 50.0);
        assert_eq!(k.intensity(), 2.0);
    }

    #[test]
    fn zero_byte_kernel_has_infinite_intensity() {
        let k = KernelDesc::new("k", 100.0, 0.0);
        assert!(k.intensity().is_infinite());
    }

    #[test]
    fn scaling_preserves_intensity() {
        let k = KernelDesc::new("k", 100.0, 50.0);
        let s = k.scaled(4.0);
        assert_eq!(s.flops(), 400.0);
        assert_eq!(s.mem_bytes(), 200.0);
        assert_eq!(s.intensity(), k.intensity());
    }

    #[test]
    fn display_shows_units() {
        let k = KernelDesc::new("gemm", 2.0e9, 40.0e6);
        let s = k.to_string();
        assert!(s.contains("gemm") && s.contains("GFLOP") && s.contains("MB"));
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_flops_rejected() {
        let _ = KernelDesc::new("bad", -1.0, 0.0);
    }
}
