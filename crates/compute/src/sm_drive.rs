//! The communication-side SM cost model.
//!
//! In the baseline endpoint, collective kernels run on NPU SMs: "SMs are
//! used to read data from the main memory and inject it into the network.
//! For the frequency of 1245 MHz and read/write BW of 64-bytes/cycle, the
//! memory BW is ≈80 GB/s per SM" (Section III). This module turns an SM
//! allocation into an aggregate drive bandwidth, the rate cap in front of
//! every baseline network injection — the mechanism behind Fig. 6.

use ace_simcore::Frequency;

/// Per-SM read/write width in bytes per cycle (Section III).
pub const SM_BYTES_PER_CYCLE: f64 = 64.0;

/// Converts SM allocations into communication drive bandwidth.
#[derive(Debug, Clone, Copy)]
pub struct SmDriveModel {
    freq: Frequency,
}

impl SmDriveModel {
    /// Creates the model at clock `freq`.
    pub fn new(freq: Frequency) -> SmDriveModel {
        SmDriveModel { freq }
    }

    /// Model at the paper's 1245 MHz clock.
    pub fn paper_default() -> SmDriveModel {
        SmDriveModel::new(ace_simcore::npu_frequency())
    }

    /// Drive bandwidth of one SM, in GB/s (≈80 at 1245 MHz).
    pub fn per_sm_gbps(&self) -> f64 {
        self.freq.gbps(SM_BYTES_PER_CYCLE)
    }

    /// Aggregate drive bandwidth of `sms` SMs, in GB/s.
    ///
    /// # Panics
    ///
    /// Panics if `sms` is zero — the baseline cannot drive the network
    /// without at least one SM.
    pub fn drive_gbps(&self, sms: u32) -> f64 {
        assert!(sms > 0, "baseline needs at least one communication SM");
        self.per_sm_gbps() * sms as f64
    }

    /// Aggregate drive capacity in bytes per cycle.
    pub fn drive_bytes_per_cycle(&self, sms: u32) -> f64 {
        assert!(sms > 0, "baseline needs at least one communication SM");
        SM_BYTES_PER_CYCLE * sms as f64
    }

    /// The minimum number of SMs whose aggregate drive bandwidth reaches
    /// `target_gbps` — the Fig. 6 saturation point calculation.
    pub fn sms_to_reach(&self, target_gbps: f64) -> u32 {
        (target_gbps / self.per_sm_gbps()).ceil().max(1.0) as u32
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn per_sm_is_about_80_gbps() {
        let m = SmDriveModel::paper_default();
        // 64 B/cycle × 1.245 GHz = 79.68 GB/s.
        assert!((m.per_sm_gbps() - 79.68).abs() < 0.01);
    }

    #[test]
    fn six_sms_cover_450_gbps() {
        // Section III: "6 SMs are enough to reach to the 450 GB/s memory BW".
        let m = SmDriveModel::paper_default();
        assert_eq!(m.sms_to_reach(450.0), 6);
        assert!(m.drive_gbps(6) > 450.0);
        assert!(m.drive_gbps(5) < 450.0);
    }

    #[test]
    fn two_sms_cover_128_gbps() {
        // Table VI BaselineCompOpt: 128 GB/s needs 2 SMs.
        let m = SmDriveModel::paper_default();
        assert_eq!(m.sms_to_reach(128.0), 2);
    }

    #[test]
    fn drive_scales_linearly() {
        let m = SmDriveModel::paper_default();
        assert!((m.drive_gbps(4) - 4.0 * m.per_sm_gbps()).abs() < 1e-9);
        assert!((m.drive_bytes_per_cycle(3) - 192.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "at least one")]
    fn zero_sms_rejected() {
        let _ = SmDriveModel::paper_default().drive_gbps(0);
    }
}
