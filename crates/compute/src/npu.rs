//! The NPU: an 80-SM pool with a roofline timing model.

use ace_simcore::Frequency;

use crate::kernel::KernelDesc;

/// Physical parameters of the GPU-like NPU (Table V).
#[derive(Debug, Clone, Copy)]
pub struct NpuParams {
    /// Number of streaming multiprocessors.
    pub sms: u32,
    /// Peak FP16 throughput with all SMs, in TFLOPS.
    pub peak_tflops: f64,
    /// Clock frequency.
    pub freq: Frequency,
}

impl NpuParams {
    /// Table V: 80 SMs, 120 TFLOPS FP16, 1245 MHz.
    pub fn paper_default() -> NpuParams {
        NpuParams {
            sms: 80,
            peak_tflops: 120.0,
            freq: ace_simcore::npu_frequency(),
        }
    }

    /// Peak flops per cycle with all SMs.
    pub fn flops_per_cycle(&self) -> f64 {
        self.peak_tflops * 1e12 / self.freq.hz()
    }

    /// Roofline kernel duration in cycles given `sms_for_compute` SMs and
    /// `mem_gbps` of memory bandwidth allocated to training compute.
    ///
    /// Duration = max(arithmetic time, memory time), with at least one
    /// cycle for non-empty kernels.
    ///
    /// # Panics
    ///
    /// Panics if `sms_for_compute` is zero or exceeds the SM count, or if
    /// `mem_gbps` is not strictly positive.
    pub fn kernel_cycles(&self, kernel: &KernelDesc, sms_for_compute: u32, mem_gbps: f64) -> u64 {
        assert!(
            sms_for_compute >= 1 && sms_for_compute <= self.sms,
            "compute SM allocation must be in [1, {}]",
            self.sms
        );
        assert!(mem_gbps > 0.0, "compute memory bandwidth must be positive");
        if kernel.flops() == 0.0 && kernel.mem_bytes() == 0.0 {
            return 0;
        }
        let sm_frac = sms_for_compute as f64 / self.sms as f64;
        let flop_cycles = kernel.flops() / (self.flops_per_cycle() * sm_frac);
        let mem_cycles = kernel.mem_bytes() / self.freq.bytes_per_cycle(mem_gbps);
        (flop_cycles.max(mem_cycles).ceil() as u64).max(1)
    }

    /// The roofline ridge point in flops/byte for a given compute-side
    /// memory bandwidth: kernels below this intensity are memory-bound.
    pub fn ridge_intensity(&self, sms_for_compute: u32, mem_gbps: f64) -> f64 {
        let sm_frac = sms_for_compute as f64 / self.sms as f64;
        (self.flops_per_cycle() * sm_frac) / self.freq.bytes_per_cycle(mem_gbps)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn npu() -> NpuParams {
        NpuParams::paper_default()
    }

    #[test]
    fn peak_rate_matches_table_v() {
        // 120 TFLOPS at 1245 MHz ≈ 96 385 flops/cycle.
        let fpc = npu().flops_per_cycle();
        assert!((fpc - 96385.5).abs() < 1.0, "got {fpc}");
    }

    #[test]
    fn flop_bound_kernel_scales_with_sms() {
        let n = npu();
        // Extremely high intensity => flop bound.
        let k = KernelDesc::new("k", 1.0e12, 1.0e3);
        let full = n.kernel_cycles(&k, 80, 900.0);
        let half = n.kernel_cycles(&k, 40, 900.0);
        let ratio = half as f64 / full as f64;
        assert!((ratio - 2.0).abs() < 0.01, "ratio {ratio}");
    }

    #[test]
    fn mem_bound_kernel_scales_with_bandwidth() {
        let n = npu();
        // Low intensity => memory bound.
        let k = KernelDesc::new("k", 1.0e6, 1.0e9);
        let wide = n.kernel_cycles(&k, 80, 772.0);
        let narrow = n.kernel_cycles(&k, 80, 450.0);
        let ratio = narrow as f64 / wide as f64;
        // This is the paper's 1.75× BaselineCommOpt/BaselineCompOpt compute gap.
        assert!((ratio - 772.0 / 450.0).abs() < 0.01, "ratio {ratio}");
    }

    #[test]
    fn ridge_point_separates_regimes() {
        let n = npu();
        let ridge = n.ridge_intensity(80, 900.0);
        // 96385 flops/cycle over ~723 bytes/cycle ≈ 133 flops/byte.
        assert!((ridge - 133.3).abs() < 1.0, "ridge {ridge}");
        let below = KernelDesc::new("mem", ridge * 0.5 * 1e6, 1e6);
        let above = KernelDesc::new("flop", ridge * 2.0 * 1e6, 1e6);
        // Below the ridge, duration tracks bytes; above, it tracks flops.
        assert!(n.kernel_cycles(&below, 80, 900.0) < n.kernel_cycles(&above, 80, 900.0));
    }

    #[test]
    fn empty_kernel_is_instant() {
        assert_eq!(
            npu().kernel_cycles(&KernelDesc::new("nop", 0.0, 0.0), 80, 900.0),
            0
        );
    }

    #[test]
    fn tiny_kernel_takes_at_least_one_cycle() {
        assert_eq!(
            npu().kernel_cycles(&KernelDesc::new("t", 1.0, 1.0), 80, 900.0),
            1
        );
    }

    #[test]
    #[should_panic(expected = "SM allocation")]
    fn zero_sms_rejected() {
        let _ = npu().kernel_cycles(&KernelDesc::new("k", 1.0, 1.0), 0, 900.0);
    }
}
