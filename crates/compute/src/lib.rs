//! GPU-like NPU compute model.
//!
//! The paper's compute substrate (SCALE-sim) reports per-layer forward,
//! input-gradient, and weight-gradient times for an 80-SM, 1245 MHz,
//! 120 TFLOPS-FP16 accelerator (Table V). We replace it with a roofline
//! model: a kernel's duration is the maximum of its arithmetic time (flops
//! over the SM pool's peak rate, scaled by the fraction of SMs allocated to
//! compute) and its memory time (bytes over the memory bandwidth allocated
//! to compute).
//!
//! The paper's own configuration table shows the compute model is memory-
//! bandwidth-sensitive: moving from BaselineCommOpt (450 GB/s for compute)
//! to BaselineCompOpt (772 GB/s) shrinks ResNet-50 compute time by 1.75×
//! ≈ 772/450, which only happens when layers sit on the memory-bound side
//! of the roofline. The workload crate calibrates per-layer byte counts
//! accordingly.
//!
//! The crate also models the *communication-side* SM cost (Section III):
//! each SM loaned to the communication library moves at most 64 bytes/cycle
//! (≈80 GB/s at 1245 MHz), so ~6 SMs saturate a 450 GB/s memory partition —
//! the Fig. 6 saturation point.
//!
//! # Example
//!
//! ```
//! use ace_compute::{KernelDesc, NpuParams};
//!
//! let npu = NpuParams::paper_default();
//! let k = KernelDesc::new("gemm", 2.0e9, 40.0e6);
//! // All 80 SMs, full 900 GB/s: bounded by whichever side of the roofline.
//! let cycles = npu.kernel_cycles(&k, 80, 900.0);
//! assert!(cycles > 0);
//! // Starving memory bandwidth slows a memory-bound kernel.
//! assert!(npu.kernel_cycles(&k, 80, 128.0) > cycles);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod kernel;
mod npu;
mod sm_drive;

pub use kernel::KernelDesc;
pub use npu::NpuParams;
pub use sm_drive::SmDriveModel;
