//! Criterion benches over the fabric transport primitives: topology
//! routing and per-link transmission.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use ace_net::{Dim, Network, NetworkParams, NodeId, Port, TorusShape};
use ace_simcore::SimTime;

fn bench_routing(c: &mut Criterion) {
    let mut group = c.benchmark_group("xyz_routing");
    for (l, v, h) in [(4, 2, 2), (4, 8, 4)] {
        let shape = TorusShape::new(l, v, h).expect("valid shape");
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{shape}")),
            &shape,
            |b, &shape| {
                b.iter(|| {
                    let mut hops = 0usize;
                    for src in 0..shape.nodes() {
                        let dst = (src * 7 + 3) % shape.nodes();
                        hops += shape.route(NodeId(src), NodeId(dst)).len();
                    }
                    std::hint::black_box(hops)
                })
            },
        );
    }
    group.finish();
}

fn bench_transmit(c: &mut Criterion) {
    let shape = TorusShape::new(4, 8, 4).expect("valid shape");
    c.bench_function("transmit_10k_messages", |b| {
        b.iter(|| {
            let mut net = Network::new(shape, NetworkParams::paper_default());
            let mut t = SimTime::ZERO;
            for i in 0..10_000u64 {
                let node = NodeId((i % 128) as usize);
                let port = Port::new(Dim::Local, i % 2 == 0);
                let out = net.transmit(t, node, port, 8 * 1024);
                if i % 64 == 0 {
                    t = out.grant.start;
                }
            }
            std::hint::black_box(net.total_bytes())
        })
    });
}

criterion_group!(benches, bench_routing, bench_transmit);
criterion_main!(benches);
