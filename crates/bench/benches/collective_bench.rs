//! Criterion benches over the collective execution hot path: one
//! all-reduce / all-to-all per endpoint engine on a 16-NPU torus.
//!
//! These guard the simulator's own performance (events/second), so the
//! figure-regeneration binaries stay fast as the model grows.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use ace_collectives::CollectiveOp;
use ace_net::TorusShape;
use ace_system::{CollectiveRunReport, EngineKind, RunSpec};

/// Pristine-fabric run; [`RunSpec::run`] cannot fail here.
fn run_single_collective(
    shape: TorusShape,
    kind: EngineKind,
    op: CollectiveOp,
    payload_bytes: u64,
) -> CollectiveRunReport {
    RunSpec::new(shape, kind, op, payload_bytes)
        .run()
        .expect("pristine run cannot fail")
}

fn bench_all_reduce(c: &mut Criterion) {
    let shape = TorusShape::new(4, 2, 2).expect("valid shape");
    let mut group = c.benchmark_group("all_reduce_4MB_16npu");
    group.sample_size(10);
    for (name, kind) in [
        ("ideal", EngineKind::Ideal),
        ("ace", EngineKind::Ace { dma_mem_gbps: 128.0 }),
        ("baseline_comm_opt", EngineKind::Baseline { comm_mem_gbps: 450.0, comm_sms: 6 }),
        ("baseline_comp_opt", EngineKind::Baseline { comm_mem_gbps: 128.0, comm_sms: 2 }),
    ] {
        group.bench_with_input(BenchmarkId::from_parameter(name), &kind, |b, &kind| {
            b.iter(|| {
                run_single_collective(shape, kind, CollectiveOp::AllReduce, std::hint::black_box(4 << 20))
            })
        });
    }
    group.finish();
}

fn bench_all_to_all(c: &mut Criterion) {
    let shape = TorusShape::new(4, 2, 2).expect("valid shape");
    let mut group = c.benchmark_group("all_to_all_4MB_16npu");
    group.sample_size(10);
    for (name, kind) in [
        ("ideal", EngineKind::Ideal),
        ("ace", EngineKind::Ace { dma_mem_gbps: 128.0 }),
    ] {
        group.bench_with_input(BenchmarkId::from_parameter(name), &kind, |b, &kind| {
            b.iter(|| {
                run_single_collective(shape, kind, CollectiveOp::AllToAll, std::hint::black_box(4 << 20))
            })
        });
    }
    group.finish();
}

fn bench_payload_scaling(c: &mut Criterion) {
    let shape = TorusShape::new(4, 2, 2).expect("valid shape");
    let mut group = c.benchmark_group("ace_all_reduce_payload");
    group.sample_size(10);
    for mb in [1u64, 4, 16] {
        group.bench_with_input(BenchmarkId::from_parameter(format!("{mb}MB")), &mb, |b, &mb| {
            b.iter(|| {
                run_single_collective(
                    shape,
                    EngineKind::Ace { dma_mem_gbps: 128.0 },
                    CollectiveOp::AllReduce,
                    std::hint::black_box(mb << 20),
                )
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_all_reduce, bench_all_to_all, bench_payload_scaling);
criterion_main!(benches);
