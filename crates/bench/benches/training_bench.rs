//! Criterion benches over the full training-loop simulation (the Fig. 10
//! / Fig. 11 workhorse) at the smallest paper size.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use ace_system::{SystemBuilder, SystemConfig};
use ace_workloads::Workload;

fn bench_training(c: &mut Criterion) {
    let mut group = c.benchmark_group("training_2iter_16npu");
    group.sample_size(10);
    for config in [SystemConfig::BaselineCompOpt, SystemConfig::Ace, SystemConfig::Ideal] {
        group.bench_with_input(
            BenchmarkId::from_parameter(config.short_name()),
            &config,
            |b, &config| {
                b.iter(|| {
                    SystemBuilder::new()
                        .topology(4, 2, 2)
                        .config(config)
                        .workload(Workload::resnet50())
                        .build()
                        .expect("valid system")
                        .run()
                })
            },
        );
    }
    group.finish();
}

fn bench_dlrm(c: &mut Criterion) {
    let mut group = c.benchmark_group("dlrm_2iter_16npu");
    group.sample_size(10);
    for optimized in [false, true] {
        let name = if optimized { "optimized" } else { "default" };
        group.bench_with_input(BenchmarkId::from_parameter(name), &optimized, |b, &opt| {
            b.iter(|| {
                SystemBuilder::new()
                    .topology(4, 2, 2)
                    .config(SystemConfig::Ace)
                    .workload(Workload::dlrm(16))
                    .optimized_embedding(opt)
                    .build()
                    .expect("valid system")
                    .run()
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_training, bench_dlrm);
criterion_main!(benches);
