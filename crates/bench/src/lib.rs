//! Shared support for the experiment harness binaries.
//!
//! Each binary under `src/bin/` regenerates one table or figure from the
//! paper's evaluation (see `DESIGN.md` for the index); this library holds
//! the formatting helpers they share. Passing `--tsv` to any binary emits
//! machine-readable tab-separated rows alongside the human tables.

pub mod perf_json;

/// Whether `--tsv` was passed on the command line.
pub fn tsv_mode() -> bool {
    std::env::args().any(|a| a == "--tsv")
}

/// Emits one machine-readable row when in TSV mode.
pub fn emit_tsv(experiment: &str, fields: &[(&str, String)]) {
    if tsv_mode() {
        let cols: Vec<String> = std::iter::once(experiment.to_string())
            .chain(fields.iter().map(|(k, v)| format!("{k}={v}")))
            .collect();
        println!("#TSV\t{}", cols.join("\t"));
    }
}

/// Prints a boxed section header.
pub fn header(title: &str) {
    let line = "=".repeat(title.len() + 4);
    println!("{line}\n  {title}\n{line}");
}

/// Prints a sub-header.
pub fn subheader(title: &str) {
    println!("\n--- {title} ---");
}

/// Renders a `[0, 1]` utilization series as a compact sparkline-style bar
/// string for terminal figures (Fig. 10).
pub fn sparkline(series: &[f64], width: usize) -> String {
    const LEVELS: [char; 9] = [
        ' ', '\u{2581}', '\u{2582}', '\u{2583}', '\u{2584}', '\u{2585}', '\u{2586}', '\u{2587}',
        '\u{2588}',
    ];
    if series.is_empty() || width == 0 {
        return String::new();
    }
    let step = (series.len() as f64 / width as f64).max(1.0);
    let mut out = String::with_capacity(width);
    let mut i = 0.0;
    while (i as usize) < series.len() && out.chars().count() < width {
        let start = i as usize;
        let end = ((i + step) as usize).min(series.len()).max(start + 1);
        let avg: f64 = series[start..end].iter().sum::<f64>() / (end - start) as f64;
        let idx = ((avg.clamp(0.0, 1.0)) * 8.0).round() as usize;
        out.push(LEVELS[idx]);
        i += step;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sparkline_has_requested_width() {
        let s: Vec<f64> = (0..100).map(|i| i as f64 / 100.0).collect();
        let line = sparkline(&s, 20);
        assert_eq!(line.chars().count(), 20);
    }

    #[test]
    fn sparkline_empty_input() {
        assert_eq!(sparkline(&[], 10), "");
    }

    #[test]
    fn sparkline_clamps_out_of_range() {
        let line = sparkline(&[2.0, -1.0], 2);
        assert_eq!(line.chars().count(), 2);
    }
}
