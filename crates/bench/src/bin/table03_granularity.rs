//! Table III — data granularity at different levels of ACE execution,
//! verified against the decomposition machinery.

use ace_bench::{emit_tsv, header};
use ace_collectives::Granularity;

fn main() {
    header("Table III: data granularity across ACE's execution levels");
    let g = Granularity::paper_default();
    g.validate().expect("paper defaults are consistent");

    println!("{:>10} | {:>12} | Determined by", "Level", "Size");
    println!(
        "{:>10} | {:>12} | training algorithm",
        "Payload", "(variable)"
    );
    println!(
        "{:>10} | {:>12} | pipelining parameter / storage element size",
        "Chunk",
        format!("{} kB", g.chunk_bytes / 1024)
    );
    println!(
        "{:>10} | {:>12} | algorithm parameter, multiple of node count",
        "Message",
        format!("{} kB", g.message_bytes / 1024)
    );
    println!(
        "{:>10} | {:>12} | link technology (= 1 flit)",
        "Packet",
        format!("{} B", g.packet_bytes)
    );
    emit_tsv(
        "table03",
        &[
            ("chunk_bytes", g.chunk_bytes.to_string()),
            ("message_bytes", g.message_bytes.to_string()),
            ("packet_bytes", g.packet_bytes.to_string()),
        ],
    );

    // Demonstrate the decomposition on a 1 MB payload.
    let payload = 1u64 << 20;
    let chunks = g.chunks(payload);
    println!(
        "\n1 MiB payload -> {} chunks; a {} kB chunk -> {} messages -> {} packets each",
        chunks.len(),
        g.chunk_bytes / 1024,
        g.messages(g.chunk_bytes).len(),
        g.packets(g.message_bytes)
    );
}
