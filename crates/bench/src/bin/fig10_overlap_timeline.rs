//! Fig. 10 — compute/network utilization over time for two training
//! iterations on a 4×8×4 (128-NPU) torus, for each overlapped
//! configuration and each workload.
//!
//! The paper plots per-1K-cycle average compute utilization and the
//! fraction of fabric links scheduling a flit. We render the same series
//! as terminal sparklines (one char ≈ total-time/64) and report summary
//! statistics; `--tsv` dumps the raw buckets.

use ace_bench::{emit_tsv, header, sparkline, subheader, tsv_mode};
use ace_system::{SystemBuilder, SystemConfig};
use ace_workloads::Workload;

const CONFIGS: [SystemConfig; 4] = [
    SystemConfig::BaselineCommOpt,
    SystemConfig::BaselineCompOpt,
    SystemConfig::Ace,
    SystemConfig::Ideal,
];

fn main() {
    header("Fig. 10: compute-communication overlap, 2 iterations on 4x8x4 (128 NPUs)");
    for make in [Workload::resnet50 as fn() -> Workload, Workload::gnmt] {
        run_workload(make());
    }
    run_workload(Workload::dlrm(128));
    println!();
    println!("Paper reference: two bursts of network activity (one per iteration);");
    println!("ACE sustains higher network utilization with shorter total time; the");
    println!("baselines stretch the timeline (CommOpt via slow compute, CompOpt via");
    println!("exposed communication).");
}

fn run_workload(workload: Workload) {
    subheader(workload.name());
    for config in CONFIGS {
        let report = SystemBuilder::new()
            .topology(4, 8, 4)
            .config(config)
            .workload(workload.clone())
            .build()
            .expect("valid system")
            .run();
        let compute = report.compute_series();
        let network = report.network_series();
        let mean_net: f64 = if network.is_empty() {
            0.0
        } else {
            network.iter().sum::<f64>() / network.len() as f64
        };
        println!(
            "[{:>9}] total {:>8.0} us  exposed {:>6.0} us  mean net util {:>5.1}%",
            report.config(),
            report.total_time_us(),
            report.exposed_comm_us(),
            mean_net * 100.0
        );
        println!("  compute |{}|", sparkline(compute, 64));
        println!("  network |{}|", sparkline(network, 64));
        if tsv_mode() {
            for (i, (c, n)) in compute.iter().zip(network.iter()).enumerate() {
                emit_tsv(
                    "fig10",
                    &[
                        ("workload", workload.name().to_string()),
                        ("config", report.config().to_string()),
                        ("bucket", i.to_string()),
                        ("compute", format!("{c:.4}")),
                        ("network", format!("{n:.4}")),
                    ],
                );
            }
        }
    }
}
