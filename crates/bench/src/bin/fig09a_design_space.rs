//! Fig. 9a — ACE design-space exploration: performance vs. SRAM size and
//! FSM count, normalized to the chosen 4 MB / 16 FSM configuration.
//!
//! The paper averages across workloads and system sizes and picks
//! 4 MB / 16 FSMs because larger configurations show diminishing returns
//! ("only 6 % performance improvement is seen for 8 MB SRAM and 20
//! FSMs"). We sweep the same grid on a representative communication
//! pattern (64 MB all-reduce) on 16- and 64-NPU tori and report the
//! geometric-mean completion time normalized to the chosen point, along
//! with the area cost of each configuration from the Table IV model.

use ace_bench::{emit_tsv, header};
use ace_collectives::{CollectiveOp, CollectivePlan};
use ace_endpoint::{AceEndpoint, AceEndpointParams, CollectiveEngine};
use ace_engine::{synthesis, AceConfig};
use ace_mem::BusParams;
use ace_net::{NetworkParams, TorusShape};
use ace_simcore::SimTime;
use ace_system::CollectiveExecutor;

const PAYLOAD: u64 = 64 << 20;

fn run_point(shape: TorusShape, sram_mb: u64, fsms: usize) -> f64 {
    let params = NetworkParams::paper_default();
    let plan = CollectivePlan::for_op(CollectiveOp::AllReduce, shape);
    let weights = CollectiveExecutor::phase_weights(&plan, &params);
    let mut ex = CollectiveExecutor::new(shape, params, move || {
        Box::new(AceEndpoint::new(AceEndpointParams {
            config: AceConfig::with_dse_point(sram_mb, fsms),
            dma_mem_gbps: 128.0,
            bus: BusParams::paper_default(),
            phase_weights: weights.clone(),
        })) as Box<dyn CollectiveEngine>
    });
    let h = ex.issue(CollectiveOp::AllReduce, PAYLOAD, SimTime::ZERO);
    ex.run_until_complete(h).cycles() as f64
}

fn main() {
    header("Fig. 9a: ACE performance vs SRAM size and FSM count");
    let shapes = [TorusShape::new(4, 2, 2).unwrap(), TorusShape::new(4, 4, 4).unwrap()];
    let srams: [u64; 4] = [1, 2, 4, 8];
    let fsms: [usize; 4] = [4, 8, 16, 20];

    // Reference: the paper's chosen point.
    let reference: f64 = shapes.iter().map(|&s| run_point(s, 4, 16).ln()).sum::<f64>();
    let reference = (reference / shapes.len() as f64).exp();

    println!(
        "performance normalized to 4 MB / 16 FSMs (higher is better); area in mm^2\n"
    );
    print!("{:>8}", "SRAM\\FSM");
    for &f in &fsms {
        print!(" | {f:>14}");
    }
    println!();
    for &mb in &srams {
        print!("{:>7}M", mb);
        for &f in &fsms {
            let gm: f64 = shapes.iter().map(|&s| run_point(s, mb, f).ln()).sum::<f64>();
            let gm = (gm / shapes.len() as f64).exp();
            let perf = reference / gm;
            let area = synthesis::total(&AceConfig::with_dse_point(mb, f)).area_mm2();
            print!(" | {perf:>6.3}x {area:>5.2}mm");
            emit_tsv(
                "fig09a",
                &[
                    ("sram_mb", mb.to_string()),
                    ("fsms", f.to_string()),
                    ("norm_perf", format!("{perf:.4}")),
                    ("area_mm2", format!("{area:.3}")),
                ],
            );
        }
        println!();
    }

    println!();
    println!("Paper reference: performance saturates at 4 MB / 16 FSMs; going to");
    println!("8 MB / 20 FSMs buys only ~6% at nearly double the SRAM area.");
}
