//! Fig. 9a — ACE design-space exploration: performance vs. SRAM size and
//! FSM count, normalized to the chosen 4 MB / 16 FSM configuration.
//!
//! The paper averages across workloads and system sizes and picks
//! 4 MB / 16 FSMs because larger configurations show diminishing returns
//! ("only 6 % performance improvement is seen for 8 MB SRAM and 20
//! FSMs"). We sweep the same grid on a representative communication
//! pattern (64 MB all-reduce) on 16- and 64-NPU tori and report the
//! geometric-mean completion time normalized to the chosen point, along
//! with the area cost of each configuration from the Table IV model.
//!
//! The grid is the scenario checked in at
//! `examples/scenarios/design_space.toml`, built here programmatically so
//! the binary runs from any working directory; the per-point speedups vs
//! the 4 MB / 16 FSM baseline geomean into exactly the old normalization.

use ace_bench::{emit_tsv, header};
use ace_engine::{synthesis, AceConfig};
use ace_net::TorusShape;
use ace_sweep::{
    run_scenario, BaselineSpec, EngineFamily, EngineSpec, RunnerOptions, Scenario, SweepOutcome,
};

const PAYLOAD: u64 = 64 << 20;
const SRAMS: [u64; 4] = [1, 2, 4, 8];
const FSMS: [usize; 4] = [4, 8, 16, 20];

/// The Fig. 9a grid — the programmatic twin of
/// `examples/scenarios/design_space.toml`.
fn scenario() -> Scenario {
    let mut sc = Scenario::collective("fig09a-design-space");
    sc.topologies = vec![
        TorusShape::new(4, 2, 2).expect("valid shape").into(),
        TorusShape::new(4, 4, 4).expect("valid shape").into(),
    ];
    sc.engines = vec![EngineFamily::Ace];
    sc.payload_bytes = vec![PAYLOAD];
    sc.mem_gbps = vec![128.0];
    sc.sram_mb = SRAMS.to_vec();
    sc.fsms = FSMS.to_vec();
    sc.baseline = Some(BaselineSpec::Engine(EngineSpec::Ace {
        dma_mem_gbps: 128.0,
        sram_mb: 4,
        fsms: 16,
    }));
    sc
}

/// Geometric-mean speedup vs the chosen point across both tori — the
/// figure's normalized-performance cell.
fn geomean_perf(out: &SweepOutcome, sram_mb: u64, fsms: usize) -> f64 {
    let spec = EngineSpec::Ace {
        dma_mem_gbps: 128.0,
        sram_mb,
        fsms,
    };
    let speedups: Vec<f64> = out
        .collective_results(spec)
        .map(|r| r.speedup_vs_baseline.expect("baseline named"))
        .collect();
    assert!(!speedups.is_empty(), "grid point missing");
    (speedups.iter().map(|s| s.ln()).sum::<f64>() / speedups.len() as f64).exp()
}

fn main() {
    header("Fig. 9a: ACE performance vs SRAM size and FSM count");

    let out = run_scenario(&scenario(), RunnerOptions::default()).expect("valid scenario");

    println!("performance normalized to 4 MB / 16 FSMs (higher is better); area in mm^2\n");
    print!("{:>8}", "SRAM\\FSM");
    for &f in &FSMS {
        print!(" | {f:>14}");
    }
    println!();
    for &mb in &SRAMS {
        print!("{:>7}M", mb);
        for &f in &FSMS {
            let perf = geomean_perf(&out, mb, f);
            let area = synthesis::total(&AceConfig::with_dse_point(mb, f)).area_mm2();
            print!(" | {perf:>6.3}x {area:>5.2}mm");
            emit_tsv(
                "fig09a",
                &[
                    ("sram_mb", mb.to_string()),
                    ("fsms", f.to_string()),
                    ("norm_perf", format!("{perf:.4}")),
                    ("area_mm2", format!("{area:.3}")),
                ],
            );
        }
        println!();
    }

    println!();
    println!("Paper reference: performance saturates at 4 MB / 16 FSMs; going to");
    println!("8 MB / 20 FSMs buys only ~6% at nearly double the SRAM area.");
}
