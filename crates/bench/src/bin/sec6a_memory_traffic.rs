//! Section VI-A — the analytical memory-bandwidth requirement of the
//! baseline vs. ACE, plus a cross-check against the discrete-event
//! simulator's measured per-node memory traffic.

use ace_bench::{emit_tsv, header, subheader};
use ace_collectives::{traffic, CollectiveOp, CollectivePlan};
use ace_net::TorusShape;
use ace_system::{EngineKind, RunSpec};

fn main() {
    header("Section VI-A: endpoint memory traffic, baseline vs ACE");

    subheader("closed-form model");
    let payload = 64u64 << 20;
    for (l, v, h) in [(1, 64, 1), (4, 4, 4), (4, 8, 4)] {
        let shape = TorusShape::new(l, v, h).expect("valid shape");
        let plan = CollectivePlan::for_op(CollectiveOp::AllReduce, shape);
        let sent = plan.bytes_sent_per_node(payload) / payload as f64;
        let base_reads = traffic::baseline_reads_per_network_byte(&plan, payload);
        let ace_reads = traffic::ace_reads_per_network_byte(&plan, payload);
        let reduction = traffic::mem_bw_reduction(&plan, payload);
        println!(
            "{shape}: sends {sent:.3} N per N payload | reads/net-byte: baseline {base_reads:.3}, ACE {ace_reads:.3} | BW reduction {reduction:.2}x"
        );
        println!(
            "   to drive 300 GB/s of network: baseline {:.0} GB/s, ACE {:.0} GB/s",
            traffic::required_mem_bw_gbps(base_reads, 300.0),
            traffic::required_mem_bw_gbps(ace_reads, 300.0)
        );
        emit_tsv(
            "sec6a",
            &[
                ("shape", shape.to_string()),
                ("sent_per_byte", format!("{sent:.4}")),
                ("baseline_reads", format!("{base_reads:.4}")),
                ("ace_reads", format!("{ace_reads:.4}")),
                ("reduction", format!("{reduction:.3}")),
            ],
        );
    }

    subheader("simulator cross-check (64 MB all-reduce, 4x4x4)");
    let shape = TorusShape::new(4, 4, 4).expect("valid shape");
    let base = RunSpec::new(
        shape,
        EngineKind::Baseline {
            comm_mem_gbps: 450.0,
            comm_sms: 6,
        },
        CollectiveOp::AllReduce,
        payload,
    )
    .run()
    .expect("pristine run cannot fail");
    let ace = RunSpec::new(
        shape,
        EngineKind::Ace {
            dma_mem_gbps: 128.0,
        },
        CollectiveOp::AllReduce,
        payload,
    )
    .run()
    .expect("pristine run cannot fail");
    println!(
        "measured per-node HBM traffic: baseline {:.1} MB, ACE {:.1} MB ({:.2}x less)",
        base.mem_traffic_bytes as f64 / 1e6,
        ace.mem_traffic_bytes as f64 / 1e6,
        base.mem_traffic_bytes as f64 / ace.mem_traffic_bytes as f64
    );

    println!();
    println!("Paper reference: the baseline reads 1.5 N bytes per N network bytes");
    println!("(450 GB/s to drive 300 GB/s); ACE sends 2.25 N per N cached on 4x4x4");
    println!("(133 GB/s for the same 300 GB/s) — a ~3.5x reduction in required");
    println!("memory bandwidth.");
}
