//! The unified design-space sweep driver.
//!
//! Loads a declarative TOML scenario (see `examples/scenarios/`), expands
//! it into a cartesian grid, runs every point through the simulator on a
//! parallel work-stealing executor, and emits a terminal table plus
//! optional CSV/JSON reports.
//!
//! ```text
//! sweep examples/scenarios/design_space.toml --csv out.csv --json out.json
//! sweep examples/scenarios/topology_sweep.toml   # tori vs switches vs hierarchical
//! sweep scenario.toml --threads 1          # serial run (byte-identical output)
//! sweep scenario.toml --cache-file sweep.cache   # reuse results across processes
//! ```
//!
//! Beyond one-shot runs, the binary hosts the resident sweep service:
//!
//! ```text
//! sweep serve --journal sweep.journal &    # daemon on sweep.journal.sock
//! sweep submit scenario.toml --csv out.csv # run through the warm daemon
//! sweep ctl stats                          # cache occupancy
//! sweep ctl shutdown                       # graceful stop
//! ```

use std::io::{BufRead, BufReader, IsTerminal, Write};
use std::os::unix::net::UnixStream;
use std::path::{Path, PathBuf};
use std::process::ExitCode;
use std::sync::Arc;

use ace_bench::{header, subheader};
use ace_sweep::protocol::{self, Request, Value};
use ace_sweep::{
    persist, report, CacheFileLock, Fidelity, PointKind, Progress, RunnerOptions, Scenario,
    ServiceOptions, SweepRunner, SweepService,
};
use ace_trace::{chrome, RecordingTracer};

struct Args {
    scenario_path: String,
    threads: usize,
    sim_threads: usize,
    csv: Option<String>,
    json: Option<String>,
    cache_file: Option<String>,
    fidelity: Option<Fidelity>,
    quiet: bool,
    progress: Option<bool>,
    trace: Option<String>,
    attribution: bool,
}

const USAGE: &str = "usage: sweep <scenario.toml> [--threads N] [--sim-threads N] [--csv PATH] \
                     [--json PATH] [--cache-file PATH] [--fidelity exact|analytic|hybrid] [--quiet]\n\
                     \x20      [--progress | --no-progress] [--trace PATH] [--attribution]\n\
                     \x20      sweep serve [--socket PATH] [--journal PATH] [--threads N] \
                     [--sim-threads N] [--cache-file PATH] [--stdio]\n\
                     \x20      sweep submit <scenario.toml> [--socket PATH] [--csv PATH] \
                     [--threads N] [--fidelity F] [--inline]\n\
                     \x20      sweep ctl <stats|shutdown> [--socket PATH]\n\
                     \n\
                     --threads runs N whole grid cells concurrently (0 = machine\n\
                     parallelism); --sim-threads partitions the event loop of each\n\
                     *individual* exact simulation across N workers (domain\n\
                     decomposition with conservative lookahead windows). Results are\n\
                     byte-identical for every --sim-threads value, so cached cells and\n\
                     reports never depend on it; use it to speed up grids of few large\n\
                     fabrics where --threads alone cannot fill the machine.\n\
                     \n\
                     --progress renders a live `cells done/total, pts/s, ETA` line on\n\
                     stderr (default: on when stderr is a terminal; --quiet or\n\
                     --no-progress disables it). --trace re-runs the first grid cell\n\
                     with event recording enabled and writes a Chrome/Perfetto\n\
                     trace_event JSON (load it at https://ui.perfetto.dev or\n\
                     chrome://tracing). --attribution appends the per-row bottleneck\n\
                     decomposition columns (attr_*_cycles) to --csv/--json output.\n\
                     \n\
                     --fidelity (or the scenario key `fidelity`) picks the simulation\n\
                     tier: `exact` runs the event-driven executor for every cell (the\n\
                     default), `analytic` the closed-form alpha-beta estimator, and\n\
                     `hybrid` triages the grid analytically and re-simulates only the\n\
                     Pareto frontier plus the top-K% fastest cells per group exactly\n\
                     (scenario key `hybrid_top_pct`, default 10). The CLI flag\n\
                     overrides the scenario. Cache files key rows by fidelity tier, so\n\
                     analytic estimates never alias exact results.\n\
                     \n\
                     `serve` starts the resident daemon: scenarios submitted over the\n\
                     unix socket (default `<journal>.sock`, else `ace-sweep.sock`)\n\
                     reuse the warm in-memory cache, and with --journal every executed\n\
                     cell is flushed to an append-only write-ahead log so a killed\n\
                     daemon resumes mid-grid on restart. `submit` runs one scenario\n\
                     through the daemon (byte-identical CSV to a one-shot run);\n\
                     `ctl stats`/`ctl shutdown` query and stop it. See README\n\
                     \"Sweep service\" for the protocol reference.\n\
                     \n\
                     The scenario's `topologies` axis accepts tori (\"4x2x2\", \"4x8\"),\n\
                     switches (\"switch:16\", \"switch:16@100\"), and hierarchical fabrics\n\
                     (\"hier:4x8\"); see examples/scenarios/topology_sweep.toml.\n\
                     The training-mode `workloads` axis accepts builtins (\"resnet50\",\n\
                     \"gnmt\", \"dlrm\", \"transformer\"), re-parallelized builtins\n\
                     (\"transformer@model\"), and custom TOML models\n\
                     (\"file:my_model.toml\", relative to the scenario file); see\n\
                     examples/scenarios/custom_workload.toml.\n\
                     \n\
                     `mode = \"serving\"` scenarios sweep continuous-batching inference\n\
                     serving instead of training iterations: `arrival_rates` (req/s),\n\
                     `schedules` ([\"gpipe\", \"1f1b\"]) and `microbatches` are grid axes;\n\
                     `arrival` (poisson | bursty:N | trace:file.txt), `stages`,\n\
                     `requests`, `seed`, `prompt_tokens`, `decode_tokens` and\n\
                     `token_budget` shape the request stream. Reports gain per-point\n\
                     ttft_p50/p95/p99, e2e_p50/p95/p99 and goodput_rps columns; see\n\
                     examples/scenarios/serving_sweep.toml.";

fn parse_args(argv: impl Iterator<Item = String>) -> Result<Args, String> {
    let mut scenario_path = None;
    let mut threads = 0usize;
    let mut sim_threads = 0usize;
    let mut csv = None;
    let mut json = None;
    let mut cache_file = None;
    let mut fidelity = None;
    let mut quiet = false;
    let mut progress = None;
    let mut trace = None;
    let mut attribution = false;
    let mut argv = argv.peekable();
    while let Some(arg) = argv.next() {
        match arg.as_str() {
            "--threads" => {
                let v = argv.next().ok_or("--threads needs a value")?;
                threads = v.parse().map_err(|_| format!("bad thread count '{v}'"))?;
            }
            "--sim-threads" => {
                let v = argv.next().ok_or("--sim-threads needs a value")?;
                sim_threads = v
                    .parse()
                    .map_err(|_| format!("bad sim-thread count '{v}'"))?;
            }
            "--csv" => csv = Some(argv.next().ok_or("--csv needs a path")?),
            "--json" => json = Some(argv.next().ok_or("--json needs a path")?),
            "--cache-file" => cache_file = Some(argv.next().ok_or("--cache-file needs a path")?),
            "--fidelity" => {
                let v = argv.next().ok_or("--fidelity needs a value")?;
                fidelity = Some(v.parse::<Fidelity>()?);
            }
            "--quiet" => quiet = true,
            "--progress" => progress = Some(true),
            "--no-progress" => progress = Some(false),
            "--trace" => trace = Some(argv.next().ok_or("--trace needs a path")?),
            "--attribution" => attribution = true,
            "--help" | "-h" => {
                // Requested help is not an error: usage on stdout, exit 0.
                println!("{USAGE}");
                std::process::exit(0);
            }
            other if other.starts_with('-') => {
                return Err(format!("unknown flag {other}\n{USAGE}"))
            }
            other => {
                if scenario_path.replace(other.to_string()).is_some() {
                    return Err(format!("multiple scenario files given\n{USAGE}"));
                }
            }
        }
    }
    let scenario_path = scenario_path.ok_or(USAGE.to_string())?;
    Ok(Args {
        scenario_path,
        threads,
        sim_threads,
        csv,
        json,
        cache_file,
        fidelity,
        quiet,
        progress,
        trace,
        attribution,
    })
}

/// Re-runs the first grid cell with a [`RecordingTracer`] and renders the
/// events as Chrome `trace_event` JSON. One representative cell keeps the
/// file loadable; tracing the whole grid would interleave unrelated runs
/// on the same tracks.
fn trace_first_point(scenario: &Scenario) -> Result<String, String> {
    let points = ace_sweep::expand(scenario);
    let point = points.first().ok_or("empty grid: nothing to trace")?;
    let tracer = match &point.kind {
        PointKind::Collective {
            engine,
            op,
            payload_bytes,
        } => {
            let (_, tracer) = ace_system::RunSpec::new(
                point.topology,
                engine.to_engine_kind(),
                *op,
                *payload_bytes,
            )
            .conditions(point.conditions.clone())
            .traced()
            .run_traced()
            .map_err(|e| e.to_string())?;
            tracer
        }
        PointKind::Training {
            config,
            workload,
            iterations,
            optimized_embedding,
        } => {
            let sim = ace_system::SystemBuilder::new()
                .topology_spec(point.topology)
                .config(*config)
                .workload(workload.instantiate(point.topology.nodes()))
                .iterations(*iterations)
                .optimized_embedding(*optimized_embedding)
                .build_traced(RecordingTracer::new())
                .map_err(|e| format!("trace point: {e}"))?;
            let (_, tracer) = sim.run_with_tracer();
            tracer
        }
        PointKind::Serving {
            config,
            workload,
            spec,
        } => {
            // One representative round: the cold-start prefill the
            // serving loop would simulate first.
            let program =
                ace_serve::first_round_program(&workload.instantiate(point.topology.nodes()), spec)
                    .map_err(|e| format!("trace point: {e}"))?;
            let sim = ace_system::TrainingSim::from_program_with_tracer(
                *config,
                program,
                point.topology,
                ace_compute::NpuParams::paper_default(),
                ace_net::NetworkParams::paper_default(),
                RecordingTracer::new(),
            );
            let (_, tracer) = sim.run_with_tracer();
            tracer
        }
    };
    if tracer.dropped() > 0 {
        eprintln!(
            "warning: trace arena overflowed, {} events dropped",
            tracer.dropped()
        );
    }
    Ok(chrome::to_chrome_json(&tracer))
}

/// The in-place progress line: `cells done/total (cached), pts/s, ETA`.
/// Rendered on stderr so piped stdout output stays clean; a trailing
/// newline is emitted when the batch completes — including fully warm
/// batches, which arrive already at `done == total`.
fn render_progress(start: std::time::Instant, p: Progress) {
    let mut err = std::io::stderr().lock();
    if p.executed() == 0 {
        // Nothing simulated yet — either the batch just started or every
        // cell was served from the cache. A rate over zero executed cells
        // is meaningless (the old code divided by ~0 and printed an
        // astronomical ETA on fully warm runs); show plain progress.
        let pct = if p.total > 0 {
            100.0 * p.done as f64 / p.total as f64
        } else {
            100.0
        };
        let _ = write!(
            err,
            "\rcells {}/{} ({} cached), {pct:.0}%   ",
            p.done, p.total, p.cached
        );
    } else {
        let secs = start.elapsed().as_secs_f64();
        let pps = p.executed() as f64 / secs.max(1e-9);
        let eta = (p.total.saturating_sub(p.done)) as f64 / pps;
        let _ = write!(
            err,
            "\rcells {}/{} ({} cached), {pps:.1} pts/s, ETA {eta:.0}s   ",
            p.done, p.total, p.cached
        );
    }
    if p.finished() {
        let _ = writeln!(err);
    }
    let _ = err.flush();
}

/// Whether to render live progress given the flags and terminal state.
fn progress_enabled(quiet: bool, flag: Option<bool>) -> bool {
    !quiet && flag.unwrap_or_else(|| std::io::stderr().is_terminal())
}

fn run_oneshot(args: Args) -> Result<(), String> {
    // Relative `file:` workload references resolve against the scenario
    // file's directory, so scenarios ship next to the models they use.
    let mut scenario = Scenario::from_toml_path(&args.scenario_path).map_err(|e| e.to_string())?;
    if let Some(f) = args.fidelity {
        scenario.fidelity = f;
    }

    if !args.quiet {
        header(&format!(
            "sweep: {} ({} mode, {} fidelity)",
            scenario.name, scenario.mode, scenario.fidelity
        ));
        println!(
            "grid: {} points ({} topologies)",
            ace_sweep::grid_len(&scenario),
            scenario.topologies.len()
        );
    }

    // A persistent cache makes repeated sweeps across processes reuse
    // results: a missing file starts empty, anything else must parse.
    // The lock file (held until the post-run save completes) keeps two
    // concurrent processes from interleaving saves; saves themselves are
    // atomic temp-file + rename.
    let (_lock, runner) = match &args.cache_file {
        Some(path) => {
            let lock = CacheFileLock::acquire(path)?;
            let cache = persist::load_cache(path)?;
            if !args.quiet && !cache.is_empty() {
                println!("cache: {} points loaded from {path}", cache.len());
            }
            (Some(lock), SweepRunner::with_cache(cache))
        }
        None => (None, SweepRunner::new()),
    };
    // Progress defaults on only for interactive stderr; --quiet wins.
    let progress_on = progress_enabled(args.quiet, args.progress);
    let start = std::time::Instant::now();
    let progress: &(dyn Fn(Progress) + Sync) = if progress_on {
        &move |p| render_progress(start, p)
    } else {
        &|_| {}
    };
    let outcome = runner.run_with_progress(
        &scenario,
        RunnerOptions {
            threads: args.threads,
            sim_threads: args.sim_threads,
        },
        progress,
    )?;
    // An event scheduled in the past is clamped, not dropped — the run
    // finishes, but its timing is suspect. Surface it instead of burying
    // it in a CSV column nobody reads.
    let clamped = outcome.total_past_schedules();
    if clamped > 0 {
        eprintln!(
            "warning: {clamped} event(s) were scheduled in the past and clamped; \
             affected rows carry nonzero past_schedules"
        );
    }
    if let Some(path) = &args.cache_file {
        persist::save_cache(runner.cache(), path)?;
        if !args.quiet {
            println!("cache: {} points saved to {path}", runner.cache().len());
        }
    }

    if !args.quiet {
        subheader("results");
        println!(
            "{:<52} {:>14} {:>10} {:>9} {:>6}",
            "point", "time us", "GB/s/NPU", "speedup", "cache"
        );
        for r in &outcome.results {
            println!(
                "{:<52} {:>14.3} {:>10.3} {:>9} {:>6}",
                r.point.label(),
                r.metrics.time_us,
                r.metrics.gbps_per_npu,
                r.speedup_vs_baseline
                    .map(|s| format!("{s:.3}x"))
                    .unwrap_or_else(|| "-".to_string()),
                if r.cache_hit { "hit" } else { "" },
            );
        }
        println!(
            "\n{} grid cells, {} simulated, {} cache hits",
            outcome.results.len(),
            outcome.executed,
            outcome.cache_hits
        );
        if outcome.fidelity == Fidelity::Hybrid {
            println!(
                "hybrid prefilter: {} cells triaged analytically, {} re-simulated exactly \
                 ({} exact simulations avoided)",
                outcome.analytic_executed,
                outcome.executed,
                outcome.results.len().saturating_sub(outcome.exact_rows()),
            );
        } else if outcome.fidelity == Fidelity::Analytic {
            println!(
                "analytic tier: {} cells estimated, 0 event-driven simulations",
                outcome.analytic_executed
            );
        }
        let summaries = report::summarize(&outcome);
        if !summaries.is_empty() {
            subheader("per-axis speedup vs baseline");
            print!("{}", report::summary_table(&summaries));
        }
    }

    if let Some(path) = &args.csv {
        let csv = if args.attribution {
            report::to_csv_with_attribution(&outcome)
        } else {
            report::to_csv(&outcome)
        };
        std::fs::write(path, csv).map_err(|e| format!("write {path}: {e}"))?;
        if !args.quiet {
            println!("wrote {path}");
        }
    }
    if let Some(path) = &args.json {
        let json = if args.attribution {
            report::to_json_with_attribution(&outcome)
        } else {
            report::to_json(&outcome)
        };
        std::fs::write(path, json).map_err(|e| format!("write {path}: {e}"))?;
        if !args.quiet {
            println!("wrote {path}");
        }
    }
    if let Some(path) = &args.trace {
        std::fs::write(path, trace_first_point(&scenario)?)
            .map_err(|e| format!("write {path}: {e}"))?;
        if !args.quiet {
            println!("wrote trace {path} (load at https://ui.perfetto.dev)");
        }
    }
    Ok(())
}

// ---------------------------------------------------------------------
// `sweep serve` — the resident daemon.
// ---------------------------------------------------------------------

struct ServeArgs {
    socket: Option<String>,
    journal: Option<String>,
    cache_file: Option<String>,
    threads: usize,
    sim_threads: usize,
    stdio: bool,
    quiet: bool,
}

fn parse_serve_args(mut argv: impl Iterator<Item = String>) -> Result<ServeArgs, String> {
    let mut args = ServeArgs {
        socket: None,
        journal: None,
        cache_file: None,
        threads: 0,
        sim_threads: 0,
        stdio: false,
        quiet: false,
    };
    while let Some(arg) = argv.next() {
        match arg.as_str() {
            "--socket" => args.socket = Some(argv.next().ok_or("--socket needs a path")?),
            "--journal" => args.journal = Some(argv.next().ok_or("--journal needs a path")?),
            "--cache-file" => {
                args.cache_file = Some(argv.next().ok_or("--cache-file needs a path")?)
            }
            "--threads" => {
                let v = argv.next().ok_or("--threads needs a value")?;
                args.threads = v.parse().map_err(|_| format!("bad thread count '{v}'"))?;
            }
            "--sim-threads" => {
                let v = argv.next().ok_or("--sim-threads needs a value")?;
                args.sim_threads = v
                    .parse()
                    .map_err(|_| format!("bad sim-thread count '{v}'"))?;
            }
            "--stdio" => args.stdio = true,
            "--quiet" => args.quiet = true,
            "--help" | "-h" => {
                println!("{USAGE}");
                std::process::exit(0);
            }
            other => return Err(format!("unknown serve argument {other}\n{USAGE}")),
        }
    }
    Ok(args)
}

/// The socket path convention: explicit `--socket` wins, else
/// `<journal>.sock` next to the journal, else `ace-sweep.sock` in the
/// working directory.
fn default_socket(socket: &Option<String>, journal: &Option<String>) -> PathBuf {
    if let Some(s) = socket {
        return PathBuf::from(s);
    }
    match journal {
        Some(j) => PathBuf::from(format!("{j}.sock")),
        None => PathBuf::from("ace-sweep.sock"),
    }
}

fn run_serve(args: ServeArgs) -> Result<(), String> {
    let mut service = SweepService::open(ServiceOptions {
        threads: args.threads,
        sim_threads: args.sim_threads,
        journal: args.journal.as_ref().map(PathBuf::from),
    })?;
    if !args.quiet {
        let (entries, _, _) = service.scheduler().cache().tier_counts();
        if entries > 0 {
            eprintln!("sweep serve: journal replayed {entries} cached cells");
        }
    }
    // An optional cache file seeds the warm cache beyond the journal.
    if let Some(path) = &args.cache_file {
        let lock = CacheFileLock::acquire(path)?;
        let seeded = persist::load_cache(path)?;
        for (t, p, m) in seeded.entries() {
            service.scheduler().cache().insert_tier(t, p, m);
        }
        drop(lock);
    }
    // Finish what a killed predecessor left mid-grid before accepting new
    // work: replayed cells are cache hits, only the remainder executes.
    for (name, result) in service.resume_pending(|_, _| {}) {
        match result {
            Ok(outcome) => eprintln!(
                "sweep serve: resumed '{name}' ({} points, {} executed, {} cache hits)",
                outcome.results.len(),
                outcome.executed,
                outcome.cache_hits
            ),
            Err(e) => eprintln!("sweep serve: resume of '{name}' failed: {e}"),
        }
    }
    let service = Arc::new(service);
    if args.stdio {
        if !args.quiet {
            eprintln!("sweep serve: speaking the protocol on stdin/stdout");
        }
        service.serve_stream(std::io::stdin().lock(), std::io::stdout().lock())?;
    } else {
        let socket = default_socket(&args.socket, &args.journal);
        if !args.quiet {
            eprintln!(
                "sweep serve: listening on {} ({}; stop with `sweep ctl shutdown --socket {0}`)",
                socket.display(),
                args.journal
                    .as_deref()
                    .map(|j| format!("journal {j}"))
                    .unwrap_or_else(|| "no journal".to_string()),
            );
        }
        service.serve_socket(&socket)?;
    }
    // Persist the warm cache for later cold runs, if asked.
    if let Some(path) = &args.cache_file {
        let lock = CacheFileLock::acquire(path)?;
        persist::save_cache(service.scheduler().cache(), path)?;
        drop(lock);
        if !args.quiet {
            eprintln!(
                "sweep serve: saved {} points to {path}",
                service.scheduler().cache().len()
            );
        }
    }
    Ok(())
}

// ---------------------------------------------------------------------
// `sweep submit` — the daemon client.
// ---------------------------------------------------------------------

struct SubmitArgs {
    scenario_path: String,
    socket: Option<String>,
    csv: Option<String>,
    threads: Option<usize>,
    fidelity: Option<Fidelity>,
    inline: bool,
    quiet: bool,
    progress: Option<bool>,
}

fn parse_submit_args(mut argv: impl Iterator<Item = String>) -> Result<SubmitArgs, String> {
    let mut scenario_path = None;
    let mut args = SubmitArgs {
        scenario_path: String::new(),
        socket: None,
        csv: None,
        threads: None,
        fidelity: None,
        inline: false,
        quiet: false,
        progress: None,
    };
    while let Some(arg) = argv.next() {
        match arg.as_str() {
            "--socket" => args.socket = Some(argv.next().ok_or("--socket needs a path")?),
            "--csv" => args.csv = Some(argv.next().ok_or("--csv needs a path")?),
            "--threads" => {
                let v = argv.next().ok_or("--threads needs a value")?;
                args.threads = Some(v.parse().map_err(|_| format!("bad thread count '{v}'"))?);
            }
            "--fidelity" => {
                let v = argv.next().ok_or("--fidelity needs a value")?;
                args.fidelity = Some(v.parse::<Fidelity>()?);
            }
            "--inline" => args.inline = true,
            "--quiet" => args.quiet = true,
            "--progress" => args.progress = Some(true),
            "--no-progress" => args.progress = Some(false),
            "--help" | "-h" => {
                println!("{USAGE}");
                std::process::exit(0);
            }
            other if other.starts_with('-') => {
                return Err(format!("unknown submit argument {other}\n{USAGE}"))
            }
            other => {
                if scenario_path.replace(other.to_string()).is_some() {
                    return Err(format!("multiple scenario files given\n{USAGE}"));
                }
            }
        }
    }
    args.scenario_path = scenario_path.ok_or(format!("submit needs a scenario file\n{USAGE}"))?;
    Ok(args)
}

fn connect(socket: &Option<String>) -> Result<UnixStream, String> {
    let path = default_socket(socket, &None);
    UnixStream::connect(&path).map_err(|e| {
        format!(
            "cannot connect to sweep daemon at {}: {e} (start one with `sweep serve`)",
            path.display()
        )
    })
}

fn run_submit(args: SubmitArgs) -> Result<(), String> {
    let stream = connect(&args.socket)?;
    let mut writer = stream
        .try_clone()
        .map_err(|e| format!("cannot clone connection: {e}"))?;

    // By default the daemon reads the scenario by (absolute) path, so
    // relative `file:` workload references resolve exactly as in a
    // one-shot run; --inline ships the TOML text over the wire instead
    // (with the scenario's directory as the resolution base).
    let request = if args.inline {
        let toml = std::fs::read_to_string(&args.scenario_path)
            .map_err(|e| format!("cannot read scenario {}: {e}", args.scenario_path))?;
        let base = Path::new(&args.scenario_path)
            .canonicalize()
            .ok()
            .and_then(|p| p.parent().map(|d| d.to_string_lossy().into_owned()));
        Request::Submit {
            toml: Some(toml),
            path: None,
            base,
            threads: args.threads,
            fidelity: args.fidelity,
        }
    } else {
        let path = Path::new(&args.scenario_path)
            .canonicalize()
            .map_err(|e| format!("cannot resolve scenario {}: {e}", args.scenario_path))?;
        Request::Submit {
            toml: None,
            path: Some(path.to_string_lossy().into_owned()),
            base: None,
            threads: args.threads,
            fidelity: args.fidelity,
        }
    };
    writeln!(writer, "{}", protocol::request_line(&request))
        .map_err(|e| format!("cannot send request: {e}"))?;

    let progress_on = progress_enabled(args.quiet, args.progress);
    let start = std::time::Instant::now();
    let mut cached = 0usize;
    let mut total = 0usize;
    let mut csv: Option<String> = None;
    for line in BufReader::new(stream).lines() {
        let line = line.map_err(|e| format!("daemon connection lost: {e}"))?;
        let map = protocol::parse_object(&line).map_err(|e| format!("bad daemon reply: {e}"))?;
        let event = map
            .get("event")
            .and_then(Value::as_str)
            .ok_or("daemon reply missing \"event\"")?;
        let num = |k: &str| map.get(k).and_then(Value::as_num).unwrap_or(0.0) as usize;
        match event {
            "accepted" => {
                if !args.quiet {
                    header(&format!(
                        "sweep (daemon job {}): {} ({} mode, {} fidelity)",
                        num("job"),
                        map.get("scenario").and_then(Value::as_str).unwrap_or("?"),
                        map.get("mode").and_then(Value::as_str).unwrap_or("?"),
                        map.get("fidelity").and_then(Value::as_str).unwrap_or("?"),
                    ));
                    println!("grid: {} points", num("cells"));
                }
            }
            "batch" => {
                cached = num("cached");
                total = num("queued") + cached;
                if progress_on {
                    render_progress(
                        start,
                        Progress {
                            done: cached,
                            total,
                            cached,
                        },
                    );
                }
            }
            "cell" => {
                if progress_on {
                    render_progress(
                        start,
                        Progress {
                            done: cached + num("index"),
                            total,
                            cached,
                        },
                    );
                }
            }
            "finished" => {
                if !args.quiet {
                    println!(
                        "{} grid cells, {} simulated, {} cache hits",
                        num("points"),
                        num("executed"),
                        num("cache_hits")
                    );
                }
            }
            "stats" => {} // trailing cache occupancy; informational
            "result" => {
                csv = map.get("csv").and_then(Value::as_str).map(str::to_string);
                break;
            }
            "superseded" => {
                return Err("submission superseded by a newer one of the same name".into())
            }
            "failed" => {
                return Err(format!(
                    "job failed: {}",
                    map.get("error").and_then(Value::as_str).unwrap_or("?")
                ))
            }
            "error" => {
                return Err(map
                    .get("error")
                    .and_then(Value::as_str)
                    .unwrap_or("daemon error")
                    .to_string())
            }
            other => return Err(format!("unexpected daemon event \"{other}\"")),
        }
    }
    let csv = csv.ok_or("daemon closed the stream without a result")?;
    match &args.csv {
        Some(path) => {
            std::fs::write(path, &csv).map_err(|e| format!("write {path}: {e}"))?;
            if !args.quiet {
                println!("wrote {path}");
            }
        }
        // Without --csv the result goes to stdout, like `--csv /dev/stdout`.
        None => print!("{csv}"),
    }
    Ok(())
}

// ---------------------------------------------------------------------
// `sweep ctl` — daemon control.
// ---------------------------------------------------------------------

fn run_ctl(mut argv: impl Iterator<Item = String>) -> Result<(), String> {
    let action = argv.next().ok_or(format!("ctl needs an action\n{USAGE}"))?;
    let mut socket = None;
    while let Some(arg) = argv.next() {
        match arg.as_str() {
            "--socket" => socket = Some(argv.next().ok_or("--socket needs a path")?),
            other => return Err(format!("unknown ctl argument {other}\n{USAGE}")),
        }
    }
    let request = match action.as_str() {
        "stats" => Request::Stats,
        "shutdown" => Request::Shutdown,
        other => {
            return Err(format!(
                "unknown ctl action '{other}' (stats|shutdown)\n{USAGE}"
            ))
        }
    };
    let stream = connect(&socket)?;
    let mut writer = stream
        .try_clone()
        .map_err(|e| format!("cannot clone connection: {e}"))?;
    writeln!(writer, "{}", protocol::request_line(&request))
        .map_err(|e| format!("cannot send request: {e}"))?;
    let mut reader = BufReader::new(stream);
    let mut line = String::new();
    reader
        .read_line(&mut line)
        .map_err(|e| format!("daemon connection lost: {e}"))?;
    let map = protocol::parse_object(line.trim()).map_err(|e| format!("bad daemon reply: {e}"))?;
    match map.get("event").and_then(Value::as_str) {
        Some("stats") => {
            let num = |k: &str| map.get(k).and_then(Value::as_num).unwrap_or(0.0) as usize;
            println!(
                "cache: {} entries ({} exact, {} analytic)",
                num("entries"),
                num("exact"),
                num("analytic")
            );
        }
        Some("shutdown") => println!("daemon is shutting down"),
        Some(other) => return Err(format!("unexpected daemon event \"{other}\"")),
        None => return Err("daemon reply missing \"event\"".into()),
    }
    Ok(())
}

fn run() -> Result<(), String> {
    let mut argv = std::env::args().skip(1).peekable();
    match argv.peek().map(String::as_str) {
        Some("serve") => {
            argv.next();
            run_serve(parse_serve_args(argv)?)
        }
        Some("submit") => {
            argv.next();
            run_submit(parse_submit_args(argv)?)
        }
        Some("ctl") => {
            argv.next();
            run_ctl(argv)
        }
        _ => run_oneshot(parse_args(argv)?),
    }
}

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("{msg}");
            ExitCode::FAILURE
        }
    }
}
