//! The unified design-space sweep driver.
//!
//! Loads a declarative TOML scenario (see `examples/scenarios/`), expands
//! it into a cartesian grid, runs every point through the simulator on a
//! parallel work-stealing executor, and emits a terminal table plus
//! optional CSV/JSON reports.
//!
//! ```text
//! sweep examples/scenarios/design_space.toml --csv out.csv --json out.json
//! sweep examples/scenarios/topology_sweep.toml   # tori vs switches vs hierarchical
//! sweep scenario.toml --threads 1          # serial run (byte-identical output)
//! sweep scenario.toml --cache-file sweep.cache   # reuse results across processes
//! ```

use std::io::{IsTerminal, Write};
use std::process::ExitCode;

use ace_bench::{header, subheader};
use ace_sweep::{persist, report, Fidelity, PointKind, RunnerOptions, Scenario, SweepRunner};
use ace_trace::{chrome, RecordingTracer};

struct Args {
    scenario_path: String,
    threads: usize,
    csv: Option<String>,
    json: Option<String>,
    cache_file: Option<String>,
    fidelity: Option<Fidelity>,
    quiet: bool,
    progress: Option<bool>,
    trace: Option<String>,
    attribution: bool,
}

const USAGE: &str = "usage: sweep <scenario.toml> [--threads N] [--csv PATH] [--json PATH] \
                     [--cache-file PATH] [--fidelity exact|analytic|hybrid] [--quiet]\n\
                     \x20      [--progress | --no-progress] [--trace PATH] [--attribution]\n\
                     \n\
                     --progress renders a live `cells done/total, pts/s, ETA` line on\n\
                     stderr (default: on when stderr is a terminal; --quiet or\n\
                     --no-progress disables it). --trace re-runs the first grid cell\n\
                     with event recording enabled and writes a Chrome/Perfetto\n\
                     trace_event JSON (load it at https://ui.perfetto.dev or\n\
                     chrome://tracing). --attribution appends the per-row bottleneck\n\
                     decomposition columns (attr_*_cycles) to --csv/--json output.\n\
                     \n\
                     --fidelity (or the scenario key `fidelity`) picks the simulation\n\
                     tier: `exact` runs the event-driven executor for every cell (the\n\
                     default), `analytic` the closed-form alpha-beta estimator, and\n\
                     `hybrid` triages the grid analytically and re-simulates only the\n\
                     Pareto frontier plus the top-K% fastest cells per group exactly\n\
                     (scenario key `hybrid_top_pct`, default 10). The CLI flag\n\
                     overrides the scenario. Cache files key rows by fidelity tier, so\n\
                     analytic estimates never alias exact results.\n\
                     \n\
                     The scenario's `topologies` axis accepts tori (\"4x2x2\", \"4x8\"),\n\
                     switches (\"switch:16\", \"switch:16@100\"), and hierarchical fabrics\n\
                     (\"hier:4x8\"); see examples/scenarios/topology_sweep.toml.\n\
                     The training-mode `workloads` axis accepts builtins (\"resnet50\",\n\
                     \"gnmt\", \"dlrm\", \"transformer\"), re-parallelized builtins\n\
                     (\"transformer@model\"), and custom TOML models\n\
                     (\"file:my_model.toml\", relative to the scenario file); see\n\
                     examples/scenarios/custom_workload.toml.";

fn parse_args() -> Result<Args, String> {
    let mut scenario_path = None;
    let mut threads = 0usize;
    let mut csv = None;
    let mut json = None;
    let mut cache_file = None;
    let mut fidelity = None;
    let mut quiet = false;
    let mut progress = None;
    let mut trace = None;
    let mut attribution = false;
    let mut argv = std::env::args().skip(1);
    while let Some(arg) = argv.next() {
        match arg.as_str() {
            "--threads" => {
                let v = argv.next().ok_or("--threads needs a value")?;
                threads = v.parse().map_err(|_| format!("bad thread count '{v}'"))?;
            }
            "--csv" => csv = Some(argv.next().ok_or("--csv needs a path")?),
            "--json" => json = Some(argv.next().ok_or("--json needs a path")?),
            "--cache-file" => cache_file = Some(argv.next().ok_or("--cache-file needs a path")?),
            "--fidelity" => {
                let v = argv.next().ok_or("--fidelity needs a value")?;
                fidelity = Some(v.parse::<Fidelity>()?);
            }
            "--quiet" => quiet = true,
            "--progress" => progress = Some(true),
            "--no-progress" => progress = Some(false),
            "--trace" => trace = Some(argv.next().ok_or("--trace needs a path")?),
            "--attribution" => attribution = true,
            "--help" | "-h" => {
                // Requested help is not an error: usage on stdout, exit 0.
                println!("{USAGE}");
                std::process::exit(0);
            }
            other if other.starts_with('-') => {
                return Err(format!("unknown flag {other}\n{USAGE}"))
            }
            other => {
                if scenario_path.replace(other.to_string()).is_some() {
                    return Err(format!("multiple scenario files given\n{USAGE}"));
                }
            }
        }
    }
    let scenario_path = scenario_path.ok_or(USAGE.to_string())?;
    Ok(Args {
        scenario_path,
        threads,
        csv,
        json,
        cache_file,
        fidelity,
        quiet,
        progress,
        trace,
        attribution,
    })
}

/// Re-runs the first grid cell with a [`RecordingTracer`] and renders the
/// events as Chrome `trace_event` JSON. One representative cell keeps the
/// file loadable; tracing the whole grid would interleave unrelated runs
/// on the same tracks.
fn trace_first_point(scenario: &Scenario) -> Result<String, String> {
    let points = ace_sweep::expand(scenario);
    let point = points.first().ok_or("empty grid: nothing to trace")?;
    let tracer = match &point.kind {
        PointKind::Collective {
            engine,
            op,
            payload_bytes,
        } => {
            let (_, tracer) = ace_system::run_single_collective_traced(
                point.topology,
                engine.to_engine_kind(),
                *op,
                *payload_bytes,
            );
            tracer
        }
        PointKind::Training {
            config,
            workload,
            iterations,
            optimized_embedding,
        } => {
            let sim = ace_system::SystemBuilder::new()
                .topology_spec(point.topology)
                .config(*config)
                .workload(workload.instantiate(point.topology.nodes()))
                .iterations(*iterations)
                .optimized_embedding(*optimized_embedding)
                .build_traced(RecordingTracer::new())
                .map_err(|e| format!("trace point: {e}"))?;
            let (_, tracer) = sim.run_with_tracer();
            tracer
        }
    };
    if tracer.dropped() > 0 {
        eprintln!(
            "warning: trace arena overflowed, {} events dropped",
            tracer.dropped()
        );
    }
    Ok(chrome::to_chrome_json(&tracer))
}

/// The in-place progress line: `cells done/total, pts/s, ETA`. Rendered
/// on stderr so piped stdout output stays clean; a trailing newline is
/// emitted when a batch finishes.
fn render_progress(start: std::time::Instant, done: usize, total: usize) {
    let secs = start.elapsed().as_secs_f64();
    let pps = done as f64 / secs.max(1e-9);
    let eta = (total.saturating_sub(done)) as f64 / pps.max(1e-9);
    let mut err = std::io::stderr().lock();
    let _ = write!(
        err,
        "\rcells {done}/{total}, {pps:.1} pts/s, ETA {eta:.0}s   "
    );
    if done == total {
        let _ = writeln!(err);
    }
    let _ = err.flush();
}

fn run() -> Result<(), String> {
    let args = parse_args()?;
    // Relative `file:` workload references resolve against the scenario
    // file's directory, so scenarios ship next to the models they use.
    let mut scenario = Scenario::from_toml_path(&args.scenario_path).map_err(|e| e.to_string())?;
    if let Some(f) = args.fidelity {
        scenario.fidelity = f;
    }

    if !args.quiet {
        header(&format!(
            "sweep: {} ({} mode, {} fidelity)",
            scenario.name, scenario.mode, scenario.fidelity
        ));
        println!(
            "grid: {} points ({} topologies)",
            ace_sweep::grid_len(&scenario),
            scenario.topologies.len()
        );
    }

    // A persistent cache makes repeated sweeps across processes reuse
    // results: a missing file starts empty, anything else must parse.
    let runner = match &args.cache_file {
        Some(path) => {
            let cache = persist::load_cache(path)?;
            if !args.quiet && !cache.is_empty() {
                println!("cache: {} points loaded from {path}", cache.len());
            }
            SweepRunner::with_cache(cache)
        }
        None => SweepRunner::new(),
    };
    // Progress defaults on only for interactive stderr; --quiet wins.
    let progress_on = !args.quiet
        && args
            .progress
            .unwrap_or_else(|| std::io::stderr().is_terminal());
    let start = std::time::Instant::now();
    let progress: &(dyn Fn(usize, usize) + Sync) = if progress_on {
        &move |done, total| render_progress(start, done, total)
    } else {
        &|_, _| {}
    };
    let outcome = runner.run_with_progress(
        &scenario,
        RunnerOptions {
            threads: args.threads,
        },
        progress,
    )?;
    // An event scheduled in the past is clamped, not dropped — the run
    // finishes, but its timing is suspect. Surface it instead of burying
    // it in a CSV column nobody reads.
    let clamped = outcome.total_past_schedules();
    if clamped > 0 {
        eprintln!(
            "warning: {clamped} event(s) were scheduled in the past and clamped; \
             affected rows carry nonzero past_schedules"
        );
    }
    if let Some(path) = &args.cache_file {
        persist::save_cache(runner.cache(), path)?;
        if !args.quiet {
            println!("cache: {} points saved to {path}", runner.cache().len());
        }
    }

    if !args.quiet {
        subheader("results");
        println!(
            "{:<52} {:>14} {:>10} {:>9} {:>6}",
            "point", "time us", "GB/s/NPU", "speedup", "cache"
        );
        for r in &outcome.results {
            println!(
                "{:<52} {:>14.3} {:>10.3} {:>9} {:>6}",
                r.point.label(),
                r.metrics.time_us,
                r.metrics.gbps_per_npu,
                r.speedup_vs_baseline
                    .map(|s| format!("{s:.3}x"))
                    .unwrap_or_else(|| "-".to_string()),
                if r.cache_hit { "hit" } else { "" },
            );
        }
        println!(
            "\n{} grid cells, {} simulated, {} cache hits",
            outcome.results.len(),
            outcome.executed,
            outcome.cache_hits
        );
        if outcome.fidelity == Fidelity::Hybrid {
            println!(
                "hybrid prefilter: {} cells triaged analytically, {} re-simulated exactly \
                 ({} exact simulations avoided)",
                outcome.analytic_executed,
                outcome.executed,
                outcome.results.len().saturating_sub(outcome.exact_rows()),
            );
        } else if outcome.fidelity == Fidelity::Analytic {
            println!(
                "analytic tier: {} cells estimated, 0 event-driven simulations",
                outcome.analytic_executed
            );
        }
        let summaries = report::summarize(&outcome);
        if !summaries.is_empty() {
            subheader("per-axis speedup vs baseline");
            print!("{}", report::summary_table(&summaries));
        }
    }

    if let Some(path) = &args.csv {
        let csv = if args.attribution {
            report::to_csv_with_attribution(&outcome)
        } else {
            report::to_csv(&outcome)
        };
        std::fs::write(path, csv).map_err(|e| format!("write {path}: {e}"))?;
        if !args.quiet {
            println!("wrote {path}");
        }
    }
    if let Some(path) = &args.json {
        let json = if args.attribution {
            report::to_json_with_attribution(&outcome)
        } else {
            report::to_json(&outcome)
        };
        std::fs::write(path, json).map_err(|e| format!("write {path}: {e}"))?;
        if !args.quiet {
            println!("wrote {path}");
        }
    }
    if let Some(path) = &args.trace {
        std::fs::write(path, trace_first_point(&scenario)?)
            .map_err(|e| format!("write {path}: {e}"))?;
        if !args.quiet {
            println!("wrote trace {path} (load at https://ui.perfetto.dev)");
        }
    }
    Ok(())
}

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("{msg}");
            ExitCode::FAILURE
        }
    }
}
