//! Table IV — ACE synthesis results (28 nm): per-component area and
//! power, plus the <2 % overhead claim against a TPU-class training
//! accelerator.

use ace_bench::{emit_tsv, header};
use ace_engine::{synthesis, AceConfig};

fn main() {
    header("Table IV: ACE synthesis results (28 nm)");
    let config = AceConfig::paper_default();
    let rows = [
        ("ALU", synthesis::alu(&config)),
        ("Control unit", synthesis::control(&config)),
        ("4x1MB SRAM banks", synthesis::sram(&config)),
        ("Switch & Interconnect", synthesis::switch(&config)),
        ("ACE (Total)", synthesis::total(&config)),
    ];
    println!(
        "{:>22} | {:>14} | {:>12}",
        "Component", "Area (um^2)", "Power (mW)"
    );
    for (name, ap) in rows {
        println!("{name:>22} | {:>14.0} | {:>12.3}", ap.area_um2, ap.power_mw);
        emit_tsv(
            "table04",
            &[
                ("component", name.to_string()),
                ("area_um2", format!("{:.0}", ap.area_um2)),
                ("power_mw", format!("{:.3}", ap.power_mw)),
            ],
        );
    }

    let reference = synthesis::AcceleratorReference::tpu_class();
    let (area_frac, power_frac) = synthesis::overhead(&config, reference);
    println!();
    println!(
        "vs a TPU-class accelerator ({} mm^2, {} W): area {:.2}%, power {:.2}%",
        reference.area_mm2,
        reference.power_w,
        area_frac * 100.0,
        power_frac * 100.0
    );
    println!();
    println!("Paper reference: ALU 16112 um^2 / 7.552 mW; control 159803 / 128;");
    println!("SRAM 5113696 / 4096; switch 1084 / 0.329; total 5339031 um^2 /");
    println!("4255 mW — <2% of a high-end training accelerator's area and power.");
}
