//! Simulator wall-clock benchmark — the repo's persistent performance
//! harness.
//!
//! Times representative sweeps (the Fig. 9a collective design-space grid
//! and the training suite) with `std::time::Instant` and emits a
//! `BENCH_executor.json` at the repo root so every PR has a points/sec
//! trajectory to beat. Each scenario runs `--runs` times on a cold cache
//! and the minimum wall time is reported (the minimum is robust against
//! background machine noise).
//!
//! ```text
//! perf                                  # full grids, writes BENCH_executor.json
//! perf --smoke                          # tiny grids (CI)
//! perf --out bench.json --threads 1 --runs 5
//! perf --baseline-pps 4.2 --baseline-label "seed @ db69ea8"
//! perf --smoke --check-against BENCH_executor.json --check-tolerance 0.30
//! ```
//!
//! The JSON schema lives in [`ace_bench::perf_json`] (emitter + reader +
//! unit tests). `--check-against` is the CI perf-regression gate: the
//! fresh run's points/sec are compared entry-by-entry (matched on
//! scenario name) against the checked-in baseline file and the process
//! exits nonzero when any overlapping entry is slower by more than the
//! tolerance (default 30 %, noise-tolerant). Setting `PERF_GATE_SKIP=1`
//! downgrades a gate failure to a warning — the escape hatch CI wires to
//! the `perf-regression-ok` PR label for known-slow changes.

use std::process::ExitCode;
use std::time::Instant;

use ace_bench::header;
use ace_bench::perf_json::{self, BenchBaseline, BenchEntry, BenchMode};
use ace_sweep::{RunnerOptions, Scenario, SweepRunner};

/// The Fig. 9a design-space scenario (kept in sync with the sweep CLI's
/// example file by `include_str!`).
const DESIGN_SPACE_TOML: &str = include_str!("../../../../examples/scenarios/design_space.toml");
/// The training-suite scenario.
const TRAINING_SUITE_TOML: &str =
    include_str!("../../../../examples/scenarios/training_suite.toml");

/// Tiny grids for CI smoke runs: same shape as the real scenarios, a few
/// seconds of work instead of minutes.
const SMOKE_DESIGN_SPACE_TOML: &str = r#"
name = "fig09a-design-space-smoke"
mode = "collective"
topologies = ["4x2x2"]
engines = ["ace"]
ops = ["all-reduce"]
payloads = ["16MB"]
mem_gbps = [128]
comm_sms = [6]
sram_mb = [1, 4]
fsms = [4, 16]
"#;
const SMOKE_TRAINING_TOML: &str = r#"
name = "training-suite-smoke"
mode = "training"
topologies = ["2x2x1"]
configs = ["CommOpt", "ACE"]
workloads = ["resnet50"]
iterations = 1
"#;

/// Intra-simulation parallelism scalability: one exact all-reduce per
/// torus size from 8 up to 625 nodes, run once serial and once with the
/// event loop partitioned across 4 domain threads. The payload is
/// exactly 8 MiB — the largest size whose chunks are all injected up
/// front, which keeps the partitioned engine eligible for the whole run.
const FIG11_SCALABILITY_TOML: &str = r#"
name = "fig11-scalability"
mode = "collective"
topologies = ["2x2x2", "4x4x4", "5x5x25"]
engines = ["ace"]
ops = ["all-reduce"]
payloads = ["8MB"]
mem_gbps = [128]
comm_sms = [6]
"#;
const SMOKE_FIG11_TOML: &str = r#"
name = "fig11-scalability-smoke"
mode = "collective"
topologies = ["4x4x4"]
engines = ["ace"]
ops = ["all-reduce"]
payloads = ["8MB"]
mem_gbps = [128]
comm_sms = [6]
"#;

struct Args {
    out: String,
    threads: usize,
    runs: usize,
    smoke: bool,
    baseline_pps: Option<f64>,
    baseline_label: Option<String>,
    check_against: Option<String>,
    check_tolerance: f64,
    quiet: bool,
}

const USAGE: &str = "usage: perf [--out PATH] [--threads N] [--runs N] [--smoke] \
                     [--baseline-pps X] [--baseline-label S] \
                     [--check-against PATH] [--check-tolerance FRAC] [--quiet]";

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        out: "BENCH_executor.json".to_string(),
        threads: 1,
        runs: 3,
        smoke: false,
        baseline_pps: None,
        baseline_label: None,
        check_against: None,
        check_tolerance: 0.30,
        quiet: false,
    };
    let mut argv = std::env::args().skip(1);
    while let Some(arg) = argv.next() {
        match arg.as_str() {
            "--out" => args.out = argv.next().ok_or("--out needs a path")?,
            "--threads" => {
                let v = argv.next().ok_or("--threads needs a value")?;
                args.threads = v.parse().map_err(|_| format!("bad thread count '{v}'"))?;
            }
            "--runs" => {
                let v = argv.next().ok_or("--runs needs a value")?;
                args.runs = v
                    .parse::<usize>()
                    .ok()
                    .filter(|&r| r >= 1)
                    .ok_or(format!("bad run count '{v}'"))?;
            }
            "--smoke" => args.smoke = true,
            "--baseline-pps" => {
                let v = argv.next().ok_or("--baseline-pps needs a value")?;
                args.baseline_pps = Some(v.parse().map_err(|_| format!("bad baseline pps '{v}'"))?);
            }
            "--baseline-label" => {
                args.baseline_label = Some(argv.next().ok_or("--baseline-label needs a value")?);
            }
            "--check-against" => {
                args.check_against = Some(argv.next().ok_or("--check-against needs a path")?);
            }
            "--check-tolerance" => {
                let v = argv.next().ok_or("--check-tolerance needs a value")?;
                args.check_tolerance = v
                    .parse::<f64>()
                    .ok()
                    .filter(|t| (0.0..1.0).contains(t))
                    .ok_or(format!(
                        "bad tolerance '{v}' (expected a fraction in [0,1))"
                    ))?;
            }
            "--quiet" => args.quiet = true,
            "--help" | "-h" => {
                println!("{USAGE}");
                std::process::exit(0);
            }
            other => return Err(format!("unknown argument {other}\n{USAGE}")),
        }
    }
    Ok(args)
}

/// Runs `scenario` `runs` times on a cold cache each time; returns the
/// minimum-wall-time entry.
fn bench_scenario(scenario: &Scenario, runs: usize, threads: usize) -> BenchEntry {
    let opts = RunnerOptions {
        threads,
        ..Default::default()
    };
    let mut best_ms = f64::INFINITY;
    let mut points = 0;
    for _ in 0..runs {
        let runner = SweepRunner::new();
        let start = Instant::now();
        let outcome = runner.run(scenario, opts).expect("scenario is valid");
        let ms = start.elapsed().as_secs_f64() * 1e3;
        points = outcome.results.len();
        best_ms = best_ms.min(ms);
    }
    BenchEntry {
        scenario: scenario.name.clone(),
        points,
        wall_ms: best_ms,
        points_per_sec: points as f64 / (best_ms / 1e3),
    }
}

/// Times warm resubmission through one resident runner — the `sweep
/// serve` daemon's steady state. The first run fills the cache untimed;
/// the reported entry is the minimum over `runs` fully-warm resubmits of
/// the same grid (every cell a cache hit, results still assembled,
/// summarized, and returned in grid order). Compare against the cold
/// entry of the same scenario for the daemon's speedup.
fn bench_scenario_warm(scenario: &Scenario, runs: usize, threads: usize) -> BenchEntry {
    let opts = RunnerOptions {
        threads,
        ..Default::default()
    };
    let runner = SweepRunner::new();
    runner.run(scenario, opts).expect("scenario is valid");
    let mut best_ms = f64::INFINITY;
    let mut points = 0;
    for _ in 0..runs {
        let start = Instant::now();
        let outcome = runner.run(scenario, opts).expect("scenario is valid");
        let ms = start.elapsed().as_secs_f64() * 1e3;
        assert_eq!(outcome.executed, 0, "warm run must be all cache hits");
        points = outcome.results.len();
        best_ms = best_ms.min(ms);
    }
    BenchEntry {
        scenario: format!("{}-serve-warm", scenario.name),
        points,
        wall_ms: best_ms,
        points_per_sec: points as f64 / (best_ms / 1e3),
    }
}

/// Benchmarks the intra-simulation parallel engine: the same grid runs
/// serial (`sim_threads = 1`) and with the event loop partitioned by
/// topology domain, the CSV reports are asserted byte-identical (the
/// partitioned engine is an exact replacement, not an approximation),
/// and both wall times are recorded. The parallel entry's points/sec
/// divided by the serial entry's is the intra-sim speedup; it is
/// bounded by the number of cores the machine actually grants.
fn bench_sim_threads_pair(
    scenario: &Scenario,
    runs: usize,
    sim_threads: usize,
) -> (BenchEntry, BenchEntry) {
    let measure = |sim_threads: usize| -> (BenchEntry, String) {
        let opts = RunnerOptions {
            threads: 1,
            sim_threads,
        };
        let mut best_ms = f64::INFINITY;
        let mut points = 0;
        let mut csv = String::new();
        for _ in 0..runs {
            let runner = SweepRunner::new();
            let start = Instant::now();
            let outcome = runner.run(scenario, opts).expect("scenario is valid");
            let ms = start.elapsed().as_secs_f64() * 1e3;
            points = outcome.results.len();
            csv = ace_sweep::report::to_csv(&outcome);
            best_ms = best_ms.min(ms);
        }
        let entry = BenchEntry {
            scenario: scenario.name.clone(),
            points,
            wall_ms: best_ms,
            points_per_sec: points as f64 / (best_ms / 1e3),
        };
        (entry, csv)
    };
    let (serial, serial_csv) = measure(1);
    let (mut par, par_csv) = measure(sim_threads);
    assert_eq!(
        serial_csv, par_csv,
        "partitioned engine diverged from serial on {}",
        scenario.name
    );
    par.scenario = format!("{}-simthreads{sim_threads}", scenario.name);
    (serial, par)
}

fn run() -> Result<(), String> {
    let args = parse_args()?;
    let mode = if args.smoke {
        BenchMode::Smoke
    } else {
        BenchMode::Full
    };
    // Full mode also times the smoke grids (they cost milliseconds):
    // the emitted file then carries every entry the CI regression gate
    // matches against, so re-running `perf` to refresh
    // BENCH_executor.json can never silently drop the smoke baselines.
    let mut scenario_tomls = vec![SMOKE_DESIGN_SPACE_TOML, SMOKE_TRAINING_TOML];
    if !args.smoke {
        scenario_tomls = vec![
            DESIGN_SPACE_TOML,
            TRAINING_SUITE_TOML,
            SMOKE_DESIGN_SPACE_TOML,
            SMOKE_TRAINING_TOML,
        ];
    }
    let scenarios = scenario_tomls
        .into_iter()
        .map(|t| Scenario::from_toml_str(t).map_err(|e| e.to_string()))
        .collect::<Result<Vec<_>, _>>()?;

    if !args.quiet {
        header(&format!(
            "perf: simulator wall-clock benchmark ({mode} mode, {} runs, {} threads)",
            args.runs,
            if args.threads == 0 {
                "auto".to_string()
            } else {
                args.threads.to_string()
            }
        ));
    }

    let mut entries = Vec::new();
    for sc in &scenarios {
        let entry = bench_scenario(sc, args.runs, args.threads);
        if !args.quiet {
            println!(
                "{:<28} {:>5} points  {:>10.1} ms  {:>9.3} points/sec",
                entry.scenario, entry.points, entry.wall_ms, entry.points_per_sec
            );
        }
        entries.push(entry);
    }

    // Intra-sim parallelism scalability: serial vs 4 domain threads on
    // the same grid, byte-identity asserted inside the helper. Full
    // mode also times the smoke pair, for the same reason as above —
    // refreshing the baseline file must never drop the gate's entries.
    let mut fig11_tomls = vec![SMOKE_FIG11_TOML];
    if !args.smoke {
        fig11_tomls.insert(0, FIG11_SCALABILITY_TOML);
    }
    for toml in fig11_tomls {
        let sc = Scenario::from_toml_str(toml).map_err(|e| e.to_string())?;
        let (serial, par) = bench_sim_threads_pair(&sc, args.runs, 4);
        if !args.quiet {
            println!(
                "{:<28} {:>5} points  {:>10.1} ms  {:>9.3} points/sec",
                serial.scenario, serial.points, serial.wall_ms, serial.points_per_sec
            );
            println!(
                "{:<28} {:>5} points  {:>10.1} ms  {:>9.3} points/sec ({:.2}x vs serial, byte-identical)",
                par.scenario,
                par.points,
                par.wall_ms,
                par.points_per_sec,
                serial.wall_ms / par.wall_ms
            );
        }
        entries.push(serial);
        entries.push(par);
    }

    // Full mode also reports the daemon's warm-resubmission throughput on
    // the Fig. 9a grid (smoke skips it: the gate would be pure cache-hit
    // noise on a millisecond denominator). The distinct `-serve-warm`
    // name keeps the entry from ever matching a cold baseline in the
    // regression gate.
    if !args.smoke {
        let entry = bench_scenario_warm(&scenarios[0], args.runs, args.threads);
        if !args.quiet {
            println!(
                "{:<28} {:>5} points  {:>10.1} ms  {:>9.3} points/sec (warm resident cache)",
                entry.scenario, entry.points, entry.wall_ms, entry.points_per_sec
            );
        }
        entries.push(entry);
    }

    let baseline = args.baseline_pps.map(|pps| BenchBaseline {
        label: args.baseline_label.clone(),
        points_per_sec: pps,
    });
    let json = perf_json::to_json(
        mode,
        args.threads,
        args.runs,
        &perf_json::BuildInfo::capture(),
        &entries,
        baseline.as_ref(),
    );
    std::fs::write(&args.out, &json).map_err(|e| format!("write {}: {e}", args.out))?;
    if !args.quiet {
        println!("wrote {}", args.out);
        if let (Some(pps), Some(first)) = (args.baseline_pps, entries.first()) {
            println!(
                "speedup vs baseline on {}: {:.3}x",
                first.scenario,
                first.points_per_sec / pps
            );
        }
    }

    if let Some(path) = &args.check_against {
        let text = std::fs::read_to_string(path)
            .map_err(|e| format!("cannot read baseline {path}: {e}"))?;
        let base = perf_json::read_entries(&text).map_err(|e| format!("{path}: {e}"))?;
        let fresh: Vec<(String, f64)> = entries
            .iter()
            .map(|e| (e.scenario.clone(), e.points_per_sec))
            .collect();
        let skip = std::env::var("PERF_GATE_SKIP").is_ok_and(|v| v == "1");
        match perf_json::check_regression(&fresh, &base, args.check_tolerance) {
            Ok(report) => {
                if !args.quiet {
                    println!(
                        "perf gate vs {path} (tolerance {:.0}%):\n{report}",
                        args.check_tolerance * 100.0
                    );
                }
            }
            Err(report) if skip => {
                eprintln!(
                    "perf gate: regression beyond {:.0}% tolerance, but PERF_GATE_SKIP=1:\n{report}",
                    args.check_tolerance * 100.0
                );
            }
            Err(report) => {
                return Err(format!(
                    "perf gate: points/sec regressed beyond {:.0}% vs {path}:\n{report}\
                     (set PERF_GATE_SKIP=1 or apply the perf-regression-ok PR label to override)",
                    args.check_tolerance * 100.0
                ));
            }
        }
    }
    Ok(())
}

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("{msg}");
            ExitCode::FAILURE
        }
    }
}
