//! Simulator wall-clock benchmark — the repo's persistent performance
//! harness.
//!
//! Times representative sweeps (the Fig. 9a collective design-space grid
//! and the training suite) with `std::time::Instant` and emits a
//! `BENCH_executor.json` at the repo root so every PR has a points/sec
//! trajectory to beat. Each scenario runs `--runs` times on a cold cache
//! and the minimum wall time is reported (the minimum is robust against
//! background machine noise).
//!
//! ```text
//! perf                                  # full grids, writes BENCH_executor.json
//! perf --smoke                          # tiny grids (CI)
//! perf --out bench.json --threads 1 --runs 5
//! perf --baseline-pps 4.2 --baseline-label "seed @ db69ea8"
//! ```
//!
//! Output schema (`version` 1):
//!
//! ```json
//! {
//!   "version": 1,
//!   "mode": "full",
//!   "threads": 1,
//!   "runs": 3,
//!   "entries": [
//!     {"scenario": "fig09a-design-space", "points": 32,
//!      "wall_ms": 5541.2, "points_per_sec": 5.77, "threads": 1}
//!   ],
//!   "baseline": {"label": "…", "points_per_sec": 4.2, "speedup": 1.37}
//! }
//! ```
//!
//! The optional `baseline` block records the points/sec of a reference
//! build for the *first* entry (the Fig. 9a grid) and the resulting
//! speedup, so the before/after comparison is checked in next to the
//! fresh numbers.

use std::process::ExitCode;
use std::time::Instant;

use ace_bench::header;
use ace_sweep::{RunnerOptions, Scenario, SweepRunner};

/// The Fig. 9a design-space scenario (kept in sync with the sweep CLI's
/// example file by `include_str!`).
const DESIGN_SPACE_TOML: &str = include_str!("../../../../examples/scenarios/design_space.toml");
/// The training-suite scenario.
const TRAINING_SUITE_TOML: &str =
    include_str!("../../../../examples/scenarios/training_suite.toml");

/// Tiny grids for CI smoke runs: same shape as the real scenarios, a few
/// seconds of work instead of minutes.
const SMOKE_DESIGN_SPACE_TOML: &str = r#"
name = "fig09a-design-space-smoke"
mode = "collective"
topologies = ["4x2x2"]
engines = ["ace"]
ops = ["all-reduce"]
payloads = ["4MB"]
mem_gbps = [128]
comm_sms = [6]
sram_mb = [1, 4]
fsms = [4, 16]
"#;
const SMOKE_TRAINING_TOML: &str = r#"
name = "training-suite-smoke"
mode = "training"
topologies = ["2x1x1"]
configs = ["CommOpt", "ACE"]
workloads = ["resnet50"]
iterations = 1
"#;

struct Args {
    out: String,
    threads: usize,
    runs: usize,
    smoke: bool,
    baseline_pps: Option<f64>,
    baseline_label: Option<String>,
    quiet: bool,
}

const USAGE: &str = "usage: perf [--out PATH] [--threads N] [--runs N] [--smoke] \
                     [--baseline-pps X] [--baseline-label S] [--quiet]";

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        out: "BENCH_executor.json".to_string(),
        threads: 1,
        runs: 3,
        smoke: false,
        baseline_pps: None,
        baseline_label: None,
        quiet: false,
    };
    let mut argv = std::env::args().skip(1);
    while let Some(arg) = argv.next() {
        match arg.as_str() {
            "--out" => args.out = argv.next().ok_or("--out needs a path")?,
            "--threads" => {
                let v = argv.next().ok_or("--threads needs a value")?;
                args.threads = v.parse().map_err(|_| format!("bad thread count '{v}'"))?;
            }
            "--runs" => {
                let v = argv.next().ok_or("--runs needs a value")?;
                args.runs = v
                    .parse::<usize>()
                    .ok()
                    .filter(|&r| r >= 1)
                    .ok_or(format!("bad run count '{v}'"))?;
            }
            "--smoke" => args.smoke = true,
            "--baseline-pps" => {
                let v = argv.next().ok_or("--baseline-pps needs a value")?;
                args.baseline_pps = Some(v.parse().map_err(|_| format!("bad baseline pps '{v}'"))?);
            }
            "--baseline-label" => {
                args.baseline_label = Some(argv.next().ok_or("--baseline-label needs a value")?);
            }
            "--quiet" => args.quiet = true,
            "--help" | "-h" => {
                println!("{USAGE}");
                std::process::exit(0);
            }
            other => return Err(format!("unknown argument {other}\n{USAGE}")),
        }
    }
    Ok(args)
}

struct BenchEntry {
    scenario: String,
    points: usize,
    wall_ms: f64,
    points_per_sec: f64,
}

/// Minimal JSON string escaping for interpolated names/labels.
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Runs `scenario` `runs` times on a cold cache each time; returns the
/// minimum-wall-time entry.
fn bench_scenario(scenario: &Scenario, runs: usize, threads: usize) -> BenchEntry {
    let opts = RunnerOptions { threads };
    let mut best_ms = f64::INFINITY;
    let mut points = 0;
    for _ in 0..runs {
        let runner = SweepRunner::new();
        let start = Instant::now();
        let outcome = runner.run(scenario, opts).expect("scenario is valid");
        let ms = start.elapsed().as_secs_f64() * 1e3;
        points = outcome.results.len();
        best_ms = best_ms.min(ms);
    }
    BenchEntry {
        scenario: scenario.name.clone(),
        points,
        wall_ms: best_ms,
        points_per_sec: points as f64 / (best_ms / 1e3),
    }
}

fn to_json(args: &Args, entries: &[BenchEntry]) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str("  \"version\": 1,\n");
    out.push_str(&format!(
        "  \"mode\": \"{}\",\n",
        if args.smoke { "smoke" } else { "full" }
    ));
    out.push_str(&format!("  \"threads\": {},\n", args.threads));
    out.push_str(&format!("  \"runs\": {},\n", args.runs));
    out.push_str("  \"entries\": [\n");
    for (i, e) in entries.iter().enumerate() {
        let sep = if i + 1 == entries.len() { "" } else { "," };
        out.push_str(&format!(
            "    {{\"scenario\": \"{}\", \"points\": {}, \"wall_ms\": {:.1}, \
             \"points_per_sec\": {:.3}, \"threads\": {}}}{sep}\n",
            json_escape(&e.scenario),
            e.points,
            e.wall_ms,
            e.points_per_sec,
            args.threads
        ));
    }
    out.push_str("  ]");
    if let Some(pps) = args.baseline_pps {
        let speedup = entries
            .first()
            .map(|e| e.points_per_sec / pps)
            .unwrap_or(f64::NAN);
        out.push_str(",\n  \"baseline\": {");
        if let Some(label) = &args.baseline_label {
            out.push_str(&format!("\"label\": \"{}\", ", json_escape(label)));
        }
        out.push_str(&format!(
            "\"points_per_sec\": {pps:.3}, \"speedup\": {speedup:.3}}}"
        ));
    }
    out.push_str("\n}\n");
    out
}

fn run() -> Result<(), String> {
    let args = parse_args()?;
    let (ds_toml, tr_toml) = if args.smoke {
        (SMOKE_DESIGN_SPACE_TOML, SMOKE_TRAINING_TOML)
    } else {
        (DESIGN_SPACE_TOML, TRAINING_SUITE_TOML)
    };
    let scenarios = [
        Scenario::from_toml_str(ds_toml).map_err(|e| e.to_string())?,
        Scenario::from_toml_str(tr_toml).map_err(|e| e.to_string())?,
    ];

    if !args.quiet {
        header(&format!(
            "perf: simulator wall-clock benchmark ({} mode, {} runs, {} threads)",
            if args.smoke { "smoke" } else { "full" },
            args.runs,
            if args.threads == 0 {
                "auto".to_string()
            } else {
                args.threads.to_string()
            }
        ));
    }

    let mut entries = Vec::new();
    for sc in &scenarios {
        let entry = bench_scenario(sc, args.runs, args.threads);
        if !args.quiet {
            println!(
                "{:<28} {:>5} points  {:>10.1} ms  {:>9.3} points/sec",
                entry.scenario, entry.points, entry.wall_ms, entry.points_per_sec
            );
        }
        entries.push(entry);
    }

    let json = to_json(&args, &entries);
    std::fs::write(&args.out, &json).map_err(|e| format!("write {}: {e}", args.out))?;
    if !args.quiet {
        println!("wrote {}", args.out);
        if let (Some(pps), Some(first)) = (args.baseline_pps, entries.first()) {
            println!(
                "speedup vs baseline on {}: {:.3}x",
                first.scenario,
                first.points_per_sec / pps
            );
        }
    }
    Ok(())
}

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("{msg}");
            ExitCode::FAILURE
        }
    }
}
