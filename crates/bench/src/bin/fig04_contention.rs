//! Fig. 4 — all-reduce slowdown under compute contention.
//!
//! The paper measures this on a real 8-GPU V100/NVSwitch box; we
//! reproduce the *mechanism* in simulation (DESIGN.md substitution #1):
//! a concurrent GEMM steals SMs from the communication kernel and a
//! concurrent embedding lookup steals HBM bandwidth, so the all-reduce's
//! endpoint pipeline (Section III) slows down. Reported numbers are the
//! slowdown of the collective relative to running unloaded, for the
//! paper's payload sizes (Fig. 4b uses 16/92/153 MB).

use ace_bench::{emit_tsv, header, subheader};
use ace_collectives::CollectiveOp;
use ace_net::TorusShape;
use ace_system::{EngineKind, RunSpec};

/// A contention scenario: what the concurrently running compute kernel
/// leaves for the communication task.
struct Scenario {
    name: &'static str,
    comm_sms: u32,
    comm_mem_gbps: f64,
}

fn main() {
    header("Fig. 4 analog: all-reduce slowdown under compute contention");
    println!("Platform: 8 NPUs on one package ring (V100+NVSwitch stand-in)");

    // An unloaded communication kernel owns the node: all SMs, full HBM.
    let unloaded = Scenario {
        name: "unloaded",
        comm_sms: 80,
        comm_mem_gbps: 900.0,
    };
    // GEMM-N consumes SMs in proportion to N (the paper's dimension-1000
    // GEMM needs 44.8 warps/SM, i.e. nearly every SM).
    // EmbLookup-N consumes memory bandwidth (batch 10000 uses 429 GB/s).
    // GEMM-N wants every SM (dimension-1000 needs 44.8 warps/SM), so the
    // CUDA scheduler leaves the collective kernel only its minimum grid;
    // EmbLookup-N streams the tables, eating HBM bandwidth.
    let scenarios = [
        Scenario {
            name: "gemm-100 (light SM load)",
            comm_sms: 20,
            comm_mem_gbps: 850.0,
        },
        Scenario {
            name: "gemm-1000 (44.8 warps/SM)",
            comm_sms: 3,
            comm_mem_gbps: 700.0,
        },
        Scenario {
            name: "emblookup-1000 (light mem)",
            comm_sms: 80,
            comm_mem_gbps: 650.0,
        },
        Scenario {
            name: "emblookup-10000 (429 GB/s)",
            comm_sms: 80,
            comm_mem_gbps: 300.0,
        },
        Scenario {
            name: "gemm+emblookup (DLRM bwd)",
            comm_sms: 3,
            comm_mem_gbps: 300.0,
        },
    ];

    let shape = TorusShape::new(8, 1, 1).expect("valid shape");
    let sizes_mb: [u64; 4] = [16, 64, 92, 153];

    for &mb in &sizes_mb {
        subheader(&format!("{mb} MB all-reduce"));
        let base = RunSpec::new(
            shape,
            EngineKind::Baseline {
                comm_mem_gbps: unloaded.comm_mem_gbps,
                comm_sms: unloaded.comm_sms,
            },
            CollectiveOp::AllReduce,
            mb << 20,
        )
        .run()
        .expect("pristine run cannot fail");
        println!(
            "{:>28}: {:>9.2} ms  (slowdown 1.00x)",
            unloaded.name,
            base.completion.cycles() as f64 / 1.245e9 * 1e3
        );
        for s in &scenarios {
            let r = RunSpec::new(
                shape,
                EngineKind::Baseline {
                    comm_mem_gbps: s.comm_mem_gbps,
                    comm_sms: s.comm_sms,
                },
                CollectiveOp::AllReduce,
                mb << 20,
            )
            .run()
            .expect("pristine run cannot fail");
            let slowdown = r.completion.cycles() as f64 / base.completion.cycles() as f64;
            println!(
                "{:>28}: {:>9.2} ms  (slowdown {slowdown:.2}x)",
                s.name,
                r.completion.cycles() as f64 / 1.245e9 * 1e3
            );
            emit_tsv(
                "fig04",
                &[
                    ("size_mb", mb.to_string()),
                    ("scenario", s.name.to_string()),
                    ("slowdown", format!("{slowdown:.3}")),
                ],
            );
        }
    }

    println!();
    println!("Paper reference (V100 measurements): 100 MB AR slows 1.16x under a");
    println!("dimension-1000 GEMM and 1.42x under a batch-10000 embedding lookup;");
    println!("a production DLRM backward pass degrades a 16 MB AR by up to 6.2x.");
    println!("Expected shape: slowdown grows with the compute kernel's resource");
    println!("footprint, and heavier contention hurts smaller collectives more.");
}
