//! Fig. 9b — ACE utilization during training (forward pass vs.
//! back-propagation) for the Fig. 10 simulations (4×8×4 torus).
//!
//! "ACE is considered utilized when it has assigned at least one chunk
//! for processing." Forward passes barely use ACE (ResNet-50 and GNMT
//! have no forward collectives; DLRM has the single embedding
//! all-to-all), while back-propagation keeps it ~90 % busy.

use ace_bench::{emit_tsv, header};
use ace_system::{SystemBuilder, SystemConfig};
use ace_workloads::Workload;

fn main() {
    header("Fig. 9b: ACE utilization, forward vs back-propagation (4x8x4, 128 NPUs)");
    println!(
        "{:>10} | {:>10} | {:>10}",
        "workload", "fwd util", "bwd util"
    );
    for workload in Workload::paper_suite(128) {
        let name = workload.name().to_string();
        let report = SystemBuilder::new()
            .topology(4, 8, 4)
            .config(SystemConfig::Ace)
            .workload(workload)
            .build()
            .expect("valid system")
            .run();
        let fwd = report.ace_util_fwd().unwrap_or(0.0);
        let bwd = report.ace_util_bwd().unwrap_or(0.0);
        println!("{name:>10} | {:>9.1}% | {:>9.1}%", fwd * 100.0, bwd * 100.0);
        emit_tsv(
            "fig09b",
            &[
                ("workload", name),
                ("fwd_util", format!("{fwd:.4}")),
                ("bwd_util", format!("{bwd:.4}")),
            ],
        );
    }
    println!();
    println!("Paper reference: fwd utilization ~0 (ResNet-50/GNMT) or low (DLRM's");
    println!("single all-to-all); bwd utilization 96.4% / 91.3% / 88.3% for");
    println!("ResNet-50 / GNMT / DLRM.");
}
