//! Calibration/validation harness for the analytic fidelity tier.
//!
//! Runs the Fig. 9a design-space grid and the training suite through
//! **both** tiers — the event-driven executor and the closed-form α–β
//! model — and reports the per-point relative time error, the per-scenario
//! mean/max, and the hybrid prefilter's behavior (exact simulations
//! avoided + Pareto-frontier agreement). The error table is written to
//! `BENCH_analytic.json` at the repo root, so every PR that touches the
//! simulator or the model re-anchors the documented accuracy.
//!
//! ```text
//! validate                              # writes BENCH_analytic.json
//! validate --out other.json --threads 4 --max-mean-error 0.25
//! ```
//!
//! Exits nonzero when any scenario's mean relative error exceeds
//! `--max-mean-error` (default 25 %) or when the hybrid run's exact-tier
//! Pareto frontier differs from the full exact run's — the two
//! acceptance bounds CI enforces.

use std::process::ExitCode;

use ace_bench::perf_json::json_escape;
use ace_bench::{header, subheader};
use ace_sweep::fidelity::pareto_frontier;
use ace_sweep::{Fidelity, RunPoint, RunnerOptions, Scenario, SweepOutcome, SweepRunner, Tier};

const DESIGN_SPACE_TOML: &str = include_str!("../../../../examples/scenarios/design_space.toml");
const TRAINING_SUITE_TOML: &str =
    include_str!("../../../../examples/scenarios/training_suite.toml");
const FAULT_VALIDATION_TOML: &str =
    include_str!("../../../../examples/scenarios/fault_validation.toml");

struct Args {
    out: String,
    threads: usize,
    max_mean_error: f64,
    quiet: bool,
}

const USAGE: &str = "usage: validate [--out PATH] [--threads N] [--max-mean-error FRAC] [--quiet]";

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        out: "BENCH_analytic.json".to_string(),
        threads: 0,
        max_mean_error: 0.25,
        quiet: false,
    };
    let mut argv = std::env::args().skip(1);
    while let Some(arg) = argv.next() {
        match arg.as_str() {
            "--out" => args.out = argv.next().ok_or("--out needs a path")?,
            "--threads" => {
                let v = argv.next().ok_or("--threads needs a value")?;
                args.threads = v.parse().map_err(|_| format!("bad thread count '{v}'"))?;
            }
            "--max-mean-error" => {
                let v = argv.next().ok_or("--max-mean-error needs a value")?;
                args.max_mean_error = v
                    .parse::<f64>()
                    .ok()
                    .filter(|e| *e > 0.0)
                    .ok_or(format!("bad error bound '{v}'"))?;
            }
            "--quiet" => args.quiet = true,
            "--help" | "-h" => {
                println!("{USAGE}");
                std::process::exit(0);
            }
            other => return Err(format!("unknown argument {other}\n{USAGE}")),
        }
    }
    Ok(args)
}

struct PointError {
    label: String,
    exact_us: f64,
    analytic_us: f64,
    rel_error: f64,
}

struct ScenarioReport {
    name: String,
    points: Vec<PointError>,
    mean: f64,
    max: f64,
    hybrid_exact_sims: usize,
    hybrid_grid_cells: usize,
    frontier_matches: bool,
}

/// Grid-order Pareto frontier of an outcome's rows.
fn frontier_points(outcome: &SweepOutcome) -> Vec<RunPoint> {
    let rows: Vec<(&RunPoint, f64)> = outcome
        .results
        .iter()
        .map(|r| (&r.point, r.metrics.time_us))
        .collect();
    let flags = pareto_frontier(&rows);
    let mut out = Vec::new();
    for ((p, _), keep) in rows.into_iter().zip(flags) {
        if keep && !out.contains(p) {
            out.push(p.clone());
        }
    }
    out
}

fn validate_scenario(
    toml: &str,
    opts: RunnerOptions,
    quiet: bool,
) -> Result<ScenarioReport, String> {
    let scenario = Scenario::from_toml_str(toml).map_err(|e| e.to_string())?;

    let exact = SweepRunner::new().run(&scenario, opts)?;
    let mut analytic_sc = scenario.clone();
    analytic_sc.fidelity = Fidelity::Analytic;
    let analytic = SweepRunner::new().run(&analytic_sc, opts)?;
    let mut hybrid_sc = scenario.clone();
    hybrid_sc.fidelity = Fidelity::Hybrid;
    let hybrid = SweepRunner::new().run(&hybrid_sc, opts)?;

    let mut points = Vec::new();
    for (e, a) in exact.results.iter().zip(&analytic.results) {
        debug_assert_eq!(e.point, a.point);
        let rel = if e.metrics.time_us > 0.0 {
            (a.metrics.time_us - e.metrics.time_us).abs() / e.metrics.time_us
        } else {
            0.0
        };
        points.push(PointError {
            label: e.point.label(),
            exact_us: e.metrics.time_us,
            analytic_us: a.metrics.time_us,
            rel_error: rel,
        });
    }
    let mean = points.iter().map(|p| p.rel_error).sum::<f64>() / points.len().max(1) as f64;
    let max = points.iter().map(|p| p.rel_error).fold(0.0, f64::max);

    // Hybrid acceptance: the full exact run's Pareto-frontier rows must
    // all have been re-simulated exactly by hybrid (coverage), and every
    // exact-tier hybrid row must be byte-identical to the exact run's.
    // Coverage — not set equality of subset frontiers — is the
    // well-defined check: the tolerance-banded dominance relation is not
    // transitive, so a harmless extra exact row (e.g. rescued by the
    // top-K quota) could appear on a frontier computed over the
    // exact-tier *subset* without anything being wrong.
    let full_frontier = frontier_points(&exact);
    let mut frontier_matches = full_frontier.iter().all(|p| {
        hybrid
            .results
            .iter()
            .any(|r| r.fidelity == Tier::Exact && r.point == *p)
    });
    for (h, e) in hybrid.results.iter().zip(&exact.results) {
        if h.fidelity == Tier::Exact && h.metrics != e.metrics {
            frontier_matches = false;
        }
    }

    if !quiet {
        subheader(&scenario.name);
        for p in &points {
            println!(
                "{:<58} exact {:>12.3} us  analytic {:>12.3} us  err {:>6.2}%",
                p.label,
                p.exact_us,
                p.analytic_us,
                p.rel_error * 100.0
            );
        }
        println!(
            "mean {:.2}%  max {:.2}%  |  hybrid: {} of {} cells re-simulated exactly, \
             frontier {}",
            mean * 100.0,
            max * 100.0,
            hybrid.executed,
            hybrid.results.len(),
            if frontier_matches {
                "matches exact"
            } else {
                "MISMATCH"
            }
        );
    }

    Ok(ScenarioReport {
        name: scenario.name,
        points,
        mean,
        max,
        hybrid_exact_sims: hybrid.executed,
        hybrid_grid_cells: hybrid.results.len(),
        frontier_matches,
    })
}

fn to_json(reports: &[ScenarioReport]) -> String {
    let mut out = String::new();
    out.push_str("{\n  \"version\": 1,\n  \"scenarios\": [\n");
    for (i, r) in reports.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"scenario\": \"{}\", \"points\": {}, \"mean_rel_error\": {:.4}, \
             \"max_rel_error\": {:.4}, \"hybrid_exact_sims\": {}, \"hybrid_grid_cells\": {}, \
             \"hybrid_frontier_matches_exact\": {},\n     \"errors\": [\n",
            json_escape(&r.name),
            r.points.len(),
            r.mean,
            r.max,
            r.hybrid_exact_sims,
            r.hybrid_grid_cells,
            r.frontier_matches,
        ));
        for (j, p) in r.points.iter().enumerate() {
            let sep = if j + 1 == r.points.len() { "" } else { "," };
            out.push_str(&format!(
                "       {{\"point\": \"{}\", \"exact_us\": {:.3}, \"analytic_us\": {:.3}, \
                 \"rel_error\": {:.4}}}{sep}\n",
                json_escape(&p.label),
                p.exact_us,
                p.analytic_us,
                p.rel_error,
            ));
        }
        let sep = if i + 1 == reports.len() { "" } else { "," };
        out.push_str(&format!("     ]}}{sep}\n"));
    }
    out.push_str("  ]\n}\n");
    out
}

fn run() -> Result<(), String> {
    let args = parse_args()?;
    let opts = RunnerOptions {
        threads: args.threads,
        ..Default::default()
    };
    if !args.quiet {
        header("validate: analytic tier vs the event-driven executor");
    }
    let reports = vec![
        validate_scenario(DESIGN_SPACE_TOML, opts, args.quiet)?,
        validate_scenario(TRAINING_SUITE_TOML, opts, args.quiet)?,
        validate_scenario(FAULT_VALIDATION_TOML, opts, args.quiet)?,
    ];

    std::fs::write(&args.out, to_json(&reports)).map_err(|e| format!("write {}: {e}", args.out))?;
    if !args.quiet {
        println!("\nwrote {}", args.out);
    }

    let mut failures = Vec::new();
    for r in &reports {
        if r.mean > args.max_mean_error {
            failures.push(format!(
                "{}: mean relative error {:.2}% exceeds the {:.0}% bound",
                r.name,
                r.mean * 100.0,
                args.max_mean_error * 100.0
            ));
        }
        if !r.frontier_matches {
            failures.push(format!(
                "{}: hybrid Pareto frontier differs from the exact run",
                r.name
            ));
        }
    }
    if failures.is_empty() {
        Ok(())
    } else {
        Err(failures.join("\n"))
    }
}

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("{msg}");
            ExitCode::FAILURE
        }
    }
}
