//! Fig. 11 — scalability: (a) total compute vs. exposed communication for
//! every workload, system size and configuration; (b) ACE's speedup over
//! each baseline.
//!
//! This is the paper's main result table. Expected shape: exposed
//! communication grows with system size; BaselineCompOpt beats
//! BaselineCommOpt (compute savings are on the critical path);
//! BaselineNoOverlap beats CompOpt only for ResNet-50 at ≥16 NPUs
//! (batching many small collectives helps); ACE beats every baseline
//! everywhere and tracks the ideal endpoint.

use ace_bench::{emit_tsv, header, subheader};
use ace_net::TorusShape;
use ace_system::{IterationReport, SystemBuilder, SystemConfig};
use ace_workloads::Workload;

fn run(config: SystemConfig, workload: Workload, shape: TorusShape) -> IterationReport {
    SystemBuilder::new()
        .topology(shape.local(), shape.vertical(), shape.horizontal())
        .config(config)
        .workload(workload)
        .build()
        .expect("valid system")
        .run()
}

fn main() {
    header("Fig. 11a/11b: compute vs exposed communication and ACE speedups");
    let shapes = TorusShape::paper_sizes();
    let workload_names = ["ResNet-50", "GNMT", "DLRM"];

    // speedups[workload][baseline] -> per-size ACE speedups
    let mut speedups: Vec<Vec<Vec<f64>>> = vec![vec![Vec::new(); 3]; 3];
    let mut best_baseline_speedups: Vec<Vec<f64>> = vec![Vec::new(); 3];
    let mut ideal_fractions: Vec<Vec<f64>> = vec![Vec::new(); 5];
    let mut net_util_gains: Vec<f64> = Vec::new();

    for &shape in &shapes {
        subheader(&format!("{} NPUs ({shape})", shape.nodes()));
        println!(
            "{:>10} {:>10} | {:>12} {:>12} {:>12} | {:>8}",
            "workload", "config", "compute us", "exposed us", "total us", "vs ideal"
        );
        for (wi, wname) in workload_names.iter().enumerate() {
            let make = || match wi {
                0 => Workload::resnet50(),
                1 => Workload::gnmt(),
                _ => Workload::dlrm(shape.nodes()),
            };
            let reports: Vec<IterationReport> = SystemConfig::ALL
                .iter()
                .map(|&c| run(c, make(), shape))
                .collect();
            let ideal_total = reports[4].total_time_us();
            for (ci, r) in reports.iter().enumerate() {
                println!(
                    "{:>10} {:>10} | {:>12.0} {:>12.0} {:>12.0} | {:>7.1}%",
                    wname,
                    r.config(),
                    r.total_compute_us(),
                    r.exposed_comm_us(),
                    r.total_time_us(),
                    ideal_total / r.total_time_us() * 100.0
                );
                ideal_fractions[ci].push(ideal_total / r.total_time_us());
                emit_tsv(
                    "fig11a",
                    &[
                        ("nodes", shape.nodes().to_string()),
                        ("workload", wname.to_string()),
                        ("config", r.config().to_string()),
                        ("compute_us", format!("{:.1}", r.total_compute_us())),
                        ("exposed_us", format!("{:.1}", r.exposed_comm_us())),
                        ("total_us", format!("{:.1}", r.total_time_us())),
                    ],
                );
            }
            let ace_total = reports[3].total_time_us();
            let ace_net = reports[3].effective_network_gbps_per_npu();
            let mut best = f64::INFINITY;
            for bi in 0..3 {
                let s = reports[bi].total_time_us() / ace_total;
                speedups[wi][bi].push(s);
                best = best.min(reports[bi].total_time_us());
                net_util_gains
                    .push(ace_net / reports[bi].effective_network_gbps_per_npu().max(1e-9));
            }
            best_baseline_speedups[wi].push(best / ace_total);
        }
    }

    subheader("Fig. 11b: ACE speedup over each baseline");
    println!(
        "{:>10} | {:>22} | {:>22} | {:>22}",
        "workload", "vs NoOverlap", "vs CommOpt", "vs CompOpt"
    );
    let fmt = |v: &[f64]| {
        let avg = v.iter().sum::<f64>() / v.len() as f64;
        let max = v.iter().cloned().fold(f64::MIN, f64::max);
        format!("avg {avg:.2}x (max {max:.2}x)")
    };
    for (wi, wname) in workload_names.iter().enumerate() {
        println!(
            "{:>10} | {:>22} | {:>22} | {:>22}",
            wname,
            fmt(&speedups[wi][0]),
            fmt(&speedups[wi][1]),
            fmt(&speedups[wi][2])
        );
    }

    subheader("Headline summary");
    for (wi, wname) in workload_names.iter().enumerate() {
        let v = &best_baseline_speedups[wi];
        let avg = v.iter().sum::<f64>() / v.len() as f64;
        let max = v.iter().cloned().fold(f64::MIN, f64::max);
        println!("ACE vs best baseline, {wname:>10}: avg {avg:.2}x, max {max:.2}x");
        emit_tsv(
            "fig11b",
            &[
                ("workload", wname.to_string()),
                ("avg_speedup", format!("{avg:.3}")),
                ("max_speedup", format!("{max:.3}")),
            ],
        );
    }
    let gain_avg = net_util_gains.iter().sum::<f64>() / net_util_gains.len() as f64;
    let gain_max = net_util_gains.iter().cloned().fold(f64::MIN, f64::max);
    println!(
        "ACE effective network-BW gain over baselines: avg {gain_avg:.2}x, max {gain_max:.2}x"
    );
    for (ci, c) in SystemConfig::ALL.iter().enumerate() {
        let f = &ideal_fractions[ci];
        let avg = f.iter().sum::<f64>() / f.len() as f64;
        println!(
            "{:>10}: {:.1}% of ideal on average",
            c.short_name(),
            avg * 100.0
        );
    }

    println!();
    println!("Paper reference: ACE speedups vs best baseline avg 1.41x (ResNet-50),");
    println!("1.12x (GNMT), 1.13x (DLRM); effective network BW +1.44x avg (up to");
    println!("2.67x); NoOverlap/CommOpt/CompOpt/ACE reach 68.5/49.9/75.7/91% of ideal.");
}
