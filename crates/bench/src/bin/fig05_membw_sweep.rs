//! Fig. 5 — achieved network bandwidth vs. HBM bandwidth available to
//! communication, for a single 64 MB all-reduce on 16- and 64-NPU tori.
//!
//! Reproduces the paper's headline: the baseline needs ≈450 GB/s of
//! memory bandwidth to reach ~90 % of the ideal endpoint's network
//! performance, while ACE gets there with ≈128 GB/s — a ≈3.5× reduction.
//!
//! The sweep itself is a thin [`ace_sweep::Scenario`] (the same grid as
//! `examples/scenarios/membw_sweep.toml`); this binary only does the
//! figure-specific pivoting and commentary.
//!
//! `--trace PATH` additionally re-runs the paper's headline cell (ACE at
//! 128 GB/s on the 16-NPU torus) with event recording on and writes a
//! Chrome/Perfetto `trace_event` JSON.

use ace_bench::{emit_tsv, header, subheader};
use ace_net::{TopologySpec, TorusShape};
use ace_sweep::{
    run_scenario, BaselineSpec, EngineFamily, EngineSpec, RunResult, RunnerOptions, Scenario,
    SweepOutcome,
};

const PAYLOAD: u64 = 64 << 20;
const SWEEPS: [f64; 10] = [
    32.0, 64.0, 96.0, 128.0, 192.0, 256.0, 320.0, 450.0, 600.0, 900.0,
];

fn scenario() -> Scenario {
    let mut sc = Scenario::collective("fig05-membw");
    sc.topologies = vec![
        TorusShape::new(4, 2, 2).expect("valid shape").into(),
        TorusShape::new(4, 4, 4).expect("valid shape").into(),
    ];
    sc.engines = vec![
        EngineFamily::Ideal,
        EngineFamily::Baseline,
        EngineFamily::Ace,
    ];
    sc.payload_bytes = vec![PAYLOAD];
    sc.mem_gbps = SWEEPS.to_vec();
    sc.comm_sms = vec![80];
    sc.baseline = Some(BaselineSpec::Engine(EngineSpec::Ideal));
    sc
}

/// The grid row for `spec` on `shape`.
fn find(out: &SweepOutcome, shape: TopologySpec, spec: EngineSpec) -> &RunResult {
    out.find_collective(shape, spec)
        .expect("point is in the grid")
}

fn main() {
    header("Fig. 5: network BW utilization vs comm memory bandwidth (64 MB all-reduce)");

    let sc = scenario();
    let out = run_scenario(&sc, RunnerOptions::default()).expect("valid scenario");

    for &shape in &sc.topologies {
        subheader(&format!("{} NPUs ({shape})", shape.nodes()));

        let ideal = find(&out, shape, EngineSpec::Ideal);
        println!(
            "ideal endpoint: {:.1} GB/s per NPU",
            ideal.metrics.gbps_per_npu
        );
        println!(
            "{:>10} | {:>16} | {:>16} | {:>9} | {:>9}",
            "mem GB/s", "baseline GB/s", "ACE GB/s", "base/idl", "ace/idl"
        );

        let mut base_90 = None;
        let mut ace_90 = None;
        for &bw in &SWEEPS {
            let base = find(&out, shape, EngineSpec::baseline(bw, 80));
            let ace = find(&out, shape, EngineSpec::ace(bw));
            let bi = base.speedup_vs_baseline.expect("baseline named");
            let ai = ace.speedup_vs_baseline.expect("baseline named");
            if base_90.is_none() && bi >= 0.85 {
                base_90 = Some(bw);
            }
            if ace_90.is_none() && ai >= 0.85 {
                ace_90 = Some(bw);
            }
            println!(
                "{:>10.0} | {:>16.1} | {:>16.1} | {:>8.1}% | {:>8.1}%",
                bw,
                base.metrics.gbps_per_npu,
                ace.metrics.gbps_per_npu,
                bi * 100.0,
                ai * 100.0
            );
            emit_tsv(
                "fig05",
                &[
                    ("nodes", shape.nodes().to_string()),
                    ("mem_gbps", format!("{bw:.0}")),
                    ("baseline_gbps", format!("{:.2}", base.metrics.gbps_per_npu)),
                    ("ace_gbps", format!("{:.2}", ace.metrics.gbps_per_npu)),
                ],
            );
        }
        match (base_90, ace_90) {
            (Some(b), Some(a)) => println!(
                "≈90% of ideal: baseline at {b:.0} GB/s, ACE at {a:.0} GB/s -> {:.1}x reduction",
                b / a
            ),
            _ => println!("one engine never reached 90% of ideal in the sweep"),
        }
    }

    println!();
    println!("Paper reference: baseline ≈450 GB/s and ACE ≈128 GB/s for 90% of an");
    println!("ideal ~300 GB/s, i.e. a ≈3.5x memory-bandwidth reduction.");

    let mut argv = std::env::args().skip(1);
    while let Some(arg) = argv.next() {
        if arg == "--trace" {
            let path = argv.next().expect("--trace needs a path");
            write_trace(&path);
            println!("wrote trace {path} (load at https://ui.perfetto.dev)");
        }
    }
}

/// Records the headline cell — ACE at 128 GB/s on the 16-NPU torus — and
/// writes it as Chrome `trace_event` JSON.
fn write_trace(path: &str) {
    let shape: TopologySpec = TorusShape::new(4, 2, 2).expect("valid shape").into();
    let (_, tracer) = ace_system::RunSpec::new(
        shape,
        EngineSpec::ace(128.0).to_engine_kind(),
        ace_collectives::CollectiveOp::AllReduce,
        PAYLOAD,
    )
    .traced()
    .run_traced()
    .expect("pristine run cannot fail");
    std::fs::write(path, ace_trace::chrome::to_chrome_json(&tracer)).expect("write trace");
}
