//! Fig. 5 — achieved network bandwidth vs. HBM bandwidth available to
//! communication, for a single 64 MB all-reduce on 16- and 64-NPU tori.
//!
//! Reproduces the paper's headline: the baseline needs ≈450 GB/s of
//! memory bandwidth to reach ~90 % of the ideal endpoint's network
//! performance, while ACE gets there with ≈128 GB/s — a ≈3.5× reduction.

use ace_bench::{emit_tsv, header, subheader};
use ace_collectives::CollectiveOp;
use ace_net::TorusShape;
use ace_system::{run_single_collective, EngineKind};

const PAYLOAD: u64 = 64 << 20;

fn main() {
    header("Fig. 5: network BW utilization vs comm memory bandwidth (64 MB all-reduce)");

    let sweeps: [f64; 10] = [32.0, 64.0, 96.0, 128.0, 192.0, 256.0, 320.0, 450.0, 600.0, 900.0];
    for (l, v, h) in [(4, 2, 2), (4, 4, 4)] {
        let shape = TorusShape::new(l, v, h).expect("valid shape");
        subheader(&format!("{} NPUs ({shape})", shape.nodes()));

        let ideal = run_single_collective(shape, EngineKind::Ideal, CollectiveOp::AllReduce, PAYLOAD);
        println!("ideal endpoint: {:.1} GB/s per NPU", ideal.achieved_gbps_per_npu);
        println!(
            "{:>10} | {:>16} | {:>16} | {:>9} | {:>9}",
            "mem GB/s", "baseline GB/s", "ACE GB/s", "base/idl", "ace/idl"
        );

        let mut base_90 = None;
        let mut ace_90 = None;
        for &bw in &sweeps {
            let base = run_single_collective(
                shape,
                EngineKind::Baseline { comm_mem_gbps: bw, comm_sms: 80 },
                CollectiveOp::AllReduce,
                PAYLOAD,
            );
            let ace = run_single_collective(
                shape,
                EngineKind::Ace { dma_mem_gbps: bw },
                CollectiveOp::AllReduce,
                PAYLOAD,
            );
            let bi = base.achieved_gbps_per_npu / ideal.achieved_gbps_per_npu;
            let ai = ace.achieved_gbps_per_npu / ideal.achieved_gbps_per_npu;
            if base_90.is_none() && bi >= 0.85 {
                base_90 = Some(bw);
            }
            if ace_90.is_none() && ai >= 0.85 {
                ace_90 = Some(bw);
            }
            println!(
                "{:>10.0} | {:>16.1} | {:>16.1} | {:>8.1}% | {:>8.1}%",
                bw,
                base.achieved_gbps_per_npu,
                ace.achieved_gbps_per_npu,
                bi * 100.0,
                ai * 100.0
            );
            emit_tsv(
                "fig05",
                &[
                    ("nodes", shape.nodes().to_string()),
                    ("mem_gbps", format!("{bw:.0}")),
                    ("baseline_gbps", format!("{:.2}", base.achieved_gbps_per_npu)),
                    ("ace_gbps", format!("{:.2}", ace.achieved_gbps_per_npu)),
                ],
            );
        }
        match (base_90, ace_90) {
            (Some(b), Some(a)) => println!(
                "≈90% of ideal: baseline at {b:.0} GB/s, ACE at {a:.0} GB/s -> {:.1}x reduction",
                b / a
            ),
            _ => println!("one engine never reached 90% of ideal in the sweep"),
        }
    }

    println!();
    println!("Paper reference: baseline ≈450 GB/s and ACE ≈128 GB/s for 90% of an");
    println!("ideal ~300 GB/s, i.e. a ≈3.5x memory-bandwidth reduction.");
}
