//! Section III motivation — the Megatron-LM measurement, rerun in
//! simulation (extension experiment).
//!
//! The paper reports that on a real 8-GPU system, overlapping
//! Megatron-LM's communication with compute degrades the communication
//! ≈1.4× relative to issuing all collectives after back-propagation. We
//! rerun the comparison with the Transformer-LM workload: communication
//! time under the overlapped BaselineCommOpt allocation (450 GB/s, 6 SMs
//! — resources shared with compute) vs. under BaselineNoOverlap (full
//! endpoint, blocking).

use ace_bench::{emit_tsv, header};
use ace_system::{SystemBuilder, SystemConfig};
use ace_workloads::Workload;

fn main() {
    header("Section III motivation: Megatron-LM-style overlap degradation (4x2x2)");
    println!("workload: {}\n", Workload::transformer_lm());

    let mut comm_times = Vec::new();
    for config in [
        SystemConfig::BaselineNoOverlap,
        SystemConfig::BaselineCommOpt,
        SystemConfig::BaselineCompOpt,
        SystemConfig::Ace,
    ] {
        let report = SystemBuilder::new()
            .topology(4, 2, 2)
            .config(config)
            .workload(Workload::transformer_lm())
            .build()
            .expect("valid system")
            .run();
        // Communication time proxy: everything that is not compute.
        let comm = report.total_time_us() - report.total_compute_us();
        println!(
            "{:>10}: total {:>9.0} us | compute {:>9.0} us | comm-on-critical-path {:>8.0} us",
            report.config(),
            report.total_time_us(),
            report.total_compute_us(),
            comm
        );
        emit_tsv(
            "motivation_megatron",
            &[
                ("config", report.config().to_string()),
                ("total_us", format!("{:.1}", report.total_time_us())),
                ("comm_us", format!("{comm:.1}")),
            ],
        );
        comm_times.push((config, comm, report.network_bytes()));
    }

    // The paper's metric: overlapped comms run slower than dedicated-run
    // comms. Compare effective communication throughput (same bytes).
    let no_overlap = comm_times[0].1;
    let comp_opt = comm_times[2].1;
    if no_overlap > 0.0 {
        println!(
            "\noverlap degradation (CompOpt exposed comm / NoOverlap comm): {:.2}x",
            comp_opt / no_overlap
        );
    }
    println!();
    println!("Paper reference (real 8-GPU measurement): overlapped communication");
    println!("runs ≈1.4x slower than communication issued after back-propagation,");
    println!("because it shares SMs and memory bandwidth with compute. ACE removes");
    println!("the contention entirely.");
}
