//! Fig. 6 — achieved network bandwidth vs. the number of SMs loaned to
//! the communication task (baseline endpoint, full memory bandwidth).
//!
//! Each SM drives ≈80 GB/s (64 B/cycle at 1245 MHz), so ≈6 SMs saturate
//! the 450 GB/s the endpoint pipeline can use — matching the core counts
//! NCCL/oneCCL actually burn. ACE does not consume SMs, so this
//! experiment is baseline-only (as in the paper).
//!
//! The sweep is a thin [`ace_sweep::Scenario`] over the `comm_sms` axis;
//! percentage points that round to the same SM count (5 % and 6 % of 80)
//! collapse into one cached simulation.

use ace_bench::{emit_tsv, header, subheader};
use ace_compute::SmDriveModel;
use ace_net::{TopologySpec, TorusShape};
use ace_sweep::{
    run_scenario, EngineFamily, EngineSpec, RunResult, RunnerOptions, Scenario, SweepOutcome,
};

const PAYLOAD: u64 = 64 << 20;
// The paper's x-axis is the % of the 80-SM pool: 1..6, 10, 20, 80 %.
const SM_PERCENTS: [u32; 9] = [1, 2, 3, 4, 5, 6, 10, 20, 80];

fn sms_for(pct: u32) -> u32 {
    (80 * pct / 100).max(1)
}

fn scenario() -> Scenario {
    let mut sc = Scenario::collective("fig06-sm-sweep");
    sc.topologies = vec![
        TorusShape::new(4, 2, 2).expect("valid shape").into(),
        TorusShape::new(4, 4, 4).expect("valid shape").into(),
    ];
    sc.engines = vec![EngineFamily::Baseline];
    sc.payload_bytes = vec![PAYLOAD];
    sc.mem_gbps = vec![900.0];
    sc.comm_sms = SM_PERCENTS.iter().map(|&p| sms_for(p)).collect();
    sc
}

fn find(out: &SweepOutcome, shape: TopologySpec, sms: u32) -> &RunResult {
    out.find_collective(shape, EngineSpec::baseline(900.0, sms))
        .expect("point is in the grid")
}

fn main() {
    header("Fig. 6: network BW utilization vs # SMs for communication (64 MB all-reduce)");
    let drive = SmDriveModel::paper_default();
    println!("per-SM drive bandwidth: {:.1} GB/s", drive.per_sm_gbps());

    let sc = scenario();
    let out = run_scenario(&sc, RunnerOptions::default()).expect("valid scenario");

    for &shape in &sc.topologies {
        subheader(&format!("{} NPUs ({shape}) baseline", shape.nodes()));
        println!(
            "{:>7} | {:>5} | {:>12} | {:>14}",
            "% SMs", "SMs", "drive GB/s", "achieved GB/s"
        );
        for &pct in &SM_PERCENTS {
            let sms = sms_for(pct);
            let r = find(&out, shape, sms);
            println!(
                "{:>6}% | {:>5} | {:>12.1} | {:>14.1}",
                pct,
                sms,
                drive.drive_gbps(sms),
                r.metrics.gbps_per_npu
            );
            emit_tsv(
                "fig06",
                &[
                    ("nodes", shape.nodes().to_string()),
                    ("sms", sms.to_string()),
                    ("achieved_gbps", format!("{:.2}", r.metrics.gbps_per_npu)),
                ],
            );
        }
    }

    println!();
    println!("Paper reference: throughput climbs steeply up to ~6 SMs (enough to");
    println!("drive 450 GB/s of memory traffic) and flattens beyond — matching the");
    println!("SM budgets used by oneCCL and NCCL.");
}
