//! Fig. 6 — achieved network bandwidth vs. the number of SMs loaned to
//! the communication task (baseline endpoint, full memory bandwidth).
//!
//! Each SM drives ≈80 GB/s (64 B/cycle at 1245 MHz), so ≈6 SMs saturate
//! the 450 GB/s the endpoint pipeline can use — matching the core counts
//! NCCL/oneCCL actually burn. ACE does not consume SMs, so this
//! experiment is baseline-only (as in the paper).

use ace_bench::{emit_tsv, header, subheader};
use ace_collectives::CollectiveOp;
use ace_compute::SmDriveModel;
use ace_net::TorusShape;
use ace_system::{run_single_collective, EngineKind};

const PAYLOAD: u64 = 64 << 20;

fn main() {
    header("Fig. 6: network BW utilization vs # SMs for communication (64 MB all-reduce)");
    let drive = SmDriveModel::paper_default();
    println!("per-SM drive bandwidth: {:.1} GB/s", drive.per_sm_gbps());

    // The paper's x-axis is the % of the 80-SM pool: 1..6, 10, 20, 80 %.
    let sm_percents: [u32; 9] = [1, 2, 3, 4, 5, 6, 10, 20, 80];
    for (l, v, h) in [(4, 2, 2), (4, 4, 4)] {
        let shape = TorusShape::new(l, v, h).expect("valid shape");
        subheader(&format!("{} NPUs ({shape}) baseline", shape.nodes()));
        println!("{:>7} | {:>5} | {:>12} | {:>14}", "% SMs", "SMs", "drive GB/s", "achieved GB/s");
        for &pct in &sm_percents {
            let sms = (80 * pct / 100).max(1);
            let r = run_single_collective(
                shape,
                EngineKind::Baseline { comm_mem_gbps: 900.0, comm_sms: sms },
                CollectiveOp::AllReduce,
                PAYLOAD,
            );
            println!(
                "{:>6}% | {:>5} | {:>12.1} | {:>14.1}",
                pct,
                sms,
                drive.drive_gbps(sms),
                r.achieved_gbps_per_npu
            );
            emit_tsv(
                "fig06",
                &[
                    ("nodes", shape.nodes().to_string()),
                    ("sms", sms.to_string()),
                    ("achieved_gbps", format!("{:.2}", r.achieved_gbps_per_npu)),
                ],
            );
        }
    }

    println!();
    println!("Paper reference: throughput climbs steeply up to ~6 SMs (enough to");
    println!("drive 450 GB/s of memory traffic) and flattens beyond — matching the");
    println!("SM budgets used by oneCCL and NCCL.");
}
