//! Fig. 12 — the DLRM training-loop optimization enabled by ACE's
//! reclaimed memory bandwidth (Section VI-D).
//!
//! The embedding lookup/update of the next/previous iteration runs in the
//! background on a 1-SM / 80 GB/s carve-out, and the forward all-to-all
//! is issued as soon as the lookup finishes — pulling the embedding
//! pipeline off the critical path. BaselineCompOpt benefits little (its
//! communication is the bottleneck); ACE converts the saved compute into
//! iteration-time reduction.

use ace_bench::{emit_tsv, header};
use ace_system::{SystemBuilder, SystemConfig};
use ace_workloads::Workload;

fn main() {
    header("Fig. 12: DLRM default vs optimized training loop (4x8x4, 128 NPUs)");
    println!(
        "{:>10} {:>10} | {:>12} {:>12} {:>12}",
        "config", "loop", "compute us", "exposed us", "total us"
    );
    let mut totals = Vec::new();
    for config in [SystemConfig::BaselineCompOpt, SystemConfig::Ace] {
        for optimized in [false, true] {
            let report = SystemBuilder::new()
                .topology(4, 8, 4)
                .config(config)
                .workload(Workload::dlrm(128))
                .optimized_embedding(optimized)
                .build()
                .expect("valid system")
                .run();
            let label = if optimized { "optimized" } else { "default" };
            println!(
                "{:>10} {:>10} | {:>12.0} {:>12.0} {:>12.0}",
                report.config(),
                label,
                report.total_compute_us(),
                report.exposed_comm_us(),
                report.total_time_us()
            );
            emit_tsv(
                "fig12",
                &[
                    ("config", report.config().to_string()),
                    ("loop", label.to_string()),
                    ("total_us", format!("{:.1}", report.total_time_us())),
                ],
            );
            totals.push(report.total_time_us());
        }
    }
    let base_gain = totals[0] / totals[1];
    let ace_gain = totals[2] / totals[3];
    println!();
    println!("optimization gain: BaselineCompOpt {base_gain:.2}x, ACE {ace_gain:.2}x");
    println!();
    println!("Paper reference: the optimized loop buys BaselineCompOpt only 1.05x");
    println!("(poor communication performance wastes the freed compute) but ACE");
    println!("1.2x — the extra memory bandwidth ACE frees makes the optimization");
    println!("worthwhile.");
}
