//! Ablation studies over the design choices the paper (and DESIGN.md)
//! call out:
//!
//! 1. **LIFO vs FIFO collective scheduling** (Section V: LIFO prioritizes
//!    the first layers' collectives during back-propagation, shrinking
//!    next-iteration forward-pass stalls).
//! 2. **Bidirectional vs unidirectional rings** (Table V's bidirectional
//!    rings double the usable link bandwidth per dimension).
//! 3. **Chunk size** (Table III's 64 kB pipelining unit: too small wastes
//!    per-chunk overheads, too large starves pipeline depth and ACE's
//!    SRAM partitions).
//! 4. **In-flight chunk cap** (pipeline depth vs. bandwidth-delay
//!    product).

use ace_bench::{emit_tsv, header, subheader};
use ace_collectives::{CollectiveOp, CollectivePlan, Granularity};
use ace_endpoint::{AceEndpoint, AceEndpointParams, CollectiveEngine};
use ace_net::{NetworkParams, TorusShape};
use ace_simcore::SimTime;
use ace_system::{CollectiveExecutor, ExecutorOptions, SchedulingPolicy};

const PAYLOAD: u64 = 32 << 20;

fn ace_executor(shape: TorusShape, options: ExecutorOptions) -> CollectiveExecutor {
    let params = NetworkParams::paper_default();
    let plan = CollectivePlan::for_op(CollectiveOp::AllReduce, shape);
    let weights = CollectiveExecutor::phase_weights(&plan, &params);
    CollectiveExecutor::with_options(shape, params, options, move || {
        Box::new(AceEndpoint::new(AceEndpointParams::paper_default(
            weights.clone(),
        ))) as Box<dyn CollectiveEngine>
    })
}

fn run_single(shape: TorusShape, options: ExecutorOptions) -> u64 {
    let mut ex = ace_executor(shape, options);
    let h = ex.issue(CollectiveOp::AllReduce, PAYLOAD, SimTime::ZERO);
    ex.run_until_complete(h).cycles()
}

fn main() {
    header("Ablations: scheduling, ring direction, chunk size, pipeline depth");
    let shape = TorusShape::new(4, 4, 4).expect("valid shape");
    let base = ExecutorOptions::default();

    subheader("1. LIFO vs FIFO (small late collective behind a large early one)");
    for policy in [SchedulingPolicy::Lifo, SchedulingPolicy::Fifo] {
        let mut ex = ace_executor(
            shape,
            ExecutorOptions {
                scheduling: policy,
                ..base
            },
        );
        let big = ex.issue(CollectiveOp::AllReduce, 64 << 20, SimTime::ZERO);
        let small = ex.issue(CollectiveOp::AllReduce, 1 << 20, SimTime::from_cycles(1));
        let t_small = ex.run_until_complete(small).cycles();
        let t_big = ex.run_until_complete(big).cycles();
        println!(
            "{policy:?}: late 1 MB collective done at {t_small:>8} cyc; 64 MB at {t_big:>8} cyc"
        );
        emit_tsv(
            "ablation_sched",
            &[
                ("policy", format!("{policy:?}")),
                ("small_done", t_small.to_string()),
            ],
        );
    }
    println!("Expected: LIFO finishes the late (first-layer) collective far sooner.");

    subheader("2. Bidirectional vs unidirectional rings (32 MB all-reduce)");
    for bidir in [true, false] {
        let t = run_single(
            shape,
            ExecutorOptions {
                bidirectional_rings: bidir,
                ..base
            },
        );
        println!(
            "{}: {t:>9} cyc",
            if bidir {
                "bidirectional (paper)"
            } else {
                "unidirectional      "
            }
        );
        emit_tsv(
            "ablation_rings",
            &[
                ("bidirectional", bidir.to_string()),
                ("cycles", t.to_string()),
            ],
        );
    }
    println!("Expected: unidirectional roughly doubles ring serialization time.");

    subheader("3. Chunk size (Table III default: 64 kB)");
    for kb in [16u64, 32, 64, 128, 256, 512] {
        let granularity = Granularity {
            chunk_bytes: kb * 1024,
            ..Granularity::paper_default()
        };
        let t = run_single(
            shape,
            ExecutorOptions {
                granularity,
                ..base
            },
        );
        println!("{kb:>4} kB chunks: {t:>9} cyc");
        emit_tsv(
            "ablation_chunk",
            &[("chunk_kb", kb.to_string()), ("cycles", t.to_string())],
        );
    }
    println!("Expected: a broad sweet spot around the paper's 64 kB.");

    subheader("4. In-flight chunk cap (pipeline depth)");
    for cap in [4usize, 16, 64, 128, 256] {
        let t = run_single(
            shape,
            ExecutorOptions {
                max_inflight_chunks: cap,
                ..base
            },
        );
        println!("cap {cap:>4}: {t:>9} cyc");
        emit_tsv(
            "ablation_inflight",
            &[("cap", cap.to_string()), ("cycles", t.to_string())],
        );
    }
    println!("Expected: shallow pipelines cannot cover the inter-package");
    println!("bandwidth-delay product; returns diminish past ~64 chunks.");
}
