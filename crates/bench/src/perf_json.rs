//! The perf harness's benchmark-JSON schema: emitter, reader, and the
//! CI regression gate.
//!
//! The `perf` binary used to format its output inline, which left the
//! emitter untestable and (notably) the `mode` field's plumbing
//! unverified — a smoke run writing `"mode": "full"` would silently
//! mislabel the checked-in baseline. The schema now lives here, with the
//! mode threaded explicitly ([`BenchMode`]) and locked by unit tests,
//! next to a minimal reader for the same format so CI can compare a
//! fresh smoke run against the checked-in `BENCH_executor.json` entry
//! and fail on regressions.

use std::fmt;

/// Which grids the perf run timed. Threaded explicitly through the
/// emitter so `--smoke` output can never be mislabeled `full`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BenchMode {
    /// The full Fig. 9a grid + training suite.
    Full,
    /// Tiny CI-sized grids.
    Smoke,
}

impl fmt::Display for BenchMode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BenchMode::Full => f.write_str("full"),
            BenchMode::Smoke => f.write_str("smoke"),
        }
    }
}

/// The toolchain fingerprint embedded in benchmark JSON. Perf numbers
/// are only comparable between identical compilers and flags, so the
/// emitter records both — a baseline produced by a different toolchain
/// is visible in the file instead of silently skewing the gate.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BuildInfo {
    /// `rustc -V` of the toolchain (`"unknown"` when rustc is absent).
    pub rustc: String,
    /// The `RUSTFLAGS` the process ran under (empty when unset).
    pub rustflags: String,
}

impl BuildInfo {
    /// Captures the runtime toolchain: `rustc -V` output (trimmed;
    /// `"unknown"` if rustc is not on `PATH`) plus the `RUSTFLAGS`
    /// environment variable.
    pub fn capture() -> BuildInfo {
        let rustc = std::process::Command::new("rustc")
            .arg("-V")
            .output()
            .ok()
            .filter(|o| o.status.success())
            .map(|o| String::from_utf8_lossy(&o.stdout).trim().to_string())
            .filter(|s| !s.is_empty())
            .unwrap_or_else(|| "unknown".to_string());
        let rustflags = std::env::var("RUSTFLAGS").unwrap_or_default();
        BuildInfo { rustc, rustflags }
    }
}

/// One timed scenario.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchEntry {
    /// Scenario name.
    pub scenario: String,
    /// Grid cells in the scenario.
    pub points: usize,
    /// Minimum wall time across the runs, milliseconds.
    pub wall_ms: f64,
    /// Throughput at the minimum wall time.
    pub points_per_sec: f64,
}

/// The optional reference-build comparison block.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchBaseline {
    /// Free-form label of the reference build.
    pub label: Option<String>,
    /// The reference build's points/sec for the first entry.
    pub points_per_sec: f64,
}

/// Minimal JSON string escaping for interpolated names/labels.
pub fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Renders the benchmark JSON (`version` 1). The `mode` field is the
/// explicit [`BenchMode`] — regression-tested, since the CI gate keys
/// off it.
pub fn to_json(
    mode: BenchMode,
    threads: usize,
    runs: usize,
    info: &BuildInfo,
    entries: &[BenchEntry],
    baseline: Option<&BenchBaseline>,
) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str("  \"version\": 1,\n");
    out.push_str(&format!("  \"mode\": \"{mode}\",\n"));
    out.push_str(&format!("  \"threads\": {threads},\n"));
    out.push_str(&format!("  \"runs\": {runs},\n"));
    out.push_str(&format!("  \"rustc\": \"{}\",\n", json_escape(&info.rustc)));
    out.push_str(&format!(
        "  \"rustflags\": \"{}\",\n",
        json_escape(&info.rustflags)
    ));
    out.push_str("  \"entries\": [\n");
    for (i, e) in entries.iter().enumerate() {
        let sep = if i + 1 == entries.len() { "" } else { "," };
        out.push_str(&format!(
            "    {{\"scenario\": \"{}\", \"points\": {}, \"wall_ms\": {:.1}, \
             \"points_per_sec\": {:.3}, \"threads\": {threads}}}{sep}\n",
            json_escape(&e.scenario),
            e.points,
            e.wall_ms,
            e.points_per_sec,
        ));
    }
    out.push_str("  ]");
    if let Some(b) = baseline {
        let speedup = entries
            .first()
            .map(|e| e.points_per_sec / b.points_per_sec)
            .unwrap_or(f64::NAN);
        out.push_str(",\n  \"baseline\": {");
        if let Some(label) = &b.label {
            out.push_str(&format!("\"label\": \"{}\", ", json_escape(label)));
        }
        out.push_str(&format!(
            "\"points_per_sec\": {:.3}, \"speedup\": {speedup:.3}}}",
            b.points_per_sec
        ));
    }
    out.push_str("\n}\n");
    out
}

/// Extracts `(scenario, points_per_sec)` pairs from benchmark JSON
/// written by [`to_json`] — a purpose-built scanner, not a general JSON
/// parser (the workspace is std-only). Tolerates unknown fields and any
/// whitespace layout produced by the emitter.
pub fn read_entries(json: &str) -> Result<Vec<(String, f64)>, String> {
    let mut out = Vec::new();
    let mut rest = json;
    while let Some(pos) = rest.find("\"scenario\"") {
        rest = &rest[pos + "\"scenario\"".len()..];
        let name = read_string_value(rest)
            .ok_or_else(|| "malformed \"scenario\" field in bench JSON".to_string())?;
        // Search only within the current entry object: an entry missing
        // its points_per_sec must fail loudly, not silently steal the
        // next entry's (or the baseline block's) value.
        let entry_end = rest
            .find('}')
            .ok_or_else(|| format!("entry '{name}' has no closing brace"))?;
        let entry = &rest[..entry_end];
        let pps_pos = entry
            .find("\"points_per_sec\"")
            .ok_or_else(|| format!("entry '{name}' has no points_per_sec"))?;
        let after = &entry[pps_pos + "\"points_per_sec\"".len()..];
        let num = read_number_value(after)
            .ok_or_else(|| format!("entry '{name}' has a malformed points_per_sec"))?;
        out.push((name, num));
        rest = &rest[entry_end..];
    }
    if out.is_empty() {
        return Err("no benchmark entries found in JSON".into());
    }
    Ok(out)
}

fn read_string_value(after_key: &str) -> Option<String> {
    let colon = after_key.find(':')?;
    let rest = after_key[colon + 1..].trim_start();
    let rest = rest.strip_prefix('"')?;
    let end = rest.find('"')?;
    Some(rest[..end].to_string())
}

fn read_number_value(after_key: &str) -> Option<f64> {
    let colon = after_key.find(':')?;
    let rest = after_key[colon + 1..].trim_start();
    let end = rest
        .find(|c: char| !(c.is_ascii_digit() || c == '.' || c == '-' || c == 'e' || c == 'E'))
        .unwrap_or(rest.len());
    rest[..end].parse::<f64>().ok()
}

/// The CI perf-regression gate: compares each fresh entry against the
/// same-named entry of the checked-in baseline JSON and reports entries
/// slower by more than `tolerance` (e.g. `0.30` = 30 %). Baseline
/// entries with no fresh counterpart (and vice versa) are skipped —
/// the gate compares overlapping scenarios only.
///
/// Returns the human-readable comparison table; `Err` carries the same
/// table when at least one entry regresses beyond tolerance.
pub fn check_regression(
    fresh: &[(String, f64)],
    baseline: &[(String, f64)],
    tolerance: f64,
) -> Result<String, String> {
    let mut report = String::new();
    let mut failed = false;
    let mut compared = 0;
    for (name, pps) in fresh {
        let Some((_, base)) = baseline.iter().find(|(n, _)| n == name) else {
            continue;
        };
        compared += 1;
        let ratio = pps / base;
        let verdict = if ratio < 1.0 - tolerance {
            failed = true;
            "REGRESSED"
        } else {
            "ok"
        };
        report.push_str(&format!(
            "{name}: {pps:.3} points/sec vs baseline {base:.3} ({ratio:.2}x) {verdict}\n"
        ));
    }
    if compared == 0 {
        return Err("no overlapping scenarios between fresh run and baseline".into());
    }
    if failed {
        Err(report)
    } else {
        Ok(report)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn info() -> BuildInfo {
        BuildInfo {
            rustc: "rustc 1.80.0 (test)".into(),
            rustflags: "-C target-cpu=native".into(),
        }
    }

    fn entries() -> Vec<BenchEntry> {
        vec![
            BenchEntry {
                scenario: "fig09a-design-space-smoke".into(),
                points: 4,
                wall_ms: 8.7,
                points_per_sec: 461.2,
            },
            BenchEntry {
                scenario: "training-suite-smoke".into(),
                points: 2,
                wall_ms: 1.8,
                points_per_sec: 1097.4,
            },
        ]
    }

    #[test]
    fn smoke_mode_is_threaded_through() {
        // Regression lock for the `--smoke` label: the emitted mode must
        // be exactly what the caller passed, never a default.
        let json = to_json(BenchMode::Smoke, 1, 1, &info(), &entries(), None);
        assert!(json.contains("\"mode\": \"smoke\""), "{json}");
        assert!(!json.contains("\"mode\": \"full\""), "{json}");
        let json = to_json(BenchMode::Full, 2, 3, &info(), &entries(), None);
        assert!(json.contains("\"mode\": \"full\""), "{json}");
        assert!(json.contains("\"threads\": 2"));
        assert!(json.contains("\"runs\": 3"));
    }

    #[test]
    fn toolchain_fingerprint_is_recorded() {
        let json = to_json(BenchMode::Smoke, 1, 1, &info(), &entries(), None);
        assert!(
            json.contains("\"rustc\": \"rustc 1.80.0 (test)\""),
            "{json}"
        );
        assert!(
            json.contains("\"rustflags\": \"-C target-cpu=native\""),
            "{json}"
        );
        // Captured info is always populated, even without rustc/RUSTFLAGS.
        let captured = BuildInfo::capture();
        assert!(!captured.rustc.is_empty());
        // And the reader tolerates the new fields.
        assert_eq!(read_entries(&json).unwrap().len(), 2);
    }

    #[test]
    fn baseline_block_embeds_speedup() {
        let b = BenchBaseline {
            label: Some("seed".into()),
            points_per_sec: 230.6,
        };
        let json = to_json(BenchMode::Smoke, 1, 1, &info(), &entries(), Some(&b));
        assert!(json.contains("\"label\": \"seed\""));
        // 461.2 / 230.6 = 2.0.
        assert!(json.contains("\"speedup\": 2.000"), "{json}");
    }

    #[test]
    fn emitter_and_reader_round_trip() {
        let json = to_json(BenchMode::Smoke, 1, 1, &info(), &entries(), None);
        let read = read_entries(&json).unwrap();
        assert_eq!(read.len(), 2);
        assert_eq!(read[0].0, "fig09a-design-space-smoke");
        assert!((read[0].1 - 461.2).abs() < 1e-9);
        assert_eq!(read[1].0, "training-suite-smoke");
    }

    #[test]
    fn reader_handles_the_checked_in_schema() {
        // The exact shape of BENCH_executor.json, baseline block included.
        let json = r#"{
  "version": 1,
  "mode": "full",
  "threads": 1,
  "runs": 6,
  "entries": [
    {"scenario": "fig09a-design-space", "points": 32, "wall_ms": 3613.2, "points_per_sec": 8.856, "threads": 1},
    {"scenario": "training-suite", "points": 15, "wall_ms": 1747.4, "points_per_sec": 8.584, "threads": 1}
  ],
  "baseline": {"label": "x", "points_per_sec": 9.105, "speedup": 0.973}
}"#;
        let read = read_entries(json).unwrap();
        assert_eq!(read.len(), 2);
        assert!((read[1].1 - 8.584).abs() < 1e-9);
    }

    #[test]
    fn escaping_covers_quotes_and_control_chars() {
        assert_eq!(json_escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(json_escape("\u{1}"), "\\u0001");
    }

    #[test]
    fn entry_missing_points_per_sec_fails_loudly() {
        // The field search is bounded to the entry's object: a truncated
        // or hand-edited entry must not steal the next entry's value.
        let json = r#"{
  "entries": [
    {"scenario": "broken", "points": 4, "wall_ms": 8.7},
    {"scenario": "fine", "points": 2, "wall_ms": 1.8, "points_per_sec": 99.0}
  ]
}"#;
        let err = read_entries(json).unwrap_err();
        assert!(err.contains("'broken' has no points_per_sec"), "{err}");
    }

    #[test]
    fn regression_gate_passes_within_tolerance() {
        let fresh = vec![("a".to_string(), 80.0), ("b".to_string(), 130.0)];
        let base = vec![("a".to_string(), 100.0), ("b".to_string(), 100.0)];
        // 20 % slower on `a` is inside a 30 % tolerance.
        let report = check_regression(&fresh, &base, 0.30).unwrap();
        assert!(report.contains("ok"));
        assert!(!report.contains("REGRESSED"));
    }

    #[test]
    fn regression_gate_fails_beyond_tolerance() {
        let fresh = vec![("a".to_string(), 60.0)];
        let base = vec![("a".to_string(), 100.0)];
        let err = check_regression(&fresh, &base, 0.30).unwrap_err();
        assert!(err.contains("REGRESSED"), "{err}");
    }

    #[test]
    fn regression_gate_needs_overlap() {
        let fresh = vec![("new".to_string(), 60.0)];
        let base = vec![("old".to_string(), 100.0)];
        assert!(check_regression(&fresh, &base, 0.30).is_err());
    }
}
