//! Chrome/Perfetto `trace_event` JSON export and a minimal schema
//! validator (std-only — no external JSON tooling).
//!
//! The emitted file loads in <https://ui.perfetto.dev> or
//! `chrome://tracing`. Timestamps are NPU **cycles** written into the
//! format's microsecond field: the viewer's time axis reads in cycles
//! (1 "µs" = 1 cycle), which keeps the export exact and lossless.

use crate::{Payload, RecordingTracer};

fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

fn num(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "0".to_string()
    }
}

/// Serializes the recorded arena as Chrome `trace_event` JSON:
/// `M` metadata rows name the processes/lanes, then one row per event
/// (`X` complete spans, `b`/`e` async spans, `i` instants, `C`
/// counters).
pub fn to_chrome_json(tracer: &RecordingTracer) -> String {
    let mut rows: Vec<String> =
        Vec::with_capacity(tracer.len() + tracer.processes().len() + tracer.threads().len());
    for (pid, name) in tracer.processes() {
        rows.push(format!(
            "{{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":{pid},\"tid\":0,\
             \"args\":{{\"name\":\"{}\"}}}}",
            escape(name)
        ));
    }
    for (track, name) in tracer.threads() {
        rows.push(format!(
            "{{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":{},\"tid\":{},\
             \"args\":{{\"name\":\"{}\"}}}}",
            track.pid,
            track.tid,
            escape(name)
        ));
    }
    for e in tracer.events() {
        let name = escape(tracer.name(e.name));
        let (pid, tid, ts) = (e.track.pid, e.track.tid, e.ts);
        let head = format!("\"name\":\"{name}\",\"pid\":{pid},\"tid\":{tid},\"ts\":{ts}");
        rows.push(match e.payload {
            Payload::Complete { dur } => {
                format!("{{{head},\"ph\":\"X\",\"dur\":{dur}}}")
            }
            Payload::Begin { id } => {
                format!("{{{head},\"ph\":\"b\",\"cat\":\"ace\",\"id\":{id}}}")
            }
            Payload::End { id } => {
                format!("{{{head},\"ph\":\"e\",\"cat\":\"ace\",\"id\":{id}}}")
            }
            Payload::Instant => format!("{{{head},\"ph\":\"i\",\"s\":\"t\"}}"),
            Payload::Counter { value } => {
                format!(
                    "{{{head},\"ph\":\"C\",\"args\":{{\"value\":{}}}}}",
                    num(value)
                )
            }
        });
    }
    let mut out = String::from("{\"traceEvents\":[\n");
    for (i, row) in rows.iter().enumerate() {
        out.push_str(row);
        if i + 1 != rows.len() {
            out.push(',');
        }
        out.push('\n');
    }
    out.push_str("],\"displayTimeUnit\":\"ns\"}\n");
    out
}

/// Minimal structural validation of a Chrome `trace_event` JSON string,
/// used by the CI trace-smoke test (no external JSON tools). Checks:
///
/// * braces/brackets balance and the `traceEvents` array is present;
/// * every event object carries `"ph"`, `"pid"` and `"name"` keys;
/// * every `ph` value is one of the phases the exporter emits.
///
/// Returns the number of event objects on success.
///
/// # Errors
///
/// Returns a description of the first structural violation found.
pub fn validate_chrome_trace(json: &str) -> Result<usize, String> {
    if !json.trim_start().starts_with("{\"traceEvents\":[") {
        return Err("missing traceEvents array header".into());
    }
    if json.matches('{').count() != json.matches('}').count() {
        return Err("unbalanced braces".into());
    }
    if json.matches('[').count() != json.matches(']').count() {
        return Err("unbalanced brackets".into());
    }
    let body_start = json.find('[').expect("checked above") + 1;
    let body_end = json.rfind(']').expect("checked above");
    let body = &json[body_start..body_end];
    let mut count = 0usize;
    let mut depth = 0usize;
    let mut obj_start = None;
    for (i, c) in body.char_indices() {
        match c {
            '{' => {
                if depth == 0 {
                    obj_start = Some(i);
                }
                depth += 1;
            }
            '}' => {
                depth = depth
                    .checked_sub(1)
                    .ok_or_else(|| "stray closing brace in event array".to_string())?;
                if depth == 0 {
                    let obj = &body[obj_start.take().expect("open seen")..=i];
                    validate_event_object(obj, count)?;
                    count += 1;
                }
            }
            _ => {}
        }
    }
    if depth != 0 {
        return Err("unterminated event object".into());
    }
    if count == 0 {
        return Err("no trace events".into());
    }
    Ok(count)
}

fn validate_event_object(obj: &str, index: usize) -> Result<(), String> {
    for key in ["\"ph\":", "\"pid\":", "\"name\":"] {
        if !obj.contains(key) {
            return Err(format!("event {index} missing {key} ({obj})"));
        }
    }
    let ph_pos = obj
        .find("\"ph\":\"")
        .ok_or_else(|| format!("event {index}: ph value is not a string ({obj})"))?;
    let ph = obj[ph_pos + 6..]
        .chars()
        .next()
        .ok_or_else(|| format!("event {index}: truncated ph"))?;
    if !matches!(ph, 'X' | 'b' | 'e' | 'i' | 'C' | 'M') {
        return Err(format!("event {index}: unknown phase '{ph}'"));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Tracer, Track};
    use ace_simcore::SimTime;

    fn t(c: u64) -> SimTime {
        SimTime::from_cycles(c)
    }

    fn sample() -> RecordingTracer {
        let mut r = RecordingTracer::new();
        r.meta_process(1, "node 0");
        r.meta_thread(Track { pid: 1, tid: 1 }, "link p0");
        let tr = Track { pid: 1, tid: 1 };
        r.span(tr, "link:p0", t(10), t(20));
        r.begin(tr, "chunk", 3, t(0));
        r.end(tr, "chunk", 3, t(25));
        r.instant(tr, "ev \"quoted\"", t(5));
        r.counter(tr, "depth", t(7), 2.5);
        r
    }

    #[test]
    fn export_validates_round_trip() {
        let json = to_chrome_json(&sample());
        let n = validate_chrome_trace(&json).expect("valid trace");
        // 2 metadata rows + 5 events.
        assert_eq!(n, 7);
        assert!(json.contains("\"ph\":\"X\""));
        assert!(json.contains("\"ph\":\"C\""));
        assert!(json.contains("\"dur\":10"));
        assert!(json.contains("process_name"));
        assert!(json.contains("ev \\\"quoted\\\""));
    }

    #[test]
    fn validator_rejects_garbage() {
        assert!(validate_chrome_trace("").is_err());
        assert!(validate_chrome_trace("{\"traceEvents\":[]}").is_err());
        assert!(validate_chrome_trace("{\"traceEvents\":[{\"ph\":\"X\"}]}").is_err());
        assert!(validate_chrome_trace(
            "{\"traceEvents\":[{\"name\":\"a\",\"pid\":0,\"ph\":\"Z\"}]}"
        )
        .is_err());
        assert!(validate_chrome_trace("{\"traceEvents\":[{]}").is_err());
    }

    #[test]
    fn empty_tracer_exports_but_fails_validation() {
        let r = RecordingTracer::new();
        let json = to_chrome_json(&r);
        assert!(validate_chrome_trace(&json).is_err(), "no events: invalid");
    }
}
