//! Zero-cost instrumentation for the ACE simulator.
//!
//! The hot layers (event loop, fabric, endpoint engines, training
//! scheduler) are generic over a [`Tracer`]. The default [`NullTracer`]
//! monomorphizes every hook to nothing — the perf gate verifies the
//! default build pays zero cycles for the plumbing — while a
//! [`RecordingTracer`] captures spans and counters into a compact
//! in-memory arena that exports to Chrome/Perfetto `trace_event` JSON
//! (see [`chrome`]).
//!
//! The same recorded pipe-busy totals feed the [`Attribution`] report:
//! wall-cycles decomposed into compute / per-pipe communication buckets
//! that sum **exactly** to total runtime (largest-remainder
//! apportionment; conservation is a hard invariant, enforced by
//! property tests).
//!
//! # Example
//!
//! ```
//! use ace_simcore::SimTime;
//! use ace_trace::{RecordingTracer, Tracer, Track};
//!
//! let mut t = RecordingTracer::new();
//! let track = Track { pid: 0, tid: 0 };
//! t.span(track, "phase", SimTime::from_cycles(10), SimTime::from_cycles(30));
//! assert_eq!(t.len(), 1);
//! let json = ace_trace::chrome::to_chrome_json(&t);
//! assert!(ace_trace::chrome::validate_chrome_trace(&json).is_ok());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod chrome;

use std::collections::HashMap;

use ace_simcore::SimTime;

/// A timeline in the exported trace. `pid` groups related timelines into
/// one Perfetto "process" (a node group, the scheduler, ...); `tid`
/// selects a lane within the group (a link, the chunk lane, ...).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct Track {
    /// Process id: one per node group in the exported trace.
    pub pid: u32,
    /// Thread id: one lane (link, task stream, ...) within the group.
    pub tid: u32,
}

/// Instrumentation hooks threaded through the simulator's hot layers.
///
/// Every method defaults to a no-op so [`NullTracer`] is literally
/// `impl Tracer for NullTracer {}` — after monomorphization and
/// inlining the hooks vanish from the default build. Callers must guard
/// any *name formatting* behind [`enabled`](Tracer::enabled) so the
/// `format!` work folds away too.
pub trait Tracer {
    /// Whether this tracer records anything. Guard dynamic label
    /// construction behind this so a `NullTracer` build does no work.
    #[inline]
    fn enabled(&self) -> bool {
        false
    }

    /// Names a process (`pid`) in the exported trace.
    #[inline]
    fn meta_process(&mut self, _pid: u32, _name: &str) {}

    /// Names a lane (`track`) in the exported trace.
    #[inline]
    fn meta_thread(&mut self, _track: Track, _name: &str) {}

    /// Records a complete span `[start, end)` on `track`.
    #[inline]
    fn span(&mut self, _track: Track, _name: &str, _start: SimTime, _end: SimTime) {}

    /// Opens an async span identified by `id` (closed by [`Tracer::end`]
    /// with the same `id` — no per-span start state needed at the
    /// call site).
    #[inline]
    fn begin(&mut self, _track: Track, _name: &str, _id: u64, _at: SimTime) {}

    /// Closes the async span opened with the same `id`.
    #[inline]
    fn end(&mut self, _track: Track, _name: &str, _id: u64, _at: SimTime) {}

    /// Records an instantaneous event.
    #[inline]
    fn instant(&mut self, _track: Track, _name: &str, _at: SimTime) {}

    /// Samples a counter value (queue depth, pipe busy cycles, ...).
    #[inline]
    fn counter(&mut self, _track: Track, _name: &str, _at: SimTime, _value: f64) {}
}

/// The default tracer: records nothing, costs nothing. Every hook is the
/// trait's no-op default, so a `CollectiveExecutor<_, NullTracer>` build
/// compiles to exactly the un-instrumented code.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NullTracer;

impl Tracer for NullTracer {}

/// What one recorded event is.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Payload {
    /// A complete span with the given duration in cycles.
    Complete {
        /// Span length in cycles.
        dur: u64,
    },
    /// Async span open, correlated by `id`.
    Begin {
        /// Correlation id shared with the matching end event.
        id: u64,
    },
    /// Async span close, correlated by `id`.
    End {
        /// Correlation id shared with the matching begin event.
        id: u64,
    },
    /// An instantaneous event.
    Instant,
    /// A counter sample.
    Counter {
        /// The sampled value.
        value: f64,
    },
}

/// One recorded event in the arena. Names are interned; `name` indexes
/// [`RecordingTracer::name`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Event {
    /// The timeline this event belongs to.
    pub track: Track,
    /// Interned name index.
    pub name: u32,
    /// Timestamp in cycles.
    pub ts: u64,
    /// Event kind and kind-specific data.
    pub payload: Payload,
}

/// Default arena capacity: beyond this many events new records are
/// dropped (and counted) rather than growing without bound.
pub const DEFAULT_EVENT_CAP: usize = 2_000_000;

/// A tracer that records spans and counters into a compact in-memory
/// arena: one flat `Vec` of [`Event`]s plus an interned name table.
#[derive(Debug, Default)]
pub struct RecordingTracer {
    names: Vec<String>,
    name_ids: HashMap<String, u32>,
    events: Vec<Event>,
    cap: usize,
    dropped: u64,
    processes: Vec<(u32, String)>,
    threads: Vec<(Track, String)>,
}

impl RecordingTracer {
    /// An empty tracer with the [default event cap](DEFAULT_EVENT_CAP).
    pub fn new() -> RecordingTracer {
        RecordingTracer {
            cap: DEFAULT_EVENT_CAP,
            ..RecordingTracer::default()
        }
    }

    /// An empty tracer that drops events past `cap`.
    pub fn with_capacity(cap: usize) -> RecordingTracer {
        RecordingTracer {
            cap,
            ..RecordingTracer::default()
        }
    }

    /// Number of recorded events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Events dropped because the arena hit its cap.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// The recorded events, in record order.
    pub fn events(&self) -> &[Event] {
        &self.events
    }

    /// Resolves an interned name index (see [`Event::name`]).
    pub fn name(&self, idx: u32) -> &str {
        &self.names[idx as usize]
    }

    /// Registered `(pid, name)` process labels.
    pub fn processes(&self) -> &[(u32, String)] {
        &self.processes
    }

    /// Registered `(track, name)` lane labels.
    pub fn threads(&self) -> &[(Track, String)] {
        &self.threads
    }

    /// Sum of `Complete`-span durations whose name starts with `prefix`
    /// — the reconciliation hook the conservation tests use (e.g. every
    /// `link:` span vs the network's bucket-meter total).
    pub fn span_cycles_with_prefix(&self, prefix: &str) -> u64 {
        self.events
            .iter()
            .filter_map(|e| match e.payload {
                Payload::Complete { dur } if self.name(e.name).starts_with(prefix) => Some(dur),
                _ => None,
            })
            .sum()
    }

    /// Number of events whose name starts with `prefix`.
    pub fn count_with_prefix(&self, prefix: &str) -> usize {
        self.events
            .iter()
            .filter(|e| self.name(e.name).starts_with(prefix))
            .count()
    }

    fn intern(&mut self, name: &str) -> u32 {
        if let Some(&id) = self.name_ids.get(name) {
            return id;
        }
        let id = self.names.len() as u32;
        self.names.push(name.to_string());
        self.name_ids.insert(name.to_string(), id);
        id
    }

    fn push(&mut self, track: Track, name: &str, ts: u64, payload: Payload) {
        if self.events.len() >= self.cap {
            self.dropped += 1;
            return;
        }
        let name = self.intern(name);
        self.events.push(Event {
            track,
            name,
            ts,
            payload,
        });
    }
}

impl Tracer for RecordingTracer {
    fn enabled(&self) -> bool {
        true
    }

    fn meta_process(&mut self, pid: u32, name: &str) {
        if !self.processes.iter().any(|(p, _)| *p == pid) {
            self.processes.push((pid, name.to_string()));
        }
    }

    fn meta_thread(&mut self, track: Track, name: &str) {
        if !self.threads.iter().any(|(t, _)| *t == track) {
            self.threads.push((track, name.to_string()));
        }
    }

    fn span(&mut self, track: Track, name: &str, start: SimTime, end: SimTime) {
        let dur = end.cycles().saturating_sub(start.cycles());
        self.push(track, name, start.cycles(), Payload::Complete { dur });
    }

    fn begin(&mut self, track: Track, name: &str, id: u64, at: SimTime) {
        self.push(track, name, at.cycles(), Payload::Begin { id });
    }

    fn end(&mut self, track: Track, name: &str, id: u64, at: SimTime) {
        self.push(track, name, at.cycles(), Payload::End { id });
    }

    fn instant(&mut self, track: Track, name: &str, at: SimTime) {
        self.push(track, name, at.cycles(), Payload::Instant);
    }

    fn counter(&mut self, track: Track, name: &str, at: SimTime, value: f64) {
        self.push(track, name, at.cycles(), Payload::Counter { value });
    }
}

/// Integer busy-cycle totals of an endpoint engine's pipes, accumulated
/// from the grants its resource servers hand out. Matches the analytic
/// model's pipe terms so exact-vs-analytic residuals are attributable.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PipeBusy {
    /// HBM (comm partition read/write) busy cycles.
    pub hbm: u64,
    /// TX + RX DMA engine busy cycles.
    pub dma: u64,
    /// NPU-AFI bus busy cycles.
    pub bus: u64,
    /// Processing busy cycles: ACE FSM/SRAM/ALU, or baseline SM drive.
    pub proc: u64,
}

impl std::ops::Add for PipeBusy {
    type Output = PipeBusy;

    /// Element-wise sum.
    fn add(self, other: PipeBusy) -> PipeBusy {
        PipeBusy {
            hbm: self.hbm + other.hbm,
            dma: self.dma + other.dma,
            bus: self.bus + other.bus,
            proc: self.proc + other.proc,
        }
    }
}

/// Per-pipe weights used to split communication cycles into bound
/// buckets. Usually the measured busy-cycle totals of each pipe.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct PipeWeights {
    /// Fabric-link busy weight.
    pub network: f64,
    /// HBM pipe weight.
    pub hbm: f64,
    /// DMA pipe weight.
    pub dma: f64,
    /// NPU-AFI bus weight.
    pub bus: f64,
    /// Processing (FSM/SRAM/ALU or SM drive) weight.
    pub proc: f64,
}

impl PipeWeights {
    /// Weights from engine pipe totals plus a network busy total.
    pub fn from_pipes(pipes: PipeBusy, network: f64) -> PipeWeights {
        PipeWeights {
            network,
            hbm: pipes.hbm as f64,
            dma: pipes.dma as f64,
            bus: pipes.bus as f64,
            proc: pipes.proc as f64,
        }
    }
}

/// A per-run bottleneck attribution: wall-cycles decomposed into compute
/// and per-pipe communication-bound buckets. The buckets **always** sum
/// exactly to `total_cycles` — construction apportions by the
/// largest-remainder method, so no cycle is lost to rounding.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Attribution {
    /// End-to-end wall cycles the buckets decompose.
    pub total_cycles: u64,
    /// Cycles attributed to compute.
    pub compute_cycles: u64,
    /// Exposed-communication cycles bound by fabric links.
    pub network_cycles: u64,
    /// Exposed-communication cycles bound by the HBM pipe.
    pub hbm_cycles: u64,
    /// Exposed-communication cycles bound by the TX/RX DMA pipe.
    pub dma_cycles: u64,
    /// Exposed-communication cycles bound by the NPU-AFI bus.
    pub bus_cycles: u64,
    /// Exposed-communication cycles bound by endpoint processing
    /// (ACE FSM/SRAM/ALU, or baseline SM drive).
    pub proc_cycles: u64,
    /// Cycles not attributable to any measured pipe (latency gaps,
    /// scheduling slack, or zero-weight degenerate runs).
    pub other_cycles: u64,
}

impl Attribution {
    /// Decomposes `total` wall cycles into `compute` plus per-pipe
    /// communication buckets proportional to `weights`.
    ///
    /// The communication share (`total - compute`) is split by the
    /// largest-remainder method: floor shares first, then the leftover
    /// cycles go to the largest fractional parts (ties broken by fixed
    /// pipe order), so the buckets sum exactly to `total`. Zero weights
    /// put the whole communication share in `other_cycles`.
    pub fn attribute(total: u64, compute: u64, weights: &PipeWeights) -> Attribution {
        let compute = compute.min(total);
        let comm = total - compute;
        let w = [
            weights.network.max(0.0),
            weights.hbm.max(0.0),
            weights.dma.max(0.0),
            weights.bus.max(0.0),
            weights.proc.max(0.0),
        ];
        let wsum: f64 = w.iter().sum();
        let mut buckets = [0u64; 5];
        let mut other = comm;
        if wsum > 0.0 && comm > 0 {
            let mut fracs = [0.0f64; 5];
            let mut assigned = 0u64;
            for i in 0..5 {
                let share = comm as f64 * w[i] / wsum;
                let fl = share.floor();
                // `share <= comm` by construction, so the cast is safe.
                buckets[i] = fl as u64;
                fracs[i] = share - fl;
                assigned += buckets[i];
            }
            let mut rest = comm - assigned.min(comm);
            while rest > 0 {
                // Largest fractional part wins; fixed pipe order breaks
                // ties deterministically.
                let mut best = 0;
                for i in 1..5 {
                    if fracs[i] > fracs[best] {
                        best = i;
                    }
                }
                buckets[best] += 1;
                fracs[best] = -1.0;
                rest -= 1;
            }
            other = 0;
        }
        Attribution {
            total_cycles: total,
            compute_cycles: compute,
            network_cycles: buckets[0],
            hbm_cycles: buckets[1],
            dma_cycles: buckets[2],
            bus_cycles: buckets[3],
            proc_cycles: buckets[4],
            other_cycles: other,
        }
    }

    /// Whether the buckets sum exactly to `total_cycles` — always true
    /// for values built by [`Attribution::attribute`]; the conservation
    /// property tests assert it end-to-end.
    pub fn conserves(&self) -> bool {
        self.compute_cycles
            + self.network_cycles
            + self.hbm_cycles
            + self.dma_cycles
            + self.bus_cycles
            + self.proc_cycles
            + self.other_cycles
            == self.total_cycles
    }

    /// The bucket sum (diagnostic counterpart of [`conserves`](Attribution::conserves)).
    pub fn bucket_sum(&self) -> u64 {
        self.buckets().iter().map(|(_, v)| v).sum()
    }

    /// The seven buckets as `(name, cycles)` pairs in the canonical
    /// column order (`compute`, `network`, `hbm`, `dma`, `bus`, `proc`,
    /// `other`) — the single source of truth for every emitter that
    /// serializes an attribution row (sweep CSV/JSON columns, cache-file
    /// rows, bus events), so the orderings cannot drift apart.
    pub fn buckets(&self) -> [(&'static str, u64); 7] {
        [
            ("compute", self.compute_cycles),
            ("network", self.network_cycles),
            ("hbm", self.hbm_cycles),
            ("dma", self.dma_cycles),
            ("bus", self.bus_cycles),
            ("proc", self.proc_cycles),
            ("other", self.other_cycles),
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(c: u64) -> SimTime {
        SimTime::from_cycles(c)
    }

    #[test]
    fn null_tracer_is_disabled_and_silent() {
        let mut n = NullTracer;
        assert!(!n.enabled());
        // No-ops compile and do nothing observable.
        n.span(Track::default(), "x", t(0), t(10));
        n.counter(Track::default(), "c", t(0), 1.0);
    }

    #[test]
    fn recording_tracer_records_and_interns() {
        let mut r = RecordingTracer::new();
        let tr = Track { pid: 1, tid: 2 };
        r.span(tr, "link:p0", t(5), t(9));
        r.span(tr, "link:p0", t(9), t(12));
        r.span(tr, "chunk", t(0), t(12));
        r.begin(tr, "phase", 7, t(1));
        r.end(tr, "phase", 7, t(4));
        r.instant(tr, "ev", t(2));
        r.counter(tr, "depth", t(3), 4.0);
        assert!(r.enabled());
        assert_eq!(r.len(), 7);
        // Two spans, one interned name.
        assert_eq!(r.name(r.events()[0].name), "link:p0");
        assert_eq!(r.events()[0].name, r.events()[1].name);
        assert_eq!(r.span_cycles_with_prefix("link:"), 4 + 3);
        assert_eq!(r.count_with_prefix("link:"), 2);
        assert_eq!(r.dropped(), 0);
    }

    #[test]
    fn arena_cap_drops_and_counts() {
        let mut r = RecordingTracer::with_capacity(2);
        let tr = Track::default();
        for i in 0..5 {
            r.instant(tr, "e", t(i));
        }
        assert_eq!(r.len(), 2);
        assert_eq!(r.dropped(), 3);
    }

    #[test]
    fn meta_labels_dedupe() {
        let mut r = RecordingTracer::new();
        r.meta_process(1, "node 0");
        r.meta_process(1, "node 0 again");
        r.meta_thread(Track { pid: 1, tid: 0 }, "chunks");
        r.meta_thread(Track { pid: 1, tid: 0 }, "dup");
        assert_eq!(r.processes().len(), 1);
        assert_eq!(r.threads().len(), 1);
        assert_eq!(r.processes()[0].1, "node 0");
    }

    #[test]
    fn attribution_conserves_exactly() {
        // Awkward weights that guarantee fractional shares.
        let w = PipeWeights {
            network: 3.7,
            hbm: 1.1,
            dma: 0.9,
            bus: 2.3,
            proc: 5.0,
        };
        for total in [0u64, 1, 7, 1000, 1_000_003, u32::MAX as u64 + 17] {
            for compute in [0, total / 3, total] {
                let a = Attribution::attribute(total, compute, &w);
                assert!(a.conserves(), "{total}/{compute}: {a:?}");
                assert_eq!(a.total_cycles, total);
                assert_eq!(a.compute_cycles, compute.min(total));
            }
        }
    }

    #[test]
    fn zero_weights_fall_back_to_other() {
        let a = Attribution::attribute(100, 40, &PipeWeights::default());
        assert!(a.conserves());
        assert_eq!(a.other_cycles, 60);
        assert_eq!(a.network_cycles, 0);
    }

    #[test]
    fn single_weight_takes_the_whole_comm_share() {
        let w = PipeWeights {
            network: 12.5,
            ..PipeWeights::default()
        };
        let a = Attribution::attribute(100, 40, &w);
        assert!(a.conserves());
        assert_eq!(a.network_cycles, 60);
        assert_eq!(a.other_cycles, 0);
    }

    #[test]
    fn compute_is_clamped_to_total() {
        let a = Attribution::attribute(10, 25, &PipeWeights::default());
        assert!(a.conserves());
        assert_eq!(a.compute_cycles, 10);
    }

    #[test]
    fn pipe_busy_adds_elementwise() {
        let a = PipeBusy {
            hbm: 1,
            dma: 2,
            bus: 3,
            proc: 4,
        };
        let b = PipeBusy {
            hbm: 10,
            dma: 20,
            bus: 30,
            proc: 40,
        };
        let s = a + b;
        assert_eq!(
            s,
            PipeBusy {
                hbm: 11,
                dma: 22,
                bus: 33,
                proc: 44
            }
        );
    }
}
