//! The ACE endpoint: the paper's proposed engine wired into the endpoint
//! pipeline (Section IV, Fig. 8 right column).
//!
//! A chunk is TX-DMA'd from HBM into the ACE SRAM **once**; all ring steps
//! then read, reduce and forward entirely inside the engine (FSM dispatch,
//! SRAM ports, ALUs); the finished chunk is RX-DMA'd back **once**. HBM
//! therefore sees exactly 2 bytes of traffic per payload byte regardless
//! of topology — the mechanism behind the 3.5× memory-bandwidth headline.

use ace_engine::{AceConfig, AceState, DmaEngine};
use ace_mem::{AfiBus, BusParams, EndpointMemory, MemoryParams};
use ace_simcore::SimTime;
use ace_trace::PipeBusy;

use crate::traits::CollectiveEngine;

/// Configuration of one ACE endpoint.
#[derive(Debug, Clone)]
pub struct AceEndpointParams {
    /// The engine microarchitecture.
    pub config: AceConfig,
    /// HBM bandwidth the DMA engines may consume, GB/s (Table VI: 128).
    pub dma_mem_gbps: f64,
    /// NPU-AFI bus parameters.
    pub bus: BusParams,
    /// Per-phase SRAM partition weights (bandwidth × chunk size heuristic,
    /// Section IV-I). Length = number of collective phases.
    pub phase_weights: Vec<f64>,
}

impl AceEndpointParams {
    /// Table VI ACE endpoint for a plan with `phase_weights`.
    pub fn paper_default(phase_weights: Vec<f64>) -> AceEndpointParams {
        AceEndpointParams {
            config: AceConfig::paper_default(),
            dma_mem_gbps: 128.0,
            bus: BusParams::paper_default(),
            phase_weights,
        }
    }
}

/// One node's ACE endpoint.
#[derive(Debug, Clone)]
pub struct AceEndpoint {
    ace: AceState,
    mem: EndpointMemory,
    bus: AfiBus,
    tx_dma: DmaEngine,
    rx_dma: DmaEngine,
    /// `log2(bus_width_bytes)` when the width is a power of two: lets the
    /// per-step FSM-cycle computation shift instead of divide.
    bus_width_shift: Option<u32>,
    /// Per-pipe busy-cycle totals, accumulated from the grants above.
    pipes: PipeBusy,
}

impl AceEndpoint {
    /// Builds the endpoint.
    pub fn new(params: AceEndpointParams) -> AceEndpoint {
        let ace = AceState::new(params.config, &params.phase_weights);
        let mem = EndpointMemory::new(MemoryParams::paper_default(params.dma_mem_gbps));
        let bus = AfiBus::new(params.bus);
        let width = ace.config().bus_width_bytes;
        let bus_width_shift = width.is_power_of_two().then(|| width.trailing_zeros());
        AceEndpoint {
            ace,
            mem,
            bus,
            tx_dma: DmaEngine::paper_default(),
            rx_dma: DmaEngine::paper_default(),
            bus_width_shift,
            pipes: PipeBusy::default(),
        }
    }

    /// Cycles one FSM is occupied orchestrating a step: it streams the
    /// message through its 64-byte bus plus a small control overhead, so
    /// the FSM count bounds per-phase chunk parallelism (Section IV-F —
    /// "the available parallelism is only bounded by the number of
    /// available state machines"). This is the knob behind Fig. 9a's FSM
    /// axis.
    fn fsm_cycles(&self, bytes: u64) -> u64 {
        match self.bus_width_shift {
            Some(shift) => (bytes >> shift) + 4,
            None => bytes / self.ace.config().bus_width_bytes + 4,
        }
    }

    /// Immutable view of the engine state.
    pub fn ace(&self) -> &AceState {
        &self.ace
    }

    /// HBM bandwidth left for training compute, GB/s (772 with the paper's
    /// 128 GB/s DMA carve-out).
    pub fn compute_mem_gbps(&self) -> f64 {
        self.mem.compute_gbps()
    }
}

impl CollectiveEngine for AceEndpoint {
    fn chunk_inject(&mut self, now: SimTime, bytes: u64) -> SimTime {
        // TX DMA pipeline: HBM read, DMA engine, bus — the chunk is
        // staged when the slowest stage drains.
        let mem = self.mem.comm_read(now, bytes);
        let dma = self.tx_dma.transfer(now, bytes);
        let bus = self.bus.transfer(now, bytes);
        self.pipes.hbm += mem.service();
        self.pipes.dma += dma.service();
        self.pipes.bus += bus.service();
        mem.end.max(dma.end).max(bus.end)
    }

    fn fetch_and_send(&mut self, now: SimTime, bytes: u64, phase: usize) -> SimTime {
        let fsm = self.ace.fsm_dispatch(phase, now, self.fsm_cycles(bytes));
        // Read the message out of SRAM into the port buffer.
        let port = self.ace.sram_copy(now, bytes);
        self.pipes.proc += fsm.service() + port.service();
        fsm.end.max(port.end)
    }

    fn reduce_and_send(&mut self, now: SimTime, bytes: u64, phase: usize) -> SimTime {
        let fsm = self.ace.fsm_dispatch(phase, now, self.fsm_cycles(bytes));
        // Two SRAM reads + ALU reduce; result streams to the port buffer.
        let red = self.ace.reduce(now, bytes);
        self.pipes.proc += fsm.service() + red.service();
        fsm.end.max(red.end)
    }

    fn reduce_and_store(&mut self, now: SimTime, bytes: u64, phase: usize) -> SimTime {
        let fsm = self.ace.fsm_dispatch(phase, now, self.fsm_cycles(bytes));
        let red = self.ace.reduce(now, bytes);
        self.pipes.proc += fsm.service() + red.service();
        fsm.end.max(red.end)
    }

    fn receive(&mut self, now: SimTime, bytes: u64, phase: usize) -> SimTime {
        // Arriving packets land directly in the phase partition through
        // the SRAM port (no bus crossing: ACE sits beside the AFI).
        let _ = phase;
        let port = self.ace.sram_copy(now, bytes);
        self.pipes.proc += port.service();
        port.end
    }

    fn store_and_forward(&mut self, now: SimTime, bytes: u64, phase: usize) -> SimTime {
        // "ACE prevents such unnecessary memory overheads since its SRAM
        // absorbs packets and forwards the ones that have different
        // destinations through the FSM responsible for the corresponding
        // chunk" (Section V).
        let fsm = self.ace.fsm_dispatch(phase, now, self.fsm_cycles(bytes));
        let port = self.ace.sram_copy(now, 2 * bytes);
        self.pipes.proc += fsm.service() + port.service();
        fsm.end.max(port.end)
    }

    fn chunk_complete(&mut self, now: SimTime, bytes: u64) -> SimTime {
        // RX DMA pipeline: SRAM read, bus, HBM write.
        let dma = self.rx_dma.transfer(now, bytes);
        let bus = self.bus.transfer(now, bytes);
        let mem = self.mem.comm_write(now, bytes);
        self.pipes.dma += dma.service();
        self.pipes.bus += bus.service();
        self.pipes.hbm += mem.service();
        dma.end.max(bus.end).max(mem.end)
    }

    fn try_admit(&mut self, phase: usize, bytes: u64, now: SimTime) -> bool {
        self.ace.try_admit(phase, bytes, now)
    }

    fn release(&mut self, phase: usize, bytes: u64, now: SimTime) {
        self.ace.release(phase, bytes, now);
    }

    fn utilization(&self, horizon: SimTime) -> Option<f64> {
        Some(self.ace.utilization(horizon))
    }

    fn busy_cycles(&self, horizon: SimTime) -> Option<u64> {
        Some(self.ace.busy_cycles(horizon))
    }

    fn mem_traffic_bytes(&self) -> u64 {
        self.mem.comm_bytes()
    }

    fn pipe_busy(&self) -> PipeBusy {
        self.pipes
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn endpoint() -> AceEndpoint {
        AceEndpoint::new(AceEndpointParams::paper_default(vec![
            0.75, 0.09375, 0.09375, 0.1875,
        ]))
    }

    #[test]
    fn hbm_traffic_is_exactly_inject_plus_complete() {
        let mut ep = endpoint();
        let chunk = 64 * 1024;
        ep.chunk_inject(SimTime::ZERO, chunk);
        // Ring steps generate zero HBM traffic.
        ep.fetch_and_send(SimTime::ZERO, 8 * 1024, 0);
        ep.reduce_and_send(SimTime::ZERO, 8 * 1024, 0);
        ep.receive(SimTime::ZERO, 8 * 1024, 0);
        ep.store_and_forward(SimTime::ZERO, 8 * 1024, 0);
        ep.chunk_complete(SimTime::ZERO, chunk);
        assert_eq!(ep.mem_traffic_bytes(), 2 * chunk);
    }

    #[test]
    fn compute_keeps_772_gbps() {
        assert!((endpoint().compute_mem_gbps() - 772.0).abs() < 1e-9);
    }

    #[test]
    fn sram_backpressure_applies() {
        let mut ep = endpoint();
        let chunk = 64 * 1024;
        let mut admitted = 0;
        while ep.try_admit(0, chunk, SimTime::ZERO) {
            admitted += 1;
        }
        // Phase-0 partition is roughly half of 4 MB => ~30 chunks.
        assert!(admitted > 10 && admitted < 64, "admitted {admitted}");
        ep.release(0, chunk, SimTime::from_cycles(10));
        assert!(ep.try_admit(0, chunk, SimTime::from_cycles(10)));
    }

    #[test]
    fn utilization_is_reported() {
        let mut ep = endpoint();
        assert_eq!(ep.utilization(SimTime::from_cycles(100)), Some(0.0));
        ep.try_admit(0, 1024, SimTime::ZERO);
        assert!(ep.utilization(SimTime::from_cycles(100)).unwrap() > 0.99);
    }

    #[test]
    fn step_costs_are_cheaper_than_baseline() {
        use crate::baseline::{BaselineEngine, BaselineParams};
        let mut ace = endpoint();
        let mut base = BaselineEngine::new(BaselineParams::comp_opt());
        let ta = ace.reduce_and_send(SimTime::ZERO, 64 * 1024, 0);
        let tb = base.reduce_and_send(SimTime::ZERO, 64 * 1024, 0);
        assert!(
            ta < tb,
            "ACE step ({ta}) must beat the 128 GB/s baseline ({tb})"
        );
    }

    #[test]
    fn pipe_busy_accumulates_per_pipe() {
        let mut ep = endpoint();
        assert_eq!(ep.pipe_busy(), ace_trace::PipeBusy::default());
        ep.chunk_inject(SimTime::ZERO, 1 << 20);
        let after_inject = ep.pipe_busy();
        assert!(after_inject.hbm > 0 && after_inject.dma > 0 && after_inject.bus > 0);
        assert_eq!(after_inject.proc, 0, "inject uses no ACE processing");
        ep.reduce_and_send(SimTime::ZERO, 64 * 1024, 0);
        assert!(ep.pipe_busy().proc > 0, "ring steps run on ACE pipes");
        assert_eq!(ep.pipe_busy().hbm, after_inject.hbm, "no HBM in steps");
    }

    #[test]
    fn inject_cost_scales_with_dma_partition() {
        let mut wide = AceEndpoint::new(AceEndpointParams {
            dma_mem_gbps: 450.0,
            ..AceEndpointParams::paper_default(vec![1.0])
        });
        let mut narrow = AceEndpoint::new(AceEndpointParams {
            dma_mem_gbps: 32.0,
            ..AceEndpointParams::paper_default(vec![1.0])
        });
        let tw = wide.chunk_inject(SimTime::ZERO, 1 << 20);
        let tn = narrow.chunk_inject(SimTime::ZERO, 1 << 20);
        assert!(tn > tw);
    }
}
