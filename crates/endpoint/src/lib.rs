//! Endpoint collective engines: the resource pipelines a collective's
//! messages traverse before reaching (and after leaving) the fabric.
//!
//! The paper's central observation (Section III) is that the *endpoint*,
//! not the fabric, limits network utilization: in today's systems the NPU's
//! own SMs read gradients from HBM, reduce them, and push them across the
//! NPU-AFI bus, stealing compute and memory bandwidth from training. ACE
//! replaces that pipeline with a dedicated engine beside the AFI.
//!
//! Three [`CollectiveEngine`] implementations reproduce the evaluated
//! endpoint flavors (Table VI):
//!
//! * [`BaselineEngine`] — SM-driven: every step bounces through the HBM
//!   comm partition and an SM drive-bandwidth cap; multi-hop traffic is
//!   written to and re-read from intermediate endpoints' memory.
//! * [`AceEndpoint`] — chunk data is DMA'd into ACE's SRAM once, reduced
//!   on ACE ALUs, forwarded from SRAM, and written back once.
//! * [`IdealEndpoint`] — processes everything in one cycle; the upper
//!   bound used to normalize Figs. 5, 10 and 11.
//!
//! # Example
//!
//! ```
//! use ace_endpoint::{BaselineEngine, BaselineParams, CollectiveEngine};
//! use ace_simcore::SimTime;
//!
//! let mut ep = BaselineEngine::new(BaselineParams::comm_opt());
//! let ready = ep.fetch_and_send(SimTime::ZERO, 8 * 1024, 0);
//! assert!(ready.cycles() > 0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod ace;
mod baseline;
mod ideal;
mod traits;

pub use ace::{AceEndpoint, AceEndpointParams};
pub use baseline::{BaselineEngine, BaselineParams};
pub use ideal::IdealEndpoint;
pub use traits::CollectiveEngine;
