//! The ideal endpoint: processes everything in one cycle (Table VI).
//!
//! "A system where the endpoint can handle/process received messages
//! magically within one cycle ... This gives an upper bound to our
//! design." Only the fabric's link serialization and propagation remain.

use ace_simcore::SimTime;

use crate::traits::CollectiveEngine;

/// The magical endpoint used to upper-bound network performance.
#[derive(Debug, Clone, Default)]
pub struct IdealEndpoint;

impl IdealEndpoint {
    /// Creates the ideal endpoint.
    pub fn new() -> IdealEndpoint {
        IdealEndpoint
    }
}

impl CollectiveEngine for IdealEndpoint {
    fn chunk_inject(&mut self, now: SimTime, _bytes: u64) -> SimTime {
        now
    }

    fn fetch_and_send(&mut self, now: SimTime, _bytes: u64, _phase: usize) -> SimTime {
        now + 1
    }

    fn reduce_and_send(&mut self, now: SimTime, _bytes: u64, _phase: usize) -> SimTime {
        now + 1
    }

    fn reduce_and_store(&mut self, now: SimTime, _bytes: u64, _phase: usize) -> SimTime {
        now + 1
    }

    fn receive(&mut self, now: SimTime, _bytes: u64, _phase: usize) -> SimTime {
        now + 1
    }

    fn store_and_forward(&mut self, now: SimTime, _bytes: u64, _phase: usize) -> SimTime {
        now + 1
    }

    fn chunk_complete(&mut self, now: SimTime, _bytes: u64) -> SimTime {
        now
    }

    fn try_admit(&mut self, _phase: usize, _bytes: u64, _now: SimTime) -> bool {
        true
    }

    fn release(&mut self, _phase: usize, _bytes: u64, _now: SimTime) {}

    fn mem_traffic_bytes(&self) -> u64 {
        0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_operation_takes_one_cycle_or_less() {
        let mut e = IdealEndpoint::new();
        let t = SimTime::from_cycles(100);
        assert_eq!(e.chunk_inject(t, 1 << 30), t);
        assert_eq!(e.fetch_and_send(t, 1 << 30, 0), t + 1);
        assert_eq!(e.reduce_and_send(t, 1 << 30, 3), t + 1);
        assert_eq!(e.receive(t, 1 << 30, 0), t + 1);
        assert_eq!(e.store_and_forward(t, 1 << 30, 0), t + 1);
        assert_eq!(e.chunk_complete(t, 1 << 30), t);
    }

    #[test]
    fn no_memory_traffic_and_unbounded_admission() {
        let mut e = IdealEndpoint::new();
        for _ in 0..100 {
            assert!(e.try_admit(0, u64::MAX / 2, SimTime::ZERO));
        }
        assert_eq!(e.mem_traffic_bytes(), 0);
        assert_eq!(e.utilization(SimTime::from_cycles(10)), None);
    }
}
