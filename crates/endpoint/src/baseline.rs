//! The SM-driven baseline endpoint (Section III, Fig. 8 left column).
//!
//! Collective kernels run on a small allocation of the NPU's SMs and a
//! carve-out of HBM bandwidth (Table VI). Every message send reads its
//! operands from HBM, is pumped by the SM drive bandwidth (64 B/cycle per
//! SM), and crosses the NPU-AFI bus; every received message is first
//! written to HBM. Reduce steps read both operands. Multi-hop packets are
//! bounced through intermediate endpoints' HBM, "wasting a lot of memory
//! BW on the intermediate hops".

use ace_compute::SmDriveModel;
use ace_mem::{AfiBus, BusParams, EndpointMemory, MemoryParams};
use ace_simcore::{BandwidthServer, SimTime};
use ace_trace::PipeBusy;

use crate::traits::CollectiveEngine;

/// Resource allocation for one baseline endpoint.
#[derive(Debug, Clone, Copy)]
pub struct BaselineParams {
    /// HBM bandwidth reserved for communication, GB/s.
    pub comm_mem_gbps: f64,
    /// SMs loaned to the communication library.
    pub comm_sms: u32,
    /// NPU-AFI bus parameters.
    pub bus: BusParams,
}

impl BaselineParams {
    /// Table VI BaselineCommOpt: 450 GB/s + 6 SMs — enough endpoint
    /// bandwidth to reach ≈90 % of the ideal network performance.
    pub fn comm_opt() -> BaselineParams {
        BaselineParams {
            comm_mem_gbps: 450.0,
            comm_sms: 6,
            bus: BusParams::paper_default(),
        }
    }

    /// Table VI BaselineCompOpt: 128 GB/s + 2 SMs — compute keeps most of
    /// the memory bandwidth, communication is starved.
    pub fn comp_opt() -> BaselineParams {
        BaselineParams {
            comm_mem_gbps: 128.0,
            comm_sms: 2,
            bus: BusParams::paper_default(),
        }
    }

    /// Table VI BaselineNoOverlap: communication runs alone at the end of
    /// back-propagation with every endpoint resource available.
    pub fn no_overlap() -> BaselineParams {
        BaselineParams {
            comm_mem_gbps: 900.0,
            comm_sms: 80,
            bus: BusParams::paper_default(),
        }
    }

    /// Custom allocation (Figs. 5 and 6 sweep these knobs).
    pub fn custom(comm_mem_gbps: f64, comm_sms: u32) -> BaselineParams {
        BaselineParams {
            comm_mem_gbps,
            comm_sms,
            bus: BusParams::paper_default(),
        }
    }
}

/// One node's baseline collective pipeline.
#[derive(Debug, Clone)]
pub struct BaselineEngine {
    params: BaselineParams,
    mem: EndpointMemory,
    bus: AfiBus,
    sm_drive: BandwidthServer,
    /// Per-pipe busy-cycle totals, accumulated from the grants above.
    pipes: PipeBusy,
}

impl BaselineEngine {
    /// Builds the engine for `params`.
    pub fn new(params: BaselineParams) -> BaselineEngine {
        let mem = EndpointMemory::new(MemoryParams::paper_default(params.comm_mem_gbps));
        let bus = AfiBus::new(params.bus);
        let drive = SmDriveModel::paper_default();
        let sm_drive = BandwidthServer::new(drive.drive_bytes_per_cycle(params.comm_sms));
        BaselineEngine {
            params,
            mem,
            bus,
            sm_drive,
            pipes: PipeBusy::default(),
        }
    }

    /// The engine's resource allocation.
    pub fn params(&self) -> &BaselineParams {
        &self.params
    }

    /// HBM bandwidth left for training compute, GB/s.
    pub fn compute_mem_gbps(&self) -> f64 {
        self.mem.compute_gbps()
    }

    /// Read `bytes` from HBM, pump through the SM drive, cross the bus.
    ///
    /// The three resources operate as a pipeline: each is requested at
    /// `now` and the message departs when the slowest stage finishes.
    /// (Requesting stage N at stage N-1's completion would future-date
    /// FIFO reservations and destroy the servers' concurrency.)
    fn outbound(&mut self, now: SimTime, read_bytes: u64, send_bytes: u64) -> SimTime {
        let mem = self.mem.comm_read(now, read_bytes);
        let drive = self.sm_drive.request(now, send_bytes);
        let bus = self.bus.transfer(now, send_bytes);
        self.pipes.hbm += mem.service();
        self.pipes.proc += drive.service();
        self.pipes.bus += bus.service();
        mem.end.max(drive.end).max(bus.end)
    }
}

impl CollectiveEngine for BaselineEngine {
    fn chunk_inject(&mut self, now: SimTime, _bytes: u64) -> SimTime {
        // Gradients are already resident in HBM; nothing to stage.
        now
    }

    fn fetch_and_send(&mut self, now: SimTime, bytes: u64, _phase: usize) -> SimTime {
        // One HBM read per network byte (all-gather / first sends).
        self.outbound(now, bytes, bytes)
    }

    fn reduce_and_send(&mut self, now: SimTime, bytes: u64, _phase: usize) -> SimTime {
        // Two HBM reads (local + received operand) per network byte —
        // the Section VI-A "2N per N" reduce-scatter term. The reduction
        // itself streams through the same SMs that drive the network.
        self.outbound(now, 2 * bytes, bytes)
    }

    fn reduce_and_store(&mut self, now: SimTime, bytes: u64, _phase: usize) -> SimTime {
        // Final ring step: read both operands, write the result; nothing
        // is sent.
        let rd = self.mem.comm_read(now, 2 * bytes);
        let wr = self.mem.comm_write(now, bytes);
        let drive = self.sm_drive.request(now, bytes);
        self.pipes.hbm += rd.service() + wr.service();
        self.pipes.proc += drive.service();
        rd.end.max(wr.end).max(drive.end)
    }

    fn receive(&mut self, now: SimTime, bytes: u64, _phase: usize) -> SimTime {
        // Arriving data crosses the bus and is written to HBM.
        let bus = self.bus.transfer(now, bytes);
        let g = self.mem.comm_write(now, bytes);
        self.pipes.bus += bus.service();
        self.pipes.hbm += g.service();
        bus.end.max(g.end)
    }

    fn store_and_forward(&mut self, now: SimTime, bytes: u64, _phase: usize) -> SimTime {
        // NVLink-style neighbor-only fabric: the communication library
        // writes in-transit data to this hop's memory and reads it back
        // out (Section V) — one write plus one read, then drive + bus.
        let write = self.mem.comm_write(now, bytes);
        let out = self.outbound(now, bytes, bytes);
        self.pipes.hbm += write.service();
        write.end.max(out)
    }

    fn chunk_complete(&mut self, now: SimTime, _bytes: u64) -> SimTime {
        // Results were already written to HBM by the final receive/store.
        now
    }

    fn try_admit(&mut self, _phase: usize, _bytes: u64, _now: SimTime) -> bool {
        // HBM is effectively unbounded relative to chunk sizes.
        true
    }

    fn release(&mut self, _phase: usize, _bytes: u64, _now: SimTime) {}

    fn mem_traffic_bytes(&self) -> u64 {
        self.mem.comm_bytes()
    }

    fn pipe_busy(&self) -> PipeBusy {
        self.pipes
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_match_table_vi() {
        assert_eq!(BaselineParams::comm_opt().comm_mem_gbps, 450.0);
        assert_eq!(BaselineParams::comm_opt().comm_sms, 6);
        assert_eq!(BaselineParams::comp_opt().comm_mem_gbps, 128.0);
        assert_eq!(BaselineParams::comp_opt().comm_sms, 2);
        assert_eq!(BaselineParams::no_overlap().comm_sms, 80);
    }

    #[test]
    fn compute_side_sees_remainder() {
        let e = BaselineEngine::new(BaselineParams::comp_opt());
        assert!((e.compute_mem_gbps() - 772.0).abs() < 1e-9);
    }

    #[test]
    fn reduce_and_send_costs_more_than_fetch() {
        let mut a = BaselineEngine::new(BaselineParams::comp_opt());
        let mut b = BaselineEngine::new(BaselineParams::comp_opt());
        let fetch = a.fetch_and_send(SimTime::ZERO, 64 * 1024, 0);
        let reduce = b.reduce_and_send(SimTime::ZERO, 64 * 1024, 0);
        assert!(reduce > fetch, "2N reads must cost more than N");
    }

    #[test]
    fn mem_traffic_accumulates_per_section_vi_a() {
        let mut e = BaselineEngine::new(BaselineParams::comm_opt());
        e.fetch_and_send(SimTime::ZERO, 1000, 0); // 1000 read
        e.reduce_and_send(SimTime::ZERO, 1000, 0); // 2000 read
        e.receive(SimTime::ZERO, 1000, 0); // 1000 write
        assert_eq!(e.mem_traffic_bytes(), 4000);
    }

    #[test]
    fn starved_memory_partition_slows_sends() {
        let mut wide = BaselineEngine::new(BaselineParams::custom(450.0, 6));
        let mut narrow = BaselineEngine::new(BaselineParams::custom(64.0, 6));
        let tw = wide.reduce_and_send(SimTime::ZERO, 1 << 20, 0);
        let tn = narrow.reduce_and_send(SimTime::ZERO, 1 << 20, 0);
        assert!(tn > tw);
    }

    #[test]
    fn few_sms_bottleneck_even_with_wide_memory() {
        let mut many = BaselineEngine::new(BaselineParams::custom(900.0, 8));
        let mut one = BaselineEngine::new(BaselineParams::custom(900.0, 1));
        let tm = many.fetch_and_send(SimTime::ZERO, 1 << 20, 0);
        let to = one.fetch_and_send(SimTime::ZERO, 1 << 20, 0);
        assert!(to > tm, "1 SM at ~80 GB/s must lag 8 SMs");
    }

    #[test]
    fn store_and_forward_touches_memory_twice() {
        let mut e = BaselineEngine::new(BaselineParams::comm_opt());
        e.store_and_forward(SimTime::ZERO, 1000, 0);
        assert_eq!(e.mem_traffic_bytes(), 2000);
    }

    #[test]
    fn pipe_busy_accumulates_per_pipe() {
        let mut e = BaselineEngine::new(BaselineParams::comp_opt());
        assert_eq!(e.pipe_busy(), PipeBusy::default());
        e.reduce_and_send(SimTime::ZERO, 1 << 20, 0);
        let p = e.pipe_busy();
        assert!(p.hbm > 0 && p.proc > 0 && p.bus > 0);
        assert_eq!(p.dma, 0, "the SM-driven baseline has no DMA engines");
    }

    #[test]
    fn admission_is_unbounded() {
        let mut e = BaselineEngine::new(BaselineParams::comm_opt());
        for _ in 0..1000 {
            assert!(e.try_admit(0, 64 * 1024, SimTime::ZERO));
        }
    }
}
