//! The engine interface consumed by the collective executor.

use ace_simcore::SimTime;
use ace_trace::PipeBusy;

/// The per-endpoint operations a collective's execution decomposes into.
///
/// Every method models *endpoint-side* cost only: it returns the time at
/// which the operation's output is available (for sends: when the message
/// is handed to the egress link; the link's own serialization and latency
/// are charged by the network layer). The `phase` argument indexes the
/// collective plan's phase so engines with per-phase resources (ACE's SRAM
/// partitions and FSM groups) can route the request.
///
/// Engines must be `Send`: the domain-partitioned executor moves disjoint
/// per-node engine slices onto worker threads. (No engine is shared —
/// `Sync` is not required.)
pub trait CollectiveEngine: Send {
    /// One-time per-chunk setup before phase 0: the baseline does nothing
    /// (gradients already live in HBM); ACE runs the TX DMA into SRAM.
    /// Returns the time the chunk is ready to start its first phase.
    fn chunk_inject(&mut self, now: SimTime, bytes: u64) -> SimTime;

    /// Prepares and hands `bytes` to the network without reduction: the
    /// first send of a ring step or an all-gather forward.
    fn fetch_and_send(&mut self, now: SimTime, bytes: u64, phase: usize) -> SimTime;

    /// Reduces the received `bytes` with local data and hands the result
    /// to the network (middle reduce-scatter steps).
    fn reduce_and_send(&mut self, now: SimTime, bytes: u64, phase: usize) -> SimTime;

    /// Reduces the received `bytes` with local data and stores the result
    /// locally (the final reduce-scatter step of a ring).
    fn reduce_and_store(&mut self, now: SimTime, bytes: u64, phase: usize) -> SimTime;

    /// Lands `bytes` arriving from the network into local storage.
    fn receive(&mut self, now: SimTime, bytes: u64, phase: usize) -> SimTime;

    /// Forwards in-transit `bytes` at an intermediate hop (all-to-all XYZ
    /// routing): the baseline bounces through HBM; ACE forwards from SRAM.
    fn store_and_forward(&mut self, now: SimTime, bytes: u64, phase: usize) -> SimTime;

    /// Per-chunk completion: ACE runs the RX DMA back to HBM. Returns the
    /// time the chunk's result is visible to the NPU.
    fn chunk_complete(&mut self, now: SimTime, bytes: u64) -> SimTime;

    /// Attempts to admit a chunk of `bytes` into the engine's phase
    /// `phase` storage. Baseline/ideal endpoints always accept; ACE
    /// applies SRAM-partition backpressure.
    fn try_admit(&mut self, phase: usize, bytes: u64, now: SimTime) -> bool;

    /// Releases a previously admitted chunk from phase `phase`.
    fn release(&mut self, phase: usize, bytes: u64, now: SimTime);

    /// Engine-busy fraction over `[0, horizon]`, if the engine tracks it
    /// (ACE does, for Fig. 9b).
    fn utilization(&self, _horizon: SimTime) -> Option<f64> {
        None
    }

    /// Exact engine-busy cycles over `[0, horizon]`, if the engine tracks
    /// them. This is the integer counter utilization ratios derive from;
    /// reports that need cycle figures must use it directly instead of
    /// multiplying `utilization` back up (a lossy f64 round-trip).
    fn busy_cycles(&self, _horizon: SimTime) -> Option<u64> {
        None
    }

    /// Bytes of HBM traffic this engine has generated (reads + writes),
    /// for the memory-bandwidth accounting behind Fig. 5.
    fn mem_traffic_bytes(&self) -> u64;

    /// Integer busy-cycle totals per endpoint pipe (HBM, DMA, NPU-AFI
    /// bus, processing), accumulated from the grants this engine's
    /// servers hand out. Engines that model no contended pipes (the
    /// ideal endpoint) report all-zero — the attribution report then
    /// charges their communication share to `other`.
    fn pipe_busy(&self) -> PipeBusy {
        PipeBusy::default()
    }
}

/// Forwarding impl so a boxed engine is itself an engine: generic
/// simulators can run either monomorphized over a concrete engine type
/// (devirtualized hot path) or over `Box<dyn CollectiveEngine>` when the
/// engine is chosen at runtime.
impl CollectiveEngine for Box<dyn CollectiveEngine> {
    fn chunk_inject(&mut self, now: SimTime, bytes: u64) -> SimTime {
        (**self).chunk_inject(now, bytes)
    }

    fn fetch_and_send(&mut self, now: SimTime, bytes: u64, phase: usize) -> SimTime {
        (**self).fetch_and_send(now, bytes, phase)
    }

    fn reduce_and_send(&mut self, now: SimTime, bytes: u64, phase: usize) -> SimTime {
        (**self).reduce_and_send(now, bytes, phase)
    }

    fn reduce_and_store(&mut self, now: SimTime, bytes: u64, phase: usize) -> SimTime {
        (**self).reduce_and_store(now, bytes, phase)
    }

    fn receive(&mut self, now: SimTime, bytes: u64, phase: usize) -> SimTime {
        (**self).receive(now, bytes, phase)
    }

    fn store_and_forward(&mut self, now: SimTime, bytes: u64, phase: usize) -> SimTime {
        (**self).store_and_forward(now, bytes, phase)
    }

    fn chunk_complete(&mut self, now: SimTime, bytes: u64) -> SimTime {
        (**self).chunk_complete(now, bytes)
    }

    fn try_admit(&mut self, phase: usize, bytes: u64, now: SimTime) -> bool {
        (**self).try_admit(phase, bytes, now)
    }

    fn release(&mut self, phase: usize, bytes: u64, now: SimTime) {
        (**self).release(phase, bytes, now)
    }

    fn utilization(&self, horizon: SimTime) -> Option<f64> {
        (**self).utilization(horizon)
    }

    fn busy_cycles(&self, horizon: SimTime) -> Option<u64> {
        (**self).busy_cycles(horizon)
    }

    fn mem_traffic_bytes(&self) -> u64 {
        (**self).mem_traffic_bytes()
    }

    fn pipe_busy(&self) -> PipeBusy {
        (**self).pipe_busy()
    }
}
