//! Endpoint memory and bus model.
//!
//! Section III of the paper identifies the endpoint's two contended
//! resources: NPU compute cores and **memory bandwidth**. The evaluated
//! system configurations (Table VI) statically partition the 900 GB/s
//! NPU-MEM bandwidth between training compute and collective communication
//! (e.g. BaselineCommOpt gives communication 450 GB/s, BaselineCompOpt and
//! ACE give it 128 GB/s). This crate provides that partitioned HBM model
//! plus the 500 GB/s NPU-AFI bus with per-transaction scheduling overhead.
//!
//! # Example
//!
//! ```
//! use ace_mem::{EndpointMemory, MemoryParams};
//! use ace_simcore::SimTime;
//!
//! let mut mem = EndpointMemory::new(MemoryParams::paper_default(128.0));
//! // Communication reads contend only for the comm partition.
//! let g = mem.comm_access(SimTime::ZERO, 1 << 20);
//! assert!(g.end > g.start);
//! // The compute side sees the remaining 772 GB/s.
//! assert!((mem.compute_gbps() - 772.0).abs() < 1e-9);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod bus;
mod hbm;

pub use bus::{AfiBus, BusParams};
pub use hbm::{EndpointMemory, MemoryParams};
