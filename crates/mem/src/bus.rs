//! The NPU-AFI bus: 500 GB/s with per-transaction scheduling overhead.

use ace_simcore::{BandwidthServer, Frequency, Grant, SimTime};

/// NPU-AFI bus parameters.
///
/// Section V: "NPU-AFI bandwidth is assumed to be the sum of all
/// intra-package/inter-package links" (500 GB/s), and the simulator models
/// "the transaction scheduling effects of NPU-AFI and NPU-Mem and queuing
/// delays of subsequent transactions" — captured here as a fixed
/// per-transaction overhead in front of FIFO serialization.
#[derive(Debug, Clone, Copy)]
pub struct BusParams {
    /// Bus bandwidth in GB/s (Table V: 500 for NPU-AFI).
    pub bandwidth_gbps: f64,
    /// Fixed scheduling overhead added to each transaction, in cycles.
    pub txn_overhead_cycles: u64,
    /// NPU clock.
    pub freq: Frequency,
}

impl BusParams {
    /// Table V NPU-AFI bus at the paper clock with a small scheduling
    /// overhead per transaction.
    pub fn paper_default() -> BusParams {
        BusParams {
            bandwidth_gbps: 500.0,
            txn_overhead_cycles: 8,
            freq: ace_simcore::npu_frequency(),
        }
    }
}

/// The bus between the NPU/memory complex and the AFI.
///
/// Every baseline network injection and every ACE DMA transfer crosses this
/// bus; it can become a secondary bottleneck when the comm memory partition
/// is set wider than the bus.
#[derive(Debug, Clone)]
pub struct AfiBus {
    params: BusParams,
    server: BandwidthServer,
}

impl AfiBus {
    /// Creates the bus.
    pub fn new(params: BusParams) -> AfiBus {
        let bpc = params.freq.bytes_per_cycle(params.bandwidth_gbps);
        AfiBus {
            params,
            server: BandwidthServer::new(bpc),
        }
    }

    /// The configured parameters.
    pub fn params(&self) -> &BusParams {
        &self.params
    }

    /// Transfers `bytes` across the bus starting no earlier than `now`.
    /// The grant's `end` includes the per-transaction overhead.
    pub fn transfer(&mut self, now: SimTime, bytes: u64) -> Grant {
        let g = self.server.request(now, bytes);
        Grant {
            start: g.start,
            end: g.end + self.params.txn_overhead_cycles,
        }
    }

    /// Earliest time the bus frees up for a request at `now`.
    pub fn next_free(&self, now: SimTime) -> SimTime {
        self.server.next_free(now)
    }

    /// Total bytes carried.
    pub fn bytes_carried(&self) -> u64 {
        self.server.bytes_served()
    }

    /// Bus busy fraction over `[0, horizon]`.
    pub fn utilization(&self, horizon: SimTime) -> f64 {
        self.server.utilization(horizon)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn transfer_includes_overhead() {
        let mut bus = AfiBus::new(BusParams::paper_default());
        let g = bus.transfer(SimTime::ZERO, 0);
        assert_eq!(g.end.cycles(), 8, "zero-byte txn still pays overhead");
        let g = bus.transfer(SimTime::ZERO, 1 << 20);
        assert!(g.end.cycles() > 8);
    }

    #[test]
    fn transfers_serialize() {
        let mut bus = AfiBus::new(BusParams::paper_default());
        let a = bus.transfer(SimTime::ZERO, 1 << 20);
        let b = bus.transfer(SimTime::ZERO, 1 << 20);
        assert!(b.start >= a.start);
        assert!(b.end > a.end);
        assert_eq!(bus.bytes_carried(), 2 << 20);
    }

    #[test]
    fn bus_is_faster_than_narrow_memory_partition() {
        // The 500 GB/s bus should not bottleneck a 128 GB/s comm partition.
        let freq = ace_simcore::npu_frequency();
        let mut bus = AfiBus::new(BusParams::paper_default());
        let g = bus.transfer(SimTime::ZERO, 1 << 20);
        let comm_cycles = freq.transfer_cycles(1 << 20, 128.0);
        assert!(g.end.cycles() < comm_cycles);
    }
}
