//! Partitioned HBM bandwidth model.

use ace_simcore::{BandwidthServer, Frequency, Grant, SimTime};

/// Configuration of the endpoint's main-memory bandwidth split.
#[derive(Debug, Clone, Copy)]
pub struct MemoryParams {
    /// Total NPU-MEM bandwidth in GB/s (Table V: 900).
    pub total_gbps: f64,
    /// Share of `total_gbps` reserved for collective communication.
    pub comm_gbps: f64,
    /// NPU clock.
    pub freq: Frequency,
}

impl MemoryParams {
    /// Table V memory with `comm_gbps` carved out for communication.
    ///
    /// # Panics
    ///
    /// Panics if `comm_gbps` is not within `(0, 900]`.
    pub fn paper_default(comm_gbps: f64) -> MemoryParams {
        let p = MemoryParams {
            total_gbps: 900.0,
            comm_gbps,
            freq: ace_simcore::npu_frequency(),
        };
        p.validate();
        p
    }

    fn validate(&self) {
        assert!(
            self.comm_gbps > 0.0 && self.comm_gbps <= self.total_gbps,
            "comm partition must be within (0, total]"
        );
    }

    /// Bandwidth left for training compute, in GB/s.
    pub fn compute_gbps(&self) -> f64 {
        self.total_gbps - self.comm_gbps
    }
}

/// The endpoint's HBM: a communication partition modeled as a FIFO
/// bandwidth server, and a residual compute-side figure consumed by the
/// roofline compute model.
///
/// In the baseline endpoint every collective byte makes multiple trips
/// through this partition (Section VI-A: 1.5 N reads per N network bytes on
/// average for ring all-reduce); in ACE only the initial TX-DMA load and
/// final RX-DMA store touch it.
#[derive(Debug, Clone)]
pub struct EndpointMemory {
    params: MemoryParams,
    comm_rd: BandwidthServer,
    comm_wr: BandwidthServer,
}

impl EndpointMemory {
    /// Creates the memory model. Reads and writes ride independent
    /// channels of `comm_gbps` each (HBM pseudo-duplex), matching the
    /// paper's Section VI-A accounting where the memory-bandwidth
    /// requirement is stated in *read* bytes per network byte.
    pub fn new(params: MemoryParams) -> EndpointMemory {
        params.validate();
        let bpc = params.freq.bytes_per_cycle(params.comm_gbps);
        EndpointMemory {
            params,
            comm_rd: BandwidthServer::new(bpc),
            comm_wr: BandwidthServer::new(bpc),
        }
    }

    /// The configured parameters.
    pub fn params(&self) -> &MemoryParams {
        &self.params
    }

    /// Bandwidth available to training compute, in GB/s.
    pub fn compute_gbps(&self) -> f64 {
        self.params.compute_gbps()
    }

    /// Issues a communication-side memory **read** of `bytes` at `now`.
    pub fn comm_read(&mut self, now: SimTime, bytes: u64) -> Grant {
        self.comm_rd.request(now, bytes)
    }

    /// Issues a communication-side memory **write** of `bytes` at `now`.
    pub fn comm_write(&mut self, now: SimTime, bytes: u64) -> Grant {
        self.comm_wr.request(now, bytes)
    }

    /// Issues a communication-side memory read (kept for call sites that
    /// do not distinguish directions).
    pub fn comm_access(&mut self, now: SimTime, bytes: u64) -> Grant {
        self.comm_read(now, bytes)
    }

    /// Earliest time the comm read channel frees up for a request at `now`.
    pub fn comm_next_free(&self, now: SimTime) -> SimTime {
        self.comm_rd.next_free(now)
    }

    /// Total bytes moved through the comm partition (reads + writes).
    pub fn comm_bytes(&self) -> u64 {
        self.comm_rd.bytes_served() + self.comm_wr.bytes_served()
    }

    /// Total read bytes (the Section VI-A accounting basis).
    pub fn comm_read_bytes(&self) -> u64 {
        self.comm_rd.bytes_served()
    }

    /// Comm read-channel busy fraction over `[0, horizon]`.
    pub fn comm_utilization(&self, horizon: SimTime) -> f64 {
        self.comm_rd.utilization(horizon)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn partition_arithmetic() {
        let p = MemoryParams::paper_default(450.0);
        assert_eq!(p.compute_gbps(), 450.0);
        let p = MemoryParams::paper_default(128.0);
        assert_eq!(p.compute_gbps(), 772.0);
    }

    #[test]
    #[should_panic(expected = "within")]
    fn oversized_partition_rejected() {
        let _ = MemoryParams::paper_default(901.0);
    }

    #[test]
    fn comm_accesses_serialize_within_partition() {
        let mut mem = EndpointMemory::new(MemoryParams::paper_default(128.0));
        let a = mem.comm_access(SimTime::ZERO, 1 << 20);
        let b = mem.comm_access(SimTime::ZERO, 1 << 20);
        assert!(b.start >= a.start);
        assert!(b.end > a.end);
        assert_eq!(mem.comm_bytes(), 2 << 20);
    }

    #[test]
    fn narrower_partition_is_slower() {
        let mut narrow = EndpointMemory::new(MemoryParams::paper_default(128.0));
        let mut wide = EndpointMemory::new(MemoryParams::paper_default(450.0));
        let gn = narrow.comm_access(SimTime::ZERO, 64 << 20);
        let gw = wide.comm_access(SimTime::ZERO, 64 << 20);
        assert!(gn.end > gw.end);
        // Ratio of service times tracks the bandwidth ratio.
        let ratio = gn.service() as f64 / gw.service() as f64;
        assert!((ratio - 450.0 / 128.0).abs() < 0.05, "ratio {ratio}");
    }

    #[test]
    fn utilization_accounting() {
        let mut mem = EndpointMemory::new(MemoryParams::paper_default(128.0));
        let g = mem.comm_access(SimTime::ZERO, 1 << 20);
        let u = mem.comm_utilization(SimTime::from_cycles(g.end.cycles() * 4));
        assert!(u > 0.2 && u < 0.3);
    }
}
