//! The scenario files checked in under `examples/scenarios/` must parse,
//! validate, and expand to the grids their figures expect.

use std::path::PathBuf;

use ace_sweep::{grid_len, BaselineSpec, EngineSpec, Scenario, SweepMode};

fn load(name: &str) -> Scenario {
    let path = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("../../examples/scenarios")
        .join(name);
    let text = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("cannot read {}: {e}", path.display()));
    Scenario::from_toml_str(&text).unwrap_or_else(|e| panic!("{name}: {e}"))
}

#[test]
fn design_space_scenario_matches_fig09a_grid() {
    let sc = load("design_space.toml");
    assert_eq!(sc.mode, SweepMode::Collective);
    assert_eq!(sc.topologies.len(), 2);
    assert_eq!(sc.sram_mb, vec![1, 2, 4, 8]);
    assert_eq!(sc.fsms, vec![4, 8, 16, 20]);
    // 2 topologies x 4 SRAM x 4 FSM (x 1 everything else).
    assert_eq!(grid_len(&sc), 32);
    assert_eq!(
        sc.baseline,
        Some(BaselineSpec::Engine(EngineSpec::Ace {
            dma_mem_gbps: 128.0,
            sram_mb: 4,
            fsms: 16
        }))
    );
}

#[test]
fn membw_scenario_matches_fig05_grid() {
    let sc = load("membw_sweep.toml");
    assert_eq!(sc.mode, SweepMode::Collective);
    assert_eq!(sc.mem_gbps.len(), 10);
    assert_eq!(sc.engines.len(), 3);
    // 2 topologies x 3 engines x 10 mem points.
    assert_eq!(grid_len(&sc), 60);
    assert_eq!(sc.baseline, Some(BaselineSpec::Engine(EngineSpec::Ideal)));
    // The expansion dedupes to 2 x (1 ideal + 10 baseline + 10 ace).
    let points = ace_sweep::expand(&sc);
    let unique: std::collections::HashSet<_> = points.iter().collect();
    assert_eq!(unique.len(), 42);
}

#[test]
fn training_suite_scenario_parses() {
    let sc = load("training_suite.toml");
    assert_eq!(sc.mode, SweepMode::Training);
    assert_eq!(sc.configs.len(), 5);
    assert_eq!(sc.workloads.len(), 3);
    assert_eq!(grid_len(&sc), 15);
    assert_eq!(sc.iterations, 2);
}

#[test]
fn custom_workload_scenario_loads_its_model_next_to_itself() {
    // `file:` paths resolve relative to the scenario file, so this must
    // go through `from_toml_path` (the sweep CLI's entry point).
    let path = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("../../examples/scenarios/custom_workload.toml");
    let sc = Scenario::from_toml_path(&path).unwrap_or_else(|e| panic!("{e}"));
    assert_eq!(sc.mode, SweepMode::Training);
    assert_eq!(sc.workloads.len(), 2);
    assert_eq!(grid_len(&sc), 16);
    let w = sc.workloads[0].instantiate(16);
    assert_eq!(w.name(), "wide-mlp");
    assert_eq!(w.layers().len(), 14, "embed + 12 blocks + head");
    assert_eq!(sc.workloads[1].to_string(), "transformer@model");
}

#[test]
fn scaling_scenario_is_analytic_and_huge() {
    let sc = load("scaling_analytic.toml");
    assert_eq!(sc.mode, SweepMode::Collective);
    assert_eq!(sc.fidelity, ace_sweep::Fidelity::Analytic);
    // 7 topologies x 2 ops x 3 payloads x 3 engines x 3 mem x 2 sms x
    // 3 sram x 2 fsms — a grid the exact tier could not sweep in CI.
    assert_eq!(grid_len(&sc), 4536);
    assert!(sc.topologies.iter().any(|t| t.nodes() == 512));
}

#[test]
fn design_space_defaults_to_exact_fidelity() {
    // The checked-in paper grids must keep regenerating through the
    // event-driven executor unless a fidelity is requested explicitly.
    for name in [
        "design_space.toml",
        "membw_sweep.toml",
        "training_suite.toml",
    ] {
        let sc = load(name);
        assert_eq!(sc.fidelity, ace_sweep::Fidelity::Exact, "{name}");
        assert!((sc.hybrid_top_pct - 10.0).abs() < 1e-12);
    }
}
