//! Daemon lifecycle integration tests: the wire protocol over a real
//! socketpair, crash-resume from a truncated journal, and coalescing of
//! same-name submissions.

use std::io::{BufRead, BufReader, Write};
use std::os::unix::net::UnixStream;
use std::path::PathBuf;
use std::sync::Arc;

use ace_sweep::protocol::{self, parse_object, Request, Value};
use ace_sweep::{
    report, run_scenario, BusEvent, RunnerOptions, Scenario, ServiceOptions, SweepService,
    CACHE_HEADER,
};

const TINY_TOML: &str = r#"
name = "it-tiny"
mode = "collective"
topologies = ["2x1x1"]
engines = ["ideal", "baseline"]
ops = ["all-reduce"]
payloads = ["256KB"]
mem_gbps = [128, 450]
comm_sms = [6]
"#;

/// A unique scratch path under the system temp dir (std-only; no tempfile
/// crate). The `#[test]` harness runs each test in its own thread, so the
/// thread id disambiguates parallel tests within one process.
fn scratch(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "ace-sweep-it-{}-{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    std::fs::create_dir_all(&dir).unwrap();
    dir.join(name)
}

/// Blanks the cache_hit column (second-to-last) of every CSV row: a
/// resumed grid serves replayed cells from cache, so its hit flags differ
/// from a cold run even though every metric byte matches.
fn strip_cache_hit(csv: &str) -> String {
    csv.lines()
        .map(|line| {
            let mut cells: Vec<&str> = line.split(',').collect();
            let n = cells.len();
            if n >= 2 {
                cells[n - 2] = "_";
            }
            cells.join(",")
        })
        .collect::<Vec<_>>()
        .join("\n")
}

#[test]
fn protocol_round_trips_over_a_real_socketpair() {
    let service = Arc::new(
        SweepService::open(ServiceOptions {
            threads: 1,
            sim_threads: 0,
            journal: None,
        })
        .unwrap(),
    );
    let (client, server) = UnixStream::pair().unwrap();
    let handle = {
        let service = Arc::clone(&service);
        std::thread::spawn(move || {
            let reader = server.try_clone().unwrap();
            service.serve_stream(reader, server).unwrap();
        })
    };

    let mut writer = client.try_clone().unwrap();
    let mut reader = BufReader::new(client);
    let read_map = |reader: &mut BufReader<UnixStream>| {
        let mut line = String::new();
        reader.read_line(&mut line).unwrap();
        parse_object(line.trim_end()).unwrap()
    };

    // Submit by path, exactly as the CLI's default mode does.
    let scenario_path = scratch("it-tiny.toml");
    std::fs::write(&scenario_path, TINY_TOML).unwrap();
    let request = protocol::request_line(&Request::Submit {
        toml: None,
        path: Some(scenario_path.to_string_lossy().into_owned()),
        base: None,
        threads: None,
        fidelity: None,
    });
    writeln!(writer, "{request}").unwrap();

    let mut events = Vec::new();
    let csv = loop {
        let map = read_map(&mut reader);
        let event = map["event"].as_str().unwrap().to_string();
        if event == "result" {
            break map["csv"].as_str().unwrap().to_string();
        }
        events.push(event);
    };
    assert_eq!(
        events,
        vec!["accepted", "batch", "cell", "cell", "cell", "finished", "stats"]
    );

    // The streamed CSV is byte-identical to the one-shot CLI's output.
    let sc = Scenario::from_toml_str(TINY_TOML).unwrap();
    let expected = report::to_csv(
        &run_scenario(
            &sc,
            RunnerOptions {
                threads: 1,
                ..Default::default()
            },
        )
        .unwrap(),
    );
    assert_eq!(csv, expected);

    // Stats and shutdown answer in-band on the same connection.
    writeln!(writer, "{}", protocol::request_line(&Request::Stats)).unwrap();
    let stats = read_map(&mut reader);
    assert_eq!(stats["event"], Value::Str("stats".into()));
    assert_eq!(stats["entries"], Value::Num(3.0));

    writeln!(writer, "{}", protocol::request_line(&Request::Shutdown)).unwrap();
    let bye = read_map(&mut reader);
    assert_eq!(bye["event"], Value::Str("shutdown".into()));
    handle.join().unwrap();
    assert!(service.is_shutdown());
}

#[test]
fn a_killed_daemon_resumes_mid_grid_from_the_journal() {
    // First life: run the grid to completion so the journal holds every
    // row, bracketed by #pending / #done.
    let full = scratch("full.journal");
    {
        let service = SweepService::open(ServiceOptions {
            threads: 1,
            sim_threads: 0,
            journal: Some(full.clone()),
        })
        .unwrap();
        let request = protocol::request_line(&Request::Submit {
            toml: Some(TINY_TOML.into()),
            path: None,
            base: None,
            threads: None,
            fidelity: None,
        });
        let mut out = Vec::new();
        service
            .serve_stream(format!("{request}\n").as_bytes(), &mut out)
            .unwrap();
    }

    // Forge the moment of death: keep the header, the #pending record,
    // and the first executed row — as if SIGKILL landed after one cell
    // flushed. No #done, so the job is still open.
    let text = std::fs::read_to_string(&full).unwrap();
    let lines: Vec<&str> = text.lines().collect();
    assert!(lines[0].starts_with(CACHE_HEADER.lines().next().unwrap()));
    assert!(lines.last().unwrap().starts_with("#done "));
    let pending = lines
        .iter()
        .position(|l| l.starts_with("#pending "))
        .expect("journal records the open job");
    let rows: Vec<&str> = lines[pending + 1..lines.len() - 1].to_vec();
    assert_eq!(rows.len(), 3, "tiny grid executes 3 unique cells");
    let crashed = scratch("crashed.journal");
    let mut forged: Vec<&str> = lines[..=pending].to_vec();
    forged.push(rows[0]);
    std::fs::write(&crashed, format!("{}\n", forged.join("\n"))).unwrap();

    // Second life: the pending job is recovered and resumed; the one
    // journaled cell replays from cache, only the remainder executes.
    let mut service = SweepService::open(ServiceOptions {
        threads: 1,
        sim_threads: 0,
        journal: Some(crashed.clone()),
    })
    .unwrap();
    assert_eq!(service.pending().len(), 1);
    assert_eq!(service.pending()[0].name, "it-tiny");
    let mut saw_batch_cached = 0usize;
    let results = service.resume_pending(|_, ev| {
        if let BusEvent::BatchStarted { cached, .. } = ev {
            saw_batch_cached = *cached;
        }
    });
    let (name, outcome) = &results[0];
    let outcome = outcome.as_ref().unwrap();
    assert_eq!(name, "it-tiny");
    assert_eq!(
        outcome.executed, 2,
        "one of three cells was already journaled"
    );
    assert_eq!(saw_batch_cached, 1);

    // The resumed CSV matches a cold one-shot byte-for-byte, modulo the
    // cache_hit flags of the replayed cells.
    let sc = Scenario::from_toml_str(TINY_TOML).unwrap();
    let cold = report::to_csv(
        &run_scenario(
            &sc,
            RunnerOptions {
                threads: 1,
                ..Default::default()
            },
        )
        .unwrap(),
    );
    assert_eq!(
        strip_cache_hit(&report::to_csv(outcome)),
        strip_cache_hit(&cold)
    );

    // The finished resume closed the journal entry: a third life has
    // nothing pending and a fully warm cache.
    let service = SweepService::open(ServiceOptions {
        threads: 1,
        sim_threads: 0,
        journal: Some(crashed),
    })
    .unwrap();
    assert!(service.pending().is_empty());
    assert_eq!(service.scheduler().cache().len(), 3);
}

#[test]
fn torn_journal_tail_is_dropped_on_resume() {
    // Run once to get a complete journal, then chop mid-row to simulate
    // SIGKILL landing inside a write.
    let path = scratch("torn.journal");
    {
        let service = SweepService::open(ServiceOptions {
            threads: 1,
            sim_threads: 0,
            journal: Some(path.clone()),
        })
        .unwrap();
        let request = protocol::request_line(&Request::Submit {
            toml: Some(TINY_TOML.into()),
            path: None,
            base: None,
            threads: None,
            fidelity: None,
        });
        let mut out = Vec::new();
        service
            .serve_stream(format!("{request}\n").as_bytes(), &mut out)
            .unwrap();
    }
    let bytes = std::fs::read(&path).unwrap();
    std::fs::write(&path, &bytes[..bytes.len() - 7]).unwrap();

    // The chop ate the #done record's tail, so the job is pending again
    // and the resume completes it without tripping on the partial line.
    let mut service = SweepService::open(ServiceOptions {
        threads: 1,
        sim_threads: 0,
        journal: Some(path),
    })
    .unwrap();
    assert_eq!(service.pending().len(), 1);
    let results = service.resume_pending(|_, _| {});
    assert!(results[0].1.is_ok());
}

#[test]
fn same_name_submissions_coalesce_to_the_latest_generation() {
    let service = SweepService::open(ServiceOptions {
        threads: 1,
        sim_threads: 0,
        journal: None,
    })
    .unwrap();
    let scheduler = service.scheduler();
    let observer = scheduler.bus().subscribe();

    let scenario = Scenario::from_toml_str(TINY_TOML).unwrap();
    let stale = scheduler.accept(&scenario).unwrap();
    // Second submission of the same name supersedes the first before it
    // ever runs (a rapid-fire client, or a parameter tweak mid-queue).
    let fresh = scheduler.accept(&scenario).unwrap();
    assert!(fresh.generation > stale.generation);

    let mut sink = |_: &BusEvent| {};
    let err = scheduler
        .run_accepted(
            &stale,
            RunnerOptions {
                threads: 1,
                ..Default::default()
            },
            &mut sink,
        )
        .unwrap_err();
    assert!(matches!(err, ace_sweep::JobError::Superseded));
    // Nothing of the stale generation executed.
    assert!(scheduler.cache().is_empty());

    let outcome = scheduler
        .run_accepted(
            &fresh,
            RunnerOptions {
                threads: 1,
                ..Default::default()
            },
            &mut sink,
        )
        .unwrap();
    assert_eq!(outcome.executed, 3);

    // Observers on the bus saw the supersession announcement.
    let mut saw_superseded = false;
    while let Some(ev) = observer.recv_timeout(std::time::Duration::from_secs(5)) {
        if let BusEvent::JobSuperseded { generation, .. } = ev {
            assert_eq!(generation, stale.generation);
            saw_superseded = true;
        }
        if matches!(ev, BusEvent::CacheStats { .. }) {
            break;
        }
    }
    assert!(saw_superseded);
}
