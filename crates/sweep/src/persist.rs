//! Persistent sweep caches.
//!
//! A [`Cache`] serializes to a versioned, line-oriented CSV file so
//! results survive the process: `sweep … --cache-file sweep.cache` loads
//! the file before running and saves it back afterwards, and any point
//! already present is served without re-simulating. The simulator is
//! deterministic, so a cached row is exactly what a fresh run would
//! produce.
//!
//! Format (`v3`; the header also pins the simulator version that wrote
//! the file — see [`CACHE_HEADER`]). The leading `fidelity` cell keys the
//! row to its execution tier, so an α–β estimate can never be served
//! where an event-driven result is expected. The trailing seven cells
//! are the bottleneck-attribution buckets (cycles); the attribution
//! total is not stored — it always equals `completion_cycles`:
//!
//! ```text
//! # ace-sweep-cache v3 sim-0.1.0
//! fidelity,kind,topology,engine,mem_gbps,comm_sms,sram_mb,fsms,op,payload_bytes,config,workload,iterations,optimized_embedding,time_us,completion_cycles,gbps_per_npu,mem_traffic_bytes,network_bytes,compute_us,exposed_comm_us,past_schedules,attr_compute,attr_network,attr_hbm,attr_dma,attr_bus,attr_proc,attr_other
//! exact,collective,4x2x2,ace,128,,4,16,all-reduce,67108864,,,,,12.3,15314,…
//! analytic,training,4x2x2,,,,,,,,ACE,resnet50,2,0,…
//! ```
//!
//! Floats are written with Rust's shortest round-trip `Display`, so a
//! load → save cycle is lossless. Rows are sorted by their serialized
//! key: saving the same cache twice produces byte-identical files.

use std::path::Path;

use ace_net::TopologySpec;
use ace_system::SystemConfig;

use crate::fidelity::Tier;
use crate::grid::{PointKind, RunPoint};
use crate::runner::{Cache, Metrics};
use crate::scenario::{parse_op, EngineSpec, WorkloadSel};

/// Magic + version header of the cache file format. The simulator
/// version is part of the header: cached rows are only "exactly what a
/// fresh run would produce" for the build that wrote them, so a cache
/// from a different simulator version is rejected instead of silently
/// serving stale results. Bump the workspace version whenever a change
/// alters simulation results.
pub const CACHE_HEADER: &str = concat!("# ace-sweep-cache v3 sim-", env!("CARGO_PKG_VERSION"));

/// Column names of the cache file (documentation line 2 of the file).
const COLUMNS: &str = "fidelity,kind,topology,engine,mem_gbps,comm_sms,sram_mb,fsms,\
                       op,payload_bytes,config,workload,iterations,optimized_embedding,time_us,\
                       completion_cycles,gbps_per_npu,mem_traffic_bytes,network_bytes,compute_us,\
                       exposed_comm_us,past_schedules,attr_compute,attr_network,attr_hbm,\
                       attr_dma,attr_bus,attr_proc,attr_other";

/// Serializes `cache` to the versioned file format, rows sorted for
/// byte-identical output across runs.
pub fn cache_to_string(cache: &Cache) -> String {
    let mut rows: Vec<String> = cache
        .entries()
        .iter()
        .map(|(tier, p, m)| {
            let mut cells = vec![tier.to_string()];
            cells.extend(point_cells(p));
            cells.extend(metric_cells(m));
            cells.join(",")
        })
        .collect();
    rows.sort_unstable();
    let mut out = String::new();
    out.push_str(CACHE_HEADER);
    out.push('\n');
    out.push_str("# ");
    out.push_str(COLUMNS);
    out.push('\n');
    for row in rows {
        out.push_str(&row);
        out.push('\n');
    }
    out
}

/// Parses a cache file produced by [`cache_to_string`].
///
/// # Errors
///
/// Returns a message when the header/version does not match or any row is
/// malformed — a corrupt cache must fail loudly rather than silently
/// re-simulating (or worse, serving garbage).
pub fn cache_from_str(text: &str) -> Result<Cache, String> {
    let mut lines = text.lines();
    match lines.next() {
        Some(first) if first.trim() == CACHE_HEADER => {}
        Some(first) => {
            return Err(format!(
                "unsupported cache header '{first}' (expected '{CACHE_HEADER}')"
            ))
        }
        None => return Err("empty cache file".into()),
    }
    let cache = Cache::new();
    for (no, line) in lines.enumerate() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let (tier, point, metrics) =
            parse_row(line).map_err(|e| format!("cache line {}: {e}", no + 2))?;
        cache.insert_tier(tier, point, metrics);
    }
    Ok(cache)
}

/// Saves `cache` to `path`.
///
/// # Errors
///
/// Returns the I/O error message on failure.
pub fn save_cache(cache: &Cache, path: impl AsRef<Path>) -> Result<(), String> {
    let path = path.as_ref();
    std::fs::write(path, cache_to_string(cache))
        .map_err(|e| format!("cannot write cache {}: {e}", path.display()))
}

/// Loads a cache from `path`. A missing file yields an empty cache (the
/// first run of a fresh cache file); any other error is reported.
///
/// # Errors
///
/// Returns a message when the file exists but cannot be read or parsed.
pub fn load_cache(path: impl AsRef<Path>) -> Result<Cache, String> {
    let path = path.as_ref();
    match std::fs::read_to_string(path) {
        Ok(text) => cache_from_str(&text),
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(Cache::new()),
        Err(e) => Err(format!("cannot read cache {}: {e}", path.display())),
    }
}

/// The point-identity cells (first 13 columns).
fn point_cells(p: &RunPoint) -> Vec<String> {
    let mut c = vec![String::new(); 13];
    c[1] = p.topology.to_string();
    match &p.kind {
        PointKind::Collective {
            engine,
            op,
            payload_bytes,
        } => {
            c[0] = "collective".into();
            match *engine {
                EngineSpec::Ideal => c[2] = "ideal".into(),
                EngineSpec::Baseline { mem_gbps, comm_sms } => {
                    c[2] = "baseline".into();
                    c[3] = format!("{mem_gbps}");
                    c[4] = comm_sms.to_string();
                }
                EngineSpec::Ace {
                    dma_mem_gbps,
                    sram_mb,
                    fsms,
                } => {
                    c[2] = "ace".into();
                    c[3] = format!("{dma_mem_gbps}");
                    c[5] = sram_mb.to_string();
                    c[6] = fsms.to_string();
                }
            }
            c[7] = op.to_string();
            c[8] = payload_bytes.to_string();
        }
        PointKind::Training {
            config,
            workload,
            iterations,
            optimized_embedding,
        } => {
            c[0] = "training".into();
            c[9] = config.to_string();
            c[10] = workload.to_string();
            c[11] = iterations.to_string();
            c[12] = if *optimized_embedding { "1" } else { "0" }.into();
        }
    }
    c
}

/// The metric cells (last 15 columns). The attribution total is elided:
/// it equals `completion_cycles` in every execution path, and the loader
/// reconstructs it from there.
fn metric_cells(m: &Metrics) -> Vec<String> {
    vec![
        format!("{}", m.time_us),
        m.completion_cycles.to_string(),
        format!("{}", m.gbps_per_npu),
        m.mem_traffic_bytes.to_string(),
        m.network_bytes.to_string(),
        format!("{}", m.compute_us),
        format!("{}", m.exposed_comm_us),
        m.past_schedules.to_string(),
        m.attribution.compute_cycles.to_string(),
        m.attribution.network_cycles.to_string(),
        m.attribution.hbm_cycles.to_string(),
        m.attribution.dma_cycles.to_string(),
        m.attribution.bus_cycles.to_string(),
        m.attribution.proc_cycles.to_string(),
        m.attribution.other_cycles.to_string(),
    ]
}

fn parse_row(line: &str) -> Result<(Tier, RunPoint, Metrics), String> {
    let cells: Vec<&str> = line.split(',').collect();
    if cells.len() != 29 {
        return Err(format!("expected 29 cells, found {}", cells.len()));
    }
    let tier = cells[0].parse::<Tier>()?;
    let cells = &cells[1..];
    let topology = parse_topology(cells[1])?;
    let kind = match cells[0] {
        "collective" => {
            let engine = match cells[2] {
                "ideal" => EngineSpec::Ideal,
                "baseline" => EngineSpec::Baseline {
                    mem_gbps: parse_f64(cells[3], "mem_gbps")?,
                    comm_sms: parse_int(cells[4], "comm_sms")? as u32,
                },
                "ace" => EngineSpec::Ace {
                    dma_mem_gbps: parse_f64(cells[3], "mem_gbps")?,
                    sram_mb: parse_int(cells[5], "sram_mb")?,
                    fsms: parse_int(cells[6], "fsms")? as usize,
                },
                other => return Err(format!("unknown engine '{other}'")),
            };
            PointKind::Collective {
                engine,
                op: parse_op(cells[7])?,
                payload_bytes: parse_int(cells[8], "payload_bytes")?,
            }
        }
        "training" => PointKind::Training {
            config: cells[9].parse::<SystemConfig>()?,
            workload: WorkloadSel::from_cache_key(cells[10])?,
            iterations: parse_int(cells[11], "iterations")? as u32,
            optimized_embedding: match cells[12] {
                "1" => true,
                "0" => false,
                other => return Err(format!("bad optimized_embedding '{other}'")),
            },
        },
        other => return Err(format!("unknown point kind '{other}'")),
    };
    let completion_cycles = parse_int(cells[14], "completion_cycles")?;
    let metrics = Metrics {
        time_us: parse_f64(cells[13], "time_us")?,
        completion_cycles,
        gbps_per_npu: parse_f64(cells[15], "gbps_per_npu")?,
        mem_traffic_bytes: parse_int(cells[16], "mem_traffic_bytes")?,
        network_bytes: parse_int(cells[17], "network_bytes")?,
        compute_us: parse_f64(cells[18], "compute_us")?,
        exposed_comm_us: parse_f64(cells[19], "exposed_comm_us")?,
        past_schedules: parse_int(cells[20], "past_schedules")?,
        attribution: ace_trace::Attribution {
            total_cycles: completion_cycles,
            compute_cycles: parse_int(cells[21], "attr_compute")?,
            network_cycles: parse_int(cells[22], "attr_network")?,
            hbm_cycles: parse_int(cells[23], "attr_hbm")?,
            dma_cycles: parse_int(cells[24], "attr_dma")?,
            bus_cycles: parse_int(cells[25], "attr_bus")?,
            proc_cycles: parse_int(cells[26], "attr_proc")?,
            other_cycles: parse_int(cells[27], "attr_other")?,
        },
    };
    Ok((tier, RunPoint { topology, kind }, metrics))
}

fn parse_topology(s: &str) -> Result<TopologySpec, String> {
    s.parse::<TopologySpec>()
}

fn parse_f64(s: &str, what: &str) -> Result<f64, String> {
    s.parse::<f64>()
        .map_err(|_| format!("bad {what} '{s}'"))
        .and_then(|v| {
            if v.is_finite() {
                Ok(v)
            } else {
                Err(format!("non-finite {what} '{s}'"))
            }
        })
}

fn parse_int(s: &str, what: &str) -> Result<u64, String> {
    s.parse::<u64>().map_err(|_| format!("bad {what} '{s}'"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::{run_scenario, RunnerOptions, SweepRunner};
    use crate::scenario::{EngineFamily, Scenario};

    fn tiny_collective() -> Scenario {
        let mut sc = Scenario::collective("persist-test");
        sc.topologies = vec![TopologySpec::torus3(2, 1, 1).unwrap()];
        sc.engines = vec![EngineFamily::Ideal, EngineFamily::Baseline];
        sc.payload_bytes = vec![256 * 1024];
        sc.mem_gbps = vec![128.0, 450.0];
        sc.comm_sms = vec![6];
        sc
    }

    #[test]
    fn cache_round_trips_byte_exactly() {
        let runner = SweepRunner::new();
        let sc = tiny_collective();
        runner.run(&sc, RunnerOptions { threads: 1 }).unwrap();
        let text = cache_to_string(runner.cache());
        let reloaded = cache_from_str(&text).unwrap();
        assert_eq!(reloaded.len(), runner.cache().len());
        // Every metric (f64s included) survives the text round-trip.
        for (t, p, m) in runner.cache().entries() {
            assert_eq!(reloaded.get_tier(t, &p), Some(m), "lost {p:?}");
        }
        // Save → load → save is byte-identical (sorted rows, shortest
        // round-trip floats).
        assert_eq!(cache_to_string(&reloaded), text);
    }

    #[test]
    fn training_points_round_trip() {
        let mut sc = Scenario::training("persist-training");
        sc.topologies = vec![TopologySpec::torus3(2, 1, 1).unwrap()];
        sc.configs = vec![ace_system::SystemConfig::Ace];
        sc.workloads = vec![WorkloadSel::builtin(
            ace_workloads::BuiltinWorkload::Resnet50,
        )];
        sc.iterations = 1;
        let runner = SweepRunner::new();
        runner.run(&sc, RunnerOptions { threads: 1 }).unwrap();
        let text = cache_to_string(runner.cache());
        let reloaded = cache_from_str(&text).unwrap();
        for (t, p, m) in runner.cache().entries() {
            assert_eq!(reloaded.get_tier(t, &p), Some(m));
        }
    }

    #[test]
    fn reloaded_cache_serves_every_point() {
        // The cross-process scenario: run → save → (new process) load →
        // run again; the second run simulates nothing.
        let first = SweepRunner::new();
        let sc = tiny_collective();
        let out1 = first.run(&sc, RunnerOptions { threads: 1 }).unwrap();
        assert!(out1.executed > 0);
        let text = cache_to_string(first.cache());

        let second = SweepRunner::with_cache(cache_from_str(&text).unwrap());
        let out2 = second.run(&sc, RunnerOptions { threads: 1 }).unwrap();
        assert_eq!(out2.executed, 0, "warm cache must serve every point");
        assert!(out2.results.iter().all(|r| r.cache_hit));
        for (a, b) in out1.results.iter().zip(&out2.results) {
            assert_eq!(a.metrics, b.metrics);
        }
    }

    #[test]
    fn cross_topology_cache_round_trip() {
        // Cache keys must incorporate the topology axis: a 16-node
        // switch, a 16-node torus and a 16-node hierarchical fabric are
        // distinct points even with every other coordinate equal, and a
        // `switch` row must never be served for a `torus` query.
        let mut sc = Scenario::collective("cross-topology");
        sc.topologies = vec![
            TopologySpec::torus3(4, 2, 2).unwrap(),
            "4x4".parse().unwrap(),
            "switch:16".parse().unwrap(),
            "switch:16@100".parse().unwrap(),
            "hier:4x4".parse().unwrap(),
        ];
        sc.engines = vec![EngineFamily::Ideal];
        sc.payload_bytes = vec![64 * 1024];
        let runner = SweepRunner::new();
        let out = runner.run(&sc, RunnerOptions { threads: 1 }).unwrap();
        // Five same-size fabrics, five distinct simulations.
        assert_eq!(out.executed, 5);
        let times: std::collections::HashSet<u64> = out
            .results
            .iter()
            .map(|r| r.metrics.completion_cycles)
            .collect();
        assert!(times.len() >= 4, "topologies must simulate differently");

        // Round-trip through the text format preserves every key exactly.
        let text = cache_to_string(runner.cache());
        for spelling in ["4x2x2", "4x4", "switch:16", "switch:16@100", "hier:4x4"] {
            assert!(text.contains(spelling), "cache file lost '{spelling}'");
        }
        let reloaded = cache_from_str(&text).unwrap();
        assert_eq!(reloaded.len(), runner.cache().len());
        for (t, p, m) in runner.cache().entries() {
            assert_eq!(reloaded.get_tier(t, &p), Some(m), "lost {p:?}");
        }
        // A switch point never hits a torus entry: querying the reloaded
        // cache with the same coordinates but a different topology misses.
        let torus_point = out.results[0].point.clone();
        let mut cross = torus_point.clone();
        cross.topology = "switch:16".parse().unwrap();
        assert_ne!(reloaded.get(&torus_point), None);
        assert_ne!(
            reloaded.get(&torus_point),
            reloaded.get(&cross),
            "switch and torus rows must not alias"
        );
        // And a warm rerun of the full grid simulates nothing.
        let warm = SweepRunner::with_cache(reloaded);
        let again = warm.run(&sc, RunnerOptions { threads: 1 }).unwrap();
        assert_eq!(again.executed, 0);
    }

    #[test]
    fn version_and_corruption_are_rejected() {
        assert!(cache_from_str("").is_err());
        assert!(cache_from_str("# ace-sweep-cache v999\n").is_err());
        // The v1 (pre-fidelity) format is a different schema: rejected.
        assert!(cache_from_str("# ace-sweep-cache v1 sim-0.1.0\n").is_err());
        // So is v2 (pre-attribution): fewer metric cells per row.
        assert!(cache_from_str("# ace-sweep-cache v2 sim-0.1.0\n").is_err());
        // A cache written by a different simulator version must not be
        // served: results are only reproducible within one build.
        assert!(cache_from_str("# ace-sweep-cache v1 sim-0.0.0\n").is_err());
        let bad_row = format!("{CACHE_HEADER}\nnot-a-row\n");
        assert!(cache_from_str(&bad_row).is_err());
        let short_row = format!("{CACHE_HEADER}\nexact,collective,2x1x1,ideal\n");
        assert!(cache_from_str(&short_row).is_err());
        // Valid header + comments + blank lines parse as empty.
        let empty = format!("{CACHE_HEADER}\n# comment\n\n");
        assert_eq!(cache_from_str(&empty).unwrap().len(), 0);
    }

    #[test]
    fn file_round_trip_via_paths() {
        let dir = std::env::temp_dir().join("ace-sweep-persist-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("cache.csv");
        let _ = std::fs::remove_file(&path);
        // Missing file loads as empty.
        assert!(load_cache(&path).unwrap().is_empty());
        let runner = SweepRunner::new();
        runner
            .run(&tiny_collective(), RunnerOptions { threads: 1 })
            .unwrap();
        save_cache(runner.cache(), &path).unwrap();
        let loaded = load_cache(&path).unwrap();
        assert_eq!(loaded.len(), runner.cache().len());
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn warm_outcome_matches_cold_except_cache_flags() {
        let sc = tiny_collective();
        let cold = run_scenario(&sc, RunnerOptions { threads: 1 }).unwrap();
        let runner = SweepRunner::new();
        let _ = runner.run(&sc, RunnerOptions { threads: 1 }).unwrap();
        let text = cache_to_string(runner.cache());
        let warm = SweepRunner::with_cache(cache_from_str(&text).unwrap())
            .run(&sc, RunnerOptions { threads: 1 })
            .unwrap();
        assert_eq!(cold.results.len(), warm.results.len());
        for (c, w) in cold.results.iter().zip(&warm.results) {
            assert_eq!(c.point, w.point);
            assert_eq!(c.metrics, w.metrics);
            assert_eq!(c.speedup_vs_baseline, w.speedup_vs_baseline);
            assert!(w.cache_hit, "warm rows must be served from the cache");
        }
    }
}
