//! Persistent sweep caches.
//!
//! A [`Cache`] serializes to a versioned, line-oriented CSV file so
//! results survive the process: `sweep … --cache-file sweep.cache` loads
//! the file before running and saves it back afterwards, and any point
//! already present is served without re-simulating. The simulator is
//! deterministic, so a cached row is exactly what a fresh run would
//! produce.
//!
//! Format (`v5`; the header also pins the simulator version that wrote
//! the file — see [`CACHE_HEADER`]). The leading `fidelity` cell keys the
//! row to its execution tier, so an α–β estimate can never be served
//! where an event-driven result is expected. The `faults` / `contention`
//! / `straggler` cells carry the run-condition spellings — part of the
//! point's identity, so a degraded-fabric row can never be served for a
//! pristine query. Serving rows fold the whole [`ace_serve::ServingSpec`]
//! into one `serving` cell (its `;`-joined cache-key spelling) and carry
//! seven latency cells; the trailing seven cells are the
//! bottleneck-attribution buckets (cycles); the attribution total is not
//! stored — it always equals `completion_cycles`:
//!
//! ```text
//! # ace-sweep-cache v5 sim-0.1.0
//! fidelity,kind,topology,engine,mem_gbps,comm_sms,sram_mb,fsms,op,payload_bytes,config,workload,iterations,optimized_embedding,serving,faults,contention,straggler,time_us,completion_cycles,gbps_per_npu,mem_traffic_bytes,network_bytes,compute_us,exposed_comm_us,past_schedules,ttft_p50_us,ttft_p95_us,ttft_p99_us,e2e_p50_us,e2e_p95_us,e2e_p99_us,goodput_rps,attr_compute,attr_network,attr_hbm,attr_dma,attr_bus,attr_proc,attr_other
//! exact,collective,4x2x2,ace,128,,4,16,all-reduce,67108864,,,,,,none,none,det,12.3,15314,…
//! analytic,training,4x2x2,,,,,,,,ACE,resnet50,2,0,,kill:1@seed:42,none,det,…
//! exact,serving,switch:16,,,,,,,,ACE,transformer,,,arrival=poisson;rate=500;…,…
//! ```
//!
//! Floats are written with Rust's shortest round-trip `Display`, so a
//! load → save cycle is lossless. Rows are sorted by their serialized
//! key: saving the same cache twice produces byte-identical files.
//!
//! Two services are layered on the same row format:
//!
//! * [`CacheFileLock`] — an `O_EXCL` advisory lock so two concurrent
//!   `sweep --cache-file` processes cannot interleave saves (saves are
//!   also atomic: temp file + rename).
//! * [`Journal`] — the sweep daemon's append-only write-ahead log. Every
//!   freshly executed cell is appended as a v3 row and flushed before its
//!   completion event publishes; job lifecycle is tracked with `#pending`
//!   / `#done` comment records, so the file stays loadable by plain
//!   [`load_cache`] and a killed daemon resumes mid-grid on restart
//!   ([`Journal::replay`] truncates a torn final line and returns both
//!   the recovered cache and the jobs that never finished).

use std::io::{Read, Seek, Write};
use std::path::{Path, PathBuf};

use ace_net::TopologySpec;
use ace_system::{RunConditions, SystemConfig};

use crate::fidelity::Tier;
use crate::grid::{PointKind, RunPoint};
use crate::runner::{Cache, Metrics};
use crate::scenario::{parse_op, EngineSpec, WorkloadSel};

/// Magic + version header of the cache file format. The simulator
/// version is part of the header: cached rows are only "exactly what a
/// fresh run would produce" for the build that wrote them, so a cache
/// from a different simulator version is rejected instead of silently
/// serving stale results. Bump the workspace version whenever a change
/// alters simulation results.
pub const CACHE_HEADER: &str = concat!("# ace-sweep-cache v5 sim-", env!("CARGO_PKG_VERSION"));

/// Column names of the cache file (documentation line 2 of the file).
const COLUMNS: &str = "fidelity,kind,topology,engine,mem_gbps,comm_sms,sram_mb,fsms,\
                       op,payload_bytes,config,workload,iterations,optimized_embedding,serving,\
                       faults,contention,straggler,\
                       time_us,completion_cycles,gbps_per_npu,mem_traffic_bytes,network_bytes,\
                       compute_us,exposed_comm_us,past_schedules,ttft_p50_us,ttft_p95_us,\
                       ttft_p99_us,e2e_p50_us,e2e_p95_us,e2e_p99_us,goodput_rps,attr_compute,\
                       attr_network,attr_hbm,attr_dma,attr_bus,attr_proc,attr_other";

/// Serializes `cache` to the versioned file format, rows sorted for
/// byte-identical output across runs.
pub fn cache_to_string(cache: &Cache) -> String {
    let mut rows: Vec<String> = cache
        .entries()
        .iter()
        .map(|(tier, p, m)| {
            let mut cells = vec![tier.to_string()];
            cells.extend(point_cells(p));
            cells.extend(metric_cells(m));
            cells.join(",")
        })
        .collect();
    rows.sort_unstable();
    let mut out = String::new();
    out.push_str(CACHE_HEADER);
    out.push('\n');
    out.push_str("# ");
    out.push_str(COLUMNS);
    out.push('\n');
    for row in rows {
        out.push_str(&row);
        out.push('\n');
    }
    out
}

/// Parses a cache file produced by [`cache_to_string`].
///
/// # Errors
///
/// Returns a message when the header/version does not match or any row is
/// malformed — a corrupt cache must fail loudly rather than silently
/// re-simulating (or worse, serving garbage).
pub fn cache_from_str(text: &str) -> Result<Cache, String> {
    let mut lines = text.lines();
    match lines.next() {
        Some(first) if first.trim() == CACHE_HEADER => {}
        Some(first) => {
            return Err(format!(
                "unsupported cache header '{first}' (expected '{CACHE_HEADER}')"
            ))
        }
        None => return Err("empty cache file".into()),
    }
    let cache = Cache::new();
    for (no, line) in lines.enumerate() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let (tier, point, metrics) =
            parse_row(line).map_err(|e| format!("cache line {}: {e}", no + 2))?;
        cache.insert_tier(tier, point, metrics);
    }
    Ok(cache)
}

/// Saves `cache` to `path` atomically: the bytes land in a temp file in
/// the same directory which is then renamed over `path`, so a concurrent
/// reader (or a crash mid-save) never observes a truncated cache.
///
/// # Errors
///
/// Returns the I/O error message on failure.
pub fn save_cache(cache: &Cache, path: impl AsRef<Path>) -> Result<(), String> {
    let path = path.as_ref();
    let mut tmp = path.as_os_str().to_owned();
    tmp.push(format!(".tmp.{}", std::process::id()));
    let tmp = PathBuf::from(tmp);
    std::fs::write(&tmp, cache_to_string(cache))
        .map_err(|e| format!("cannot write cache {}: {e}", tmp.display()))?;
    std::fs::rename(&tmp, path).map_err(|e| {
        let _ = std::fs::remove_file(&tmp);
        format!("cannot replace cache {}: {e}", path.display())
    })
}

/// Loads a cache from `path`. A missing file yields an empty cache (the
/// first run of a fresh cache file); any other error is reported.
///
/// # Errors
///
/// Returns a message when the file exists but cannot be read or parsed.
pub fn load_cache(path: impl AsRef<Path>) -> Result<Cache, String> {
    let path = path.as_ref();
    match std::fs::read_to_string(path) {
        Ok(text) => cache_from_str(&text),
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(Cache::new()),
        Err(e) => Err(format!("cannot read cache {}: {e}", path.display())),
    }
}

/// An `O_EXCL` advisory lock guarding a cache file: created with
/// `create_new` (so acquisition is atomic), holding the owner's identity,
/// and removed on drop. Two concurrent `sweep --cache-file` runs on the
/// same path fail fast with an error naming the holder instead of
/// silently interleaving saves.
///
/// The lock records `pid start_time` — the kernel start time defuses PID
/// reuse, where a dead holder's PID has been handed to an unrelated new
/// process that would otherwise pin the lock forever. Liveness is probed
/// via `/proc` where available; elsewhere a lock older than
/// [`STALE_LOCK_MAX_AGE`] is presumed abandoned. Either way a provably
/// (or plausibly) dead holder's lock is broken automatically — a crashed
/// run must not wedge the cache forever.
#[derive(Debug)]
pub struct CacheFileLock {
    path: PathBuf,
}

/// How long a lock may sit unprobeable (no `/proc`) before it is
/// presumed abandoned. Generous on purpose: breaking a live sweep's lock
/// corrupts saves, while an abandoned lock only delays the next run.
pub const STALE_LOCK_MAX_AGE: std::time::Duration = std::time::Duration::from_secs(24 * 60 * 60);

/// Kernel start time of `pid` in clock ticks since boot (`/proc/<pid>/
/// stat` field 22). `None` off Linux or when the process is gone.
fn proc_start_time_of(proc_root: &Path, pid: u32) -> Option<u64> {
    let text = std::fs::read_to_string(proc_root.join(pid.to_string()).join("stat")).ok()?;
    parse_proc_start_time(&text)
}

/// Extracts field 22 (`starttime`) from `/proc/<pid>/stat` contents. The
/// comm field (2) is an arbitrary process name that may itself contain
/// spaces and parentheses, so fields are counted after the *last* `)`.
fn parse_proc_start_time(stat: &str) -> Option<u64> {
    let rest = stat.rsplit_once(')')?.1;
    // After the comm field, `state` is overall field 3 → `starttime`
    // (field 22) is the 20th remaining field.
    rest.split_whitespace().nth(19)?.parse().ok()
}

/// Whether the lock at `path` with `contents` belongs to a holder that is
/// provably (or, absent `/proc`, plausibly) gone. Exposed to tests so
/// both probe paths are exercised regardless of the host platform.
fn lock_is_stale(path: &Path, contents: &str, proc_root: Option<&Path>) -> bool {
    let mut fields = contents.split_whitespace();
    let Some(pid) = fields.next().and_then(|s| s.parse::<u32>().ok()) else {
        // An unreadable holder record cannot be assessed; never break it.
        return false;
    };
    let recorded_start = fields.next().and_then(|s| s.parse::<u64>().ok());
    match proc_root {
        Some(root) => match proc_start_time_of(root, pid) {
            // No such process: the holder is dead.
            None => !root.join(pid.to_string()).exists(),
            Some(live_start) => match recorded_start {
                // Start times disagree: the PID was reused by an
                // unrelated process after the holder died.
                Some(want) => want != live_start,
                // Old single-line lock format: the PID exists, and
                // without a recorded start time reuse cannot be proven.
                None => false,
            },
        },
        // No `/proc`: fall back to lock age.
        None => std::fs::metadata(path)
            .and_then(|m| m.modified())
            .ok()
            .and_then(|t| t.elapsed().ok())
            .is_some_and(|age| age > STALE_LOCK_MAX_AGE),
    }
}

impl CacheFileLock {
    /// Acquires the lock for `cache_path` (the lock file is
    /// `<cache_path>.lock`).
    ///
    /// # Errors
    ///
    /// Returns a message naming the holder PID when the lock is already
    /// taken by a live process, or the I/O error on failure.
    pub fn acquire(cache_path: impl AsRef<Path>) -> Result<CacheFileLock, String> {
        let mut os = cache_path.as_ref().as_os_str().to_owned();
        os.push(".lock");
        let path = PathBuf::from(os);
        let proc_root = Path::new("/proc");
        let proc_root = proc_root.is_dir().then_some(proc_root);
        for attempt in 0..2 {
            match std::fs::OpenOptions::new()
                .write(true)
                .create_new(true)
                .open(&path)
            {
                Ok(mut f) => {
                    let pid = std::process::id();
                    match proc_root.and_then(|root| proc_start_time_of(root, pid)) {
                        Some(start) => {
                            let _ = writeln!(f, "{pid} {start}");
                        }
                        None => {
                            let _ = writeln!(f, "{pid}");
                        }
                    }
                    return Ok(CacheFileLock { path });
                }
                Err(e) if e.kind() == std::io::ErrorKind::AlreadyExists => {
                    let contents = std::fs::read_to_string(&path).unwrap_or_default();
                    if attempt == 0 && lock_is_stale(&path, &contents, proc_root) {
                        let _ = std::fs::remove_file(&path);
                        continue;
                    }
                    let holder = contents
                        .split_whitespace()
                        .next()
                        .and_then(|s| s.parse::<u32>().ok())
                        .map(|pid| format!("pid {pid}"))
                        .unwrap_or_else(|| "unknown pid".to_string());
                    return Err(format!(
                        "cache file is locked by another sweep ({holder}); remove {} if that \
                         process is gone",
                        path.display()
                    ));
                }
                Err(e) => return Err(format!("cannot create lock {}: {e}", path.display())),
            }
        }
        unreachable!("second attempt either acquires or errors")
    }

    /// The lock file's path.
    pub fn path(&self) -> &Path {
        &self.path
    }
}

impl Drop for CacheFileLock {
    fn drop(&mut self) {
        let _ = std::fs::remove_file(&self.path);
    }
}

/// Prefix of a journal record announcing a job that has started.
const PENDING_PREFIX: &str = "#pending ";
/// Prefix of a journal record announcing a job that finished cleanly.
const DONE_PREFIX: &str = "#done ";

/// A submitted job recovered from a journal that never logged `#done` —
/// the daemon re-runs these on restart.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PendingJob {
    /// Scenario name (the coalescing key).
    pub name: String,
    /// The scenario's TOML text as submitted.
    pub toml: String,
    /// Base directory relative `file:` workload references resolve
    /// against, when the submission carried one.
    pub base: Option<String>,
}

/// Everything recovered from a journal file: the cell results (as a
/// warm [`Cache`]) and the jobs that never finished.
#[derive(Debug)]
pub struct JournalReplay {
    /// Every journaled cell result.
    pub cache: Cache,
    /// Jobs with a `#pending` record but no matching `#done`, in
    /// first-submission order (re-submissions update in place).
    pub pending: Vec<PendingJob>,
}

/// The sweep daemon's append-only write-ahead log.
///
/// Rows reuse the v5 cache format; job lifecycle records are `#`-prefixed
/// comments, so the whole file doubles as a loadable cache file. Appends
/// are flushed per record — a SIGKILL between flushes loses at most the
/// torn final line, which [`Journal::open`] truncates away on restart.
#[derive(Debug)]
pub struct Journal {
    file: std::fs::File,
    path: PathBuf,
}

impl Journal {
    /// Opens (or creates) the journal at `path` for appending. An
    /// existing journal must carry the current [`CACHE_HEADER`]; a torn
    /// final line (no trailing newline) is truncated away.
    ///
    /// # Errors
    ///
    /// Returns a message when the file exists with a foreign header (a
    /// journal written by a different simulator version cannot be
    /// resumed) or on I/O failure.
    pub fn open(path: impl AsRef<Path>) -> Result<Journal, String> {
        let path = path.as_ref().to_path_buf();
        let mut file = std::fs::OpenOptions::new()
            .read(true)
            .create(true)
            .append(true)
            .open(&path)
            .map_err(|e| format!("cannot open journal {}: {e}", path.display()))?;
        let mut text = String::new();
        file.read_to_string(&mut text)
            .map_err(|e| format!("cannot read journal {}: {e}", path.display()))?;
        if text.is_empty() {
            file.write_all(format!("{CACHE_HEADER}\n# {COLUMNS}\n").as_bytes())
                .map_err(|e| format!("cannot initialize journal {}: {e}", path.display()))?;
        } else {
            let first = text.lines().next().unwrap_or("").trim();
            if first != CACHE_HEADER {
                return Err(format!(
                    "journal {} has header '{first}' (expected '{CACHE_HEADER}'); \
                     it cannot be resumed by this build — move it aside",
                    path.display()
                ));
            }
            if !text.ends_with('\n') {
                // Torn tail from a kill mid-append: drop the fragment.
                let keep = text.rfind('\n').map(|i| i + 1).unwrap_or(0) as u64;
                file.set_len(keep)
                    .map_err(|e| format!("cannot truncate journal {}: {e}", path.display()))?;
                file.seek(std::io::SeekFrom::End(0))
                    .map_err(|e| format!("cannot seek journal {}: {e}", path.display()))?;
            }
        }
        file.flush()
            .map_err(|e| format!("cannot flush journal {}: {e}", path.display()))?;
        Ok(Journal { file, path })
    }

    /// The journal file's path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Appends one cell result and flushes — the write-ahead step before
    /// the cell's completion event publishes.
    ///
    /// # Errors
    ///
    /// Returns the I/O error message on failure.
    pub fn append_row(
        &mut self,
        tier: Tier,
        point: &RunPoint,
        metrics: &Metrics,
    ) -> Result<(), String> {
        let mut cells = vec![tier.to_string()];
        cells.extend(point_cells(point));
        cells.extend(metric_cells(metrics));
        self.append_line(&cells.join(","))
    }

    /// Records that a job has been accepted and is about to run. Until a
    /// matching [`append_done`](Journal::append_done) lands, a restart
    /// will re-run it.
    ///
    /// # Errors
    ///
    /// Returns the I/O error message on failure.
    pub fn append_pending(
        &mut self,
        name: &str,
        toml: &str,
        base: Option<&str>,
    ) -> Result<(), String> {
        use crate::protocol::json_escape;
        let base = match base {
            Some(b) => format!(",\"base\":\"{}\"", json_escape(b)),
            None => String::new(),
        };
        self.append_line(&format!(
            "{PENDING_PREFIX}{{\"name\":\"{}\",\"toml\":\"{}\"{base}}}",
            json_escape(name),
            json_escape(toml),
        ))
    }

    /// Records that the named job finished (or was superseded) and needs
    /// no resume.
    ///
    /// # Errors
    ///
    /// Returns the I/O error message on failure.
    pub fn append_done(&mut self, name: &str) -> Result<(), String> {
        use crate::protocol::json_escape;
        self.append_line(&format!(
            "{DONE_PREFIX}{{\"name\":\"{}\"}}",
            json_escape(name)
        ))
    }

    fn append_line(&mut self, line: &str) -> Result<(), String> {
        self.file
            .write_all(format!("{line}\n").as_bytes())
            .and_then(|()| self.file.flush())
            .map_err(|e| format!("cannot append to journal {}: {e}", self.path.display()))
    }

    /// Replays the journal at `path`: recovers every completed cell into
    /// a cache and collects the jobs that never logged `#done`. A missing
    /// file replays as empty; a torn final line is ignored.
    ///
    /// # Errors
    ///
    /// Returns a message on a foreign header or a malformed (non-torn)
    /// record.
    pub fn replay(path: impl AsRef<Path>) -> Result<JournalReplay, String> {
        let path = path.as_ref();
        let mut text = match std::fs::read_to_string(path) {
            Ok(t) => t,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => String::new(),
            Err(e) => return Err(format!("cannot read journal {}: {e}", path.display())),
        };
        if !text.ends_with('\n') {
            // Torn tail: only complete lines are replayed.
            text.truncate(text.rfind('\n').map(|i| i + 1).unwrap_or(0));
        }
        let cache = Cache::new();
        let mut pending: Vec<PendingJob> = Vec::new();
        if text.is_empty() {
            return Ok(JournalReplay { cache, pending });
        }
        let mut lines = text.lines().enumerate();
        match lines.next() {
            Some((_, first)) if first.trim() == CACHE_HEADER => {}
            Some((_, first)) => {
                return Err(format!(
                    "journal {} has header '{first}' (expected '{CACHE_HEADER}')",
                    path.display()
                ))
            }
            None => return Ok(JournalReplay { cache, pending }),
        }
        for (no, line) in lines {
            let line = line.trim();
            if let Some(rec) = line.strip_prefix(PENDING_PREFIX) {
                let job = parse_job_record(rec, true)
                    .map_err(|e| format!("journal line {}: {e}", no + 1))?;
                match pending.iter_mut().find(|p| p.name == job.name) {
                    Some(slot) => *slot = job, // re-submission: latest wins
                    None => pending.push(job),
                }
            } else if let Some(rec) = line.strip_prefix(DONE_PREFIX) {
                let done = parse_job_record(rec, false)
                    .map_err(|e| format!("journal line {}: {e}", no + 1))?;
                pending.retain(|p| p.name != done.name);
            } else if line.is_empty() || line.starts_with('#') {
                continue;
            } else {
                let (tier, point, metrics) =
                    parse_row(line).map_err(|e| format!("journal line {}: {e}", no + 1))?;
                cache.insert_tier(tier, point, metrics);
            }
        }
        Ok(JournalReplay { cache, pending })
    }
}

/// Parses a `#pending`/`#done` record body. `#done` records carry only
/// the name (`with_toml` = false).
fn parse_job_record(rec: &str, with_toml: bool) -> Result<PendingJob, String> {
    use crate::protocol::{parse_object, Value};
    let map = parse_object(rec)?;
    let name = map
        .get("name")
        .and_then(Value::as_str)
        .ok_or("record missing \"name\"")?
        .to_string();
    let toml = if with_toml {
        map.get("toml")
            .and_then(Value::as_str)
            .ok_or("pending record missing \"toml\"")?
            .to_string()
    } else {
        String::new()
    };
    let base = map.get("base").and_then(Value::as_str).map(str::to_string);
    Ok(PendingJob { name, toml, base })
}

/// The point-identity cells (first 17 columns).
fn point_cells(p: &RunPoint) -> Vec<String> {
    let mut c = vec![String::new(); 17];
    c[1] = p.topology.to_string();
    c[14] = p.conditions.faults.to_string();
    c[15] = p.conditions.contention.to_string();
    c[16] = p.conditions.straggler.to_string();
    match &p.kind {
        PointKind::Collective {
            engine,
            op,
            payload_bytes,
        } => {
            c[0] = "collective".into();
            match *engine {
                EngineSpec::Ideal => c[2] = "ideal".into(),
                EngineSpec::Baseline { mem_gbps, comm_sms } => {
                    c[2] = "baseline".into();
                    c[3] = format!("{mem_gbps}");
                    c[4] = comm_sms.to_string();
                }
                EngineSpec::Ace {
                    dma_mem_gbps,
                    sram_mb,
                    fsms,
                } => {
                    c[2] = "ace".into();
                    c[3] = format!("{dma_mem_gbps}");
                    c[5] = sram_mb.to_string();
                    c[6] = fsms.to_string();
                }
            }
            c[7] = op.to_string();
            c[8] = payload_bytes.to_string();
        }
        PointKind::Training {
            config,
            workload,
            iterations,
            optimized_embedding,
        } => {
            c[0] = "training".into();
            c[9] = config.to_string();
            c[10] = workload.to_string();
            c[11] = iterations.to_string();
            c[12] = if *optimized_embedding { "1" } else { "0" }.into();
        }
        PointKind::Serving {
            config,
            workload,
            spec,
        } => {
            c[0] = "serving".into();
            c[9] = config.to_string();
            c[10] = workload.to_string();
            c[13] = spec.cache_key();
        }
    }
    c
}

/// The metric cells (last 22 columns). The attribution total is elided:
/// it equals `completion_cycles` in every execution path, and the loader
/// reconstructs it from there.
fn metric_cells(m: &Metrics) -> Vec<String> {
    let mut cells = vec![
        format!("{}", m.time_us),
        m.completion_cycles.to_string(),
        format!("{}", m.gbps_per_npu),
        m.mem_traffic_bytes.to_string(),
        m.network_bytes.to_string(),
        format!("{}", m.compute_us),
        format!("{}", m.exposed_comm_us),
        m.past_schedules.to_string(),
        format!("{}", m.serving.ttft_p50_us),
        format!("{}", m.serving.ttft_p95_us),
        format!("{}", m.serving.ttft_p99_us),
        format!("{}", m.serving.e2e_p50_us),
        format!("{}", m.serving.e2e_p95_us),
        format!("{}", m.serving.e2e_p99_us),
        format!("{}", m.serving.goodput_rps),
    ];
    cells.extend(m.attribution.buckets().iter().map(|(_, v)| v.to_string()));
    cells
}

fn parse_row(line: &str) -> Result<(Tier, RunPoint, Metrics), String> {
    let cells: Vec<&str> = line.split(',').collect();
    if cells.len() != 40 {
        return Err(format!("expected 40 cells, found {}", cells.len()));
    }
    let tier = cells[0].parse::<Tier>()?;
    let cells = &cells[1..];
    let topology = parse_topology(cells[1])?;
    let kind = match cells[0] {
        "collective" => {
            let engine = match cells[2] {
                "ideal" => EngineSpec::Ideal,
                "baseline" => EngineSpec::Baseline {
                    mem_gbps: parse_f64(cells[3], "mem_gbps")?,
                    comm_sms: parse_int(cells[4], "comm_sms")? as u32,
                },
                "ace" => EngineSpec::Ace {
                    dma_mem_gbps: parse_f64(cells[3], "mem_gbps")?,
                    sram_mb: parse_int(cells[5], "sram_mb")?,
                    fsms: parse_int(cells[6], "fsms")? as usize,
                },
                other => return Err(format!("unknown engine '{other}'")),
            };
            PointKind::Collective {
                engine,
                op: parse_op(cells[7])?,
                payload_bytes: parse_int(cells[8], "payload_bytes")?,
            }
        }
        "training" => PointKind::Training {
            config: cells[9].parse::<SystemConfig>()?,
            workload: WorkloadSel::from_cache_key(cells[10])?,
            iterations: parse_int(cells[11], "iterations")? as u32,
            optimized_embedding: match cells[12] {
                "1" => true,
                "0" => false,
                other => return Err(format!("bad optimized_embedding '{other}'")),
            },
        },
        "serving" => PointKind::Serving {
            config: cells[9].parse::<SystemConfig>()?,
            workload: WorkloadSel::from_cache_key(cells[10])?,
            spec: ace_serve::ServingSpec::from_cache_key(cells[13])?,
        },
        other => return Err(format!("unknown point kind '{other}'")),
    };
    let conditions = RunConditions {
        faults: cells[14].parse().map_err(|e| format!("faults: {e}"))?,
        contention: cells[15].parse().map_err(|e| format!("contention: {e}"))?,
        straggler: cells[16].parse().map_err(|e| format!("straggler: {e}"))?,
    };
    let completion_cycles = parse_int(cells[18], "completion_cycles")?;
    let metrics = Metrics {
        time_us: parse_f64(cells[17], "time_us")?,
        completion_cycles,
        gbps_per_npu: parse_f64(cells[19], "gbps_per_npu")?,
        mem_traffic_bytes: parse_int(cells[20], "mem_traffic_bytes")?,
        network_bytes: parse_int(cells[21], "network_bytes")?,
        compute_us: parse_f64(cells[22], "compute_us")?,
        exposed_comm_us: parse_f64(cells[23], "exposed_comm_us")?,
        past_schedules: parse_int(cells[24], "past_schedules")?,
        serving: crate::runner::ServingMetrics {
            ttft_p50_us: parse_f64(cells[25], "ttft_p50_us")?,
            ttft_p95_us: parse_f64(cells[26], "ttft_p95_us")?,
            ttft_p99_us: parse_f64(cells[27], "ttft_p99_us")?,
            e2e_p50_us: parse_f64(cells[28], "e2e_p50_us")?,
            e2e_p95_us: parse_f64(cells[29], "e2e_p95_us")?,
            e2e_p99_us: parse_f64(cells[30], "e2e_p99_us")?,
            goodput_rps: parse_f64(cells[31], "goodput_rps")?,
        },
        attribution: ace_trace::Attribution {
            total_cycles: completion_cycles,
            compute_cycles: parse_int(cells[32], "attr_compute")?,
            network_cycles: parse_int(cells[33], "attr_network")?,
            hbm_cycles: parse_int(cells[34], "attr_hbm")?,
            dma_cycles: parse_int(cells[35], "attr_dma")?,
            bus_cycles: parse_int(cells[36], "attr_bus")?,
            proc_cycles: parse_int(cells[37], "attr_proc")?,
            other_cycles: parse_int(cells[38], "attr_other")?,
        },
    };
    Ok((
        tier,
        RunPoint {
            topology,
            conditions,
            kind,
        },
        metrics,
    ))
}

fn parse_topology(s: &str) -> Result<TopologySpec, String> {
    s.parse::<TopologySpec>()
}

fn parse_f64(s: &str, what: &str) -> Result<f64, String> {
    s.parse::<f64>()
        .map_err(|_| format!("bad {what} '{s}'"))
        .and_then(|v| {
            if v.is_finite() {
                Ok(v)
            } else {
                Err(format!("non-finite {what} '{s}'"))
            }
        })
}

fn parse_int(s: &str, what: &str) -> Result<u64, String> {
    s.parse::<u64>().map_err(|_| format!("bad {what} '{s}'"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::{run_scenario, RunnerOptions, SweepRunner};
    use crate::scenario::{EngineFamily, Scenario};

    fn tiny_collective() -> Scenario {
        let mut sc = Scenario::collective("persist-test");
        sc.topologies = vec![TopologySpec::torus3(2, 1, 1).unwrap()];
        sc.engines = vec![EngineFamily::Ideal, EngineFamily::Baseline];
        sc.payload_bytes = vec![256 * 1024];
        sc.mem_gbps = vec![128.0, 450.0];
        sc.comm_sms = vec![6];
        sc
    }

    #[test]
    fn cache_round_trips_byte_exactly() {
        let runner = SweepRunner::new();
        let sc = tiny_collective();
        runner
            .run(
                &sc,
                RunnerOptions {
                    threads: 1,
                    ..Default::default()
                },
            )
            .unwrap();
        let text = cache_to_string(runner.cache());
        let reloaded = cache_from_str(&text).unwrap();
        assert_eq!(reloaded.len(), runner.cache().len());
        // Every metric (f64s included) survives the text round-trip.
        for (t, p, m) in runner.cache().entries() {
            assert_eq!(reloaded.get_tier(t, &p), Some(m), "lost {p:?}");
        }
        // Save → load → save is byte-identical (sorted rows, shortest
        // round-trip floats).
        assert_eq!(cache_to_string(&reloaded), text);
    }

    #[test]
    fn training_points_round_trip() {
        let mut sc = Scenario::training("persist-training");
        sc.topologies = vec![TopologySpec::torus3(2, 1, 1).unwrap()];
        sc.configs = vec![ace_system::SystemConfig::Ace];
        sc.workloads = vec![WorkloadSel::builtin(
            ace_workloads::BuiltinWorkload::Resnet50,
        )];
        sc.iterations = 1;
        let runner = SweepRunner::new();
        runner
            .run(
                &sc,
                RunnerOptions {
                    threads: 1,
                    ..Default::default()
                },
            )
            .unwrap();
        let text = cache_to_string(runner.cache());
        let reloaded = cache_from_str(&text).unwrap();
        for (t, p, m) in runner.cache().entries() {
            assert_eq!(reloaded.get_tier(t, &p), Some(m));
        }
    }

    #[test]
    fn serving_points_round_trip() {
        let mut sc = Scenario::serving("persist-serving");
        sc.topologies = vec![TopologySpec::torus3(2, 1, 1).unwrap()];
        sc.arrival_rates = vec![800.0];
        sc.schedules = vec![
            ace_workloads::PipeSchedule::GPipe,
            ace_workloads::PipeSchedule::OneFOneB,
        ];
        sc.microbatches = vec![2];
        sc.stages = 2;
        sc.requests = 3;
        sc.decode_tokens = 1;
        sc.token_budget = 128;
        let runner = SweepRunner::new();
        runner
            .run(
                &sc,
                RunnerOptions {
                    threads: 1,
                    ..Default::default()
                },
            )
            .unwrap();
        let text = cache_to_string(runner.cache());
        let reloaded = cache_from_str(&text).unwrap();
        for (t, p, m) in runner.cache().entries() {
            // The serving latency f64s survive via shortest round-trip
            // formatting, the spec via its cache key.
            assert_eq!(reloaded.get_tier(t, &p), Some(m));
        }
        assert_eq!(cache_to_string(&reloaded), text);
    }

    #[test]
    fn reloaded_cache_serves_every_point() {
        // The cross-process scenario: run → save → (new process) load →
        // run again; the second run simulates nothing.
        let first = SweepRunner::new();
        let sc = tiny_collective();
        let out1 = first
            .run(
                &sc,
                RunnerOptions {
                    threads: 1,
                    ..Default::default()
                },
            )
            .unwrap();
        assert!(out1.executed > 0);
        let text = cache_to_string(first.cache());

        let second = SweepRunner::with_cache(cache_from_str(&text).unwrap());
        let out2 = second
            .run(
                &sc,
                RunnerOptions {
                    threads: 1,
                    ..Default::default()
                },
            )
            .unwrap();
        assert_eq!(out2.executed, 0, "warm cache must serve every point");
        assert!(out2.results.iter().all(|r| r.cache_hit));
        for (a, b) in out1.results.iter().zip(&out2.results) {
            assert_eq!(a.metrics, b.metrics);
        }
    }

    #[test]
    fn cross_topology_cache_round_trip() {
        // Cache keys must incorporate the topology axis: a 16-node
        // switch, a 16-node torus and a 16-node hierarchical fabric are
        // distinct points even with every other coordinate equal, and a
        // `switch` row must never be served for a `torus` query.
        let mut sc = Scenario::collective("cross-topology");
        sc.topologies = vec![
            TopologySpec::torus3(4, 2, 2).unwrap(),
            "4x4".parse().unwrap(),
            "switch:16".parse().unwrap(),
            "switch:16@100".parse().unwrap(),
            "hier:4x4".parse().unwrap(),
        ];
        sc.engines = vec![EngineFamily::Ideal];
        sc.payload_bytes = vec![64 * 1024];
        let runner = SweepRunner::new();
        let out = runner
            .run(
                &sc,
                RunnerOptions {
                    threads: 1,
                    ..Default::default()
                },
            )
            .unwrap();
        // Five same-size fabrics, five distinct simulations.
        assert_eq!(out.executed, 5);
        let times: std::collections::HashSet<u64> = out
            .results
            .iter()
            .map(|r| r.metrics.completion_cycles)
            .collect();
        assert!(times.len() >= 4, "topologies must simulate differently");

        // Round-trip through the text format preserves every key exactly.
        let text = cache_to_string(runner.cache());
        for spelling in ["4x2x2", "4x4", "switch:16", "switch:16@100", "hier:4x4"] {
            assert!(text.contains(spelling), "cache file lost '{spelling}'");
        }
        let reloaded = cache_from_str(&text).unwrap();
        assert_eq!(reloaded.len(), runner.cache().len());
        for (t, p, m) in runner.cache().entries() {
            assert_eq!(reloaded.get_tier(t, &p), Some(m), "lost {p:?}");
        }
        // A switch point never hits a torus entry: querying the reloaded
        // cache with the same coordinates but a different topology misses.
        let torus_point = out.results[0].point.clone();
        let mut cross = torus_point.clone();
        cross.topology = "switch:16".parse().unwrap();
        assert_ne!(reloaded.get(&torus_point), None);
        assert_ne!(
            reloaded.get(&torus_point),
            reloaded.get(&cross),
            "switch and torus rows must not alias"
        );
        // And a warm rerun of the full grid simulates nothing.
        let warm = SweepRunner::with_cache(reloaded);
        let again = warm
            .run(
                &sc,
                RunnerOptions {
                    threads: 1,
                    ..Default::default()
                },
            )
            .unwrap();
        assert_eq!(again.executed, 0);
    }

    #[test]
    fn version_and_corruption_are_rejected() {
        assert!(cache_from_str("").is_err());
        assert!(cache_from_str("# ace-sweep-cache v999\n").is_err());
        // The v1 (pre-fidelity) format is a different schema: rejected.
        assert!(cache_from_str("# ace-sweep-cache v1 sim-0.1.0\n").is_err());
        // So is v2 (pre-attribution): fewer metric cells per row.
        assert!(cache_from_str("# ace-sweep-cache v2 sim-0.1.0\n").is_err());
        // And v3 (pre-serving): no serving spec column, 29-cell rows. The
        // header alone must reject it even before any row is seen.
        let v3_header = concat!("# ace-sweep-cache v3 sim-", env!("CARGO_PKG_VERSION"));
        let e = cache_from_str(&format!("{v3_header}\n")).unwrap_err();
        assert!(e.contains("v3"), "v3 rejection must name the header: {e}");
        // And v4 (pre-fault-conditions): no faults/contention/straggler
        // identity cells — a degraded row could alias a pristine one.
        let v4_header = concat!("# ace-sweep-cache v4 sim-", env!("CARGO_PKG_VERSION"));
        let e = cache_from_str(&format!("{v4_header}\n")).unwrap_err();
        assert!(e.contains("v4"), "v4 rejection must name the header: {e}");
        // A v4-shaped row under a forged v5 header still fails the cell
        // count — stale narrow rows can never parse as v5.
        let forged = format!(
            "{CACHE_HEADER}\nexact,collective,2x1x1,ideal,,,,,all-reduce,1024,,,,,\
             1,1,0,0,0,0,0,0,0,1,0,0,0,0,0,0,0,0,0,0,0,0\n"
        );
        let e = cache_from_str(&forged).unwrap_err();
        assert!(e.contains("expected 40 cells"), "{e}");
        // A cache written by a different simulator version must not be
        // served: results are only reproducible within one build.
        assert!(cache_from_str("# ace-sweep-cache v1 sim-0.0.0\n").is_err());
        let bad_row = format!("{CACHE_HEADER}\nnot-a-row\n");
        assert!(cache_from_str(&bad_row).is_err());
        let short_row = format!("{CACHE_HEADER}\nexact,collective,2x1x1,ideal\n");
        assert!(cache_from_str(&short_row).is_err());
        // Valid header + comments + blank lines parse as empty.
        let empty = format!("{CACHE_HEADER}\n# comment\n\n");
        assert_eq!(cache_from_str(&empty).unwrap().len(), 0);
    }

    #[test]
    fn file_round_trip_via_paths() {
        let dir = std::env::temp_dir().join("ace-sweep-persist-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("cache.csv");
        let _ = std::fs::remove_file(&path);
        // Missing file loads as empty.
        assert!(load_cache(&path).unwrap().is_empty());
        let runner = SweepRunner::new();
        runner
            .run(
                &tiny_collective(),
                RunnerOptions {
                    threads: 1,
                    ..Default::default()
                },
            )
            .unwrap();
        save_cache(runner.cache(), &path).unwrap();
        let loaded = load_cache(&path).unwrap();
        assert_eq!(loaded.len(), runner.cache().len());
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn saves_are_atomic_and_leave_no_temp_files() {
        let dir = std::env::temp_dir().join("ace-sweep-atomic-save-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("cache.csv");
        let runner = SweepRunner::new();
        runner
            .run(
                &tiny_collective(),
                RunnerOptions {
                    threads: 1,
                    ..Default::default()
                },
            )
            .unwrap();
        save_cache(runner.cache(), &path).unwrap();
        save_cache(runner.cache(), &path).unwrap(); // overwrite in place
        assert_eq!(load_cache(&path).unwrap().len(), runner.cache().len());
        let leftovers: Vec<_> = std::fs::read_dir(&dir)
            .unwrap()
            .filter_map(|e| e.ok())
            .filter(|e| e.file_name().to_string_lossy().contains(".tmp."))
            .collect();
        assert!(leftovers.is_empty(), "temp files leaked: {leftovers:?}");
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn cache_lock_excludes_and_names_the_holder() {
        let dir = std::env::temp_dir().join("ace-sweep-lock-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("cache.csv");
        let lock = CacheFileLock::acquire(&path).unwrap();
        assert!(lock.path().exists());
        let err = CacheFileLock::acquire(&path).unwrap_err();
        assert!(
            err.contains(&format!("pid {}", std::process::id())),
            "error must name the holder: {err}"
        );
        drop(lock);
        // Released on drop: a second acquisition succeeds.
        let again = CacheFileLock::acquire(&path).unwrap();
        drop(again);
        assert!(!dir.join("cache.csv.lock").exists());
    }

    #[test]
    fn stale_locks_from_dead_processes_are_broken() {
        if !std::path::Path::new("/proc").is_dir() {
            return; // liveness probe needs procfs
        }
        let dir = std::env::temp_dir().join("ace-sweep-stale-lock-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("cache.csv");
        // Forge a lock held by a PID that cannot exist.
        std::fs::write(dir.join("cache.csv.lock"), "4194304999\n").unwrap();
        let lock = CacheFileLock::acquire(&path).expect("stale lock must be broken");
        drop(lock);
    }

    #[test]
    fn pid_reuse_is_detected_via_start_time() {
        if !std::path::Path::new("/proc").is_dir() {
            return; // liveness probe needs procfs
        }
        let dir = std::env::temp_dir().join("ace-sweep-pid-reuse-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("cache.csv");
        // Forge a lock from a "previous" holder whose PID has since been
        // handed to this very process: the PID is alive but the recorded
        // start time cannot match, so the lock must be treated as stale.
        std::fs::write(
            dir.join("cache.csv.lock"),
            format!("{} 1\n", std::process::id()),
        )
        .unwrap();
        let lock = CacheFileLock::acquire(&path).expect("reused-PID lock must be broken");
        drop(lock);
        // Whereas the same live PID with *no* recorded start time (the
        // old lock format) cannot be proven reused, so it is respected.
        std::fs::write(
            dir.join("cache.csv.lock"),
            format!("{}\n", std::process::id()),
        )
        .unwrap();
        let err = CacheFileLock::acquire(&path).unwrap_err();
        assert!(
            err.contains(&format!("pid {}", std::process::id())),
            "{err}"
        );
        std::fs::remove_file(dir.join("cache.csv.lock")).unwrap();
    }

    #[test]
    fn lock_age_fallback_breaks_only_old_locks() {
        // The portable path (no /proc): a fresh lock is respected, one
        // older than STALE_LOCK_MAX_AGE is presumed abandoned.
        let dir = std::env::temp_dir().join("ace-sweep-lock-age-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("cache.csv.lock");
        std::fs::write(&path, "12345 99\n").unwrap();
        assert!(
            !lock_is_stale(&path, "12345 99", None),
            "a fresh lock must be respected without a liveness probe"
        );
        let old = std::time::SystemTime::now() - 2 * STALE_LOCK_MAX_AGE;
        let f = std::fs::OpenOptions::new().write(true).open(&path).unwrap();
        f.set_times(std::fs::FileTimes::new().set_modified(old))
            .unwrap();
        assert!(
            lock_is_stale(&path, "12345 99", None),
            "an ancient unprobeable lock must be presumed abandoned"
        );
        // Garbage holder records are never broken, regardless of age.
        assert!(!lock_is_stale(&path, "not-a-pid", None));
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn proc_stat_start_time_parses_hostile_comm_names() {
        // comm (field 2) is attacker-ish: it may contain spaces and even
        // `)` — fields must be counted after the LAST closing paren.
        let stat = "123 (a b) c) S 1 2 3 4 5 6 7 8 9 10 11 12 13 14 15 16 17 18 42 99";
        assert_eq!(parse_proc_start_time(stat), Some(42));
        assert_eq!(parse_proc_start_time("garbage"), None);
        assert_eq!(parse_proc_start_time("1 (short) S 0"), None);
        // A real self-probe agrees with the recorded identity.
        if std::path::Path::new("/proc").is_dir() {
            let mine = proc_start_time_of(std::path::Path::new("/proc"), std::process::id());
            assert!(mine.is_some(), "self start time must be readable");
        }
    }

    #[test]
    fn journal_round_trips_rows_and_job_records() {
        let dir = std::env::temp_dir().join("ace-sweep-journal-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("wal.journal");
        let _ = std::fs::remove_file(&path);

        let runner = SweepRunner::new();
        let sc = tiny_collective();
        runner
            .run(
                &sc,
                RunnerOptions {
                    threads: 1,
                    ..Default::default()
                },
            )
            .unwrap();

        let mut journal = Journal::open(&path).unwrap();
        journal
            .append_pending("job-a", "name = \"job-a\"\n", None)
            .unwrap();
        for (t, p, m) in runner.cache().entries() {
            journal.append_row(t, &p, &m).unwrap();
        }
        journal.append_done("job-a").unwrap();
        journal
            .append_pending("job-b", "name = \"job-b\"\n", Some("/tmp/x"))
            .unwrap();
        drop(journal);

        let replay = Journal::replay(&path).unwrap();
        assert_eq!(replay.cache.len(), runner.cache().len());
        for (t, p, m) in runner.cache().entries() {
            assert_eq!(replay.cache.get_tier(t, &p), Some(m));
        }
        // job-a completed; job-b is pending with its base directory.
        assert_eq!(replay.pending.len(), 1);
        assert_eq!(replay.pending[0].name, "job-b");
        assert_eq!(replay.pending[0].base.as_deref(), Some("/tmp/x"));

        // The journal is a valid cache file as-is.
        let as_cache = load_cache(&path).unwrap();
        assert_eq!(as_cache.len(), runner.cache().len());
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn journal_truncates_torn_tails_and_resumes() {
        let dir = std::env::temp_dir().join("ace-sweep-journal-torn-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("wal.journal");
        let _ = std::fs::remove_file(&path);

        let runner = SweepRunner::new();
        runner
            .run(
                &tiny_collective(),
                RunnerOptions {
                    threads: 1,
                    ..Default::default()
                },
            )
            .unwrap();
        let entries = runner.cache().entries();
        let mut journal = Journal::open(&path).unwrap();
        for (t, p, m) in &entries {
            journal.append_row(*t, p, m).unwrap();
        }
        drop(journal);

        // Simulate a SIGKILL mid-append: chop the file mid-row.
        let text = std::fs::read_to_string(&path).unwrap();
        std::fs::write(&path, &text[..text.len() - 7]).unwrap();

        // Replay drops only the torn row.
        let replay = Journal::replay(&path).unwrap();
        assert_eq!(replay.cache.len(), entries.len() - 1);

        // Re-opening truncates the fragment so appends stay well-formed.
        let mut journal = Journal::open(&path).unwrap();
        let (t, p, m) = &entries[entries.len() - 1];
        journal.append_row(*t, p, m).unwrap();
        drop(journal);
        let text = std::fs::read_to_string(&path).unwrap();
        assert!(text.ends_with('\n'));
        let recovered = Journal::replay(&path).unwrap();
        assert!(recovered.cache.len() >= entries.len() - 1);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn journal_rejects_foreign_headers() {
        let dir = std::env::temp_dir().join("ace-sweep-journal-header-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("wal.journal");
        std::fs::write(&path, "# ace-sweep-cache v1 sim-0.0.0\n").unwrap();
        assert!(Journal::open(&path).is_err());
        assert!(Journal::replay(&path).is_err());
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn warm_outcome_matches_cold_except_cache_flags() {
        let sc = tiny_collective();
        let cold = run_scenario(
            &sc,
            RunnerOptions {
                threads: 1,
                ..Default::default()
            },
        )
        .unwrap();
        let runner = SweepRunner::new();
        let _ = runner
            .run(
                &sc,
                RunnerOptions {
                    threads: 1,
                    ..Default::default()
                },
            )
            .unwrap();
        let text = cache_to_string(runner.cache());
        let warm = SweepRunner::with_cache(cache_from_str(&text).unwrap())
            .run(
                &sc,
                RunnerOptions {
                    threads: 1,
                    ..Default::default()
                },
            )
            .unwrap();
        assert_eq!(cold.results.len(), warm.results.len());
        for (c, w) in cold.results.iter().zip(&warm.results) {
            assert_eq!(c.point, w.point);
            assert_eq!(c.metrics, w.metrics);
            assert_eq!(c.speedup_vs_baseline, w.speedup_vs_baseline);
            assert!(w.cache_hit, "warm rows must be served from the cache");
        }
    }
}
