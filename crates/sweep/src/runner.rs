//! Parallel sweep execution.
//!
//! [`SweepRunner::run`] expands a scenario, dedupes its grid against a
//! [`Cache`] keyed on [`RunPoint`], executes the remaining unique points
//! on a pool of scoped worker threads (work-stealing over a shared atomic
//! index), and assembles results **in grid order** — so the output is
//! byte-identical whether the sweep ran on one thread or sixteen.

use std::collections::{HashMap, HashSet};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

use ace_system::{run_single_collective, SystemBuilder};

use crate::grid::{self, PointKind, RunPoint};
use crate::scenario::{BaselineSpec, Scenario, SweepMode};

/// Simulation metrics of one run point. Collective points report zero
/// compute/exposed time; training points report the full breakdown.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Metrics {
    /// End-to-end simulated time in microseconds — the primary metric
    /// speedups are computed from (lower is better).
    pub time_us: f64,
    /// End-to-end simulated time in cycles.
    pub completion_cycles: u64,
    /// Achieved network bandwidth per NPU, GB/s.
    pub gbps_per_npu: f64,
    /// Per-node HBM bytes consumed by communication.
    pub mem_traffic_bytes: u64,
    /// Total bytes the fabric carried.
    pub network_bytes: u64,
    /// Training only: total compute time in microseconds.
    pub compute_us: f64,
    /// Training only: exposed (non-overlapped) communication, microseconds.
    pub exposed_comm_us: f64,
    /// Events the simulator scheduled in the past (clamped by the event
    /// queue) — always zero in a correct run; surfaced so release-mode
    /// sweeps can flag the invariant violation.
    pub past_schedules: u64,
}

/// One grid row with its metrics.
#[derive(Debug, Clone)]
pub struct RunResult {
    /// The grid cell.
    pub point: RunPoint,
    /// Simulated metrics.
    pub metrics: Metrics,
    /// Whether this row reused a result computed earlier — either a
    /// duplicate cell in the same grid or a prior run through the same
    /// [`Cache`].
    pub cache_hit: bool,
    /// `baseline_time / this_time` when the scenario names a baseline.
    pub speedup_vs_baseline: Option<f64>,
}

/// The outcome of one sweep.
#[derive(Debug, Clone)]
pub struct SweepOutcome {
    /// Scenario name.
    pub scenario: String,
    /// Sweep mode.
    pub mode: SweepMode,
    /// One result per grid cell, in deterministic grid order.
    pub results: Vec<RunResult>,
    /// Unique points actually simulated during this run.
    pub executed: usize,
    /// Grid rows served from the cache (duplicates + prior runs).
    pub cache_hits: usize,
}

impl SweepOutcome {
    /// All collective-mode rows running exactly `engine`, in grid order.
    pub fn collective_results(
        &self,
        engine: crate::scenario::EngineSpec,
    ) -> impl Iterator<Item = &RunResult> {
        self.results.iter().filter(
            move |r| matches!(r.point.kind, PointKind::Collective { engine: e, .. } if e == engine),
        )
    }

    /// The first collective-mode row on `topology` running exactly
    /// `engine` — the pivot lookup figure binaries use to re-shape a
    /// sweep into a table.
    pub fn find_collective(
        &self,
        topology: impl Into<ace_net::TopologySpec>,
        engine: crate::scenario::EngineSpec,
    ) -> Option<&RunResult> {
        let spec = topology.into();
        self.collective_results(engine)
            .find(move |r| r.point.topology == spec)
    }
}

/// Result cache keyed on [`RunPoint`]. Identical points simulate
/// identically (the simulator is deterministic), so a sweep never runs
/// the same point twice — within a grid or across grids sharing a
/// runner.
#[derive(Debug, Default)]
pub struct Cache {
    map: Mutex<HashMap<RunPoint, Metrics>>,
}

impl Cache {
    /// An empty cache.
    pub fn new() -> Cache {
        Cache::default()
    }

    /// Cached metrics for `point`, if present.
    pub fn get(&self, point: &RunPoint) -> Option<Metrics> {
        self.map.lock().expect("cache lock").get(point).copied()
    }

    /// Whether `point` is cached.
    pub fn contains(&self, point: &RunPoint) -> bool {
        self.map.lock().expect("cache lock").contains_key(point)
    }

    /// Stores metrics for `point`.
    pub fn insert(&self, point: RunPoint, metrics: Metrics) {
        self.map.lock().expect("cache lock").insert(point, metrics);
    }

    /// Number of cached points.
    pub fn len(&self) -> usize {
        self.map.lock().expect("cache lock").len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Snapshot of every cached `(point, metrics)` pair, in unspecified
    /// order. The persistence layer sorts before writing.
    pub fn entries(&self) -> Vec<(RunPoint, Metrics)> {
        self.map
            .lock()
            .expect("cache lock")
            .iter()
            .map(|(p, m)| (p.clone(), *m))
            .collect()
    }
}

/// Execution options.
#[derive(Debug, Clone, Copy, Default)]
pub struct RunnerOptions {
    /// Worker threads; `0` uses the machine's available parallelism.
    pub threads: usize,
}

/// A sweep executor owning a [`Cache`] that persists across runs.
#[derive(Debug, Default)]
pub struct SweepRunner {
    cache: Cache,
}

impl SweepRunner {
    /// A runner with an empty cache.
    pub fn new() -> SweepRunner {
        SweepRunner::default()
    }

    /// A runner seeded with a pre-populated cache — e.g. one loaded from
    /// a [`--cache-file`](crate::persist) of an earlier process, so
    /// repeated sweeps across processes reuse results.
    pub fn with_cache(cache: Cache) -> SweepRunner {
        SweepRunner { cache }
    }

    /// The runner's cache.
    pub fn cache(&self) -> &Cache {
        &self.cache
    }

    /// Runs `scenario` and returns results in deterministic grid order.
    ///
    /// # Errors
    ///
    /// Returns the validation message if the scenario is inconsistent.
    pub fn run(&self, scenario: &Scenario, opts: RunnerOptions) -> Result<SweepOutcome, String> {
        scenario.validate()?;
        let points = grid::expand(scenario);
        let baseline_points = baseline_points(scenario);

        // Work list: every unique point not already cached, in first-seen
        // order (grid first, then any baseline points outside the grid).
        let mut queued: HashSet<RunPoint> = HashSet::new();
        let mut work: Vec<RunPoint> = Vec::new();
        for p in points.iter().chain(baseline_points.iter()) {
            if !self.cache.contains(p) && queued.insert(p.clone()) {
                work.push(p.clone());
            }
        }

        self.execute_parallel(&work, opts);

        // Assemble rows in grid order; flag rows that reused a result.
        let mut seen: HashSet<RunPoint> = HashSet::new();
        let mut cache_hits = 0usize;
        let mut results: Vec<RunResult> = points
            .into_iter()
            .map(|p| {
                let metrics = self.cache.get(&p).expect("every grid point was executed");
                let fresh_here = queued.contains(&p) && seen.insert(p.clone());
                let cache_hit = !fresh_here;
                if cache_hit {
                    cache_hits += 1;
                }
                RunResult {
                    point: p,
                    metrics,
                    cache_hit,
                    speedup_vs_baseline: None,
                }
            })
            .collect();

        if scenario.baseline.is_some() {
            for r in &mut results {
                let bp = baseline_point_for(scenario, &r.point);
                let base = self.cache.get(&bp).expect("baseline point was executed");
                if r.metrics.time_us > 0.0 {
                    r.speedup_vs_baseline = Some(base.time_us / r.metrics.time_us);
                }
            }
        }

        Ok(SweepOutcome {
            scenario: scenario.name.clone(),
            mode: scenario.mode,
            results,
            executed: work.len(),
            cache_hits,
        })
    }

    /// Runs `work` on a scoped thread pool, storing metrics in the cache.
    fn execute_parallel(&self, work: &[RunPoint], opts: RunnerOptions) {
        if work.is_empty() {
            return;
        }
        let threads = if opts.threads == 0 {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        } else {
            opts.threads
        }
        .min(work.len())
        .max(1);

        if threads == 1 {
            for p in work {
                self.cache.insert(p.clone(), execute(p));
            }
            return;
        }

        let next = AtomicUsize::new(0);
        let slots: Vec<Mutex<Option<Metrics>>> = work.iter().map(|_| Mutex::new(None)).collect();
        std::thread::scope(|s| {
            for _ in 0..threads {
                s.spawn(|| loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= work.len() {
                        break;
                    }
                    let m = execute(&work[i]);
                    *slots[i].lock().expect("slot lock") = Some(m);
                });
            }
        });
        for (p, slot) in work.iter().zip(slots) {
            let m = slot
                .into_inner()
                .expect("slot lock")
                .expect("worker filled slot");
            self.cache.insert(p.clone(), m);
        }
    }
}

/// Convenience: run a scenario once with a fresh cache.
pub fn run_scenario(scenario: &Scenario, opts: RunnerOptions) -> Result<SweepOutcome, String> {
    SweepRunner::new().run(scenario, opts)
}

/// Simulates one point. Pure and deterministic: the same point always
/// produces the same metrics.
pub fn execute(point: &RunPoint) -> Metrics {
    match &point.kind {
        PointKind::Collective {
            engine,
            op,
            payload_bytes,
        } => {
            let r =
                run_single_collective(point.topology, engine.to_engine_kind(), *op, *payload_bytes);
            let freq = ace_simcore::npu_frequency();
            Metrics {
                time_us: r.completion.cycles() as f64 / freq.hz() * 1e6,
                completion_cycles: r.completion.cycles(),
                gbps_per_npu: r.achieved_gbps_per_npu,
                mem_traffic_bytes: r.mem_traffic_bytes,
                network_bytes: r.network_bytes,
                compute_us: 0.0,
                exposed_comm_us: 0.0,
                past_schedules: r.past_schedules,
            }
        }
        PointKind::Training {
            config,
            workload,
            iterations,
            optimized_embedding,
        } => {
            let spec = point.topology;
            let report = SystemBuilder::new()
                .topology_spec(spec)
                .config(*config)
                .workload(workload.instantiate(spec.nodes()))
                .iterations(*iterations)
                .optimized_embedding(*optimized_embedding)
                .build()
                .expect("expanded point is buildable")
                .run();
            Metrics {
                time_us: report.total_time_us(),
                completion_cycles: report.total_cycles(),
                gbps_per_npu: report.effective_network_gbps_per_npu(),
                mem_traffic_bytes: report.comm_mem_traffic_bytes(),
                network_bytes: report.network_bytes(),
                compute_us: report.total_compute_us(),
                exposed_comm_us: report.exposed_comm_us(),
                past_schedules: report.past_schedules(),
            }
        }
    }
}

/// The baseline point a grid row is compared against: the row's
/// coordinates with the engine/config swapped for the scenario baseline.
fn baseline_point_for(scenario: &Scenario, point: &RunPoint) -> RunPoint {
    match (scenario.baseline, &point.kind) {
        (
            Some(BaselineSpec::Engine(spec)),
            PointKind::Collective {
                op, payload_bytes, ..
            },
        ) => RunPoint {
            topology: point.topology,
            kind: PointKind::Collective {
                engine: spec,
                op: *op,
                payload_bytes: *payload_bytes,
            },
        },
        (
            Some(BaselineSpec::Config(cfg)),
            PointKind::Training {
                workload,
                iterations,
                optimized_embedding,
                ..
            },
        ) => RunPoint {
            topology: point.topology,
            kind: PointKind::Training {
                config: cfg,
                workload: workload.clone(),
                iterations: *iterations,
                optimized_embedding: *optimized_embedding,
            },
        },
        _ => point.clone(),
    }
}

/// All baseline points a scenario needs (one per cross-product of the
/// non-config axes); empty when no baseline is named.
fn baseline_points(scenario: &Scenario) -> Vec<RunPoint> {
    let Some(baseline) = scenario.baseline else {
        return Vec::new();
    };
    let mut out = Vec::new();
    match (baseline, scenario.mode) {
        (BaselineSpec::Engine(spec), SweepMode::Collective) => {
            for &topology in &scenario.topologies {
                for &op in &scenario.ops {
                    for &payload_bytes in &scenario.payload_bytes {
                        out.push(RunPoint {
                            topology,
                            kind: PointKind::Collective {
                                engine: spec,
                                op,
                                payload_bytes,
                            },
                        });
                    }
                }
            }
        }
        (BaselineSpec::Config(cfg), SweepMode::Training) => {
            for &topology in &scenario.topologies {
                for workload in &scenario.workloads {
                    out.push(RunPoint {
                        topology,
                        kind: PointKind::Training {
                            config: cfg,
                            workload: workload.clone(),
                            iterations: scenario.iterations,
                            optimized_embedding: scenario.optimized_embedding,
                        },
                    });
                }
            }
        }
        // validate() rejects mismatched baseline kinds.
        _ => {}
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::{EngineFamily, EngineSpec};
    use ace_net::TopologySpec;

    /// A scenario small enough to simulate quickly in tests.
    fn tiny() -> Scenario {
        let mut sc = Scenario::collective("tiny");
        sc.topologies = vec![TopologySpec::torus3(2, 1, 1).unwrap()];
        sc.engines = vec![EngineFamily::Ideal, EngineFamily::Baseline];
        sc.payload_bytes = vec![256 * 1024];
        sc.mem_gbps = vec![128.0, 450.0];
        sc.comm_sms = vec![6];
        sc
    }

    #[test]
    fn duplicates_collapse_into_cache_hits() {
        let sc = tiny();
        let out = run_scenario(&sc, RunnerOptions { threads: 1 }).unwrap();
        // Grid: 2 engines x 2 mem = 4 rows; ideal's two cells are one
        // unique point, so 3 unique simulations and 1 cache hit.
        assert_eq!(out.results.len(), 4);
        assert_eq!(out.executed, 3);
        assert_eq!(out.cache_hits, 1);
        assert!(!out.results[0].cache_hit);
        assert!(out.results[1].cache_hit);
        assert_eq!(out.results[0].metrics, out.results[1].metrics);
    }

    #[test]
    fn second_run_is_fully_cached() {
        let sc = tiny();
        let runner = SweepRunner::new();
        let first = runner.run(&sc, RunnerOptions { threads: 1 }).unwrap();
        assert_eq!(first.executed, 3);
        let second = runner.run(&sc, RunnerOptions { threads: 1 }).unwrap();
        assert_eq!(second.executed, 0);
        assert_eq!(second.cache_hits, second.results.len());
        for (a, b) in first.results.iter().zip(&second.results) {
            assert_eq!(a.metrics, b.metrics);
        }
    }

    #[test]
    fn baseline_speedups_are_attached() {
        let mut sc = tiny();
        sc.baseline = Some(BaselineSpec::Engine(EngineSpec::Ideal));
        let out = run_scenario(&sc, RunnerOptions { threads: 1 }).unwrap();
        for r in &out.results {
            let s = r.speedup_vs_baseline.expect("speedup present");
            assert!(s > 0.0);
            if let PointKind::Collective {
                engine: EngineSpec::Ideal,
                ..
            } = r.point.kind
            {
                assert!((s - 1.0).abs() < 1e-12, "ideal vs itself must be 1.0");
            } else {
                // The ideal endpoint is an upper bound (modulo pacing noise).
                assert!(s <= 1.05, "baseline should not beat ideal: {s}");
            }
        }
    }

    #[test]
    fn baseline_outside_grid_is_executed() {
        let mut sc = tiny();
        // Baseline engine not in the grid: ACE.
        sc.baseline = Some(BaselineSpec::Engine(EngineSpec::Ace {
            dma_mem_gbps: 128.0,
            sram_mb: 4,
            fsms: 16,
        }));
        let out = run_scenario(&sc, RunnerOptions { threads: 1 }).unwrap();
        // 3 unique grid points + 1 baseline point.
        assert_eq!(out.executed, 4);
        assert!(out.results.iter().all(|r| r.speedup_vs_baseline.is_some()));
    }

    #[test]
    fn parallel_matches_serial() {
        let sc = tiny();
        let serial = run_scenario(&sc, RunnerOptions { threads: 1 }).unwrap();
        let parallel = run_scenario(&sc, RunnerOptions { threads: 4 }).unwrap();
        assert_eq!(serial.results.len(), parallel.results.len());
        for (a, b) in serial.results.iter().zip(&parallel.results) {
            assert_eq!(a.point, b.point);
            assert_eq!(a.metrics, b.metrics);
            assert_eq!(a.cache_hit, b.cache_hit);
        }
    }

    #[test]
    fn training_points_execute() {
        let mut sc = Scenario::training("t");
        sc.topologies = vec![TopologySpec::torus3(2, 1, 1).unwrap()];
        sc.configs = vec![ace_system::SystemConfig::Ace];
        sc.iterations = 1;
        let out = run_scenario(&sc, RunnerOptions { threads: 1 }).unwrap();
        assert_eq!(out.results.len(), 1);
        let m = out.results[0].metrics;
        assert!(m.time_us > 0.0);
        assert!(m.compute_us > 0.0);
    }
}
