//! Parallel sweep execution.
//!
//! [`SweepRunner::run`] expands a scenario, dedupes its grid against a
//! [`Cache`] keyed on `(tier, point)`, executes the remaining unique
//! points on a pool of scoped worker threads (work-stealing over a shared
//! atomic index), and assembles results **in grid order** — so the output
//! is byte-identical whether the sweep ran on one thread or sixteen.
//!
//! The scenario's [`Fidelity`] picks the execution tier: `exact` runs the
//! event-driven executor, `analytic` the closed-form α–β estimator, and
//! `hybrid` triages the whole grid analytically before re-simulating only
//! the Pareto frontier + top-K % cells exactly (see [`crate::fidelity`]).

use std::collections::{HashMap, HashSet};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

use ace_system::{
    analytic_collective_run, analytic_training_run, run_single_collective, SystemBuilder,
};
use ace_trace::Attribution;

use crate::fidelity::{select_exact_cells, Fidelity, Tier};
use crate::grid::{self, PointKind, RunPoint};
use crate::scenario::{BaselineSpec, Scenario, SweepMode};

/// Simulation metrics of one run point. Collective points report zero
/// compute/exposed time; training points report the full breakdown.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Metrics {
    /// End-to-end simulated time in microseconds — the primary metric
    /// speedups are computed from (lower is better).
    pub time_us: f64,
    /// End-to-end simulated time in cycles.
    pub completion_cycles: u64,
    /// Achieved network bandwidth per NPU, GB/s.
    pub gbps_per_npu: f64,
    /// Per-node HBM bytes consumed by communication.
    pub mem_traffic_bytes: u64,
    /// Total bytes the fabric carried.
    pub network_bytes: u64,
    /// Training only: total compute time in microseconds.
    pub compute_us: f64,
    /// Training only: exposed (non-overlapped) communication, microseconds.
    pub exposed_comm_us: f64,
    /// Events the simulator scheduled in the past (clamped by the event
    /// queue) — always zero in a correct run; surfaced so release-mode
    /// sweeps can flag the invariant violation. Always zero for analytic
    /// rows (there is no event queue to violate).
    pub past_schedules: u64,
    /// Bottleneck attribution: `completion_cycles` decomposed into
    /// compute / per-pipe-bound / other buckets that sum exactly to the
    /// total. Analytic rows charge their whole communication share to the
    /// network bucket (the α–β model has no per-pipe decomposition).
    pub attribution: Attribution,
}

/// One grid row with its metrics.
#[derive(Debug, Clone)]
pub struct RunResult {
    /// The grid cell.
    pub point: RunPoint,
    /// Simulated (or estimated) metrics.
    pub metrics: Metrics,
    /// The tier that produced `metrics`: event-driven simulation or the
    /// α–β estimator.
    pub fidelity: Tier,
    /// Whether this row reused a result computed earlier — either a
    /// duplicate cell in the same grid or a prior run through the same
    /// [`Cache`].
    pub cache_hit: bool,
    /// `baseline_time / this_time` when the scenario names a baseline
    /// (always compared within the row's own tier).
    pub speedup_vs_baseline: Option<f64>,
}

/// The outcome of one sweep.
#[derive(Debug, Clone)]
pub struct SweepOutcome {
    /// Scenario name.
    pub scenario: String,
    /// Sweep mode.
    pub mode: SweepMode,
    /// The fidelity the sweep ran at.
    pub fidelity: Fidelity,
    /// One result per grid cell, in deterministic grid order.
    pub results: Vec<RunResult>,
    /// Unique points run through the event-driven executor this run.
    pub executed: usize,
    /// Unique points estimated by the α–β model this run.
    pub analytic_executed: usize,
    /// Grid rows served from the cache (duplicates + prior runs).
    pub cache_hits: usize,
}

impl SweepOutcome {
    /// All collective-mode rows running exactly `engine`, in grid order.
    pub fn collective_results(
        &self,
        engine: crate::scenario::EngineSpec,
    ) -> impl Iterator<Item = &RunResult> {
        self.results.iter().filter(
            move |r| matches!(r.point.kind, PointKind::Collective { engine: e, .. } if e == engine),
        )
    }

    /// The first collective-mode row on `topology` running exactly
    /// `engine` — the pivot lookup figure binaries use to re-shape a
    /// sweep into a table.
    pub fn find_collective(
        &self,
        topology: impl Into<ace_net::TopologySpec>,
        engine: crate::scenario::EngineSpec,
    ) -> Option<&RunResult> {
        let spec = topology.into();
        self.collective_results(engine)
            .find(move |r| r.point.topology == spec)
    }

    /// Rows produced by the exact tier (hybrid's re-simulated cells).
    pub fn exact_rows(&self) -> usize {
        self.results
            .iter()
            .filter(|r| r.fidelity == Tier::Exact)
            .count()
    }

    /// Rows carrying α–β estimates.
    pub fn analytic_rows(&self) -> usize {
        self.results.len() - self.exact_rows()
    }

    /// Sum of clamped past-scheduled events over every row — nonzero
    /// means some run violated the event queue's monotonicity invariant
    /// and its results are suspect. The sweep CLI warns on this.
    pub fn total_past_schedules(&self) -> u64 {
        self.results.iter().map(|r| r.metrics.past_schedules).sum()
    }
}

/// Result cache keyed on `(tier, point)`. Identical points simulate
/// identically within a tier (both tiers are deterministic), so a sweep
/// never runs the same point twice — within a grid or across grids
/// sharing a runner. The tier is part of the key: an analytic estimate
/// must never be served where an exact result is expected.
#[derive(Debug, Default)]
pub struct Cache {
    map: Mutex<HashMap<(Tier, RunPoint), Metrics>>,
}

impl Cache {
    /// An empty cache.
    pub fn new() -> Cache {
        Cache::default()
    }

    /// Cached metrics for `point` in `tier`, if present.
    pub fn get_tier(&self, tier: Tier, point: &RunPoint) -> Option<Metrics> {
        self.map
            .lock()
            .expect("cache lock")
            .get(&(tier, point.clone()))
            .copied()
    }

    /// Cached **exact** metrics for `point` (the historical accessor).
    pub fn get(&self, point: &RunPoint) -> Option<Metrics> {
        self.get_tier(Tier::Exact, point)
    }

    /// Whether `point` is cached in `tier`.
    pub fn contains_tier(&self, tier: Tier, point: &RunPoint) -> bool {
        self.map
            .lock()
            .expect("cache lock")
            .contains_key(&(tier, point.clone()))
    }

    /// Whether `point` is cached in the exact tier.
    pub fn contains(&self, point: &RunPoint) -> bool {
        self.contains_tier(Tier::Exact, point)
    }

    /// Stores metrics for `point` in `tier`.
    pub fn insert_tier(&self, tier: Tier, point: RunPoint, metrics: Metrics) {
        self.map
            .lock()
            .expect("cache lock")
            .insert((tier, point), metrics);
    }

    /// Stores **exact** metrics for `point`.
    pub fn insert(&self, point: RunPoint, metrics: Metrics) {
        self.insert_tier(Tier::Exact, point, metrics);
    }

    /// Number of cached points (all tiers).
    pub fn len(&self) -> usize {
        self.map.lock().expect("cache lock").len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Snapshot of every cached `(tier, point, metrics)` triple, in
    /// unspecified order. The persistence layer sorts before writing.
    pub fn entries(&self) -> Vec<(Tier, RunPoint, Metrics)> {
        self.map
            .lock()
            .expect("cache lock")
            .iter()
            .map(|((t, p), m)| (*t, p.clone(), *m))
            .collect()
    }
}

/// Execution options.
#[derive(Debug, Clone, Copy, Default)]
pub struct RunnerOptions {
    /// Worker threads; `0` uses the machine's available parallelism.
    pub threads: usize,
}

/// A sweep executor owning a [`Cache`] that persists across runs.
#[derive(Debug, Default)]
pub struct SweepRunner {
    cache: Cache,
}

impl SweepRunner {
    /// A runner with an empty cache.
    pub fn new() -> SweepRunner {
        SweepRunner::default()
    }

    /// A runner seeded with a pre-populated cache — e.g. one loaded from
    /// a [`--cache-file`](crate::persist) of an earlier process, so
    /// repeated sweeps across processes reuse results.
    pub fn with_cache(cache: Cache) -> SweepRunner {
        SweepRunner { cache }
    }

    /// The runner's cache.
    pub fn cache(&self) -> &Cache {
        &self.cache
    }

    /// Runs `scenario` at its configured [`Fidelity`] and returns results
    /// in deterministic grid order.
    ///
    /// # Errors
    ///
    /// Returns the validation message if the scenario is inconsistent.
    pub fn run(&self, scenario: &Scenario, opts: RunnerOptions) -> Result<SweepOutcome, String> {
        self.run_with_progress(scenario, opts, &|_, _| {})
    }

    /// [`run`](SweepRunner::run) with a live progress callback: after each
    /// freshly executed cell the runner calls `progress(done, batch)`,
    /// where `batch` is the size of the current execution batch (hybrid
    /// sweeps run two batches: analytic triage, then exact re-simulation).
    /// The callback may fire from worker threads; keep it cheap.
    pub fn run_with_progress(
        &self,
        scenario: &Scenario,
        opts: RunnerOptions,
        progress: &(dyn Fn(usize, usize) + Sync),
    ) -> Result<SweepOutcome, String> {
        scenario.validate()?;
        match scenario.fidelity {
            Fidelity::Exact => self.run_tier(scenario, opts, Tier::Exact, progress),
            Fidelity::Analytic => self.run_tier(scenario, opts, Tier::Analytic, progress),
            Fidelity::Hybrid => self.run_hybrid(scenario, opts, progress),
        }
    }

    /// Single-tier sweep: every grid cell through one execution tier.
    fn run_tier(
        &self,
        scenario: &Scenario,
        opts: RunnerOptions,
        tier: Tier,
        progress: &(dyn Fn(usize, usize) + Sync),
    ) -> Result<SweepOutcome, String> {
        let points = grid::expand(scenario);
        let baseline_points = baseline_points(scenario);
        let work = self.queue_work(points.iter().chain(baseline_points.iter()), tier);
        self.execute_parallel(&work, opts, tier, progress);

        let tiers = vec![tier; points.len()];
        let queued: HashSet<RunPoint> = work.iter().cloned().collect();
        let (results, cache_hits) = self.assemble(scenario, &points, &tiers, |t, p| {
            t == tier && queued.contains(p)
        });

        let (executed, analytic_executed) = match tier {
            Tier::Exact => (work.len(), 0),
            Tier::Analytic => (0, work.len()),
        };
        Ok(SweepOutcome {
            scenario: scenario.name.clone(),
            mode: scenario.mode,
            fidelity: match tier {
                Tier::Exact => Fidelity::Exact,
                Tier::Analytic => Fidelity::Analytic,
            },
            results,
            executed,
            analytic_executed,
            cache_hits,
        })
    }

    /// Hybrid sweep: α–β triage over the whole grid, exact re-simulation
    /// of the analytic Pareto frontier + top-K % cells + the baseline.
    fn run_hybrid(
        &self,
        scenario: &Scenario,
        opts: RunnerOptions,
        progress: &(dyn Fn(usize, usize) + Sync),
    ) -> Result<SweepOutcome, String> {
        let points = grid::expand(scenario);
        let baseline_pts = baseline_points(scenario);

        // ---- Tier 1: analytic triage of every unique point. ----------
        let work_a = self.queue_work(points.iter().chain(baseline_pts.iter()), Tier::Analytic);
        self.execute_parallel(&work_a, opts, Tier::Analytic, progress);

        let triage: Vec<(RunPoint, Metrics)> = points
            .iter()
            .map(|p| {
                let m = self
                    .cache
                    .get_tier(Tier::Analytic, p)
                    .expect("triage covered the grid");
                (p.clone(), m)
            })
            .collect();

        // ---- Select the cells worth exact simulation. ----------------
        let probe = |p: &RunPoint| execute_analytic(p).time_us;
        let keep = select_exact_cells(&triage, scenario.hybrid_top_pct, &probe);
        let tiers: Vec<Tier> = keep
            .iter()
            .map(|&k| if k { Tier::Exact } else { Tier::Analytic })
            .collect();

        let selected = points
            .iter()
            .zip(&keep)
            .filter_map(|(p, &k)| k.then_some(p));
        let work_e = self.queue_work(selected.chain(baseline_pts.iter()), Tier::Exact);
        self.execute_parallel(&work_e, opts, Tier::Exact, progress);

        // ---- Assemble: exact rows where selected, analytic elsewhere. -
        let queued_a: HashSet<RunPoint> = work_a.iter().cloned().collect();
        let queued_e: HashSet<RunPoint> = work_e.iter().cloned().collect();
        let (results, cache_hits) = self.assemble(scenario, &points, &tiers, |t, p| match t {
            Tier::Exact => queued_e.contains(p),
            Tier::Analytic => queued_a.contains(p),
        });

        Ok(SweepOutcome {
            scenario: scenario.name.clone(),
            mode: scenario.mode,
            fidelity: Fidelity::Hybrid,
            results,
            executed: work_e.len(),
            analytic_executed: work_a.len(),
            cache_hits,
        })
    }

    /// The work list for one tier: every unique point of `wanted` not
    /// already cached, in first-seen order (grid first, then any
    /// baseline points outside the grid).
    fn queue_work<'a>(
        &self,
        wanted: impl Iterator<Item = &'a RunPoint>,
        tier: Tier,
    ) -> Vec<RunPoint> {
        let mut queued: HashSet<&RunPoint> = HashSet::new();
        let mut work: Vec<RunPoint> = Vec::new();
        for p in wanted {
            if !self.cache.contains_tier(tier, p) && queued.insert(p) {
                work.push(p.clone());
            }
        }
        work
    }

    /// Assembles grid-order rows: each point's metrics from its tier's
    /// cache, cache-hit bookkeeping (the first occurrence of a point
    /// freshly executed this run is the one non-hit row), and baseline
    /// speedups compared within each row's own tier — an analytic
    /// estimate is never divided by an event-driven baseline.
    fn assemble(
        &self,
        scenario: &Scenario,
        points: &[RunPoint],
        tiers: &[Tier],
        freshly_executed: impl Fn(Tier, &RunPoint) -> bool,
    ) -> (Vec<RunResult>, usize) {
        let mut seen: HashSet<(Tier, &RunPoint)> = HashSet::new();
        let mut cache_hits = 0usize;
        let mut results: Vec<RunResult> = points
            .iter()
            .zip(tiers)
            .map(|(p, &tier)| {
                let metrics = self
                    .cache
                    .get_tier(tier, p)
                    .expect("every grid point was executed in its tier");
                let fresh = freshly_executed(tier, p) && seen.insert((tier, p));
                let cache_hit = !fresh;
                if cache_hit {
                    cache_hits += 1;
                }
                RunResult {
                    point: p.clone(),
                    metrics,
                    fidelity: tier,
                    cache_hit,
                    speedup_vs_baseline: None,
                }
            })
            .collect();

        if scenario.baseline.is_some() {
            for r in &mut results {
                let bp = baseline_point_for(scenario, &r.point);
                let base = self
                    .cache
                    .get_tier(r.fidelity, &bp)
                    .expect("baseline point was executed in the row's tier");
                if r.metrics.time_us > 0.0 {
                    r.speedup_vs_baseline = Some(base.time_us / r.metrics.time_us);
                }
            }
        }
        (results, cache_hits)
    }

    /// Runs `work` on a scoped thread pool, storing metrics in the cache
    /// under `tier`. `progress(done, work.len())` fires once per completed
    /// cell (from worker threads when the pool is multi-threaded).
    fn execute_parallel(
        &self,
        work: &[RunPoint],
        opts: RunnerOptions,
        tier: Tier,
        progress: &(dyn Fn(usize, usize) + Sync),
    ) {
        if work.is_empty() {
            return;
        }
        let threads = if opts.threads == 0 {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        } else {
            opts.threads
        }
        .min(work.len())
        .max(1);

        if threads == 1 {
            for (i, p) in work.iter().enumerate() {
                self.cache
                    .insert_tier(tier, p.clone(), execute_tier(p, tier));
                progress(i + 1, work.len());
            }
            return;
        }

        let next = AtomicUsize::new(0);
        let done = AtomicUsize::new(0);
        let slots: Vec<Mutex<Option<Metrics>>> = work.iter().map(|_| Mutex::new(None)).collect();
        std::thread::scope(|s| {
            for _ in 0..threads {
                s.spawn(|| loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= work.len() {
                        break;
                    }
                    let m = execute_tier(&work[i], tier);
                    *slots[i].lock().expect("slot lock") = Some(m);
                    progress(done.fetch_add(1, Ordering::Relaxed) + 1, work.len());
                });
            }
        });
        for (p, slot) in work.iter().zip(slots) {
            let m = slot
                .into_inner()
                .expect("slot lock")
                .expect("worker filled slot");
            self.cache.insert_tier(tier, p.clone(), m);
        }
    }
}

/// Convenience: run a scenario once with a fresh cache.
pub fn run_scenario(scenario: &Scenario, opts: RunnerOptions) -> Result<SweepOutcome, String> {
    SweepRunner::new().run(scenario, opts)
}

/// Executes one point in the given tier. Pure and deterministic within a
/// tier: the same `(tier, point)` always produces the same metrics.
pub fn execute_tier(point: &RunPoint, tier: Tier) -> Metrics {
    match tier {
        Tier::Exact => execute(point),
        Tier::Analytic => execute_analytic(point),
    }
}

/// Simulates one point with the event-driven executor.
pub fn execute(point: &RunPoint) -> Metrics {
    match &point.kind {
        PointKind::Collective {
            engine,
            op,
            payload_bytes,
        } => {
            let r =
                run_single_collective(point.topology, engine.to_engine_kind(), *op, *payload_bytes);
            let freq = ace_simcore::npu_frequency();
            Metrics {
                time_us: r.completion.cycles() as f64 / freq.hz() * 1e6,
                completion_cycles: r.completion.cycles(),
                gbps_per_npu: r.achieved_gbps_per_npu,
                mem_traffic_bytes: r.mem_traffic_bytes,
                network_bytes: r.network_bytes,
                compute_us: 0.0,
                exposed_comm_us: 0.0,
                past_schedules: r.past_schedules,
                attribution: r.attribution,
            }
        }
        PointKind::Training {
            config,
            workload,
            iterations,
            optimized_embedding,
        } => {
            let spec = point.topology;
            let report = SystemBuilder::new()
                .topology_spec(spec)
                .config(*config)
                .workload(workload.instantiate(spec.nodes()))
                .iterations(*iterations)
                .optimized_embedding(*optimized_embedding)
                .build()
                .expect("expanded point is buildable")
                .run();
            Metrics {
                time_us: report.total_time_us(),
                completion_cycles: report.total_cycles(),
                gbps_per_npu: report.effective_network_gbps_per_npu(),
                mem_traffic_bytes: report.comm_mem_traffic_bytes(),
                network_bytes: report.network_bytes(),
                compute_us: report.total_compute_us(),
                exposed_comm_us: report.exposed_comm_us(),
                past_schedules: report.past_schedules(),
                attribution: report.attribution(),
            }
        }
    }
}

/// Estimates one point with the closed-form α–β model.
pub fn execute_analytic(point: &RunPoint) -> Metrics {
    let freq = ace_simcore::npu_frequency();
    match &point.kind {
        PointKind::Collective {
            engine,
            op,
            payload_bytes,
        } => {
            let r = analytic_collective_run(
                point.topology,
                engine.to_engine_kind(),
                *op,
                *payload_bytes,
            );
            let total_u = r.cycles.round() as u64;
            Metrics {
                time_us: r.cycles / freq.hz() * 1e6,
                completion_cycles: total_u,
                gbps_per_npu: r.achieved_gbps_per_npu,
                mem_traffic_bytes: r.mem_traffic_bytes,
                network_bytes: r.network_bytes,
                compute_us: 0.0,
                exposed_comm_us: 0.0,
                past_schedules: 0,
                attribution: Attribution {
                    total_cycles: total_u,
                    network_cycles: total_u,
                    ..Attribution::default()
                },
            }
        }
        PointKind::Training {
            config,
            workload,
            iterations,
            optimized_embedding,
        } => {
            let spec = point.topology;
            let r = analytic_training_run(
                *config,
                workload.instantiate(spec.nodes()),
                spec,
                *iterations,
                *optimized_embedding,
            );
            let to_us = |cycles: f64| cycles / freq.hz() * 1e6;
            let gbps = if r.total_cycles > 0.0 {
                freq.gbps(r.network_bytes as f64 / spec.nodes() as f64 / r.total_cycles)
            } else {
                0.0
            };
            let total_u = r.total_cycles.round() as u64;
            let compute_u = (r.compute_cycles.round() as u64).min(total_u);
            Metrics {
                time_us: to_us(r.total_cycles),
                completion_cycles: total_u,
                gbps_per_npu: gbps,
                mem_traffic_bytes: r.mem_traffic_bytes,
                network_bytes: r.network_bytes,
                compute_us: to_us(r.compute_cycles),
                exposed_comm_us: to_us(r.exposed_cycles),
                past_schedules: 0,
                attribution: Attribution {
                    total_cycles: total_u,
                    compute_cycles: compute_u,
                    network_cycles: total_u - compute_u,
                    ..Attribution::default()
                },
            }
        }
    }
}

/// The baseline point a grid row is compared against: the row's
/// coordinates with the engine/config swapped for the scenario baseline.
fn baseline_point_for(scenario: &Scenario, point: &RunPoint) -> RunPoint {
    match (scenario.baseline, &point.kind) {
        (
            Some(BaselineSpec::Engine(spec)),
            PointKind::Collective {
                op, payload_bytes, ..
            },
        ) => RunPoint {
            topology: point.topology,
            kind: PointKind::Collective {
                engine: spec,
                op: *op,
                payload_bytes: *payload_bytes,
            },
        },
        (
            Some(BaselineSpec::Config(cfg)),
            PointKind::Training {
                workload,
                iterations,
                optimized_embedding,
                ..
            },
        ) => RunPoint {
            topology: point.topology,
            kind: PointKind::Training {
                config: cfg,
                workload: workload.clone(),
                iterations: *iterations,
                optimized_embedding: *optimized_embedding,
            },
        },
        _ => point.clone(),
    }
}

/// All baseline points a scenario needs (one per cross-product of the
/// non-config axes); empty when no baseline is named.
fn baseline_points(scenario: &Scenario) -> Vec<RunPoint> {
    let Some(baseline) = scenario.baseline else {
        return Vec::new();
    };
    let mut out = Vec::new();
    match (baseline, scenario.mode) {
        (BaselineSpec::Engine(spec), SweepMode::Collective) => {
            for &topology in &scenario.topologies {
                for &op in &scenario.ops {
                    for &payload_bytes in &scenario.payload_bytes {
                        out.push(RunPoint {
                            topology,
                            kind: PointKind::Collective {
                                engine: spec,
                                op,
                                payload_bytes,
                            },
                        });
                    }
                }
            }
        }
        (BaselineSpec::Config(cfg), SweepMode::Training) => {
            for &topology in &scenario.topologies {
                for workload in &scenario.workloads {
                    out.push(RunPoint {
                        topology,
                        kind: PointKind::Training {
                            config: cfg,
                            workload: workload.clone(),
                            iterations: scenario.iterations,
                            optimized_embedding: scenario.optimized_embedding,
                        },
                    });
                }
            }
        }
        // validate() rejects mismatched baseline kinds.
        _ => {}
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::{EngineFamily, EngineSpec};
    use ace_net::TopologySpec;

    /// A scenario small enough to simulate quickly in tests.
    fn tiny() -> Scenario {
        let mut sc = Scenario::collective("tiny");
        sc.topologies = vec![TopologySpec::torus3(2, 1, 1).unwrap()];
        sc.engines = vec![EngineFamily::Ideal, EngineFamily::Baseline];
        sc.payload_bytes = vec![256 * 1024];
        sc.mem_gbps = vec![128.0, 450.0];
        sc.comm_sms = vec![6];
        sc
    }

    #[test]
    fn duplicates_collapse_into_cache_hits() {
        let sc = tiny();
        let out = run_scenario(&sc, RunnerOptions { threads: 1 }).unwrap();
        // Grid: 2 engines x 2 mem = 4 rows; ideal's two cells are one
        // unique point, so 3 unique simulations and 1 cache hit.
        assert_eq!(out.results.len(), 4);
        assert_eq!(out.executed, 3);
        assert_eq!(out.cache_hits, 1);
        assert!(!out.results[0].cache_hit);
        assert!(out.results[1].cache_hit);
        assert_eq!(out.results[0].metrics, out.results[1].metrics);
        assert!(out.results.iter().all(|r| r.fidelity == Tier::Exact));
    }

    #[test]
    fn second_run_is_fully_cached() {
        let sc = tiny();
        let runner = SweepRunner::new();
        let first = runner.run(&sc, RunnerOptions { threads: 1 }).unwrap();
        assert_eq!(first.executed, 3);
        let second = runner.run(&sc, RunnerOptions { threads: 1 }).unwrap();
        assert_eq!(second.executed, 0);
        assert_eq!(second.cache_hits, second.results.len());
        for (a, b) in first.results.iter().zip(&second.results) {
            assert_eq!(a.metrics, b.metrics);
        }
    }

    #[test]
    fn baseline_speedups_are_attached() {
        let mut sc = tiny();
        sc.baseline = Some(BaselineSpec::Engine(EngineSpec::Ideal));
        let out = run_scenario(&sc, RunnerOptions { threads: 1 }).unwrap();
        for r in &out.results {
            let s = r.speedup_vs_baseline.expect("speedup present");
            assert!(s > 0.0);
            if let PointKind::Collective {
                engine: EngineSpec::Ideal,
                ..
            } = r.point.kind
            {
                assert!((s - 1.0).abs() < 1e-12, "ideal vs itself must be 1.0");
            } else {
                // The ideal endpoint is an upper bound (modulo pacing noise).
                assert!(s <= 1.05, "baseline should not beat ideal: {s}");
            }
        }
    }

    #[test]
    fn baseline_outside_grid_is_executed() {
        let mut sc = tiny();
        // Baseline engine not in the grid: ACE.
        sc.baseline = Some(BaselineSpec::Engine(EngineSpec::Ace {
            dma_mem_gbps: 128.0,
            sram_mb: 4,
            fsms: 16,
        }));
        let out = run_scenario(&sc, RunnerOptions { threads: 1 }).unwrap();
        // 3 unique grid points + 1 baseline point.
        assert_eq!(out.executed, 4);
        assert!(out.results.iter().all(|r| r.speedup_vs_baseline.is_some()));
    }

    #[test]
    fn parallel_matches_serial() {
        let sc = tiny();
        let serial = run_scenario(&sc, RunnerOptions { threads: 1 }).unwrap();
        let parallel = run_scenario(&sc, RunnerOptions { threads: 4 }).unwrap();
        assert_eq!(serial.results.len(), parallel.results.len());
        for (a, b) in serial.results.iter().zip(&parallel.results) {
            assert_eq!(a.point, b.point);
            assert_eq!(a.metrics, b.metrics);
            assert_eq!(a.cache_hit, b.cache_hit);
        }
    }

    #[test]
    fn training_points_execute() {
        let mut sc = Scenario::training("t");
        sc.topologies = vec![TopologySpec::torus3(2, 1, 1).unwrap()];
        sc.configs = vec![ace_system::SystemConfig::Ace];
        sc.iterations = 1;
        let out = run_scenario(&sc, RunnerOptions { threads: 1 }).unwrap();
        assert_eq!(out.results.len(), 1);
        let m = out.results[0].metrics;
        assert!(m.time_us > 0.0);
        assert!(m.compute_us > 0.0);
    }

    #[test]
    fn analytic_fidelity_runs_without_the_executor() {
        let mut sc = tiny();
        sc.fidelity = Fidelity::Analytic;
        let out = run_scenario(&sc, RunnerOptions { threads: 1 }).unwrap();
        assert_eq!(out.fidelity, Fidelity::Analytic);
        assert_eq!(out.executed, 0);
        assert_eq!(out.analytic_executed, 3);
        for r in &out.results {
            assert_eq!(r.fidelity, Tier::Analytic);
            assert!(r.metrics.time_us > 0.0);
            assert_eq!(r.metrics.past_schedules, 0);
        }
    }

    #[test]
    fn analytic_and_exact_never_alias_in_the_cache() {
        let sc = tiny();
        let runner = SweepRunner::new();
        let exact = runner.run(&sc, RunnerOptions { threads: 1 }).unwrap();
        let mut sca = sc.clone();
        sca.fidelity = Fidelity::Analytic;
        let analytic = runner.run(&sca, RunnerOptions { threads: 1 }).unwrap();
        // Both tiers executed fresh — the exact rows did not satisfy the
        // analytic query or vice versa.
        assert_eq!(analytic.analytic_executed, 3);
        // And the per-tier lookups disagree on the metrics (the α–β
        // estimate is not the event-driven result).
        let p = &exact.results[2].point; // a baseline-engine cell
        let e = runner.cache().get_tier(Tier::Exact, p).unwrap();
        let a = runner.cache().get_tier(Tier::Analytic, p).unwrap();
        assert_ne!(
            e.completion_cycles, a.completion_cycles,
            "tiers should differ on {p:?}"
        );
    }

    #[test]
    fn hybrid_reduces_exact_simulations_and_pins_the_frontier() {
        // A design-space-like grid: one engine family, SRAM x FSM axes.
        let mut sc = Scenario::collective("hybrid-test");
        sc.topologies = vec![TopologySpec::torus3(2, 1, 1).unwrap()];
        sc.engines = vec![EngineFamily::Ace];
        sc.payload_bytes = vec![1 << 20];
        sc.mem_gbps = vec![128.0];
        sc.sram_mb = vec![1, 2, 4, 8];
        sc.fsms = vec![4, 16];
        sc.baseline = Some(BaselineSpec::Engine(EngineSpec::Ace {
            dma_mem_gbps: 128.0,
            sram_mb: 4,
            fsms: 16,
        }));

        let exact = run_scenario(&sc, RunnerOptions { threads: 1 }).unwrap();
        let mut sch = sc.clone();
        sch.fidelity = Fidelity::Hybrid;
        let hybrid = run_scenario(&sch, RunnerOptions { threads: 2 }).unwrap();

        assert_eq!(hybrid.fidelity, Fidelity::Hybrid);
        assert_eq!(hybrid.results.len(), exact.results.len());
        // The prefilter must actually prune.
        assert!(
            hybrid.executed < exact.executed,
            "hybrid executed {} >= exact {}",
            hybrid.executed,
            exact.executed
        );
        assert!(hybrid.analytic_executed > 0);
        // Exact-tier rows are byte-identical to the full exact run.
        for (h, e) in hybrid.results.iter().zip(&exact.results) {
            assert_eq!(h.point, e.point);
            if h.fidelity == Tier::Exact {
                assert_eq!(
                    h.metrics, e.metrics,
                    "re-simulated cell moved: {:?}",
                    h.point
                );
            }
        }
        // The exact run's Pareto frontier survives: every frontier cell
        // of the exact outcome was re-simulated exactly by hybrid.
        let rows: Vec<(&RunPoint, f64)> = exact
            .results
            .iter()
            .map(|r| (&r.point, r.metrics.time_us))
            .collect();
        let frontier = crate::fidelity::pareto_frontier(&rows);
        for (i, &f) in frontier.iter().enumerate() {
            if f {
                assert_eq!(
                    hybrid.results[i].fidelity,
                    Tier::Exact,
                    "frontier cell {:?} was left analytic",
                    hybrid.results[i].point
                );
            }
        }
    }

    #[test]
    fn attribution_travels_through_the_sweep() {
        for fidelity in [Fidelity::Exact, Fidelity::Analytic, Fidelity::Hybrid] {
            let mut sc = tiny();
            sc.fidelity = fidelity;
            let out = run_scenario(&sc, RunnerOptions { threads: 1 }).unwrap();
            for r in &out.results {
                let a = r.metrics.attribution;
                assert!(a.conserves(), "{fidelity:?} {:?}: {a:?}", r.point);
                assert_eq!(
                    a.total_cycles, r.metrics.completion_cycles,
                    "{fidelity:?} {:?}",
                    r.point
                );
            }
        }
    }

    #[test]
    fn progress_fires_once_per_executed_cell() {
        use std::sync::atomic::AtomicUsize;
        for threads in [1, 4] {
            let sc = tiny();
            let runner = SweepRunner::new();
            let calls = AtomicUsize::new(0);
            let out = runner
                .run_with_progress(&sc, RunnerOptions { threads }, &|done, total| {
                    calls.fetch_add(1, Ordering::Relaxed);
                    assert!(done >= 1 && done <= total);
                })
                .unwrap();
            assert_eq!(calls.load(Ordering::Relaxed), out.executed);
        }
    }

    #[test]
    fn hybrid_is_thread_deterministic() {
        let mut sc = Scenario::collective("hybrid-det");
        sc.topologies = vec![TopologySpec::torus3(2, 1, 1).unwrap()];
        sc.engines = vec![EngineFamily::Ace, EngineFamily::Baseline];
        sc.payload_bytes = vec![512 * 1024];
        sc.mem_gbps = vec![64.0, 128.0];
        sc.sram_mb = vec![1, 4];
        sc.fidelity = Fidelity::Hybrid;
        let a = run_scenario(&sc, RunnerOptions { threads: 1 }).unwrap();
        let b = run_scenario(&sc, RunnerOptions { threads: 4 }).unwrap();
        assert_eq!(a.results.len(), b.results.len());
        for (x, y) in a.results.iter().zip(&b.results) {
            assert_eq!(x.point, y.point);
            assert_eq!(x.metrics, y.metrics);
            assert_eq!(x.fidelity, y.fidelity);
            assert_eq!(x.cache_hit, y.cache_hit);
            assert_eq!(x.speedup_vs_baseline, y.speedup_vs_baseline);
        }
    }
}
