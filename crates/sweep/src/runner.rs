//! Sweep execution: the metric/result/outcome types, the per-point
//! executors, and the one-shot [`SweepRunner`] frontend.
//!
//! The batch machinery that used to live here — work queues, the worker
//! pool, grid-order assembly — moved into the resident
//! [`JobScheduler`]; [`SweepRunner`] is
//! now a thin client that owns a private scheduler and adapts its
//! [`BusEvent`] stream to a simple [`Progress`] callback. Results are
//! assembled **in grid order** from the `(tier, point)` [`Cache`], so the
//! output is byte-identical whether the sweep ran on one thread or
//! sixteen, one-shot or through the daemon.
//!
//! The scenario's [`Fidelity`] picks the execution tier: `exact` runs the
//! event-driven executor, `analytic` the closed-form α–β estimator, and
//! `hybrid` triages the whole grid analytically before re-simulating only
//! the Pareto frontier + top-K % cells exactly (see [`crate::fidelity`]).

use std::collections::HashMap;
use std::sync::Mutex;

use ace_system::{
    analytic_collective_run_with_conditions, analytic_training_run_with_conditions,
    ExecutorOptions, RunSpec, SystemBuilder,
};
use ace_trace::Attribution;

use crate::bus::BusEvent;
use crate::fidelity::{Fidelity, Tier};
use crate::grid::{PointKind, RunPoint};
use crate::scenario::{Scenario, SweepMode};
use crate::scheduler::JobScheduler;

/// Request-latency metrics of a serving run point. All-zero for
/// collective and training rows, which have no request stream.
///
/// Percentiles are **exact order statistics** over the completed
/// requests (no interpolation), converted to microseconds at the NPU
/// clock — see [`ace_serve::ServingOutcome`].
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct ServingMetrics {
    /// Median time-to-first-token, microseconds.
    pub ttft_p50_us: f64,
    /// 95th-percentile time-to-first-token, microseconds.
    pub ttft_p95_us: f64,
    /// 99th-percentile time-to-first-token, microseconds.
    pub ttft_p99_us: f64,
    /// Median end-to-end request latency, microseconds.
    pub e2e_p50_us: f64,
    /// 95th-percentile end-to-end request latency, microseconds.
    pub e2e_p95_us: f64,
    /// 99th-percentile end-to-end request latency, microseconds.
    pub e2e_p99_us: f64,
    /// Completed requests per second of simulated makespan.
    pub goodput_rps: f64,
}

/// Simulation metrics of one run point. Collective points report zero
/// compute/exposed time; training points report the full breakdown;
/// serving points additionally fill [`Metrics::serving`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Metrics {
    /// End-to-end simulated time in microseconds — the primary metric
    /// speedups are computed from (lower is better).
    pub time_us: f64,
    /// End-to-end simulated time in cycles.
    pub completion_cycles: u64,
    /// Achieved network bandwidth per NPU, GB/s.
    pub gbps_per_npu: f64,
    /// Per-node HBM bytes consumed by communication.
    pub mem_traffic_bytes: u64,
    /// Total bytes the fabric carried.
    pub network_bytes: u64,
    /// Training only: total compute time in microseconds.
    pub compute_us: f64,
    /// Training only: exposed (non-overlapped) communication, microseconds.
    pub exposed_comm_us: f64,
    /// Events the simulator scheduled in the past (clamped by the event
    /// queue) — always zero in a correct run; surfaced so release-mode
    /// sweeps can flag the invariant violation. Always zero for analytic
    /// rows (there is no event queue to violate).
    pub past_schedules: u64,
    /// Bottleneck attribution: `completion_cycles` decomposed into
    /// compute / per-pipe-bound / other buckets that sum exactly to the
    /// total. Analytic rows charge their whole communication share to the
    /// network bucket (the α–β model has no per-pipe decomposition).
    pub attribution: Attribution,
    /// Serving only: request-latency percentiles and goodput. All-zero
    /// for collective and training rows.
    pub serving: ServingMetrics,
}

/// One grid row with its metrics.
#[derive(Debug, Clone)]
pub struct RunResult {
    /// The grid cell.
    pub point: RunPoint,
    /// Simulated (or estimated) metrics.
    pub metrics: Metrics,
    /// The tier that produced `metrics`: event-driven simulation or the
    /// α–β estimator.
    pub fidelity: Tier,
    /// Whether this row reused a result computed earlier — either a
    /// duplicate cell in the same grid or a prior run through the same
    /// [`Cache`].
    pub cache_hit: bool,
    /// `baseline_time / this_time` when the scenario names a baseline
    /// (always compared within the row's own tier).
    pub speedup_vs_baseline: Option<f64>,
}

/// The outcome of one sweep.
#[derive(Debug, Clone)]
pub struct SweepOutcome {
    /// Scenario name.
    pub scenario: String,
    /// Sweep mode.
    pub mode: SweepMode,
    /// The fidelity the sweep ran at.
    pub fidelity: Fidelity,
    /// One result per grid cell, in deterministic grid order.
    pub results: Vec<RunResult>,
    /// Unique points run through the event-driven executor this run.
    pub executed: usize,
    /// Unique points estimated by the α–β model this run.
    pub analytic_executed: usize,
    /// Grid rows served from the cache (duplicates + prior runs).
    pub cache_hits: usize,
}

impl SweepOutcome {
    /// All collective-mode rows running exactly `engine`, in grid order.
    pub fn collective_results(
        &self,
        engine: crate::scenario::EngineSpec,
    ) -> impl Iterator<Item = &RunResult> {
        self.results.iter().filter(
            move |r| matches!(r.point.kind, PointKind::Collective { engine: e, .. } if e == engine),
        )
    }

    /// The first collective-mode row on `topology` running exactly
    /// `engine` — the pivot lookup figure binaries use to re-shape a
    /// sweep into a table.
    pub fn find_collective(
        &self,
        topology: impl Into<ace_net::TopologySpec>,
        engine: crate::scenario::EngineSpec,
    ) -> Option<&RunResult> {
        let spec = topology.into();
        self.collective_results(engine)
            .find(move |r| r.point.topology == spec)
    }

    /// Rows produced by the exact tier (hybrid's re-simulated cells).
    pub fn exact_rows(&self) -> usize {
        self.results
            .iter()
            .filter(|r| r.fidelity == Tier::Exact)
            .count()
    }

    /// Rows carrying α–β estimates.
    pub fn analytic_rows(&self) -> usize {
        self.results.len() - self.exact_rows()
    }

    /// Sum of clamped past-scheduled events over every row — nonzero
    /// means some run violated the event queue's monotonicity invariant
    /// and its results are suspect. The sweep CLI warns on this.
    pub fn total_past_schedules(&self) -> u64 {
        self.results.iter().map(|r| r.metrics.past_schedules).sum()
    }
}

/// Result cache keyed on `(tier, point)`. Identical points simulate
/// identically within a tier (both tiers are deterministic), so a sweep
/// never runs the same point twice — within a grid or across grids
/// sharing a runner. The tier is part of the key: an analytic estimate
/// must never be served where an exact result is expected.
#[derive(Debug, Default)]
pub struct Cache {
    map: Mutex<HashMap<(Tier, RunPoint), Metrics>>,
}

impl Cache {
    /// An empty cache.
    pub fn new() -> Cache {
        Cache::default()
    }

    /// Cached metrics for `point` in `tier`, if present.
    pub fn get_tier(&self, tier: Tier, point: &RunPoint) -> Option<Metrics> {
        self.map
            .lock()
            .expect("cache lock")
            .get(&(tier, point.clone()))
            .copied()
    }

    /// Cached **exact** metrics for `point` (the historical accessor).
    pub fn get(&self, point: &RunPoint) -> Option<Metrics> {
        self.get_tier(Tier::Exact, point)
    }

    /// Whether `point` is cached in `tier`.
    pub fn contains_tier(&self, tier: Tier, point: &RunPoint) -> bool {
        self.map
            .lock()
            .expect("cache lock")
            .contains_key(&(tier, point.clone()))
    }

    /// Whether `point` is cached in the exact tier.
    pub fn contains(&self, point: &RunPoint) -> bool {
        self.contains_tier(Tier::Exact, point)
    }

    /// Stores metrics for `point` in `tier`.
    pub fn insert_tier(&self, tier: Tier, point: RunPoint, metrics: Metrics) {
        self.map
            .lock()
            .expect("cache lock")
            .insert((tier, point), metrics);
    }

    /// Stores **exact** metrics for `point`.
    pub fn insert(&self, point: RunPoint, metrics: Metrics) {
        self.insert_tier(Tier::Exact, point, metrics);
    }

    /// Number of cached points (all tiers).
    pub fn len(&self) -> usize {
        self.map.lock().expect("cache lock").len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// `(total, exact, analytic)` entry counts — the figures carried by
    /// [`BusEvent::CacheStats`] and the daemon's `stats` reply.
    pub fn tier_counts(&self) -> (usize, usize, usize) {
        let map = self.map.lock().expect("cache lock");
        let exact = map.keys().filter(|(t, _)| *t == Tier::Exact).count();
        (map.len(), exact, map.len() - exact)
    }

    /// Snapshot of every cached `(tier, point, metrics)` triple, in
    /// unspecified order. The persistence layer sorts before writing.
    pub fn entries(&self) -> Vec<(Tier, RunPoint, Metrics)> {
        self.map
            .lock()
            .expect("cache lock")
            .iter()
            .map(|((t, p), m)| (*t, p.clone(), *m))
            .collect()
    }
}

/// Execution options.
#[derive(Debug, Clone, Copy, Default)]
pub struct RunnerOptions {
    /// Worker threads; `0` uses the machine's available parallelism.
    pub threads: usize,
    /// Worker threads *inside each exact simulation* (the
    /// domain-partitioned event loop); `0` or `1` runs the serial engine.
    /// Results are byte-identical for every value — this knob trades
    /// per-point wall-clock for grid-level parallelism, so it is *not*
    /// part of the cache key.
    pub sim_threads: usize,
}

/// Live progress of one execution batch, as reported to
/// [`SweepRunner::run_with_progress`].
///
/// `total` counts every unique cell the batch wants — the freshly
/// executed plus the cache-served — so a fully warm run still reports one
/// terminal `done == total` state instead of a dangling `0/N`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Progress {
    /// Cells accounted for so far: cache hits plus completed executions.
    pub done: usize,
    /// Unique cells the current batch wants (executed + cached). Hybrid
    /// sweeps run two batches: analytic triage, then exact re-simulation.
    pub total: usize,
    /// Cells of the batch served by the cache without executing.
    pub cached: usize,
}

impl Progress {
    /// Cells actually executed so far in this batch.
    pub fn executed(&self) -> usize {
        self.done - self.cached
    }

    /// Whether the batch is complete.
    pub fn finished(&self) -> bool {
        self.done == self.total
    }
}

/// A one-shot sweep frontend: a thin client of a private
/// [`JobScheduler`] whose [`Cache`] persists across runs.
#[derive(Debug, Default)]
pub struct SweepRunner {
    scheduler: JobScheduler,
}

impl SweepRunner {
    /// A runner with an empty cache.
    pub fn new() -> SweepRunner {
        SweepRunner::default()
    }

    /// A runner seeded with a pre-populated cache — e.g. one loaded from
    /// a [`--cache-file`](crate::persist) of an earlier process, so
    /// repeated sweeps across processes reuse results.
    pub fn with_cache(cache: Cache) -> SweepRunner {
        SweepRunner {
            scheduler: JobScheduler::with_cache(cache),
        }
    }

    /// The runner's cache.
    pub fn cache(&self) -> &Cache {
        self.scheduler.cache()
    }

    /// The underlying scheduler — the full service interface (event bus,
    /// journal, job tickets) behind this runner.
    pub fn scheduler(&self) -> &JobScheduler {
        &self.scheduler
    }

    /// Runs `scenario` at its configured [`Fidelity`] and returns results
    /// in deterministic grid order.
    ///
    /// # Errors
    ///
    /// Returns the validation message if the scenario is inconsistent.
    pub fn run(&self, scenario: &Scenario, opts: RunnerOptions) -> Result<SweepOutcome, String> {
        self.run_with_progress(scenario, opts, &|_| {})
    }

    /// [`run`](SweepRunner::run) with a live progress callback: once when
    /// each execution batch starts (cache hits pre-counted in
    /// [`Progress::done`], so an all-cached batch immediately reports
    /// `done == total`) and once per freshly executed cell.
    pub fn run_with_progress(
        &self,
        scenario: &Scenario,
        opts: RunnerOptions,
        progress: &(dyn Fn(Progress) + Sync),
    ) -> Result<SweepOutcome, String> {
        let mut cached = 0usize;
        let mut total = 0usize;
        let mut on_event = |ev: &BusEvent| match ev {
            BusEvent::BatchStarted {
                queued, cached: c, ..
            } => {
                cached = *c;
                total = *queued + *c;
                progress(Progress {
                    done: cached,
                    total,
                    cached,
                });
            }
            BusEvent::CellCompleted { index, .. } => {
                progress(Progress {
                    done: cached + *index,
                    total,
                    cached,
                });
            }
            _ => {}
        };
        self.scheduler
            .run_job(scenario, opts, &mut on_event)
            .map_err(|e| e.to_string())
    }
}

/// Convenience: run a scenario once with a fresh cache.
pub fn run_scenario(scenario: &Scenario, opts: RunnerOptions) -> Result<SweepOutcome, String> {
    SweepRunner::new().run(scenario, opts)
}

/// Executes one point in the given tier. Pure and deterministic within a
/// tier: the same `(tier, point)` always produces the same metrics.
pub fn execute_tier(point: &RunPoint, tier: Tier) -> Metrics {
    execute_tier_with(point, tier, 1)
}

/// [`execute_tier`] with an intra-simulation thread count for the exact
/// tier. `sim_threads` never changes the metrics (the parallel engine is
/// byte-identical to the serial one), so both spellings share the same
/// cache entries.
pub fn execute_tier_with(point: &RunPoint, tier: Tier, sim_threads: usize) -> Metrics {
    match tier {
        Tier::Exact => execute_with(point, sim_threads),
        Tier::Analytic => execute_analytic(point),
    }
}

/// Simulates one point with the (serial) event-driven executor.
pub fn execute(point: &RunPoint) -> Metrics {
    execute_with(point, 1)
}

/// Simulates one point with the event-driven executor, partitioning its
/// event loop across `sim_threads` workers (1 = serial).
pub fn execute_with(point: &RunPoint, sim_threads: usize) -> Metrics {
    let sim_threads = sim_threads.max(1);
    match &point.kind {
        PointKind::Collective {
            engine,
            op,
            payload_bytes,
        } => {
            let r = RunSpec::new(point.topology, engine.to_engine_kind(), *op, *payload_bytes)
                .options(ExecutorOptions {
                    sim_threads,
                    ..Default::default()
                })
                .conditions(point.conditions.clone())
                .run()
                .expect("expanded point conditions are resolvable");
            let freq = ace_simcore::npu_frequency();
            Metrics {
                time_us: r.completion.cycles() as f64 / freq.hz() * 1e6,
                completion_cycles: r.completion.cycles(),
                gbps_per_npu: r.achieved_gbps_per_npu,
                mem_traffic_bytes: r.mem_traffic_bytes,
                network_bytes: r.network_bytes,
                compute_us: 0.0,
                exposed_comm_us: 0.0,
                past_schedules: r.past_schedules,
                attribution: r.attribution,
                serving: ServingMetrics::default(),
            }
        }
        PointKind::Training {
            config,
            workload,
            iterations,
            optimized_embedding,
        } => {
            let spec = point.topology;
            let report = SystemBuilder::new()
                .topology_spec(spec)
                .config(*config)
                .workload(workload.instantiate(spec.nodes()))
                .iterations(*iterations)
                .optimized_embedding(*optimized_embedding)
                .sim_threads(sim_threads)
                .conditions(point.conditions.clone())
                .build()
                .expect("expanded point is buildable")
                .run();
            Metrics {
                time_us: report.total_time_us(),
                completion_cycles: report.total_cycles(),
                gbps_per_npu: report.effective_network_gbps_per_npu(),
                mem_traffic_bytes: report.comm_mem_traffic_bytes(),
                network_bytes: report.network_bytes(),
                compute_us: report.total_compute_us(),
                exposed_comm_us: report.exposed_comm_us(),
                past_schedules: report.past_schedules(),
                attribution: report.attribution(),
                serving: ServingMetrics::default(),
            }
        }
        PointKind::Serving {
            config,
            workload,
            spec,
        } => execute_serving(
            point,
            *config,
            workload,
            spec,
            ace_serve::ServingTier::Exact,
            sim_threads,
        ),
    }
}

/// Runs one serving point through [`ace_serve::simulate`] and folds its
/// outcome into sweep [`Metrics`].
fn execute_serving(
    point: &RunPoint,
    config: ace_system::SystemConfig,
    workload: &crate::scenario::WorkloadSel,
    spec: &ace_serve::ServingSpec,
    tier: ace_serve::ServingTier,
    sim_threads: usize,
) -> Metrics {
    let topo = point.topology;
    let outcome = ace_serve::simulate_with_conditions(
        config,
        &workload.instantiate(topo.nodes()),
        topo,
        spec,
        &ace_serve::ServingOptions { tier, sim_threads },
        &point.conditions,
    )
    .expect("expanded serving point is simulable");
    let freq = ace_simcore::npu_frequency();
    let to_us = |cycles: u64| cycles as f64 / freq.hz() * 1e6;
    let gbps = if outcome.makespan_cycles > 0 {
        freq.gbps(
            outcome.network_bytes as f64 / topo.nodes() as f64 / outcome.makespan_cycles as f64,
        )
    } else {
        0.0
    };
    // Aggregate compute over overlapped rounds can exceed the wall-clock
    // makespan under 1f1b injection; the attribution buckets clamp so the
    // decomposition still sums exactly to the total.
    let total = outcome.makespan_cycles;
    let compute = outcome.compute_cycles.min(total);
    Metrics {
        time_us: outcome.makespan_us(),
        completion_cycles: total,
        gbps_per_npu: gbps,
        mem_traffic_bytes: outcome.mem_traffic_bytes,
        network_bytes: outcome.network_bytes,
        compute_us: to_us(outcome.compute_cycles),
        exposed_comm_us: to_us(outcome.exposed_cycles),
        past_schedules: outcome.past_schedules,
        attribution: Attribution {
            total_cycles: total,
            compute_cycles: compute,
            network_cycles: total - compute,
            ..Attribution::default()
        },
        serving: ServingMetrics {
            ttft_p50_us: outcome.ttft_percentile_us(50.0),
            ttft_p95_us: outcome.ttft_percentile_us(95.0),
            ttft_p99_us: outcome.ttft_percentile_us(99.0),
            e2e_p50_us: outcome.e2e_percentile_us(50.0),
            e2e_p95_us: outcome.e2e_percentile_us(95.0),
            e2e_p99_us: outcome.e2e_percentile_us(99.0),
            goodput_rps: outcome.goodput_rps(),
        },
    }
}

/// Estimates one point with the closed-form α–β model.
pub fn execute_analytic(point: &RunPoint) -> Metrics {
    let freq = ace_simcore::npu_frequency();
    match &point.kind {
        PointKind::Collective {
            engine,
            op,
            payload_bytes,
        } => {
            let r = analytic_collective_run_with_conditions(
                point.topology,
                engine.to_engine_kind(),
                *op,
                *payload_bytes,
                &point.conditions,
            )
            .expect("expanded point conditions are resolvable");
            let total_u = r.cycles.round() as u64;
            Metrics {
                time_us: r.cycles / freq.hz() * 1e6,
                completion_cycles: total_u,
                gbps_per_npu: r.achieved_gbps_per_npu,
                mem_traffic_bytes: r.mem_traffic_bytes,
                network_bytes: r.network_bytes,
                compute_us: 0.0,
                exposed_comm_us: 0.0,
                past_schedules: 0,
                attribution: Attribution {
                    total_cycles: total_u,
                    network_cycles: total_u,
                    ..Attribution::default()
                },
                serving: ServingMetrics::default(),
            }
        }
        PointKind::Training {
            config,
            workload,
            iterations,
            optimized_embedding,
        } => {
            let spec = point.topology;
            let r = analytic_training_run_with_conditions(
                *config,
                workload.instantiate(spec.nodes()),
                spec,
                *iterations,
                *optimized_embedding,
                &point.conditions,
            )
            .expect("expanded point conditions are resolvable");
            let to_us = |cycles: f64| cycles / freq.hz() * 1e6;
            let gbps = if r.total_cycles > 0.0 {
                freq.gbps(r.network_bytes as f64 / spec.nodes() as f64 / r.total_cycles)
            } else {
                0.0
            };
            let total_u = r.total_cycles.round() as u64;
            let compute_u = r.compute_cycles.round() as u64;
            // An iteration is at least as long as its compute: the
            // analytic model adds exposed communication on top of the
            // compute span, never the other way around. A violation here
            // is a modeling bug, not something to clamp away silently —
            // the old `.min(total_u)` masked it and let reports claim a
            // 100 %-compute iteration that still had network time.
            debug_assert!(
                compute_u <= total_u,
                "analytic invariant violated: compute {compute_u} cycles > total {total_u} cycles"
            );
            Metrics {
                time_us: to_us(r.total_cycles),
                completion_cycles: total_u,
                gbps_per_npu: gbps,
                mem_traffic_bytes: r.mem_traffic_bytes,
                network_bytes: r.network_bytes,
                compute_us: to_us(r.compute_cycles),
                exposed_comm_us: to_us(r.exposed_cycles),
                past_schedules: 0,
                attribution: Attribution {
                    total_cycles: total_u,
                    compute_cycles: compute_u,
                    network_cycles: total_u.saturating_sub(compute_u),
                    ..Attribution::default()
                },
                serving: ServingMetrics::default(),
            }
        }
        PointKind::Serving {
            config,
            workload,
            spec,
        } => execute_serving(
            point,
            *config,
            workload,
            spec,
            ace_serve::ServingTier::Analytic,
            1,
        ),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::{BaselineSpec, EngineFamily, EngineSpec};
    use ace_net::TopologySpec;

    /// A scenario small enough to simulate quickly in tests.
    fn tiny() -> Scenario {
        let mut sc = Scenario::collective("tiny");
        sc.topologies = vec![TopologySpec::torus3(2, 1, 1).unwrap()];
        sc.engines = vec![EngineFamily::Ideal, EngineFamily::Baseline];
        sc.payload_bytes = vec![256 * 1024];
        sc.mem_gbps = vec![128.0, 450.0];
        sc.comm_sms = vec![6];
        sc
    }

    #[test]
    fn duplicates_collapse_into_cache_hits() {
        let sc = tiny();
        let out = run_scenario(
            &sc,
            RunnerOptions {
                threads: 1,
                ..Default::default()
            },
        )
        .unwrap();
        // Grid: 2 engines x 2 mem = 4 rows; ideal's two cells are one
        // unique point, so 3 unique simulations and 1 cache hit.
        assert_eq!(out.results.len(), 4);
        assert_eq!(out.executed, 3);
        assert_eq!(out.cache_hits, 1);
        assert!(!out.results[0].cache_hit);
        assert!(out.results[1].cache_hit);
        assert_eq!(out.results[0].metrics, out.results[1].metrics);
        assert!(out.results.iter().all(|r| r.fidelity == Tier::Exact));
    }

    #[test]
    fn second_run_is_fully_cached() {
        let sc = tiny();
        let runner = SweepRunner::new();
        let first = runner
            .run(
                &sc,
                RunnerOptions {
                    threads: 1,
                    ..Default::default()
                },
            )
            .unwrap();
        assert_eq!(first.executed, 3);
        let second = runner
            .run(
                &sc,
                RunnerOptions {
                    threads: 1,
                    ..Default::default()
                },
            )
            .unwrap();
        assert_eq!(second.executed, 0);
        assert_eq!(second.cache_hits, second.results.len());
        for (a, b) in first.results.iter().zip(&second.results) {
            assert_eq!(a.metrics, b.metrics);
        }
    }

    #[test]
    fn baseline_speedups_are_attached() {
        let mut sc = tiny();
        sc.baseline = Some(BaselineSpec::Engine(EngineSpec::Ideal));
        let out = run_scenario(
            &sc,
            RunnerOptions {
                threads: 1,
                ..Default::default()
            },
        )
        .unwrap();
        for r in &out.results {
            let s = r.speedup_vs_baseline.expect("speedup present");
            assert!(s > 0.0);
            if let PointKind::Collective {
                engine: EngineSpec::Ideal,
                ..
            } = r.point.kind
            {
                assert!((s - 1.0).abs() < 1e-12, "ideal vs itself must be 1.0");
            } else {
                // The ideal endpoint is an upper bound (modulo pacing noise).
                assert!(s <= 1.05, "baseline should not beat ideal: {s}");
            }
        }
    }

    #[test]
    fn baseline_outside_grid_is_executed() {
        let mut sc = tiny();
        // Baseline engine not in the grid: ACE.
        sc.baseline = Some(BaselineSpec::Engine(EngineSpec::Ace {
            dma_mem_gbps: 128.0,
            sram_mb: 4,
            fsms: 16,
        }));
        let out = run_scenario(
            &sc,
            RunnerOptions {
                threads: 1,
                ..Default::default()
            },
        )
        .unwrap();
        // 3 unique grid points + 1 baseline point.
        assert_eq!(out.executed, 4);
        assert!(out.results.iter().all(|r| r.speedup_vs_baseline.is_some()));
    }

    #[test]
    fn parallel_matches_serial() {
        let sc = tiny();
        let serial = run_scenario(
            &sc,
            RunnerOptions {
                threads: 1,
                ..Default::default()
            },
        )
        .unwrap();
        let parallel = run_scenario(
            &sc,
            RunnerOptions {
                threads: 4,
                ..Default::default()
            },
        )
        .unwrap();
        assert_eq!(serial.results.len(), parallel.results.len());
        for (a, b) in serial.results.iter().zip(&parallel.results) {
            assert_eq!(a.point, b.point);
            assert_eq!(a.metrics, b.metrics);
            assert_eq!(a.cache_hit, b.cache_hit);
        }
    }

    #[test]
    fn sim_threads_reports_are_byte_identical() {
        // The tentpole oracle at sweep level: CSV and JSON reports must
        // be byte-identical whether each exact simulation ran serial or
        // domain-partitioned, across all three topology families.
        let render = |sim_threads: usize| {
            let mut sc = tiny();
            sc.topologies = vec![
                TopologySpec::torus3(4, 2, 2).unwrap(),
                TopologySpec::Switch {
                    nodes: 8,
                    gbps: None,
                },
                TopologySpec::Hierarchical {
                    scale_up: 4,
                    scale_out: 2,
                },
            ];
            let out = run_scenario(
                &sc,
                RunnerOptions {
                    threads: 2,
                    sim_threads,
                },
            )
            .unwrap();
            (
                crate::report::to_csv_with_attribution(&out),
                crate::report::to_json_with_attribution(&out),
            )
        };
        let baseline = render(1);
        for sim_threads in [2, 4] {
            assert_eq!(
                render(sim_threads),
                baseline,
                "sim_threads={sim_threads} output diverged from serial"
            );
        }
    }

    #[test]
    fn sim_threads_training_is_byte_identical() {
        let run = |sim_threads: usize| {
            let mut sc = Scenario::training("t-simthreads");
            sc.topologies = vec![TopologySpec::torus3(4, 2, 2).unwrap()];
            sc.configs = vec![ace_system::SystemConfig::Ace];
            sc.iterations = 1;
            let out = run_scenario(
                &sc,
                RunnerOptions {
                    threads: 1,
                    sim_threads,
                },
            )
            .unwrap();
            crate::report::to_csv_with_attribution(&out)
        };
        let baseline = run(1);
        for sim_threads in [2, 4] {
            assert_eq!(run(sim_threads), baseline);
        }
    }

    #[test]
    fn serving_reports_are_deterministic() {
        // The serving acceptance oracle at sweep level: latency
        // percentiles are exact order statistics over a seeded arrival
        // process, so CSV and JSON must be byte-identical across worker
        // threads, across sim-thread domain counts, and across repeated
        // runs of the same seed.
        let scenario = || {
            let mut sc = Scenario::serving("serving-determinism");
            sc.topologies = vec![
                TopologySpec::torus3(2, 1, 1).unwrap(),
                TopologySpec::Switch {
                    nodes: 4,
                    gbps: None,
                },
            ];
            sc.arrival_rates = vec![800.0];
            sc.schedules = vec![
                ace_workloads::PipeSchedule::GPipe,
                ace_workloads::PipeSchedule::OneFOneB,
            ];
            sc.microbatches = vec![2];
            sc.stages = 2;
            sc.requests = 3;
            sc.decode_tokens = 1;
            sc.token_budget = 128;
            sc
        };
        let render = |threads: usize, sim_threads: usize| {
            let out = run_scenario(
                &scenario(),
                RunnerOptions {
                    threads,
                    sim_threads,
                },
            )
            .unwrap();
            (crate::report::to_csv(&out), crate::report::to_json(&out))
        };
        let baseline = render(1, 1);
        assert!(baseline.0.contains("1f1b"), "schedule axis missing");
        assert_eq!(render(4, 1), baseline, "worker threads changed rows");
        assert_eq!(render(1, 2), baseline, "sim threads changed rows");
        assert_eq!(render(1, 1), baseline, "same seed must replay exactly");
        // The latency columns carry live data: every row has a non-zero
        // ttft_p99_us (column index from the header, not hard-coded).
        let header: Vec<&str> = baseline.0.lines().next().unwrap().split(',').collect();
        let col = header.iter().position(|c| *c == "ttft_p99_us").unwrap();
        for row in baseline.0.lines().skip(1) {
            let v: f64 = row.split(',').nth(col).unwrap().parse().unwrap();
            assert!(v > 0.0, "zero ttft_p99_us in {row}");
        }
    }

    #[test]
    fn scenario_sim_threads_key_is_an_execution_hint() {
        // Parses, validates, and crucially does NOT change run points —
        // the cache must serve the same rows regardless of sim_threads.
        let sc = Scenario::from_toml_str(
            "name = \"hint\"\ntopologies = [\"2x1x1\"]\nengines = [\"ideal\"]\n\
             payloads = [\"256KB\"]\nsim_threads = 4\n",
        )
        .unwrap();
        assert_eq!(sc.sim_threads, 4);
        assert!(Scenario::from_toml_str("sim_threads = 0\n").is_err());
        let mut serial = sc.clone();
        serial.sim_threads = 1;
        assert_eq!(crate::grid::expand(&sc), crate::grid::expand(&serial));

        // Warm the cache at sim_threads=4, then read it back at 1: the
        // second run must be fully cache-served.
        let runner = SweepRunner::new();
        let first = runner
            .run(
                &sc,
                RunnerOptions {
                    threads: 1,
                    sim_threads: 0,
                },
            )
            .unwrap();
        assert_eq!(first.executed, 1);
        let second = runner
            .run(
                &serial,
                RunnerOptions {
                    threads: 1,
                    sim_threads: 0,
                },
            )
            .unwrap();
        assert_eq!(second.executed, 0, "sim_threads must not split the cache");
    }

    #[test]
    fn training_points_execute() {
        let mut sc = Scenario::training("t");
        sc.topologies = vec![TopologySpec::torus3(2, 1, 1).unwrap()];
        sc.configs = vec![ace_system::SystemConfig::Ace];
        sc.iterations = 1;
        let out = run_scenario(
            &sc,
            RunnerOptions {
                threads: 1,
                ..Default::default()
            },
        )
        .unwrap();
        assert_eq!(out.results.len(), 1);
        let m = out.results[0].metrics;
        assert!(m.time_us > 0.0);
        assert!(m.compute_us > 0.0);
    }

    #[test]
    fn analytic_fidelity_runs_without_the_executor() {
        let mut sc = tiny();
        sc.fidelity = Fidelity::Analytic;
        let out = run_scenario(
            &sc,
            RunnerOptions {
                threads: 1,
                ..Default::default()
            },
        )
        .unwrap();
        assert_eq!(out.fidelity, Fidelity::Analytic);
        assert_eq!(out.executed, 0);
        assert_eq!(out.analytic_executed, 3);
        for r in &out.results {
            assert_eq!(r.fidelity, Tier::Analytic);
            assert!(r.metrics.time_us > 0.0);
            assert_eq!(r.metrics.past_schedules, 0);
        }
    }

    #[test]
    fn analytic_and_exact_never_alias_in_the_cache() {
        let sc = tiny();
        let runner = SweepRunner::new();
        let exact = runner
            .run(
                &sc,
                RunnerOptions {
                    threads: 1,
                    ..Default::default()
                },
            )
            .unwrap();
        let mut sca = sc.clone();
        sca.fidelity = Fidelity::Analytic;
        let analytic = runner
            .run(
                &sca,
                RunnerOptions {
                    threads: 1,
                    ..Default::default()
                },
            )
            .unwrap();
        // Both tiers executed fresh — the exact rows did not satisfy the
        // analytic query or vice versa.
        assert_eq!(analytic.analytic_executed, 3);
        // And the per-tier lookups disagree on the metrics (the α–β
        // estimate is not the event-driven result).
        let p = &exact.results[2].point; // a baseline-engine cell
        let e = runner.cache().get_tier(Tier::Exact, p).unwrap();
        let a = runner.cache().get_tier(Tier::Analytic, p).unwrap();
        assert_ne!(
            e.completion_cycles, a.completion_cycles,
            "tiers should differ on {p:?}"
        );
    }

    #[test]
    fn hybrid_reduces_exact_simulations_and_pins_the_frontier() {
        // A design-space-like grid: one engine family, SRAM x FSM axes.
        let mut sc = Scenario::collective("hybrid-test");
        sc.topologies = vec![TopologySpec::torus3(2, 1, 1).unwrap()];
        sc.engines = vec![EngineFamily::Ace];
        sc.payload_bytes = vec![1 << 20];
        sc.mem_gbps = vec![128.0];
        sc.sram_mb = vec![1, 2, 4, 8];
        sc.fsms = vec![4, 16];
        sc.baseline = Some(BaselineSpec::Engine(EngineSpec::Ace {
            dma_mem_gbps: 128.0,
            sram_mb: 4,
            fsms: 16,
        }));

        let exact = run_scenario(
            &sc,
            RunnerOptions {
                threads: 1,
                ..Default::default()
            },
        )
        .unwrap();
        let mut sch = sc.clone();
        sch.fidelity = Fidelity::Hybrid;
        let hybrid = run_scenario(
            &sch,
            RunnerOptions {
                threads: 2,
                ..Default::default()
            },
        )
        .unwrap();

        assert_eq!(hybrid.fidelity, Fidelity::Hybrid);
        assert_eq!(hybrid.results.len(), exact.results.len());
        // The prefilter must actually prune.
        assert!(
            hybrid.executed < exact.executed,
            "hybrid executed {} >= exact {}",
            hybrid.executed,
            exact.executed
        );
        assert!(hybrid.analytic_executed > 0);
        // Exact-tier rows are byte-identical to the full exact run.
        for (h, e) in hybrid.results.iter().zip(&exact.results) {
            assert_eq!(h.point, e.point);
            if h.fidelity == Tier::Exact {
                assert_eq!(
                    h.metrics, e.metrics,
                    "re-simulated cell moved: {:?}",
                    h.point
                );
            }
        }
        // The exact run's Pareto frontier survives: every frontier cell
        // of the exact outcome was re-simulated exactly by hybrid.
        let rows: Vec<(&RunPoint, f64)> = exact
            .results
            .iter()
            .map(|r| (&r.point, r.metrics.time_us))
            .collect();
        let frontier = crate::fidelity::pareto_frontier(&rows);
        for (i, &f) in frontier.iter().enumerate() {
            if f {
                assert_eq!(
                    hybrid.results[i].fidelity,
                    Tier::Exact,
                    "frontier cell {:?} was left analytic",
                    hybrid.results[i].point
                );
            }
        }
    }

    #[test]
    fn attribution_travels_through_the_sweep() {
        for fidelity in [Fidelity::Exact, Fidelity::Analytic, Fidelity::Hybrid] {
            let mut sc = tiny();
            sc.fidelity = fidelity;
            let out = run_scenario(
                &sc,
                RunnerOptions {
                    threads: 1,
                    ..Default::default()
                },
            )
            .unwrap();
            for r in &out.results {
                let a = r.metrics.attribution;
                assert!(a.conserves(), "{fidelity:?} {:?}: {a:?}", r.point);
                assert_eq!(
                    a.total_cycles, r.metrics.completion_cycles,
                    "{fidelity:?} {:?}",
                    r.point
                );
            }
        }
    }

    #[test]
    fn progress_counts_every_cell_and_terminates_at_total() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        for threads in [1, 4] {
            let sc = tiny();
            let runner = SweepRunner::new();
            let calls = AtomicUsize::new(0);
            let out = runner
                .run_with_progress(
                    &sc,
                    RunnerOptions {
                        threads,
                        ..Default::default()
                    },
                    &|p| {
                        calls.fetch_add(1, Ordering::Relaxed);
                        assert!(p.done <= p.total);
                        assert!(p.cached <= p.done);
                    },
                )
                .unwrap();
            // One batch-start call plus one call per executed cell.
            assert_eq!(calls.load(Ordering::Relaxed), out.executed + 1);
        }
    }

    #[test]
    fn warm_progress_reports_a_terminal_line() {
        // The satellite fix: a fully cached run used to render `0/N` with
        // no terminal callback at all. Now the batch-start call reports
        // every cache hit and already satisfies `done == total`.
        let sc = tiny();
        let runner = SweepRunner::new();
        runner
            .run(
                &sc,
                RunnerOptions {
                    threads: 1,
                    ..Default::default()
                },
            )
            .unwrap();
        let seen = Mutex::new(Vec::new());
        let out = runner
            .run_with_progress(
                &sc,
                RunnerOptions {
                    threads: 1,
                    ..Default::default()
                },
                &|p| {
                    seen.lock().unwrap().push(p);
                },
            )
            .unwrap();
        assert_eq!(out.executed, 0);
        let seen = seen.into_inner().unwrap();
        assert_eq!(seen.len(), 1, "warm batch fires exactly once");
        assert!(seen[0].finished(), "warm progress must report 100%");
        assert_eq!(seen[0].done, seen[0].total);
        assert_eq!(seen[0].cached, 3, "unique cached cells are reported");
        assert_eq!(seen[0].executed(), 0);
    }

    #[test]
    fn hybrid_is_thread_deterministic() {
        let mut sc = Scenario::collective("hybrid-det");
        sc.topologies = vec![TopologySpec::torus3(2, 1, 1).unwrap()];
        sc.engines = vec![EngineFamily::Ace, EngineFamily::Baseline];
        sc.payload_bytes = vec![512 * 1024];
        sc.mem_gbps = vec![64.0, 128.0];
        sc.sram_mb = vec![1, 4];
        sc.fidelity = Fidelity::Hybrid;
        let a = run_scenario(
            &sc,
            RunnerOptions {
                threads: 1,
                ..Default::default()
            },
        )
        .unwrap();
        let b = run_scenario(
            &sc,
            RunnerOptions {
                threads: 4,
                ..Default::default()
            },
        )
        .unwrap();
        assert_eq!(a.results.len(), b.results.len());
        for (x, y) in a.results.iter().zip(&b.results) {
            assert_eq!(x.point, y.point);
            assert_eq!(x.metrics, y.metrics);
            assert_eq!(x.fidelity, y.fidelity);
            assert_eq!(x.cache_hit, y.cache_hit);
            assert_eq!(x.speedup_vs_baseline, y.speedup_vs_baseline);
        }
    }
}
