//! In-process event bus: typed broadcast events plus coalescing
//! latest-generation-wins submission slots.
//!
//! The bus is the nervous system of the resident sweep service
//! ([`crate::scheduler`], [`crate::service`]). It is a **broadcast +
//! watch hybrid** built on std channels only:
//!
//! * **Broadcast** — every [`Subscription`] receives every published
//!   [`BusEvent`] ([`EventBus::publish`] clones the event into each
//!   subscriber's unbounded `mpsc` channel, so a slow or abandoned
//!   subscriber never blocks a worker). Completion events
//!   ([`BusEvent::CellCompleted`], [`BusEvent::JobFinished`]) drive both
//!   the live CLI progress line and the daemon's streaming protocol.
//! * **Watch / coalescing** — one latest-generation-wins slot per
//!   scenario *name*: [`EventBus::begin_generation`] bumps the slot, and
//!   workers consult [`EventBus::is_current`] before executing each
//!   cell, so re-submitting an edited scenario supersedes the stale
//!   generation instead of queueing behind it. Superseded jobs observe a
//!   [`BusEvent::JobSuperseded`] event and stop.
//!
//! Subscribers that drop their [`Subscription`] are pruned lazily on the
//! next publish.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc::{self, Receiver, RecvTimeoutError, Sender};
use std::sync::Mutex;
use std::time::Duration;

use crate::fidelity::{Fidelity, Tier};
use crate::grid::RunPoint;
use crate::runner::Metrics;
use crate::scenario::SweepMode;

/// A typed event broadcast on the [`EventBus`].
///
/// Events are self-describing (they carry the job id, scenario name, and
/// — for cells — the full [`RunPoint`] and [`Metrics`], including the
/// bottleneck [`ace_trace::Attribution`]), so a subscriber can render
/// progress, stream protocol messages, or aggregate statistics without
/// any side lookups.
#[derive(Debug, Clone)]
pub enum BusEvent {
    /// A submitted scenario was validated and assigned a job id and a
    /// coalescing generation.
    JobAccepted {
        /// Scheduler-assigned job id (monotonic per scheduler).
        job: u64,
        /// Scenario name — the coalescing key.
        scenario: String,
        /// Generation this submission owns; a later submission of the
        /// same scenario name bumps it and supersedes this job.
        generation: u64,
        /// Sweep mode of the job.
        mode: SweepMode,
        /// Fidelity the job will run at.
        fidelity: Fidelity,
        /// Grid cells in the job (duplicates included).
        cells: usize,
    },
    /// An execution batch was queued: `queued` unique cells will run in
    /// `tier`, `cached` were already served by the cache. Fires even when
    /// `queued` is zero, so fully-warm runs still render a progress line.
    BatchStarted {
        /// Owning job.
        job: u64,
        /// Execution tier of the batch.
        tier: Tier,
        /// Unique cells queued for execution.
        queued: usize,
        /// Unique cells already satisfied by the cache.
        cached: usize,
    },
    /// A freshly executed cell completed. Carries the full metrics,
    /// including the per-pipe bottleneck attribution.
    CellCompleted {
        /// Owning job.
        job: u64,
        /// Tier that executed the cell.
        tier: Tier,
        /// Completion ordinal within the batch (1-based; completion
        /// order, not grid order, under a multi-worker pool).
        index: usize,
        /// Cells queued in the batch.
        total: usize,
        /// The executed grid cell.
        point: RunPoint,
        /// Simulated (or estimated) metrics, attribution included.
        /// Boxed to keep the event enum's variants close in size.
        metrics: Box<Metrics>,
    },
    /// A cell's executor panicked; the owning job aborts.
    CellFailed {
        /// Owning job.
        job: u64,
        /// Tier the cell ran in.
        tier: Tier,
        /// Human-readable cell label.
        label: String,
        /// Panic payload rendered as text.
        error: String,
    },
    /// The job was superseded by a newer generation of the same scenario
    /// name (latest-generation-wins coalescing).
    JobSuperseded {
        /// The superseded job.
        job: u64,
        /// Scenario name.
        scenario: String,
        /// The stale generation the job held.
        generation: u64,
    },
    /// The job ran to completion; its [`crate::SweepOutcome`] is
    /// available to the submitter.
    JobFinished {
        /// The finished job.
        job: u64,
        /// Scenario name.
        scenario: String,
        /// Grid rows in the outcome.
        points: usize,
        /// Cells executed by the event-driven tier this run.
        executed: usize,
        /// Cells estimated by the α–β tier this run.
        analytic_executed: usize,
        /// Rows served from the cache.
        cache_hits: usize,
    },
    /// Cache occupancy after a finished job — lets an observer watch the
    /// resident cache grow across submissions.
    CacheStats {
        /// Total cached `(tier, point)` entries.
        entries: usize,
        /// Entries in the exact tier.
        exact: usize,
        /// Entries in the analytic tier.
        analytic: usize,
    },
}

impl BusEvent {
    /// The job id the event belongs to, when it is job-scoped
    /// ([`BusEvent::CacheStats`] is bus-global).
    pub fn job(&self) -> Option<u64> {
        match self {
            BusEvent::JobAccepted { job, .. }
            | BusEvent::BatchStarted { job, .. }
            | BusEvent::CellCompleted { job, .. }
            | BusEvent::CellFailed { job, .. }
            | BusEvent::JobSuperseded { job, .. }
            | BusEvent::JobFinished { job, .. } => Some(*job),
            BusEvent::CacheStats { .. } => None,
        }
    }
}

/// A live subscription to an [`EventBus`]. Dropping it unsubscribes
/// (lazily, on the bus's next publish).
#[derive(Debug)]
pub struct Subscription {
    pub(crate) id: u64,
    rx: Receiver<BusEvent>,
}

impl Subscription {
    /// Blocks until the next event. `None` when the bus (and every
    /// publisher) is gone.
    pub fn recv(&self) -> Option<BusEvent> {
        self.rx.recv().ok()
    }

    /// [`recv`](Subscription::recv) with a timeout; `None` on timeout or
    /// disconnection.
    pub fn recv_timeout(&self, timeout: Duration) -> Option<BusEvent> {
        match self.rx.recv_timeout(timeout) {
            Ok(ev) => Some(ev),
            Err(RecvTimeoutError::Timeout) | Err(RecvTimeoutError::Disconnected) => None,
        }
    }

    /// Drains any already-buffered events without blocking.
    pub fn try_iter(&self) -> impl Iterator<Item = BusEvent> + '_ {
        self.rx.try_iter()
    }
}

/// The broadcast + watch hybrid event bus (see the [module
/// docs](self)).
#[derive(Debug, Default)]
pub struct EventBus {
    subs: Mutex<Vec<(u64, Sender<BusEvent>)>>,
    next_sub: AtomicU64,
    generations: Mutex<HashMap<String, u64>>,
}

impl EventBus {
    /// A bus with no subscribers and no generations.
    pub fn new() -> EventBus {
        EventBus::default()
    }

    /// Registers a new subscriber; it receives every event published
    /// after this call.
    pub fn subscribe(&self) -> Subscription {
        let (tx, rx) = mpsc::channel();
        let id = self.next_sub.fetch_add(1, Ordering::Relaxed);
        self.subs.lock().expect("bus subs lock").push((id, tx));
        Subscription { id, rx }
    }

    /// Broadcasts `event` to every live subscriber.
    pub fn publish(&self, event: &BusEvent) {
        self.publish_excluding(None, event);
    }

    /// Broadcasts `event` to every live subscriber except `except` — the
    /// spelling a publisher uses for events it also handles locally, so
    /// its own subscription does not echo them back.
    pub fn publish_excluding(&self, except: Option<u64>, event: &BusEvent) {
        let mut subs = self.subs.lock().expect("bus subs lock");
        subs.retain(|(id, tx)| {
            if Some(*id) == except {
                return true;
            }
            tx.send(event.clone()).is_ok()
        });
    }

    /// Number of live subscribers (stale ones are pruned on publish, so
    /// this may briefly over-count).
    pub fn subscriber_count(&self) -> usize {
        self.subs.lock().expect("bus subs lock").len()
    }

    /// Bumps the coalescing slot for `scenario` and returns the new
    /// generation. Any job holding an older generation of the same name
    /// is superseded: workers stop claiming its cells.
    pub fn begin_generation(&self, scenario: &str) -> u64 {
        let mut map = self.generations.lock().expect("bus generations lock");
        let slot = map.entry(scenario.to_string()).or_insert(0);
        *slot += 1;
        *slot
    }

    /// The current generation of `scenario` (0 when never submitted).
    pub fn current_generation(&self, scenario: &str) -> u64 {
        self.generations
            .lock()
            .expect("bus generations lock")
            .get(scenario)
            .copied()
            .unwrap_or(0)
    }

    /// Whether `generation` is still the latest for `scenario` — the
    /// watch-style check workers make before executing each cell.
    pub fn is_current(&self, scenario: &str, generation: u64) -> bool {
        self.current_generation(scenario) == generation
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stats(entries: usize) -> BusEvent {
        BusEvent::CacheStats {
            entries,
            exact: entries,
            analytic: 0,
        }
    }

    #[test]
    fn broadcast_reaches_every_subscriber() {
        let bus = EventBus::new();
        let a = bus.subscribe();
        let b = bus.subscribe();
        bus.publish(&stats(7));
        for sub in [&a, &b] {
            match sub.recv() {
                Some(BusEvent::CacheStats { entries, .. }) => assert_eq!(entries, 7),
                other => panic!("expected CacheStats, got {other:?}"),
            }
        }
    }

    #[test]
    fn dropped_subscribers_are_pruned() {
        let bus = EventBus::new();
        let a = bus.subscribe();
        let b = bus.subscribe();
        drop(a);
        bus.publish(&stats(1));
        assert_eq!(bus.subscriber_count(), 1);
        assert!(matches!(b.recv(), Some(BusEvent::CacheStats { .. })));
    }

    #[test]
    fn publish_excluding_skips_the_publisher() {
        let bus = EventBus::new();
        let me = bus.subscribe();
        let other = bus.subscribe();
        bus.publish_excluding(Some(me.id), &stats(2));
        assert!(matches!(other.recv(), Some(BusEvent::CacheStats { .. })));
        assert!(me.recv_timeout(Duration::from_millis(10)).is_none());
    }

    #[test]
    fn generations_coalesce_latest_wins() {
        let bus = EventBus::new();
        assert_eq!(bus.current_generation("design-space"), 0);
        let g1 = bus.begin_generation("design-space");
        assert_eq!(g1, 1);
        assert!(bus.is_current("design-space", g1));
        let g2 = bus.begin_generation("design-space");
        assert_eq!(g2, 2);
        assert!(!bus.is_current("design-space", g1), "g1 must be stale");
        assert!(bus.is_current("design-space", g2));
        // Other scenario names hold independent slots.
        let other = bus.begin_generation("membw");
        assert_eq!(other, 1);
        assert!(bus.is_current("design-space", g2));
    }
}
