//! Fidelity tiers: exact event-driven simulation, the closed-form α–β
//! estimator, and the hybrid prefilter that combines them.
//!
//! A sweep runs at one of three fidelities:
//!
//! * **exact** — every grid cell goes through the event-driven executor
//!   (the historical behavior, still the default);
//! * **analytic** — every cell is estimated by the α–β model
//!   ([`ace_collectives::analytic`]), opening grids 1–2 orders of
//!   magnitude larger than the executor can sweep;
//! * **hybrid** — the whole grid is triaged analytically, then only the
//!   *interesting* cells re-run through the exact executor: the
//!   analytic Pareto frontier of each cell group (cheapest
//!   configuration per achieved time) plus a configurable top-K % of
//!   fastest cells per group, plus the scenario baseline. Everything
//!   else keeps its analytic estimate, flagged per row in the
//!   `fidelity` report column.
//!
//! Cache entries are keyed by `(tier, point)` — see [`Tier`] — so an
//! analytic row can never be served where an exact result is expected,
//! in memory or in a persisted cache file.

use std::fmt;
use std::str::FromStr;

use crate::grid::{PointKind, RunPoint};
use crate::runner::Metrics;
use crate::scenario::EngineSpec;

/// Which simulation tier a sweep (or a cached row) uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Fidelity {
    /// Event-driven simulation for every cell.
    #[default]
    Exact,
    /// Closed-form α–β estimation for every cell.
    Analytic,
    /// Analytic triage + exact re-simulation of the Pareto frontier and
    /// the top-K % fastest cells per group.
    Hybrid,
}

impl Fidelity {
    /// All fidelities, for help text.
    pub const ALL: [Fidelity; 3] = [Fidelity::Exact, Fidelity::Analytic, Fidelity::Hybrid];

    /// The scenario-file / CLI spelling.
    pub fn name(self) -> &'static str {
        match self {
            Fidelity::Exact => "exact",
            Fidelity::Analytic => "analytic",
            Fidelity::Hybrid => "hybrid",
        }
    }
}

impl fmt::Display for Fidelity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

impl FromStr for Fidelity {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let lower = s.trim().to_ascii_lowercase();
        Fidelity::ALL
            .into_iter()
            .find(|f| f.name() == lower)
            .ok_or_else(|| {
                let names: Vec<&str> = Fidelity::ALL.iter().map(|f| f.name()).collect();
                let hint = ace_toml::did_you_mean(&lower, &names);
                format!(
                    "unknown fidelity '{s}' (expected one of {}){hint}",
                    names.join(", ")
                )
            })
    }
}

/// The tier a concrete result belongs to. [`Fidelity::Hybrid`] is a
/// *sweep* strategy, not a result kind: every row it produces is either
/// exact or analytic.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub enum Tier {
    /// Produced by the event-driven executor.
    #[default]
    Exact,
    /// Produced by the α–β estimator.
    Analytic,
}

impl Tier {
    /// The cache-file / report-column spelling.
    pub fn name(self) -> &'static str {
        match self {
            Tier::Exact => "exact",
            Tier::Analytic => "analytic",
        }
    }
}

impl fmt::Display for Tier {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

impl FromStr for Tier {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "exact" => Ok(Tier::Exact),
            "analytic" => Ok(Tier::Analytic),
            other => Err(format!("unknown result tier '{other}'")),
        }
    }
}

/// The group a grid cell competes in for hybrid selection: cells are
/// only compared against cells sweeping the *same* collective (or
/// workload) on the same fabric — comparing an all-gather against an
/// all-reduce would be meaningless.
fn selection_group(point: &RunPoint) -> (String, u8) {
    match &point.kind {
        PointKind::Collective {
            op, payload_bytes, ..
        } => (format!("{}|{op}|{payload_bytes}", point.topology), 0),
        PointKind::Training { workload, .. } => (format!("{}|{workload}", point.topology), 1),
        PointKind::Serving { workload, spec, .. } => (
            format!(
                "{}|{workload}|{}|{}",
                point.topology, spec.arrival, spec.rate_rps
            ),
            2,
        ),
    }
}

/// The resource-cost coordinates of a cell, for Pareto dominance:
/// smaller is cheaper. Engine families live in disjoint cost spaces
/// (an SRAM byte is not comparable to an SM), so the leading
/// discriminant keeps them apart. Training configs are alternatives
/// with no resource ordering: their cost vectors are all equal, which
/// makes dominance a pure time comparison (the frontier of a 1-D
/// objective is its minimum, tolerance-banded).
fn cost_axes(point: &RunPoint) -> Vec<f64> {
    match &point.kind {
        PointKind::Collective { engine, .. } => match *engine {
            EngineSpec::Ideal => vec![0.0],
            EngineSpec::Baseline { mem_gbps, comm_sms } => {
                vec![1.0, mem_gbps, f64::from(comm_sms)]
            }
            EngineSpec::Ace {
                dma_mem_gbps,
                sram_mb,
                fsms,
            } => vec![2.0, dma_mem_gbps, sram_mb as f64, fsms as f64],
        },
        PointKind::Training { .. } => vec![3.0],
        // Schedules and microbatch counts are alternatives, not priced
        // resources — like training configs, dominance reduces to time.
        PointKind::Serving { .. } => vec![4.0],
    }
}

/// Probe points for the sensitivity check behind tie pruning: the
/// dominating (cheaper) cell with each of its differing resource axes
/// halved once more. If the analytic model says the halved resource
/// would *not* slow the dominator down, the resource is genuinely slack
/// and the tie between dominator and dominated is trustworthy; if it
/// would, the pair sits near a bottleneck crossover where model error
/// could invert the exact ordering, so the dominated cell is
/// re-simulated anyway.
fn probe_points(dominator: &RunPoint, dominated: &RunPoint) -> Vec<RunPoint> {
    let (
        PointKind::Collective {
            engine: ej,
            op,
            payload_bytes,
        },
        PointKind::Collective { engine: ei, .. },
    ) = (&dominator.kind, &dominated.kind)
    else {
        return Vec::new();
    };
    let mut probes = Vec::new();
    let mut push = |engine: EngineSpec| {
        probes.push(RunPoint {
            topology: dominator.topology,
            conditions: dominator.conditions.clone(),
            kind: PointKind::Collective {
                engine,
                op: *op,
                payload_bytes: *payload_bytes,
            },
        });
    };
    match (*ej, *ei) {
        (
            EngineSpec::Baseline {
                mem_gbps: mj,
                comm_sms: sj,
            },
            EngineSpec::Baseline {
                mem_gbps: mi,
                comm_sms: si,
            },
        ) => {
            if mj < mi {
                push(EngineSpec::Baseline {
                    mem_gbps: mj / 2.0,
                    comm_sms: sj,
                });
            }
            if sj < si && sj > 1 {
                push(EngineSpec::Baseline {
                    mem_gbps: mj,
                    comm_sms: (sj / 2).max(1),
                });
            }
        }
        (
            EngineSpec::Ace {
                dma_mem_gbps: mj,
                sram_mb: rj,
                fsms: fj,
            },
            EngineSpec::Ace {
                dma_mem_gbps: mi,
                sram_mb: ri,
                fsms: fi,
            },
        ) => {
            if mj < mi {
                push(EngineSpec::Ace {
                    dma_mem_gbps: mj / 2.0,
                    sram_mb: rj,
                    fsms: fj,
                });
            }
            if rj < ri && rj > 1 {
                push(EngineSpec::Ace {
                    dma_mem_gbps: mj,
                    sram_mb: (rj / 2).max(1),
                    fsms: fj,
                });
            }
            if fj < fi && fj > 1 {
                push(EngineSpec::Ace {
                    dma_mem_gbps: mj,
                    sram_mb: rj,
                    fsms: (fj / 2).max(1),
                });
            }
        }
        _ => {}
    }
    probes
}

/// Relative time tolerance of Pareto dominance. Design-space grids are
/// full of near-ties — once a resource stops being the bottleneck, more
/// of it moves completion time by fractions of a percent (simulator
/// pacing noise) — and a frontier that splits those hairs is not
/// reproducible across fidelity tiers. A cell is therefore dominated by
/// any strictly cheaper cell that is at least as fast *within this
/// relative tolerance*: the frontier keeps the cheapest configuration of
/// every genuinely distinct performance level.
pub const FRONTIER_TIME_TOLERANCE: f64 = 0.01;

/// Relative reaction threshold of the tie-pruning sensitivity probe: a
/// halved resource that moves the analytic estimate by more than this
/// marks the pair as sitting near a bottleneck crossover.
pub const PROBE_SLACK_TOLERANCE: f64 = 0.02;

/// Hybrid pruning margin for equal-cost cells (training configs), which
/// have no resource axis to sensitivity-probe: a cell is only left
/// analytic when some alternative is analytically faster by more than
/// this — sized to cover the training tier's worst documented model
/// error (~19 %, see `BENCH_analytic.json`), so a model-error inversion
/// cannot prune the truly fastest configuration.
pub const EQUAL_COST_PRUNE_MARGIN: f64 = 0.25;

/// Whether cost/time pair `a` dominates `b`: same cost space, no cost
/// axis worse and at least one strictly better, and at least as fast
/// within [`FRONTIER_TIME_TOLERANCE`]. Cells with *equal* costs
/// (training configs) compare on time alone: the faster one dominates
/// when it wins by more than the tolerance.
fn dominates(a: (&[f64], f64), b: (&[f64], f64)) -> bool {
    let (ca, ta) = a;
    let (cb, tb) = b;
    if ca.len() != cb.len() || ca.first() != cb.first() {
        return false;
    }
    let mut strictly = false;
    let mut equal = true;
    for (x, y) in ca.iter().zip(cb).skip(1) {
        if x > y {
            return false;
        }
        if x < y {
            strictly = true;
            equal = false;
        }
    }
    if equal {
        return ta < tb * (1.0 - FRONTIER_TIME_TOLERANCE);
    }
    strictly && ta <= tb * (1.0 + FRONTIER_TIME_TOLERANCE)
}

/// Pareto-frontier membership over `(point, time)` pairs: for each cell,
/// whether no other cell in the same selection group dominates it
/// (strictly cheaper on some resource axis, no axis costlier, and at
/// least as fast within [`FRONTIER_TIME_TOLERANCE`]). Deduplicated cells
/// share a verdict.
pub fn pareto_frontier(rows: &[(&RunPoint, f64)]) -> Vec<bool> {
    let costs: Vec<Vec<f64>> = rows.iter().map(|(p, _)| cost_axes(p)).collect();
    let groups: Vec<(String, u8)> = rows.iter().map(|(p, _)| selection_group(p)).collect();
    let mut on_frontier = vec![true; rows.len()];
    for i in 0..rows.len() {
        for j in 0..rows.len() {
            if i == j || groups[i] != groups[j] || rows[i].0 == rows[j].0 {
                continue;
            }
            if dominates((&costs[j], rows[j].1), (&costs[i], rows[i].1)) {
                on_frontier[i] = false;
                break;
            }
        }
    }
    on_frontier
}

/// Selects the grid indices hybrid fidelity re-simulates exactly: the
/// analytic Pareto frontier of every selection group, every dominated
/// cell whose tie fails the sensitivity probe (`probe` evaluates the
/// analytic time of an off-grid point, in the same µs unit as the
/// metrics), plus the fastest `keep_top_pct` % of each
/// group (rounded up, so every group keeps at least one cell).
/// `analytic` pairs each grid cell with its analytic metrics, in grid
/// order; the returned flags are in the same order. Deterministic: ties
/// broken by grid position.
pub fn select_exact_cells(
    analytic: &[(RunPoint, Metrics)],
    keep_top_pct: f64,
    probe: &dyn Fn(&RunPoint) -> f64,
) -> Vec<bool> {
    let rows: Vec<(&RunPoint, f64)> = analytic.iter().map(|(p, m)| (p, m.time_us)).collect();
    let costs: Vec<Vec<f64>> = rows.iter().map(|(p, _)| cost_axes(p)).collect();
    let row_groups: Vec<(String, u8)> = rows.iter().map(|(p, _)| selection_group(p)).collect();
    let mut keep = vec![true; rows.len()];
    for i in 0..rows.len() {
        let dominator = (0..rows.len()).find(|&j| {
            j != i
                && row_groups[j] == row_groups[i]
                && rows[j].0 != rows[i].0
                && dominates((&costs[j], rows[j].1), (&costs[i], rows[i].1))
        });
        let Some(j) = dominator else { continue };
        let trusted = if costs[i] == costs[j] {
            // Equal-cost cells (training configs) have no resource axis
            // to probe: the analytic *ordering* is all we have, and the
            // training tier's documented model error reaches ~19 %
            // (BENCH_analytic.json). Only trust a prune when the
            // dominator's analytic win clearly exceeds that error band —
            // closer races are re-simulated exactly.
            rows[j].1 < rows[i].1 * (1.0 - EQUAL_COST_PRUNE_MARGIN)
        } else {
            // Trust the analytic tie only if every halved-resource probe
            // of the dominator leaves its estimate unmoved — otherwise
            // the pair sits near a bottleneck crossover and gets
            // re-simulated.
            probe_points(rows[j].0, rows[i].0)
                .iter()
                .all(|p| probe(p) <= rows[j].1 * (1.0 + PROBE_SLACK_TOLERANCE))
        };
        if trusted {
            keep[i] = false;
        }
    }

    // Top-K % fastest per group (on unique cells; duplicates inherit).
    let groups = row_groups;
    let mut group_names: Vec<&(String, u8)> = Vec::new();
    for g in &groups {
        if !group_names.contains(&g) {
            group_names.push(g);
        }
    }
    for g in group_names {
        // Unique cells of the group, first occurrence wins.
        let mut members: Vec<usize> = Vec::new();
        for (i, gi) in groups.iter().enumerate() {
            if gi == g && !members.iter().any(|&m| rows[m].0 == rows[i].0) {
                members.push(i);
            }
        }
        let quota = ((members.len() as f64 * keep_top_pct / 100.0).ceil() as usize).max(1);
        members.sort_by(|&a, &b| {
            rows[a]
                .1
                .partial_cmp(&rows[b].1)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then(a.cmp(&b))
        });
        for &i in members.iter().take(quota) {
            keep[i] = true;
        }
    }

    // Duplicate cells (dropped knobs) share the verdict of their first
    // occurrence, so a kept cell is kept everywhere it appears.
    for i in 0..analytic.len() {
        if keep[i] {
            let p = &analytic[i].0;
            for (j, flag) in keep.iter_mut().enumerate() {
                if analytic[j].0 == *p {
                    *flag = true;
                }
            }
        }
    }
    keep
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::grid::PointKind;
    use ace_collectives::CollectiveOp;
    use ace_net::TopologySpec;

    fn ace_point(sram: u64, fsms: usize) -> RunPoint {
        RunPoint {
            topology: TopologySpec::torus3(4, 2, 2).unwrap(),
            conditions: ace_system::RunConditions::default(),
            kind: PointKind::Collective {
                engine: EngineSpec::Ace {
                    dma_mem_gbps: 128.0,
                    sram_mb: sram,
                    fsms,
                },
                op: CollectiveOp::AllReduce,
                payload_bytes: 64 << 20,
            },
        }
    }

    fn metrics(time_us: f64) -> Metrics {
        Metrics {
            time_us,
            completion_cycles: (time_us * 1000.0) as u64,
            gbps_per_npu: 0.0,
            mem_traffic_bytes: 0,
            network_bytes: 0,
            compute_us: 0.0,
            exposed_comm_us: 0.0,
            past_schedules: 0,
            attribution: ace_trace::Attribution::default(),
            serving: crate::runner::ServingMetrics::default(),
        }
    }

    #[test]
    fn fidelity_parses_with_hints() {
        assert_eq!("exact".parse::<Fidelity>().unwrap(), Fidelity::Exact);
        assert_eq!("ANALYTIC".parse::<Fidelity>().unwrap(), Fidelity::Analytic);
        assert_eq!("hybrid".parse::<Fidelity>().unwrap(), Fidelity::Hybrid);
        let e = "hybird".parse::<Fidelity>().unwrap_err();
        assert!(e.contains("did you mean 'hybrid'"), "{e}");
        assert_eq!(Fidelity::default(), Fidelity::Exact);
    }

    #[test]
    fn tier_round_trips() {
        for t in [Tier::Exact, Tier::Analytic] {
            assert_eq!(t.name().parse::<Tier>().unwrap(), t);
        }
        assert!("hybrid".parse::<Tier>().is_err());
    }

    #[test]
    fn dominated_cells_leave_the_frontier() {
        // (sram, fsms, time): 4/16 fast+mid-cost, 8/16 same speed but
        // pricier (dominated), 1/4 slow but cheapest (frontier).
        let pts = [ace_point(4, 16), ace_point(8, 16), ace_point(1, 4)];
        let rows: Vec<(&RunPoint, f64)> =
            vec![(&pts[0], 100.0), (&pts[1], 100.0), (&pts[2], 500.0)];
        let front = pareto_frontier(&rows);
        assert_eq!(front, vec![true, false, true]);
    }

    #[test]
    fn frontier_ignores_cross_group_cells() {
        // Same cost/time but different payload: not comparable.
        let a = ace_point(8, 16);
        let mut b = ace_point(4, 16);
        if let PointKind::Collective { payload_bytes, .. } = &mut b.kind {
            *payload_bytes = 1 << 20;
        }
        let rows: Vec<(&RunPoint, f64)> = vec![(&a, 100.0), (&b, 10.0)];
        assert_eq!(pareto_frontier(&rows), vec![true, true]);
    }

    #[test]
    fn selection_keeps_frontier_plus_top_k() {
        let grid: Vec<(RunPoint, Metrics)> = vec![
            (ace_point(1, 4), metrics(400.0)),
            (ace_point(2, 4), metrics(200.0)),
            (ace_point(4, 4), metrics(150.0)),
            (ace_point(8, 4), metrics(149.0)),
            (ace_point(8, 20), metrics(148.0)),
        ];
        let keep = select_exact_cells(&grid, 20.0, &|_| 0.0);
        // Frontier: the staircase knees survive, but 8/4 and 8/20 are
        // near-ties of 4/4 (within the 1 % tolerance) at higher cost, so
        // they fall off. The top-20 % quota (1 cell) rescues the fastest
        // cell, 8/20.
        assert_eq!(keep, vec![true, true, true, false, true]);

        // With a dominated cell, only the quota can rescue it.
        let grid2: Vec<(RunPoint, Metrics)> = vec![
            (ace_point(4, 16), metrics(100.0)),
            (ace_point(8, 16), metrics(100.0)), // dominated by 4/16
            (ace_point(1, 4), metrics(500.0)),
        ];
        let keep2 = select_exact_cells(&grid2, 1.0, &|_| 0.0);
        assert_eq!(keep2, vec![true, false, true]);
    }

    #[test]
    fn duplicate_cells_share_their_verdict() {
        let grid: Vec<(RunPoint, Metrics)> = vec![
            (ace_point(4, 16), metrics(100.0)),
            (ace_point(4, 16), metrics(100.0)),
            (ace_point(8, 16), metrics(100.0)),
        ];
        let keep = select_exact_cells(&grid, 1.0, &|_| 0.0);
        assert_eq!(keep[0], keep[1], "duplicate cells must agree");
        assert!(!keep[2]);
    }

    #[test]
    fn selection_is_deterministic() {
        let grid: Vec<(RunPoint, Metrics)> = (0..8)
            .map(|i| (ace_point(1 << (i % 4), 4 + i), metrics(100.0 + i as f64)))
            .collect();
        let a = select_exact_cells(&grid, 25.0, &|_| 0.0);
        let b = select_exact_cells(&grid, 25.0, &|_| 0.0);
        assert_eq!(a, b);
    }
}
