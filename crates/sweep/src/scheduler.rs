//! The resident job scheduler — the service core of the sweep engine.
//!
//! [`JobScheduler`] owns the three pieces of warm state a cold CLI run
//! rebuilds from scratch every time: the `(tier, point)` result
//! [`Cache`], a pool of worker threads that **outlives a single grid**,
//! and the [`EventBus`] that broadcasts typed progress events. One-shot
//! sweeps ([`crate::SweepRunner`]) and the long-lived daemon
//! ([`crate::service::SweepService`]) are both thin clients of this
//! type, so their results are byte-identical by construction: jobs are
//! compiled scenarios expanded to [`RunPoint`]s, deduped against the
//! cache, executed by the pool, and assembled **in grid order** exactly
//! as the pre-refactor batch runner did.
//!
//! Scheduling model:
//!
//! * A job is accepted ([`JobScheduler::accept`]) — validated, assigned
//!   a monotonic id, and given the latest *generation* of its scenario
//!   name on the bus (re-submitting a name supersedes the older
//!   generation: latest-generation-wins coalescing).
//! * [`JobScheduler::run_accepted`] drives the job on the submitting
//!   thread: it queues per-tier batches of uncached cells, waits on its
//!   bus subscription for their [`BusEvent::CellCompleted`] events
//!   (forwarding every job event to the caller's `on_event` hook — this
//!   is where streaming protocol messages and progress lines come from),
//!   and assembles the outcome from the cache.
//! * Workers claim cells under a single mutex, at most
//!   `RunnerOptions::threads` concurrently per job, checking the
//!   scenario's generation before each claim so a superseded job stops
//!   within one cell. The pool grows on demand to the largest
//!   parallelism any job has requested and idles on a condvar between
//!   jobs.
//!
//! When a [`Journal`] is installed ([`JobScheduler::set_journal`]),
//! every freshly executed cell is appended and flushed before its
//! completion event is published — the write-ahead log a killed daemon
//! resumes from.

use std::collections::HashSet;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;

use crate::bus::{BusEvent, EventBus, Subscription};
use crate::fidelity::{select_exact_cells, Fidelity, Tier};
use crate::grid::{self, RunPoint};
use crate::persist::Journal;
use crate::runner::{
    execute_analytic, execute_tier_with, Cache, Metrics, RunResult, RunnerOptions, SweepOutcome,
};
use crate::scenario::{BaselineSpec, Scenario, SweepMode};

/// Why a job did not produce an outcome.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum JobError {
    /// The scenario failed validation; the message names the problem.
    Invalid(String),
    /// A newer generation of the same scenario name superseded the job
    /// (latest-generation-wins coalescing).
    Superseded,
    /// A cell's executor panicked; the message carries the panic text.
    Failed(String),
}

impl std::fmt::Display for JobError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            JobError::Invalid(msg) => f.write_str(msg),
            JobError::Superseded => f.write_str("superseded by a newer submission"),
            JobError::Failed(msg) => write!(f, "job failed: {msg}"),
        }
    }
}

/// An accepted job: the ticket [`JobScheduler::accept`] returns, carrying
/// the validated scenario plus its scheduling identity.
#[derive(Debug, Clone)]
pub struct JobTicket {
    /// Scheduler-assigned job id.
    pub job: u64,
    /// The generation this submission holds for its scenario name.
    pub generation: u64,
    /// The validated scenario the ticket will run.
    pub scenario: Scenario,
}

/// One queued batch of same-tier cells awaiting workers. All scheduling
/// fields are guarded by the scheduler's state mutex.
struct Batch {
    id: u64,
    job: u64,
    scenario: String,
    generation: u64,
    tier: Tier,
    work: Arc<Vec<RunPoint>>,
    /// Next unclaimed cell index.
    next: usize,
    /// Cells currently executing.
    in_flight: usize,
    /// Cells finished (events published).
    completed: usize,
    /// Concurrency cap for this batch's job.
    max_workers: usize,
    /// Intra-simulation worker threads for exact cells (1 = serial).
    sim_threads: usize,
    /// Superseded or failed: no further claims.
    cancelled: bool,
}

/// Scheduler state shared with the workers.
struct Shared {
    cache: Arc<Cache>,
    bus: EventBus,
    state: Mutex<Vec<Batch>>,
    work_ready: Condvar,
    shutdown: AtomicBool,
    next_job: AtomicU64,
    next_batch: AtomicU64,
    journal: Mutex<Option<Journal>>,
}

/// The resident scheduler (see the [module docs](self)).
pub struct JobScheduler {
    shared: Arc<Shared>,
    workers: Mutex<Vec<JoinHandle<()>>>,
}

impl std::fmt::Debug for JobScheduler {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("JobScheduler")
            .field("workers", &self.workers.lock().expect("worker list").len())
            .field("cache_entries", &self.shared.cache.len())
            .finish()
    }
}

impl Default for JobScheduler {
    fn default() -> JobScheduler {
        JobScheduler::new()
    }
}

impl JobScheduler {
    /// A scheduler with an empty cache. Workers spawn lazily, on demand
    /// of the jobs that run.
    pub fn new() -> JobScheduler {
        JobScheduler::with_cache(Cache::new())
    }

    /// A scheduler seeded with a pre-populated cache (e.g. loaded from a
    /// persistent cache file or replayed from a journal).
    pub fn with_cache(cache: Cache) -> JobScheduler {
        JobScheduler {
            shared: Arc::new(Shared {
                cache: Arc::new(cache),
                bus: EventBus::new(),
                state: Mutex::new(Vec::new()),
                work_ready: Condvar::new(),
                shutdown: AtomicBool::new(false),
                next_job: AtomicU64::new(1),
                next_batch: AtomicU64::new(1),
                journal: Mutex::new(None),
            }),
            workers: Mutex::new(Vec::new()),
        }
    }

    /// The shared result cache.
    pub fn cache(&self) -> &Cache {
        &self.shared.cache
    }

    /// The scheduler's event bus — subscribe here to observe every job.
    pub fn bus(&self) -> &EventBus {
        &self.shared.bus
    }

    /// Installs (or replaces) the write-ahead journal: every freshly
    /// executed cell is appended and flushed before its completion event
    /// publishes.
    pub fn set_journal(&self, journal: Option<Journal>) {
        *self.shared.journal.lock().expect("journal lock") = journal;
    }

    /// Runs `f` on the installed journal, if any — the hook the service
    /// uses to append job lifecycle records.
    pub fn with_journal<R>(&self, f: impl FnOnce(&mut Journal) -> R) -> Option<R> {
        self.shared
            .journal
            .lock()
            .expect("journal lock")
            .as_mut()
            .map(f)
    }

    /// Validates `scenario` and accepts it as a job: assigns the next job
    /// id and bumps the scenario name's coalescing generation, which
    /// supersedes any in-flight job of the same name.
    ///
    /// # Errors
    ///
    /// [`JobError::Invalid`] when the scenario fails validation.
    pub fn accept(&self, scenario: &Scenario) -> Result<JobTicket, JobError> {
        scenario.validate().map_err(JobError::Invalid)?;
        let job = self.shared.next_job.fetch_add(1, Ordering::Relaxed);
        let generation = self.shared.bus.begin_generation(&scenario.name);
        // Proactively cancel stale batches instead of waiting for a
        // worker to notice at claim time.
        let mut superseded: Vec<BusEvent> = Vec::new();
        {
            let mut state = self.shared.state.lock().expect("scheduler state");
            for b in state.iter_mut() {
                if !b.cancelled && b.scenario == scenario.name && b.generation < generation {
                    b.cancelled = true;
                    superseded.push(BusEvent::JobSuperseded {
                        job: b.job,
                        scenario: b.scenario.clone(),
                        generation: b.generation,
                    });
                }
            }
        }
        for ev in &superseded {
            self.shared.bus.publish(ev);
        }
        Ok(JobTicket {
            job,
            generation,
            scenario: scenario.clone(),
        })
    }

    /// Runs an accepted job to completion on the calling thread, driving
    /// the worker pool. Every bus event of this job — `JobAccepted`,
    /// per-batch `BatchStarted`, streaming `CellCompleted`s,
    /// `JobFinished`, and the closing `CacheStats` — is also forwarded to
    /// `on_event` in order, which is how the CLI renders progress and the
    /// daemon streams protocol messages.
    ///
    /// # Errors
    ///
    /// [`JobError::Superseded`] when a newer generation of the scenario
    /// name arrived mid-run; [`JobError::Failed`] when a cell panicked.
    pub fn run_accepted(
        &self,
        ticket: &JobTicket,
        opts: RunnerOptions,
        on_event: &mut dyn FnMut(&BusEvent),
    ) -> Result<SweepOutcome, JobError> {
        let scenario = &ticket.scenario;
        let max_workers = self.resolve_workers(opts);
        let sub = self.shared.bus.subscribe();
        self.emit(
            &sub,
            on_event,
            BusEvent::JobAccepted {
                job: ticket.job,
                scenario: scenario.name.clone(),
                generation: ticket.generation,
                mode: scenario.mode,
                fidelity: scenario.fidelity,
                cells: grid::grid_len(scenario),
            },
        );
        // CLI/daemon options override the scenario's own hint; neither
        // affects results (the parallel engine is byte-identical), only
        // per-cell wall-clock.
        let sim_threads = if opts.sim_threads > 0 {
            opts.sim_threads
        } else {
            scenario.sim_threads.max(1)
        };
        let outcome = match scenario.fidelity {
            Fidelity::Exact => self.run_tier(
                ticket,
                Tier::Exact,
                max_workers,
                sim_threads,
                &sub,
                on_event,
            ),
            Fidelity::Analytic => self.run_tier(
                ticket,
                Tier::Analytic,
                max_workers,
                sim_threads,
                &sub,
                on_event,
            ),
            Fidelity::Hybrid => self.run_hybrid(ticket, max_workers, sim_threads, &sub, on_event),
        }?;
        self.emit(
            &sub,
            on_event,
            BusEvent::JobFinished {
                job: ticket.job,
                scenario: outcome.scenario.clone(),
                points: outcome.results.len(),
                executed: outcome.executed,
                analytic_executed: outcome.analytic_executed,
                cache_hits: outcome.cache_hits,
            },
        );
        let (entries, exact, analytic) = self.shared.cache.tier_counts();
        self.emit(
            &sub,
            on_event,
            BusEvent::CacheStats {
                entries,
                exact,
                analytic,
            },
        );
        Ok(outcome)
    }

    /// Convenience: accept + run in one call.
    ///
    /// # Errors
    ///
    /// See [`accept`](JobScheduler::accept) and
    /// [`run_accepted`](JobScheduler::run_accepted).
    pub fn run_job(
        &self,
        scenario: &Scenario,
        opts: RunnerOptions,
        on_event: &mut dyn FnMut(&BusEvent),
    ) -> Result<SweepOutcome, JobError> {
        let ticket = self.accept(scenario)?;
        self.run_accepted(&ticket, opts, on_event)
    }

    /// Publishes an event this thread originated (skipping its own
    /// subscription so the drain loop never echoes it) and hands it to
    /// the caller's hook.
    fn emit(&self, sub: &Subscription, on_event: &mut dyn FnMut(&BusEvent), ev: BusEvent) {
        self.shared.bus.publish_excluding(Some(sub.id), &ev);
        on_event(&ev);
    }

    /// Single-tier job: every grid cell through one execution tier.
    fn run_tier(
        &self,
        ticket: &JobTicket,
        tier: Tier,
        max_workers: usize,
        sim_threads: usize,
        sub: &Subscription,
        on_event: &mut dyn FnMut(&BusEvent),
    ) -> Result<SweepOutcome, JobError> {
        let scenario = &ticket.scenario;
        let points = grid::expand(scenario);
        let baseline_points = baseline_points(scenario);
        let work = self.queue_work(points.iter().chain(baseline_points.iter()), tier);
        self.run_batch(ticket, tier, &work, max_workers, sim_threads, sub, on_event)?;

        let tiers = vec![tier; points.len()];
        let queued: HashSet<RunPoint> = work.iter().cloned().collect();
        let (results, cache_hits) = self.assemble(scenario, &points, &tiers, |t, p| {
            t == tier && queued.contains(p)
        });

        let (executed, analytic_executed) = match tier {
            Tier::Exact => (work.len(), 0),
            Tier::Analytic => (0, work.len()),
        };
        Ok(SweepOutcome {
            scenario: scenario.name.clone(),
            mode: scenario.mode,
            fidelity: match tier {
                Tier::Exact => Fidelity::Exact,
                Tier::Analytic => Fidelity::Analytic,
            },
            results,
            executed,
            analytic_executed,
            cache_hits,
        })
    }

    /// Hybrid job: α–β triage over the whole grid, exact re-simulation of
    /// the analytic Pareto frontier + top-K % cells + the baseline.
    fn run_hybrid(
        &self,
        ticket: &JobTicket,
        max_workers: usize,
        sim_threads: usize,
        sub: &Subscription,
        on_event: &mut dyn FnMut(&BusEvent),
    ) -> Result<SweepOutcome, JobError> {
        let scenario = &ticket.scenario;
        let points = grid::expand(scenario);
        let baseline_pts = baseline_points(scenario);

        // ---- Tier 1: analytic triage of every unique point. ----------
        let work_a = self.queue_work(points.iter().chain(baseline_pts.iter()), Tier::Analytic);
        self.run_batch(
            ticket,
            Tier::Analytic,
            &work_a,
            max_workers,
            sim_threads,
            sub,
            on_event,
        )?;

        let triage: Vec<(RunPoint, Metrics)> = points
            .iter()
            .map(|p| {
                let m = self
                    .shared
                    .cache
                    .get_tier(Tier::Analytic, p)
                    .expect("triage covered the grid");
                (p.clone(), m)
            })
            .collect();

        // ---- Select the cells worth exact simulation. ----------------
        let probe = |p: &RunPoint| execute_analytic(p).time_us;
        let keep = select_exact_cells(&triage, scenario.hybrid_top_pct, &probe);
        let tiers: Vec<Tier> = keep
            .iter()
            .map(|&k| if k { Tier::Exact } else { Tier::Analytic })
            .collect();

        let selected = points
            .iter()
            .zip(&keep)
            .filter_map(|(p, &k)| k.then_some(p));
        let work_e = self.queue_work(selected.chain(baseline_pts.iter()), Tier::Exact);
        self.run_batch(
            ticket,
            Tier::Exact,
            &work_e,
            max_workers,
            sim_threads,
            sub,
            on_event,
        )?;

        // ---- Assemble: exact rows where selected, analytic elsewhere. -
        let queued_a: HashSet<RunPoint> = work_a.iter().cloned().collect();
        let queued_e: HashSet<RunPoint> = work_e.iter().cloned().collect();
        let (results, cache_hits) = self.assemble(scenario, &points, &tiers, |t, p| match t {
            Tier::Exact => queued_e.contains(p),
            Tier::Analytic => queued_a.contains(p),
        });

        Ok(SweepOutcome {
            scenario: scenario.name.clone(),
            mode: scenario.mode,
            fidelity: Fidelity::Hybrid,
            results,
            executed: work_e.len(),
            analytic_executed: work_a.len(),
            cache_hits,
        })
    }

    /// Queues one batch on the pool and waits for its completion events,
    /// forwarding them (and the leading `BatchStarted`) to `on_event`.
    #[allow(clippy::too_many_arguments)]
    fn run_batch(
        &self,
        ticket: &JobTicket,
        tier: Tier,
        work: &[RunPoint],
        max_workers: usize,
        sim_threads: usize,
        sub: &Subscription,
        on_event: &mut dyn FnMut(&BusEvent),
    ) -> Result<(), JobError> {
        let cached = self.cached_unique(ticket, tier, work);
        self.emit(
            sub,
            on_event,
            BusEvent::BatchStarted {
                job: ticket.job,
                tier,
                queued: work.len(),
                cached,
            },
        );
        if work.is_empty() {
            // Still superseded-able: a warm job of a stale generation
            // must not report success.
            if !self
                .shared
                .bus
                .is_current(&ticket.scenario.name, ticket.generation)
            {
                return Err(JobError::Superseded);
            }
            return Ok(());
        }
        self.ensure_workers(max_workers.min(work.len()));
        {
            let mut state = self.shared.state.lock().expect("scheduler state");
            state.push(Batch {
                id: self.shared.next_batch.fetch_add(1, Ordering::Relaxed),
                job: ticket.job,
                scenario: ticket.scenario.name.clone(),
                generation: ticket.generation,
                tier,
                work: Arc::new(work.to_vec()),
                next: 0,
                in_flight: 0,
                completed: 0,
                max_workers,
                sim_threads,
                cancelled: false,
            });
        }
        self.shared.work_ready.notify_all();

        let mut seen = 0usize;
        while seen < work.len() {
            let Some(ev) = sub.recv() else {
                return Err(JobError::Failed("event bus closed".into()));
            };
            match &ev {
                BusEvent::CellCompleted { job, tier: t, .. }
                    if *job == ticket.job && *t == tier =>
                {
                    seen += 1;
                    on_event(&ev);
                }
                BusEvent::CellFailed { job, error, .. } if *job == ticket.job => {
                    let error = error.clone();
                    on_event(&ev);
                    return Err(JobError::Failed(error));
                }
                BusEvent::JobSuperseded { job, .. } if *job == ticket.job => {
                    on_event(&ev);
                    return Err(JobError::Superseded);
                }
                _ => {} // other jobs' traffic
            }
        }
        Ok(())
    }

    /// Unique cells of the batch's *wanted set* already in the cache —
    /// the `cached` figure of `BatchStarted`. `work` holds the queued
    /// remainder, so wanted = grid-unique = queued + cached; computed
    /// from the grid to count each unique point once.
    fn cached_unique(&self, ticket: &JobTicket, tier: Tier, work: &[RunPoint]) -> usize {
        let queued: HashSet<&RunPoint> = work.iter().collect();
        let points = grid::expand(&ticket.scenario);
        let baseline = baseline_points(&ticket.scenario);
        let mut seen: HashSet<&RunPoint> = HashSet::new();
        let mut cached = 0usize;
        for p in points.iter().chain(baseline.iter()) {
            if seen.insert(p) && !queued.contains(p) && self.shared.cache.contains_tier(tier, p) {
                cached += 1;
            }
        }
        cached
    }

    /// The work list for one tier: every unique point of `wanted` not
    /// already cached, in first-seen order (grid first, then any baseline
    /// points outside the grid).
    fn queue_work<'a>(
        &self,
        wanted: impl Iterator<Item = &'a RunPoint>,
        tier: Tier,
    ) -> Vec<RunPoint> {
        let mut queued: HashSet<&RunPoint> = HashSet::new();
        let mut work: Vec<RunPoint> = Vec::new();
        for p in wanted {
            if !self.shared.cache.contains_tier(tier, p) && queued.insert(p) {
                work.push(p.clone());
            }
        }
        work
    }

    /// Assembles grid-order rows: each point's metrics from its tier's
    /// cache, cache-hit bookkeeping (the first occurrence of a point
    /// freshly executed this run is the one non-hit row), and baseline
    /// speedups compared within each row's own tier — an analytic
    /// estimate is never divided by an event-driven baseline.
    fn assemble(
        &self,
        scenario: &Scenario,
        points: &[RunPoint],
        tiers: &[Tier],
        freshly_executed: impl Fn(Tier, &RunPoint) -> bool,
    ) -> (Vec<RunResult>, usize) {
        let cache = &self.shared.cache;
        let mut seen: HashSet<(Tier, &RunPoint)> = HashSet::new();
        let mut cache_hits = 0usize;
        let mut results: Vec<RunResult> = points
            .iter()
            .zip(tiers)
            .map(|(p, &tier)| {
                let metrics = cache
                    .get_tier(tier, p)
                    .expect("every grid point was executed in its tier");
                let fresh = freshly_executed(tier, p) && seen.insert((tier, p));
                let cache_hit = !fresh;
                if cache_hit {
                    cache_hits += 1;
                }
                RunResult {
                    point: p.clone(),
                    metrics,
                    fidelity: tier,
                    cache_hit,
                    speedup_vs_baseline: None,
                }
            })
            .collect();

        if scenario.baseline.is_some() {
            for r in &mut results {
                let bp = baseline_point_for(scenario, &r.point);
                let base = cache
                    .get_tier(r.fidelity, &bp)
                    .expect("baseline point was executed in the row's tier");
                if r.metrics.time_us > 0.0 {
                    r.speedup_vs_baseline = Some(base.time_us / r.metrics.time_us);
                }
            }
        }
        (results, cache_hits)
    }

    /// Resolves the per-job worker cap from the options.
    fn resolve_workers(&self, opts: RunnerOptions) -> usize {
        if opts.threads == 0 {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        } else {
            opts.threads
        }
        .max(1)
    }

    /// Grows the pool so at least `n` workers exist (never shrinks).
    fn ensure_workers(&self, n: usize) {
        let mut workers = self.workers.lock().expect("worker list");
        while workers.len() < n {
            let shared = Arc::clone(&self.shared);
            let idx = workers.len();
            let handle = std::thread::Builder::new()
                .name(format!("ace-sweep-worker-{idx}"))
                .spawn(move || worker_loop(&shared))
                .expect("spawn sweep worker");
            workers.push(handle);
        }
    }
}

impl Drop for JobScheduler {
    fn drop(&mut self) {
        self.shared.shutdown.store(true, Ordering::SeqCst);
        self.shared.work_ready.notify_all();
        let mut workers = self.workers.lock().expect("worker list");
        for w in workers.drain(..) {
            let _ = w.join();
        }
    }
}

/// One claimed cell, snapshotted out of the state lock.
struct Claim {
    batch: u64,
    job: u64,
    tier: Tier,
    work: Arc<Vec<RunPoint>>,
    index: usize,
    total: usize,
    sim_threads: usize,
}

/// The resident worker: claim a cell, execute it, store + journal the
/// result, publish the completion event; idle on the condvar when no
/// batch has claimable work.
fn worker_loop(shared: &Shared) {
    loop {
        let claim = {
            let mut state = shared.state.lock().expect("scheduler state");
            loop {
                if shared.shutdown.load(Ordering::SeqCst) {
                    return;
                }
                // Retire batches nobody will touch again.
                state.retain(|b| {
                    let drained = b.completed == b.work.len();
                    let dead = b.cancelled && b.in_flight == 0;
                    !(drained || dead)
                });
                let mut superseded: Option<BusEvent> = None;
                let mut found: Option<Claim> = None;
                for b in state.iter_mut() {
                    if b.cancelled {
                        continue;
                    }
                    if !shared.bus.is_current(&b.scenario, b.generation) {
                        b.cancelled = true;
                        superseded = Some(BusEvent::JobSuperseded {
                            job: b.job,
                            scenario: b.scenario.clone(),
                            generation: b.generation,
                        });
                        break;
                    }
                    if b.next < b.work.len() && b.in_flight < b.max_workers {
                        let index = b.next;
                        b.next += 1;
                        b.in_flight += 1;
                        found = Some(Claim {
                            batch: b.id,
                            job: b.job,
                            tier: b.tier,
                            work: Arc::clone(&b.work),
                            index,
                            total: b.work.len(),
                            sim_threads: b.sim_threads,
                        });
                        break;
                    }
                }
                if let Some(ev) = superseded {
                    drop(state);
                    shared.bus.publish(&ev);
                    state = shared.state.lock().expect("scheduler state");
                    continue;
                }
                match found {
                    Some(c) => break c,
                    None => state = shared.work_ready.wait(state).expect("scheduler state"),
                }
            }
        };

        let point = &claim.work[claim.index];
        let outcome = catch_unwind(AssertUnwindSafe(|| {
            execute_tier_with(point, claim.tier, claim.sim_threads)
        }));
        match outcome {
            Ok(metrics) => {
                shared.cache.insert_tier(claim.tier, point.clone(), metrics);
                if let Some(journal) = shared.journal.lock().expect("journal lock").as_mut() {
                    // A journal write failure must not lose the in-memory
                    // result; the service surfaces it via stats instead.
                    let _ = journal.append_row(claim.tier, point, &metrics);
                }
                let completed = {
                    let mut state = shared.state.lock().expect("scheduler state");
                    if let Some(b) = state.iter_mut().find(|b| b.id == claim.batch) {
                        b.in_flight -= 1;
                        b.completed += 1;
                        b.completed
                    } else {
                        0
                    }
                };
                shared.bus.publish(&BusEvent::CellCompleted {
                    job: claim.job,
                    tier: claim.tier,
                    index: completed,
                    total: claim.total,
                    point: point.clone(),
                    metrics: Box::new(metrics),
                });
            }
            Err(panic) => {
                let error = panic_text(panic.as_ref());
                {
                    let mut state = shared.state.lock().expect("scheduler state");
                    if let Some(b) = state.iter_mut().find(|b| b.id == claim.batch) {
                        b.in_flight -= 1;
                        b.cancelled = true;
                    }
                }
                shared.bus.publish(&BusEvent::CellFailed {
                    job: claim.job,
                    tier: claim.tier,
                    label: point.label(),
                    error,
                });
            }
        }
        shared.work_ready.notify_all();
    }
}

/// Renders a panic payload as text.
fn panic_text(panic: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = panic.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = panic.downcast_ref::<String>() {
        s.clone()
    } else {
        "cell executor panicked".to_string()
    }
}

/// The baseline point a grid row is compared against: the row's
/// coordinates with the engine/config swapped for the scenario baseline.
fn baseline_point_for(scenario: &Scenario, point: &RunPoint) -> RunPoint {
    match (scenario.baseline, &point.kind) {
        (
            Some(BaselineSpec::Engine(spec)),
            crate::grid::PointKind::Collective {
                op, payload_bytes, ..
            },
        ) => RunPoint {
            topology: point.topology,
            conditions: point.conditions.clone(),
            kind: crate::grid::PointKind::Collective {
                engine: spec,
                op: *op,
                payload_bytes: *payload_bytes,
            },
        },
        (
            Some(BaselineSpec::Config(cfg)),
            crate::grid::PointKind::Training {
                workload,
                iterations,
                optimized_embedding,
                ..
            },
        ) => RunPoint {
            topology: point.topology,
            conditions: point.conditions.clone(),
            kind: crate::grid::PointKind::Training {
                config: cfg,
                workload: workload.clone(),
                iterations: *iterations,
                optimized_embedding: *optimized_embedding,
            },
        },
        _ => point.clone(),
    }
}

/// All baseline points a scenario needs (one per cross-product of the
/// non-config axes); empty when no baseline is named.
fn baseline_points(scenario: &Scenario) -> Vec<RunPoint> {
    let Some(baseline) = scenario.baseline else {
        return Vec::new();
    };
    let mut out = Vec::new();
    // Speedups compare engines/configs under identical run conditions, so
    // every conditions cell needs its own baseline point.
    let conditions = crate::grid::conditions_product(scenario);
    match (baseline, scenario.mode) {
        (BaselineSpec::Engine(spec), SweepMode::Collective) => {
            for &topology in &scenario.topologies {
                for &op in &scenario.ops {
                    for &payload_bytes in &scenario.payload_bytes {
                        for conditions in &conditions {
                            out.push(RunPoint {
                                topology,
                                conditions: conditions.clone(),
                                kind: crate::grid::PointKind::Collective {
                                    engine: spec,
                                    op,
                                    payload_bytes,
                                },
                            });
                        }
                    }
                }
            }
        }
        (BaselineSpec::Config(cfg), SweepMode::Training) => {
            for &topology in &scenario.topologies {
                for workload in &scenario.workloads {
                    for conditions in &conditions {
                        out.push(RunPoint {
                            topology,
                            conditions: conditions.clone(),
                            kind: crate::grid::PointKind::Training {
                                config: cfg,
                                workload: workload.clone(),
                                iterations: scenario.iterations,
                                optimized_embedding: scenario.optimized_embedding,
                            },
                        });
                    }
                }
            }
        }
        // validate() rejects mismatched baseline kinds.
        _ => {}
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::EngineFamily;
    use ace_net::TopologySpec;

    fn tiny(name: &str) -> Scenario {
        let mut sc = Scenario::collective(name);
        sc.topologies = vec![TopologySpec::torus3(2, 1, 1).unwrap()];
        sc.engines = vec![EngineFamily::Ideal, EngineFamily::Baseline];
        sc.payload_bytes = vec![256 * 1024];
        sc.mem_gbps = vec![128.0, 450.0];
        sc.comm_sms = vec![6];
        sc
    }

    #[test]
    fn scheduler_outlives_jobs_and_keeps_the_cache_warm() {
        let sched = JobScheduler::new();
        let sc = tiny("resident");
        let opts = RunnerOptions {
            threads: 2,
            ..Default::default()
        };
        let first = sched.run_job(&sc, opts, &mut |_| {}).unwrap();
        assert_eq!(first.executed, 3);
        // Second submission of the same grid through the *same* resident
        // scheduler: fully served from the warm cache.
        let second = sched.run_job(&sc, opts, &mut |_| {}).unwrap();
        assert_eq!(second.executed, 0);
        assert_eq!(second.cache_hits, second.results.len());
        for (a, b) in first.results.iter().zip(&second.results) {
            assert_eq!(a.metrics, b.metrics);
        }
    }

    #[test]
    fn events_tell_the_whole_story() {
        let sched = JobScheduler::new();
        let sc = tiny("events");
        let mut events: Vec<String> = Vec::new();
        let out = sched
            .run_job(
                &sc,
                RunnerOptions {
                    threads: 1,
                    ..Default::default()
                },
                &mut |ev| {
                    events.push(match ev {
                        BusEvent::JobAccepted { cells, .. } => format!("accepted:{cells}"),
                        BusEvent::BatchStarted { queued, cached, .. } => {
                            format!("batch:{queued}+{cached}")
                        }
                        BusEvent::CellCompleted { index, total, .. } => {
                            format!("cell:{index}/{total}")
                        }
                        BusEvent::JobFinished { executed, .. } => format!("finished:{executed}"),
                        BusEvent::CacheStats { entries, .. } => format!("stats:{entries}"),
                        other => format!("{other:?}"),
                    });
                },
            )
            .unwrap();
        assert_eq!(out.executed, 3);
        assert_eq!(
            events,
            vec![
                "accepted:4",
                "batch:3+0",
                "cell:1/3",
                "cell:2/3",
                "cell:3/3",
                "finished:3",
                "stats:3"
            ]
        );
    }

    #[test]
    fn observers_see_broadcasts() {
        let sched = JobScheduler::new();
        let observer = sched.bus().subscribe();
        let sc = tiny("observed");
        sched
            .run_job(
                &sc,
                RunnerOptions {
                    threads: 1,
                    ..Default::default()
                },
                &mut |_| {},
            )
            .unwrap();
        let kinds: Vec<&'static str> = observer
            .try_iter()
            .map(|ev| match ev {
                BusEvent::JobAccepted { .. } => "accepted",
                BusEvent::BatchStarted { .. } => "batch",
                BusEvent::CellCompleted { .. } => "cell",
                BusEvent::JobFinished { .. } => "finished",
                BusEvent::CacheStats { .. } => "stats",
                _ => "other",
            })
            .collect();
        assert_eq!(
            kinds,
            vec!["accepted", "batch", "cell", "cell", "cell", "finished", "stats"]
        );
    }

    #[test]
    fn resubmission_supersedes_the_stale_generation() {
        let sched = JobScheduler::new();
        let sc = tiny("coalesce");
        let stale = sched.accept(&sc).unwrap();
        let fresh = sched.accept(&sc).unwrap();
        assert!(fresh.generation > stale.generation);
        // The stale ticket is refused even though its batches are empty
        // of queued work.
        let err = sched
            .run_accepted(
                &stale,
                RunnerOptions {
                    threads: 1,
                    ..Default::default()
                },
                &mut |_| {},
            )
            .unwrap_err();
        assert_eq!(err, JobError::Superseded);
        // The fresh ticket runs to completion.
        let out = sched
            .run_accepted(
                &fresh,
                RunnerOptions {
                    threads: 1,
                    ..Default::default()
                },
                &mut |_| {},
            )
            .unwrap();
        assert_eq!(out.executed, 3);
    }

    #[test]
    fn invalid_scenarios_are_rejected_at_accept() {
        let sched = JobScheduler::new();
        let mut sc = tiny("invalid");
        sc.topologies.clear();
        match sched.accept(&sc) {
            Err(JobError::Invalid(msg)) => assert!(msg.contains("topolog"), "{msg}"),
            other => panic!("expected Invalid, got {other:?}"),
        }
    }
}
