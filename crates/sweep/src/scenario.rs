//! Declarative sweep scenarios.
//!
//! A [`Scenario`] names the axes of a design-space exploration — torus
//! shapes, endpoint engines / system configurations, workloads,
//! collective ops, payload sizes, and the memory-bandwidth / SM / SRAM /
//! FSM knobs of Figs. 4–12 — and deserializes from the TOML subset in
//! [`crate::toml`]. [`crate::grid::expand`] turns it into a deterministic
//! cartesian list of run points.

use std::collections::BTreeMap;
use std::fmt;
use std::hash::{Hash, Hasher};
use std::path::Path;
use std::sync::Arc;

use ace_collectives::CollectiveOp;
use ace_net::{ContentionSpec, FaultSpec, TopologySpec};
use ace_serve::{ArrivalKind, ServingSpec};
use ace_system::{EngineKind, SystemConfig};
use ace_workloads::{BuiltinWorkload, Parallelism, PipeSchedule, StragglerSpec, Workload};

use crate::fidelity::Fidelity;
use crate::toml::{self, Value};

/// What each run point simulates.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SweepMode {
    /// One standalone collective per point ([`ace_system::run_single_collective`]):
    /// the Fig. 5 / Fig. 6 / Fig. 9a harness.
    Collective,
    /// A full training loop per point ([`ace_system::SystemBuilder`]):
    /// the Fig. 11 / Fig. 12 harness.
    Training,
    /// A continuous-batching inference serving run per point
    /// ([`ace_serve::simulate`]): open-loop arrivals, pipeline rounds,
    /// TTFT/E2E latency percentiles.
    Serving,
}

impl fmt::Display for SweepMode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SweepMode::Collective => f.write_str("collective"),
            SweepMode::Training => f.write_str("training"),
            SweepMode::Serving => f.write_str("serving"),
        }
    }
}

/// The engine families a collective-mode scenario can sweep. Families are
/// resolved against the knob axes into concrete [`EngineSpec`]s; knobs a
/// family does not consume are dropped, so e.g. `ideal` collapses to a
/// single point regardless of the `mem_gbps` axis.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum EngineFamily {
    /// One-cycle ideal endpoint — ignores every knob.
    Ideal,
    /// SM-driven baseline — consumes `mem_gbps` and `comm_sms`.
    Baseline,
    /// ACE — consumes `mem_gbps` (as the DMA carve-out), `sram_mb`, `fsms`.
    Ace,
}

impl EngineFamily {
    /// Scenario-file name of the family.
    pub fn name(self) -> &'static str {
        match self {
            EngineFamily::Ideal => "ideal",
            EngineFamily::Baseline => "baseline",
            EngineFamily::Ace => "ace",
        }
    }
}

impl ace_toml::Spelling for EngineFamily {
    const WHAT: &'static str = "engine";

    fn keywords() -> &'static [&'static str] {
        &["ideal", "baseline", "ace"]
    }

    fn spellings() -> &'static str {
        "ideal, baseline, or ace"
    }

    fn parse_spelling(s: &str) -> Result<Self, ace_toml::SpellingError> {
        match s.trim().to_ascii_lowercase().as_str() {
            "ideal" => Ok(EngineFamily::Ideal),
            "baseline" => Ok(EngineFamily::Baseline),
            "ace" => Ok(EngineFamily::Ace),
            _ => Err(ace_toml::SpellingError::Unknown),
        }
    }
}

impl std::str::FromStr for EngineFamily {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        ace_toml::Spelling::from_spelling(s)
    }
}

/// A fully resolved endpoint engine: an [`EngineFamily`] with every knob
/// it consumes pinned. Two points with equal specs simulate identically,
/// which is what the runner's cache keys on.
#[derive(Debug, Clone, Copy)]
pub enum EngineSpec {
    /// One-cycle ideal endpoint.
    Ideal,
    /// Baseline with a (memory GB/s, SM count) communication allocation.
    Baseline {
        /// HBM bandwidth available to communication, GB/s.
        mem_gbps: f64,
        /// SMs loaned to communication.
        comm_sms: u32,
    },
    /// ACE at a design-space point.
    Ace {
        /// HBM bandwidth available to the DMA engines, GB/s.
        dma_mem_gbps: f64,
        /// Scratchpad SRAM in MB.
        sram_mb: u64,
        /// Programmable FSM count.
        fsms: usize,
    },
}

impl EngineSpec {
    /// A baseline engine with a `(memory GB/s, SM count)` communication
    /// allocation — the public spelling the figure binaries use instead
    /// of struct-literal plumbing.
    pub fn baseline(mem_gbps: f64, comm_sms: u32) -> EngineSpec {
        EngineSpec::Baseline { mem_gbps, comm_sms }
    }

    /// ACE at the paper's chosen design point (4 MB SRAM, 16 FSMs) with
    /// a custom DMA memory carve-out.
    pub fn ace(dma_mem_gbps: f64) -> EngineSpec {
        EngineSpec::Ace {
            dma_mem_gbps,
            sram_mb: 4,
            fsms: 16,
        }
    }

    /// ACE at an arbitrary Fig. 9a design-space point.
    pub fn ace_dse(dma_mem_gbps: f64, sram_mb: u64, fsms: usize) -> EngineSpec {
        EngineSpec::Ace {
            dma_mem_gbps,
            sram_mb,
            fsms,
        }
    }

    /// The family this spec resolves.
    pub fn family(&self) -> EngineFamily {
        match self {
            EngineSpec::Ideal => EngineFamily::Ideal,
            EngineSpec::Baseline { .. } => EngineFamily::Baseline,
            EngineSpec::Ace { .. } => EngineFamily::Ace,
        }
    }

    /// Converts to the system harness's engine selector.
    pub fn to_engine_kind(&self) -> EngineKind {
        match *self {
            EngineSpec::Ideal => EngineKind::Ideal,
            EngineSpec::Baseline { mem_gbps, comm_sms } => EngineKind::Baseline {
                comm_mem_gbps: mem_gbps,
                comm_sms,
            },
            EngineSpec::Ace {
                dma_mem_gbps,
                sram_mb,
                fsms,
            } => EngineKind::AceDse {
                dma_mem_gbps,
                sram_mb,
                fsms,
            },
        }
    }
}

impl PartialEq for EngineSpec {
    fn eq(&self, other: &Self) -> bool {
        match (self, other) {
            (EngineSpec::Ideal, EngineSpec::Ideal) => true,
            (
                EngineSpec::Baseline {
                    mem_gbps: a,
                    comm_sms: b,
                },
                EngineSpec::Baseline {
                    mem_gbps: c,
                    comm_sms: d,
                },
            ) => a.to_bits() == c.to_bits() && b == d,
            (
                EngineSpec::Ace {
                    dma_mem_gbps: a,
                    sram_mb: b,
                    fsms: c,
                },
                EngineSpec::Ace {
                    dma_mem_gbps: d,
                    sram_mb: e,
                    fsms: f,
                },
            ) => a.to_bits() == d.to_bits() && b == e && c == f,
            _ => false,
        }
    }
}

impl Eq for EngineSpec {}

impl Hash for EngineSpec {
    fn hash<H: Hasher>(&self, state: &mut H) {
        match self {
            EngineSpec::Ideal => 0u8.hash(state),
            EngineSpec::Baseline { mem_gbps, comm_sms } => {
                1u8.hash(state);
                mem_gbps.to_bits().hash(state);
                comm_sms.hash(state);
            }
            EngineSpec::Ace {
                dma_mem_gbps,
                sram_mb,
                fsms,
            } => {
                2u8.hash(state);
                dma_mem_gbps.to_bits().hash(state);
                sram_mb.hash(state);
                fsms.hash(state);
            }
        }
    }
}

impl fmt::Display for EngineSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EngineSpec::Ideal => f.write_str("ideal"),
            EngineSpec::Baseline { mem_gbps, comm_sms } => {
                write!(f, "baseline[mem={mem_gbps},sms={comm_sms}]")
            }
            EngineSpec::Ace {
                dma_mem_gbps,
                sram_mb,
                fsms,
            } => {
                write!(f, "ace[dma={dma_mem_gbps},sram={sram_mb}MB,fsms={fsms}]")
            }
        }
    }
}

/// One entry of the training-mode `workloads` axis: a builtin (with an
/// optional parallelism override, `transformer@model`) or a custom
/// TOML-defined model (`file:my_model.toml`). DLRM's all-to-all payloads
/// depend on the fabric size, so instantiation takes the node count of
/// the point's topology.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum WorkloadSel {
    /// A builtin model, optionally re-parallelized (`name@strategy`).
    Builtin {
        /// Which builtin.
        kind: BuiltinWorkload,
        /// Lowering-strategy override; `None` uses the model's native
        /// strategy.
        parallelism: Option<Parallelism>,
    },
    /// A user-authored [`ace_workloads::WorkloadSpec`] loaded from a
    /// TOML file.
    File(CustomWorkload),
}

/// A custom workload reference: the spec plus its cache identity. Two
/// references are the same point iff path *and* content fingerprint
/// match, so editing the TOML invalidates persisted cache rows instead
/// of silently serving stale results.
#[derive(Debug, Clone)]
pub struct CustomWorkload {
    /// The path as written in the scenario (also the cache-key spelling).
    path: String,
    /// FNV-1a hash of the file contents.
    fingerprint: u64,
    /// The parsed spec; `None` for references deserialized from a
    /// persisted cache (those rows are only ever served, never
    /// re-simulated — a changed file changes the fingerprint and misses).
    spec: Option<Arc<ace_workloads::WorkloadSpec>>,
}

impl PartialEq for CustomWorkload {
    fn eq(&self, other: &Self) -> bool {
        self.path == other.path && self.fingerprint == other.fingerprint
    }
}

impl Eq for CustomWorkload {}

impl Hash for CustomWorkload {
    fn hash<H: Hasher>(&self, state: &mut H) {
        self.path.hash(state);
        self.fingerprint.hash(state);
    }
}

impl CustomWorkload {
    /// The path as written in the scenario file.
    pub fn path(&self) -> &str {
        &self.path
    }

    /// The parsed spec, when this reference was loaded from disk.
    pub fn spec(&self) -> Option<&ace_workloads::WorkloadSpec> {
        self.spec.as_deref()
    }
}

/// FNV-1a, the custom-workload content fingerprint.
fn fnv1a(text: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in text.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

impl WorkloadSel {
    /// A builtin under its native parallelization strategy.
    pub fn builtin(kind: BuiltinWorkload) -> WorkloadSel {
        WorkloadSel::Builtin {
            kind,
            parallelism: None,
        }
    }

    /// Parses an axis entry. Builtins spell `name` or
    /// `name@parallelism` (`transformer@model`); custom models spell
    /// `file:<path>.toml`, resolved relative to `base` (the scenario
    /// file's directory) when the path is relative.
    pub fn parse(s: &str, base: Option<&Path>) -> Result<WorkloadSel, String> {
        let s = s.trim();
        if let Some(path) = s.strip_prefix("file:") {
            let path = path.trim();
            if path.is_empty() {
                return Err("'file:' needs a path to a workload TOML".into());
            }
            if path.contains(',') || path.contains('#') {
                return Err(format!(
                    "workload path '{path}' must not contain ',' or '#' (cache-key syntax)"
                ));
            }
            let resolved = match base {
                Some(dir) if Path::new(path).is_relative() => dir.join(path),
                _ => Path::new(path).to_path_buf(),
            };
            let text = std::fs::read_to_string(&resolved)
                .map_err(|e| format!("cannot read workload file {}: {e}", resolved.display()))?;
            let spec = ace_workloads::WorkloadSpec::from_toml_str(&text)
                .map_err(|e| format!("workload file {}: {e}", resolved.display()))?;
            return Ok(WorkloadSel::File(CustomWorkload {
                path: path.to_string(),
                fingerprint: fnv1a(&text),
                spec: Some(Arc::new(spec)),
            }));
        }
        let (name, par) = match s.split_once('@') {
            None => (s, None),
            Some((n, p)) => (n, Some(p.parse::<Parallelism>()?)),
        };
        let sel = WorkloadSel::Builtin {
            kind: name.parse::<BuiltinWorkload>()?,
            parallelism: par,
        };
        sel.check()?;
        Ok(sel)
    }

    /// Checks that the selector can instantiate — the parallelism
    /// override is compatible with the builtin (delegating to
    /// [`Workload::with_parallelism`], the single source of truth) and a
    /// custom spec is internally consistent. Run by
    /// [`parse`](WorkloadSel::parse) and by [`Scenario::validate`], so
    /// hand-constructed selectors fail the sweep cleanly instead of
    /// panicking a worker.
    pub fn check(&self) -> Result<(), String> {
        match self {
            WorkloadSel::Builtin {
                parallelism: None, ..
            } => Ok(()),
            WorkloadSel::Builtin {
                kind,
                parallelism: Some(p),
            } => kind.instantiate(2).with_parallelism(*p).map(drop),
            WorkloadSel::File(custom) => match &custom.spec {
                // Cache-deserialized references are only ever served by
                // identity, never instantiated.
                None => Ok(()),
                Some(spec) => spec.validate(),
            },
        }
    }

    /// Parses the persisted cache-key spelling: like
    /// [`parse`](WorkloadSel::parse), except custom workloads appear as
    /// `file:<path>#<fingerprint>` and are *not* re-read from disk (a
    /// cached row is served by identity, never re-simulated).
    pub fn from_cache_key(s: &str) -> Result<WorkloadSel, String> {
        if let Some(rest) = s.strip_prefix("file:") {
            let (path, fp) = rest
                .rsplit_once('#')
                .ok_or_else(|| format!("custom workload key '{s}' is missing '#<fingerprint>'"))?;
            let fingerprint = u64::from_str_radix(fp, 16)
                .map_err(|_| format!("bad workload fingerprint '{fp}'"))?;
            return Ok(WorkloadSel::File(CustomWorkload {
                path: path.to_string(),
                fingerprint,
                spec: None,
            }));
        }
        Self::parse(s, None)
    }

    /// Builds the concrete workload for a fabric of `nodes` NPUs.
    ///
    /// # Panics
    ///
    /// Panics for a cache-deserialized custom reference (no spec to
    /// instantiate) — such points are always served from the cache.
    pub fn instantiate(&self, nodes: usize) -> Workload {
        match self {
            WorkloadSel::Builtin { kind, parallelism } => {
                let w = kind.instantiate(nodes);
                match parallelism {
                    None => w,
                    Some(p) => w
                        .with_parallelism(*p)
                        .expect("overrides are validated by WorkloadSel::check"),
                }
            }
            WorkloadSel::File(custom) => custom
                .spec
                .as_ref()
                .expect("cache-only custom workload references cannot be instantiated")
                .instantiate(nodes),
        }
    }

    /// The axis / cache-key / CSV spelling of the selector. Builtins
    /// round-trip through [`parse`](WorkloadSel::parse); custom models
    /// through [`from_cache_key`](WorkloadSel::from_cache_key).
    pub fn name(&self) -> String {
        self.to_string()
    }
}

impl From<BuiltinWorkload> for WorkloadSel {
    fn from(kind: BuiltinWorkload) -> WorkloadSel {
        WorkloadSel::Builtin {
            kind,
            parallelism: None,
        }
    }
}

impl fmt::Display for WorkloadSel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WorkloadSel::Builtin {
                kind,
                parallelism: None,
            } => f.write_str(kind.name()),
            WorkloadSel::Builtin {
                kind,
                parallelism: Some(p),
            } => write!(f, "{}@{}", kind.name(), p.name()),
            WorkloadSel::File(c) => write!(f, "file:{}#{:016x}", c.path, c.fingerprint),
        }
    }
}

/// The reference point speedups are computed against: a single resolved
/// engine (collective mode) or system configuration (training mode),
/// matched per (topology × op × payload) / (topology × workload).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BaselineSpec {
    /// Collective mode: a resolved engine.
    Engine(EngineSpec),
    /// Training mode: one of the Table VI configurations.
    Config(SystemConfig),
}

/// A declarative sweep: axes plus fixed parameters. Every `Vec` field is
/// one cartesian axis; [`crate::grid::expand`] multiplies them out in
/// declaration order.
#[derive(Debug, Clone, PartialEq)]
pub struct Scenario {
    /// Scenario name (used in report headers and output files).
    pub name: String,
    /// What each point simulates.
    pub mode: SweepMode,
    /// Fabric topologies: tori (`LxVxH`, `4x8`), switches
    /// (`switch:16`, `switch:16@100`), or hierarchical fabrics
    /// (`hier:4x8`).
    pub topologies: Vec<TopologySpec>,
    /// Collective mode: engine families to resolve against the knob axes.
    pub engines: Vec<EngineFamily>,
    /// Collective mode: operations to issue.
    pub ops: Vec<CollectiveOp>,
    /// Collective mode: per-node payload sizes in bytes.
    pub payload_bytes: Vec<u64>,
    /// Knob axis: HBM GB/s for communication (baseline) or the DMA
    /// carve-out (ACE).
    pub mem_gbps: Vec<f64>,
    /// Knob axis: SMs loaned to communication (baseline only).
    pub comm_sms: Vec<u32>,
    /// Knob axis: ACE SRAM size in MB (Fig. 9a).
    pub sram_mb: Vec<u64>,
    /// Knob axis: ACE FSM count (Fig. 9a).
    pub fsms: Vec<usize>,
    /// Training mode: Table VI system configurations.
    pub configs: Vec<SystemConfig>,
    /// Training mode: workloads — builtins (`"dlrm"`), re-parallelized
    /// builtins (`"transformer@model"`), or custom TOML models
    /// (`"file:my_model.toml"`).
    pub workloads: Vec<WorkloadSel>,
    /// Training mode: simulated iterations per point (paper default 2).
    pub iterations: u32,
    /// Training mode: enable the Fig. 12 DLRM embedding optimization.
    pub optimized_embedding: bool,
    /// Serving mode: mean arrival rates in requests/s — the load axis.
    pub arrival_rates: Vec<f64>,
    /// Serving mode: the arrival-process family (`poisson`,
    /// `bursty:<n>`, or `trace:<path>` resolved next to the scenario).
    pub arrival: ArrivalKind,
    /// Serving mode: round-admission schedules to sweep (`gpipe` drains
    /// each round before the next; `1f1b` injects when stage 0 frees).
    pub schedules: Vec<PipeSchedule>,
    /// Serving mode: microbatch counts to sweep.
    pub microbatches: Vec<u32>,
    /// Serving mode: pipeline stages the model is partitioned into.
    pub stages: u32,
    /// Serving mode: requests served per point.
    pub requests: u32,
    /// Serving mode: arrival-process seed.
    pub seed: u64,
    /// Serving mode: prompt length in tokens (one prefill = one forward
    /// pass of the workload at this token count).
    pub prompt_tokens: u32,
    /// Serving mode: output tokens generated after the first.
    pub decode_tokens: u32,
    /// Serving mode: continuous-batching token budget per round.
    pub token_budget: u32,
    /// Fault-injection axis: link/node kill and degradation scenarios
    /// applied to the fabric (`"none"`, `"kill:2@seed:42"`,
    /// `"degrade:50:kill:1"`, ...). Defaults to the single pristine
    /// scenario.
    pub faults: Vec<FaultSpec>,
    /// Contention axis: background traffic stealing link bandwidth
    /// (`"none"`, `"uniform:8"`, `"hotspot:3@16"`). Defaults to none.
    pub contention: Vec<ContentionSpec>,
    /// Straggler axis: compute-time jitter distributions applied to
    /// training/serving programs (`"det"`, `"lognormal:0.2"`,
    /// `"lognormal:0.2@seed:7"`). Collective mode has no compute tasks,
    /// so the axis is pinned to `det` there. Defaults to deterministic.
    pub stragglers: Vec<StragglerSpec>,
    /// Optional reference config for speedup columns and axis summaries.
    pub baseline: Option<BaselineSpec>,
    /// Simulation fidelity: `exact` (event-driven, the default),
    /// `analytic` (closed-form α–β model), or `hybrid` (analytic triage,
    /// exact re-simulation of the interesting cells). Overridable on the
    /// `sweep` CLI with `--fidelity`.
    pub fidelity: Fidelity,
    /// Hybrid fidelity: percentage of each cell group's fastest cells
    /// (by analytic time) re-simulated exactly, on top of the Pareto
    /// frontier. Default 10.
    pub hybrid_top_pct: f64,
    /// Worker threads inside each exact simulation (the domain-
    /// partitioned event loop); 1 = serial. An execution hint, not a
    /// sweep axis: results are byte-identical for every value, so it is
    /// deliberately excluded from run points and cache keys. Overridable
    /// on the `sweep` CLI with `--sim-threads`.
    pub sim_threads: usize,
}

impl Scenario {
    /// An empty collective-mode scenario with paper-default knobs; callers
    /// fill in the axes they sweep.
    pub fn collective(name: impl Into<String>) -> Scenario {
        Scenario {
            name: name.into(),
            mode: SweepMode::Collective,
            topologies: vec![TopologySpec::torus3(4, 2, 2).expect("valid shape")],
            engines: vec![
                EngineFamily::Ideal,
                EngineFamily::Baseline,
                EngineFamily::Ace,
            ],
            ops: vec![CollectiveOp::AllReduce],
            payload_bytes: vec![64 << 20],
            mem_gbps: vec![128.0],
            comm_sms: vec![6],
            sram_mb: vec![4],
            fsms: vec![16],
            configs: Vec::new(),
            workloads: Vec::new(),
            iterations: 2,
            optimized_embedding: false,
            arrival_rates: Vec::new(),
            arrival: ArrivalKind::Poisson,
            schedules: Vec::new(),
            microbatches: Vec::new(),
            stages: 4,
            requests: 64,
            seed: 1,
            prompt_tokens: 128,
            decode_tokens: 8,
            token_budget: 512,
            faults: vec![FaultSpec::default()],
            contention: vec![ContentionSpec::default()],
            stragglers: vec![StragglerSpec::default()],
            baseline: None,
            fidelity: Fidelity::Exact,
            hybrid_top_pct: 10.0,
            sim_threads: 1,
        }
    }

    /// An empty training-mode scenario over the five Table VI configs;
    /// callers fill in topologies and workloads.
    pub fn training(name: impl Into<String>) -> Scenario {
        Scenario {
            mode: SweepMode::Training,
            engines: Vec::new(),
            ops: Vec::new(),
            payload_bytes: Vec::new(),
            mem_gbps: Vec::new(),
            comm_sms: Vec::new(),
            sram_mb: Vec::new(),
            fsms: Vec::new(),
            configs: SystemConfig::ALL.to_vec(),
            workloads: vec![WorkloadSel::builtin(BuiltinWorkload::Resnet50)],
            ..Scenario::collective(name)
        }
    }

    /// An empty serving-mode scenario: ACE config, transformer workload,
    /// one Poisson load level; callers fill in the load / schedule /
    /// topology axes.
    pub fn serving(name: impl Into<String>) -> Scenario {
        Scenario {
            mode: SweepMode::Serving,
            engines: Vec::new(),
            ops: Vec::new(),
            payload_bytes: Vec::new(),
            mem_gbps: Vec::new(),
            comm_sms: Vec::new(),
            sram_mb: Vec::new(),
            fsms: Vec::new(),
            configs: vec![SystemConfig::Ace],
            workloads: vec![WorkloadSel::builtin(BuiltinWorkload::TransformerLm)],
            arrival_rates: vec![500.0],
            schedules: vec![PipeSchedule::GPipe],
            microbatches: vec![8],
            ..Scenario::collective(name)
        }
    }

    /// Materializes the fixed serving parameters plus one grid cell's
    /// (rate, schedule, microbatches) into a [`ServingSpec`].
    pub fn serving_spec(
        &self,
        rate_rps: f64,
        schedule: PipeSchedule,
        microbatches: u32,
    ) -> ServingSpec {
        ServingSpec {
            arrival: self.arrival.clone(),
            rate_rps,
            requests: self.requests,
            seed: self.seed,
            prompt_tokens: self.prompt_tokens,
            decode_tokens: self.decode_tokens,
            token_budget: self.token_budget,
            stages: self.stages,
            microbatches,
            schedule,
        }
    }

    /// Parses a scenario from TOML text. See the crate docs and
    /// `examples/scenarios/` for the format. Relative `file:` workload
    /// paths resolve against the current directory; prefer
    /// [`from_toml_path`](Scenario::from_toml_path) for scenario files
    /// on disk.
    pub fn from_toml_str(text: &str) -> Result<Scenario, ScenarioError> {
        Self::from_toml_str_at(text, None)
    }

    /// Reads and parses a scenario file. Relative `file:` workload
    /// paths resolve against the scenario file's directory, so scenarios
    /// can ship next to the models they reference.
    pub fn from_toml_path(path: impl AsRef<Path>) -> Result<Scenario, ScenarioError> {
        let path = path.as_ref();
        let text = std::fs::read_to_string(path).map_err(|e| {
            ScenarioError::Invalid(format!("cannot read scenario {}: {e}", path.display()))
        })?;
        Self::from_toml_str_at(&text, path.parent())
    }

    /// Parses scenario text with an explicit base directory for relative
    /// `file:` workload paths.
    pub fn from_toml_str_at(text: &str, base: Option<&Path>) -> Result<Scenario, ScenarioError> {
        let doc = toml::parse(text).map_err(ScenarioError::Parse)?;
        Scenario::from_toml(&doc, base)
    }

    fn from_toml(
        doc: &BTreeMap<String, Value>,
        base: Option<&Path>,
    ) -> Result<Scenario, ScenarioError> {
        let invalid = |msg: String| ScenarioError::Invalid(msg);

        // Reject misspelled keys loudly: a typoed axis name silently
        // falling back to its default would run the wrong sweep.
        const KNOWN_KEYS: [&str; 31] = [
            "name",
            "mode",
            "topologies",
            "engines",
            "ops",
            "payloads",
            "mem_gbps",
            "comm_sms",
            "sram_mb",
            "fsms",
            "configs",
            "workloads",
            "iterations",
            "optimized_embedding",
            "arrival",
            "arrival_rates",
            "schedules",
            "microbatches",
            "stages",
            "requests",
            "seed",
            "prompt_tokens",
            "decode_tokens",
            "token_budget",
            "faults",
            "contention",
            "stragglers",
            "baseline",
            "fidelity",
            "hybrid_top_pct",
            "sim_threads",
        ];
        for key in doc.keys() {
            if !KNOWN_KEYS.contains(&key.as_str()) {
                let hint = ace_toml::did_you_mean(key, &KNOWN_KEYS);
                return Err(invalid(format!(
                    "unknown key '{key}'{hint} (known keys: {})",
                    KNOWN_KEYS.join(", ")
                )));
            }
        }

        let name = match doc.get("name") {
            Some(v) => v
                .as_str()
                .ok_or_else(|| invalid("'name' must be a string".into()))?
                .to_string(),
            None => "sweep".to_string(),
        };
        let mode = match doc.get("mode").map(|v| v.as_str()) {
            None => SweepMode::Collective,
            Some(Some("collective")) => SweepMode::Collective,
            Some(Some("training")) => SweepMode::Training,
            Some(Some("serving")) => SweepMode::Serving,
            Some(other) => {
                return Err(invalid(format!(
                    "'mode' must be \"collective\", \"training\" or \"serving\", got {other:?}"
                )))
            }
        };

        let mut sc = match mode {
            SweepMode::Collective => Scenario::collective(name),
            SweepMode::Training => Scenario::training(name),
            SweepMode::Serving => Scenario::serving(name),
        };

        if let Some(v) = doc.get("topologies") {
            sc.topologies = parse_list(v, "topologies", parse_topology)?;
        }
        if let Some(v) = doc.get("engines") {
            sc.engines = parse_list(v, "engines", |s, _| {
                s.as_str()
                    .ok_or_else(|| "expected string".to_string())
                    .and_then(|s| s.parse::<EngineFamily>())
            })?;
        }
        if let Some(v) = doc.get("ops") {
            sc.ops = parse_list(v, "ops", |s, _| {
                s.as_str()
                    .ok_or_else(|| "expected string".to_string())
                    .and_then(parse_op)
            })?;
        }
        if let Some(v) = doc.get("payloads") {
            sc.payload_bytes = parse_list(v, "payloads", |s, _| parse_bytes(s))?;
        }
        if let Some(v) = doc.get("mem_gbps") {
            sc.mem_gbps = parse_list(v, "mem_gbps", |s, _| {
                s.as_f64()
                    .filter(|g| g.is_finite() && *g > 0.0)
                    .ok_or_else(|| "expected a positive number of GB/s".to_string())
            })?;
        }
        if let Some(v) = doc.get("comm_sms") {
            sc.comm_sms = parse_list(v, "comm_sms", |s, _| parse_uint(s).map(|u| u as u32))?;
        }
        if let Some(v) = doc.get("sram_mb") {
            sc.sram_mb = parse_list(v, "sram_mb", |s, _| parse_uint(s))?;
        }
        if let Some(v) = doc.get("fsms") {
            sc.fsms = parse_list(v, "fsms", |s, _| parse_uint(s).map(|u| u as usize))?;
        }
        if let Some(v) = doc.get("configs") {
            sc.configs = parse_list(v, "configs", |s, _| {
                s.as_str()
                    .ok_or_else(|| "expected string".to_string())
                    .and_then(|s| s.parse::<SystemConfig>())
            })?;
        }
        if let Some(v) = doc.get("workloads") {
            sc.workloads = parse_list(v, "workloads", |s, _| {
                s.as_str()
                    .ok_or_else(|| "expected string".to_string())
                    .and_then(|s| WorkloadSel::parse(s, base))
            })?;
        }
        if let Some(v) = doc.get("iterations") {
            sc.iterations = v
                .as_i64()
                .filter(|&i| i >= 1 && i <= i64::from(u32::MAX))
                .ok_or_else(|| invalid("'iterations' must be a positive integer".into()))?
                as u32;
        }
        if let Some(v) = doc.get("optimized_embedding") {
            sc.optimized_embedding = v
                .as_bool()
                .ok_or_else(|| invalid("'optimized_embedding' must be a bool".into()))?;
        }
        if let Some(v) = doc.get("arrival") {
            let s = v
                .as_str()
                .ok_or_else(|| invalid("'arrival' must be a string".into()))?;
            sc.arrival = ArrivalKind::parse(s, base).map_err(invalid)?;
        }
        if let Some(v) = doc.get("arrival_rates") {
            sc.arrival_rates = parse_list(v, "arrival_rates", |s, _| {
                s.as_f64()
                    .filter(|r| r.is_finite() && *r > 0.0)
                    .ok_or_else(|| "expected a positive arrival rate in requests/s".to_string())
            })?;
        }
        if let Some(v) = doc.get("schedules") {
            sc.schedules = parse_list(v, "schedules", |s, _| {
                s.as_str()
                    .ok_or_else(|| "expected string".to_string())
                    .and_then(|s| s.parse::<PipeSchedule>())
            })?;
        }
        if let Some(v) = doc.get("microbatches") {
            sc.microbatches =
                parse_list(v, "microbatches", |s, _| parse_uint(s).map(|u| u as u32))?;
        }
        let serving_u32 = |key: &str, min: i64| -> Result<Option<u32>, ScenarioError> {
            match doc.get(key) {
                None => Ok(None),
                Some(v) => v
                    .as_i64()
                    .filter(|&i| i >= min && i <= i64::from(u32::MAX))
                    .map(|i| Some(i as u32))
                    .ok_or_else(|| {
                        invalid(format!("'{key}' must be an integer of at least {min}"))
                    }),
            }
        };
        if let Some(v) = serving_u32("stages", 1)? {
            sc.stages = v;
        }
        if let Some(v) = serving_u32("requests", 1)? {
            sc.requests = v;
        }
        if let Some(v) = serving_u32("prompt_tokens", 1)? {
            sc.prompt_tokens = v;
        }
        if let Some(v) = serving_u32("decode_tokens", 0)? {
            sc.decode_tokens = v;
        }
        if let Some(v) = serving_u32("token_budget", 1)? {
            sc.token_budget = v;
        }
        if let Some(v) = doc.get("faults") {
            sc.faults = parse_list(v, "faults", |s, _| {
                s.as_str()
                    .ok_or_else(|| "expected string".to_string())
                    .and_then(|s| s.parse::<FaultSpec>())
            })?;
        }
        if let Some(v) = doc.get("contention") {
            sc.contention = parse_list(v, "contention", |s, _| {
                s.as_str()
                    .ok_or_else(|| "expected string".to_string())
                    .and_then(|s| s.parse::<ContentionSpec>())
            })?;
        }
        if let Some(v) = doc.get("stragglers") {
            sc.stragglers = parse_list(v, "stragglers", |s, _| {
                s.as_str()
                    .ok_or_else(|| "expected string".to_string())
                    .and_then(|s| s.parse::<StragglerSpec>())
            })?;
        }
        if let Some(v) = doc.get("seed") {
            sc.seed = v
                .as_i64()
                .filter(|&i| i >= 0)
                .ok_or_else(|| invalid("'seed' must be a non-negative integer".into()))?
                as u64;
        }
        if let Some(v) = doc.get("fidelity") {
            sc.fidelity = v
                .as_str()
                .ok_or_else(|| invalid("'fidelity' must be a string".into()))?
                .parse::<Fidelity>()
                .map_err(invalid)?;
        }
        if let Some(v) = doc.get("hybrid_top_pct") {
            sc.hybrid_top_pct = v
                .as_f64()
                .filter(|p| p.is_finite() && *p > 0.0 && *p <= 100.0)
                .ok_or_else(|| invalid("'hybrid_top_pct' must be in (0, 100]".into()))?;
        }
        if let Some(v) = doc.get("sim_threads") {
            sc.sim_threads = v
                .as_i64()
                .filter(|&i| (1..=1024).contains(&i))
                .ok_or_else(|| invalid("'sim_threads' must be an integer in [1, 1024]".into()))?
                as usize;
        }
        if let Some(v) = doc.get("baseline") {
            let table = v
                .as_table()
                .ok_or_else(|| invalid("[baseline] must be a table".into()))?;
            sc.baseline = Some(parse_baseline(table, mode)?);
        }

        sc.validate().map_err(ScenarioError::Invalid)?;
        Ok(sc)
    }

    /// Checks axis consistency for the scenario's mode.
    pub fn validate(&self) -> Result<(), String> {
        if self.topologies.is_empty() {
            return Err("at least one topology is required".into());
        }
        for (axis, empty) in [
            ("faults", self.faults.is_empty()),
            ("contention", self.contention.is_empty()),
            ("stragglers", self.stragglers.is_empty()),
        ] {
            if empty {
                return Err(format!(
                    "the '{axis}' axis must not be empty (use [\"none\"] / [\"det\"] for pristine)"
                ));
            }
        }
        if !self.hybrid_top_pct.is_finite()
            || self.hybrid_top_pct <= 0.0
            || self.hybrid_top_pct > 100.0
        {
            return Err(format!(
                "hybrid_top_pct must be in (0, 100], got {}",
                self.hybrid_top_pct
            ));
        }
        match self.mode {
            SweepMode::Collective => {
                for (axis, empty) in [
                    ("engines", self.engines.is_empty()),
                    ("ops", self.ops.is_empty()),
                    ("payloads", self.payload_bytes.is_empty()),
                    ("mem_gbps", self.mem_gbps.is_empty()),
                    ("comm_sms", self.comm_sms.is_empty()),
                    ("sram_mb", self.sram_mb.is_empty()),
                    ("fsms", self.fsms.is_empty()),
                ] {
                    if empty {
                        return Err(format!("collective mode requires a nonempty '{axis}' axis"));
                    }
                }
                // Out-of-range knobs panic deep in the simulator's
                // asserting constructors; reject them here instead.
                if let Some(g) = self.mem_gbps.iter().find(|g| !g.is_finite() || **g <= 0.0) {
                    return Err(format!(
                        "mem_gbps values must be positive and finite, got {g}"
                    ));
                }
                if self.comm_sms.contains(&0) {
                    return Err("comm_sms values must be at least 1".into());
                }
                if self.sram_mb.contains(&0) {
                    return Err("sram_mb values must be at least 1".into());
                }
                if self.fsms.contains(&0) {
                    return Err("fsms values must be at least 1".into());
                }
                if let Some(BaselineSpec::Config(_)) = self.baseline {
                    return Err("collective mode baseline must name an engine, not a config".into());
                }
            }
            SweepMode::Training => {
                if self.configs.is_empty() {
                    return Err("training mode requires a nonempty 'configs' axis".into());
                }
                if self.workloads.is_empty() {
                    return Err("training mode requires a nonempty 'workloads' axis".into());
                }
                for (i, w) in self.workloads.iter().enumerate() {
                    w.check().map_err(|e| format!("workloads[{i}]: {e}"))?;
                }
                if let Some(BaselineSpec::Engine(_)) = self.baseline {
                    return Err("training mode baseline must name a config, not an engine".into());
                }
            }
            SweepMode::Serving => {
                if self.configs.is_empty() {
                    return Err("serving mode requires a nonempty 'configs' axis".into());
                }
                if self.workloads.is_empty() {
                    return Err("serving mode requires a nonempty 'workloads' axis".into());
                }
                for (i, w) in self.workloads.iter().enumerate() {
                    w.check().map_err(|e| format!("workloads[{i}]: {e}"))?;
                }
                if self.arrival_rates.is_empty() {
                    return Err("serving mode requires a nonempty 'arrival_rates' axis".into());
                }
                if let Some(r) = self
                    .arrival_rates
                    .iter()
                    .find(|r| !r.is_finite() || **r <= 0.0)
                {
                    return Err(format!(
                        "arrival_rates values must be positive and finite, got {r}"
                    ));
                }
                if self.schedules.is_empty() {
                    return Err("serving mode requires a nonempty 'schedules' axis".into());
                }
                if self.microbatches.is_empty() {
                    return Err("serving mode requires a nonempty 'microbatches' axis".into());
                }
                // One representative spec exercises the scalar-field checks
                // (budget >= prompt, positive stages, ...); the axis values
                // only vary fields validate() accepts for any positive value.
                self.serving_spec(
                    self.arrival_rates[0],
                    self.schedules[0],
                    self.microbatches[0],
                )
                .validate()?;
                if let Some(BaselineSpec::Engine(_)) = self.baseline {
                    return Err("serving mode baseline must name a config, not an engine".into());
                }
            }
        }
        Ok(())
    }
}

/// Errors loading a scenario.
#[derive(Debug, Clone, PartialEq)]
pub enum ScenarioError {
    /// The TOML text failed to parse.
    Parse(toml::ParseError),
    /// The document parsed but the scenario is inconsistent.
    Invalid(String),
}

impl fmt::Display for ScenarioError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ScenarioError::Parse(e) => write!(f, "{e}"),
            ScenarioError::Invalid(m) => write!(f, "invalid scenario: {m}"),
        }
    }
}

impl std::error::Error for ScenarioError {}

fn parse_list<T>(
    v: &Value,
    key: &str,
    f: impl Fn(&Value, usize) -> Result<T, String>,
) -> Result<Vec<T>, ScenarioError> {
    let items = v
        .as_array()
        .ok_or_else(|| ScenarioError::Invalid(format!("'{key}' must be an array")))?;
    if items.is_empty() {
        return Err(ScenarioError::Invalid(format!("'{key}' must not be empty")));
    }
    items
        .iter()
        .enumerate()
        .map(|(i, item)| f(item, i).map_err(|e| ScenarioError::Invalid(format!("{key}[{i}]: {e}"))))
        .collect()
}

fn parse_topology(v: &Value, _i: usize) -> Result<TopologySpec, String> {
    let s = v
        .as_str()
        .ok_or_else(|| format!("expected a string naming {}", TopologySpec::spellings()))?;
    s.parse::<TopologySpec>()
}

/// Parses a collective-op name, tolerating hyphens/underscores — a
/// compatibility wrapper over the single parser in `ace-collectives`
/// (which also supplies the did-you-mean hints).
pub fn parse_op(s: &str) -> Result<CollectiveOp, String> {
    s.parse::<CollectiveOp>()
}

/// Parses a byte count: a plain integer, or a string with a `KB`/`MB`/`GB`
/// binary-power suffix (e.g. `"64MB"`) — hoisted to `ace-toml` so the
/// workload-spec parser shares it; re-exported for compatibility.
pub use ace_toml::parse_bytes;

fn parse_uint(v: &Value) -> Result<u64, String> {
    v.as_i64()
        .filter(|&i| i >= 1)
        .map(|i| i as u64)
        .ok_or_else(|| "expected a positive integer".to_string())
}

fn parse_baseline(
    table: &BTreeMap<String, Value>,
    mode: SweepMode,
) -> Result<BaselineSpec, ScenarioError> {
    let invalid = |m: String| ScenarioError::Invalid(m);
    const KNOWN_KEYS: [&str; 6] = [
        "engine", "config", "mem_gbps", "comm_sms", "sram_mb", "fsms",
    ];
    for key in table.keys() {
        if !KNOWN_KEYS.contains(&key.as_str()) {
            return Err(invalid(format!(
                "[baseline] unknown key '{key}' (known keys: {})",
                KNOWN_KEYS.join(", ")
            )));
        }
    }
    match mode {
        SweepMode::Training | SweepMode::Serving => {
            let cfg = table
                .get("config")
                .and_then(|v| v.as_str())
                .ok_or_else(|| {
                    invalid(format!(
                        "[baseline] needs config = \"<name>\" in {mode} mode"
                    ))
                })?;
            Ok(BaselineSpec::Config(cfg.parse().map_err(invalid)?))
        }
        SweepMode::Collective => {
            let family: EngineFamily = table
                .get("engine")
                .and_then(|v| v.as_str())
                .ok_or_else(|| {
                    invalid("[baseline] needs engine = \"<name>\" in collective mode".into())
                })?
                .parse()
                .map_err(invalid)?;
            let gbps = |key: &str, default: f64| -> Result<f64, ScenarioError> {
                match table.get(key) {
                    None => Ok(default),
                    Some(v) => v
                        .as_f64()
                        .filter(|g| g.is_finite() && *g > 0.0)
                        .ok_or_else(|| {
                            invalid(format!("[baseline] {key} must be a positive number"))
                        }),
                }
            };
            let posint = |key: &str, default: u64| -> Result<u64, ScenarioError> {
                match table.get(key) {
                    None => Ok(default),
                    Some(v) => v
                        .as_i64()
                        .filter(|&i| i >= 1)
                        .map(|i| i as u64)
                        .ok_or_else(|| {
                            invalid(format!("[baseline] {key} must be a positive integer"))
                        }),
                }
            };
            let spec = match family {
                EngineFamily::Ideal => EngineSpec::Ideal,
                EngineFamily::Baseline => EngineSpec::Baseline {
                    mem_gbps: gbps("mem_gbps", 450.0)?,
                    comm_sms: posint("comm_sms", 6)? as u32,
                },
                EngineFamily::Ace => EngineSpec::Ace {
                    dma_mem_gbps: gbps("mem_gbps", 128.0)?,
                    sram_mb: posint("sram_mb", 4)?,
                    fsms: posint("fsms", 16)? as usize,
                },
            };
            Ok(BaselineSpec::Engine(spec))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn collective_scenario_parses() {
        let sc = Scenario::from_toml_str(
            r#"
            name = "fig05"
            mode = "collective"
            topologies = ["4x2x2", "4x4x4"]
            engines = ["ideal", "baseline", "ace"]
            ops = ["all-reduce"]
            payloads = ["64MB"]
            mem_gbps = [32, 64, 128, 450]
            comm_sms = [80]

            [baseline]
            engine = "ideal"
            "#,
        )
        .unwrap();
        assert_eq!(sc.name, "fig05");
        assert_eq!(sc.mode, SweepMode::Collective);
        assert_eq!(sc.topologies.len(), 2);
        assert_eq!(sc.engines.len(), 3);
        assert_eq!(sc.payload_bytes, vec![64 << 20]);
        assert_eq!(sc.mem_gbps, vec![32.0, 64.0, 128.0, 450.0]);
        assert_eq!(sc.baseline, Some(BaselineSpec::Engine(EngineSpec::Ideal)));
    }

    #[test]
    fn training_scenario_parses() {
        let sc = Scenario::from_toml_str(
            r#"
            name = "fig11"
            mode = "training"
            topologies = ["4x2x2", "4x4x2"]
            configs = ["NoOverlap", "CommOpt", "ACE", "Ideal"]
            workloads = ["resnet50", "dlrm"]
            iterations = 1

            [baseline]
            config = "NoOverlap"
            "#,
        )
        .unwrap();
        assert_eq!(sc.mode, SweepMode::Training);
        assert_eq!(sc.configs.len(), 4);
        assert_eq!(
            sc.workloads,
            vec![
                WorkloadSel::builtin(BuiltinWorkload::Resnet50),
                WorkloadSel::builtin(BuiltinWorkload::Dlrm)
            ]
        );
        assert_eq!(sc.iterations, 1);
        assert_eq!(
            sc.baseline,
            Some(BaselineSpec::Config(SystemConfig::BaselineNoOverlap))
        );
    }

    #[test]
    fn defaults_fill_unswept_axes() {
        let sc = Scenario::from_toml_str("topologies = [\"4x2x2\"]\n").unwrap();
        assert_eq!(sc.mode, SweepMode::Collective);
        assert_eq!(sc.sram_mb, vec![4]);
        assert_eq!(sc.fsms, vec![16]);
        assert_eq!(sc.iterations, 2);
        assert!(sc.baseline.is_none());
    }

    #[test]
    fn non_torus_topologies_parse() {
        let sc = Scenario::from_toml_str(
            "topologies = [\"4x2\", \"switch:16\", \"switch:8@100\", \"hier:4x8\"]\n",
        )
        .unwrap();
        assert_eq!(sc.topologies.len(), 4);
        assert_eq!(sc.topologies[0].nodes(), 8);
        assert_eq!(sc.topologies[1], TopologySpec::switch(16).unwrap());
        assert_eq!(
            sc.topologies[2],
            TopologySpec::switch_with_gbps(8, 100).unwrap()
        );
        assert_eq!(sc.topologies[3].nodes(), 32);
    }

    #[test]
    fn workload_axis_accepts_parallelism_overrides() {
        let sc = Scenario::from_toml_str(
            "mode = \"training\"\nworkloads = [\"transformer@model\", \"dlrm\", \"gnmt@data\"]\n",
        )
        .unwrap();
        assert_eq!(
            sc.workloads[0],
            WorkloadSel::Builtin {
                kind: BuiltinWorkload::TransformerLm,
                parallelism: Some(Parallelism::Model),
            }
        );
        assert_eq!(sc.workloads[0].to_string(), "transformer@model");
        assert_eq!(sc.workloads[1].to_string(), "dlrm");
        let w = sc.workloads[0].instantiate(16);
        assert_eq!(w.parallelism(), Parallelism::Model);
    }

    #[test]
    fn misspelled_workloads_get_hints_through_the_toml_layer() {
        // The old parser emitted a bare "unknown workload" message; the
        // hints must survive the scenario layer intact.
        let e =
            Scenario::from_toml_str("mode = \"training\"\nworkloads = [\"resent50\"]").unwrap_err();
        assert!(e.to_string().contains("did you mean 'resnet50'"), "{e}");
        let e = Scenario::from_toml_str("mode = \"training\"\nworkloads = [\"dlmr\"]").unwrap_err();
        assert!(e.to_string().contains("did you mean 'dlrm'"), "{e}");
        let e = Scenario::from_toml_str("mode = \"training\"\nworkloads = [\"gnmt@modell\"]")
            .unwrap_err();
        assert!(e.to_string().contains("did you mean 'model'"), "{e}");
        // Structurally impossible overrides are rejected at parse time.
        let e = Scenario::from_toml_str("mode = \"training\"\nworkloads = [\"resnet50@hybrid\"]")
            .unwrap_err();
        assert!(e.to_string().contains("embedding"), "{e}");
        // Missing custom files are reported with their path.
        let e = Scenario::from_toml_str(
            "mode = \"training\"\nworkloads = [\"file:does_not_exist.toml\"]",
        )
        .unwrap_err();
        assert!(e.to_string().contains("does_not_exist.toml"), "{e}");
    }

    #[test]
    fn custom_workloads_load_relative_to_the_scenario_file() {
        let dir = std::env::temp_dir().join("ace-sweep-custom-workload-test");
        std::fs::create_dir_all(&dir).unwrap();
        std::fs::write(
            dir.join("model.toml"),
            "name = \"tiny\"\nbatch_per_npu = 4\n[[layer]]\nfwd_flops = 1e9\nfwd_bytes = 1e7\n\
             comm = \"all-reduce\"\ncomm_bytes = \"1MB\"\n",
        )
        .unwrap();
        let scenario_path = dir.join("scenario.toml");
        std::fs::write(
            &scenario_path,
            "mode = \"training\"\ntopologies = [\"2x1x1\"]\nworkloads = [\"file:model.toml\"]\n",
        )
        .unwrap();
        let sc = Scenario::from_toml_path(&scenario_path).unwrap();
        let WorkloadSel::File(custom) = &sc.workloads[0] else {
            panic!("expected a custom workload");
        };
        assert_eq!(custom.path(), "model.toml");
        assert_eq!(custom.spec().unwrap().name, "tiny");
        let w = sc.workloads[0].instantiate(2);
        assert_eq!(w.name(), "tiny");
        // Cache-key round trip: display → from_cache_key preserves
        // identity (path + fingerprint) without touching the filesystem.
        let key = sc.workloads[0].to_string();
        assert!(key.starts_with("file:model.toml#"), "{key}");
        let reparsed = WorkloadSel::from_cache_key(&key).unwrap();
        assert_eq!(reparsed, sc.workloads[0]);
        // Editing the file changes the fingerprint: stale cache rows miss.
        std::fs::write(
            dir.join("model.toml"),
            "name = \"tiny\"\nbatch_per_npu = 8\n[[layer]]\nfwd_flops = 1e9\nfwd_bytes = 1e7\n",
        )
        .unwrap();
        let sc2 = Scenario::from_toml_path(&scenario_path).unwrap();
        assert_ne!(sc2.workloads[0], sc.workloads[0]);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn misspelled_topologies_get_a_hint() {
        let e = Scenario::from_toml_str("topologies = [\"swich:16\"]").unwrap_err();
        assert!(e.to_string().contains("did you mean 'switch'"), "{e}");
        let e = Scenario::from_toml_str("topologies = [\"blob\"]").unwrap_err();
        assert!(e.to_string().contains("switch:N"), "{e}");
    }

    #[test]
    fn config_typos_surface_hints_through_the_toml_layer() {
        // Regression: malformed names used to surface as opaque errors;
        // the parse hints must survive the scenario layer intact.
        let e = Scenario::from_toml_str("mode = \"training\"\nconfigs = [\"AEC\"]").unwrap_err();
        assert!(e.to_string().contains("did you mean 'ACE'"), "{e}");
        let e = Scenario::from_toml_str("topologies = [\"heir:2x4\"]").unwrap_err();
        assert!(e.to_string().contains("did you mean 'hier'"), "{e}");
        // Structural topology errors name the valid spellings.
        let e = Scenario::from_toml_str("topologies = [\"1x1x1\"]").unwrap_err();
        assert!(e.to_string().contains("at least two nodes"), "{e}");
    }

    #[test]
    fn bad_inputs_are_rejected() {
        assert!(Scenario::from_toml_str("topologies = [\"4x\"]").is_err());
        assert!(Scenario::from_toml_str("topologies = [\"0x2x2\"]").is_err());
        assert!(Scenario::from_toml_str("topologies = [\"switch:1\"]").is_err());
        assert!(Scenario::from_toml_str("engines = [\"warp-drive\"]").is_err());
        assert!(Scenario::from_toml_str("mode = \"quantum\"").is_err());
        assert!(Scenario::from_toml_str("payloads = [-5]").is_err());
        assert!(
            Scenario::from_toml_str("mode = \"training\"\nconfigs = [\"NotAConfig\"]").is_err()
        );
        // Baseline kind must match the mode.
        assert!(Scenario::from_toml_str("[baseline]\nconfig = \"ACE\"").is_err());
        assert!(
            Scenario::from_toml_str("mode = \"training\"\n[baseline]\nengine = \"ace\"").is_err()
        );
    }

    #[test]
    fn unknown_keys_are_rejected() {
        // A typoed axis silently falling back to defaults would run the
        // wrong sweep.
        let e = Scenario::from_toml_str("payload = [\"1MB\"]").unwrap_err();
        assert!(e.to_string().contains("unknown key 'payload'"), "{e}");
        assert!(Scenario::from_toml_str("memgbps = [128]").is_err());
        let e = Scenario::from_toml_str("[baseline]\nengine = \"ideal\"\nsms = 6").unwrap_err();
        assert!(e.to_string().contains("unknown key 'sms'"), "{e}");
    }

    #[test]
    fn out_of_range_knobs_are_rejected() {
        // These values would otherwise panic inside the simulator's
        // asserting constructors.
        assert!(Scenario::from_toml_str("mem_gbps = [0]").is_err());
        assert!(Scenario::from_toml_str("mem_gbps = [-128]").is_err());
        assert!(Scenario::from_toml_str("comm_sms = [0]").is_err());
        assert!(Scenario::from_toml_str("sram_mb = [0]").is_err());
        assert!(Scenario::from_toml_str("fsms = [0]").is_err());
        assert!(
            Scenario::from_toml_str("[baseline]\nengine = \"baseline\"\ncomm_sms = 0").is_err()
        );
        assert!(Scenario::from_toml_str("[baseline]\nengine = \"ace\"\nmem_gbps = -1").is_err());
        assert!(Scenario::from_toml_str("[baseline]\nengine = \"ace\"\nsram_mb = -4").is_err());
        // Programmatic construction is validated by the runner too.
        let mut sc = Scenario::collective("bad");
        sc.mem_gbps = vec![0.0];
        assert!(sc.validate().is_err());
    }

    #[test]
    fn payload_suffixes() {
        let b = |s: &str| parse_bytes(&Value::Str(s.into())).unwrap();
        assert_eq!(b("64MB"), 64 << 20);
        assert_eq!(b("8 KB"), 8 << 10);
        assert_eq!(b("1GB"), 1 << 30);
        assert_eq!(b("512B"), 512);
        assert_eq!(b("4096"), 4096);
        assert_eq!(parse_bytes(&Value::Int(1024)).unwrap(), 1024);
        assert!(parse_bytes(&Value::Str("64XB".into())).is_err());
    }

    #[test]
    fn engine_spec_identity_ignores_nan_pitfalls() {
        use std::collections::HashSet;
        let mut set = HashSet::new();
        set.insert(EngineSpec::Baseline {
            mem_gbps: 450.0,
            comm_sms: 6,
        });
        assert!(set.contains(&EngineSpec::Baseline {
            mem_gbps: 450.0,
            comm_sms: 6
        }));
        assert!(!set.contains(&EngineSpec::Baseline {
            mem_gbps: 450.0,
            comm_sms: 7
        }));
        assert!(!set.contains(&EngineSpec::Ideal));
    }

    #[test]
    fn serving_scenario_parses() {
        let sc = Scenario::from_toml_str(
            r#"
            name = "serve"
            mode = "serving"
            topologies = ["4x4", "switch:16"]
            configs = ["ace"]
            workloads = ["transformer"]
            arrival = "bursty:4"
            arrival_rates = [250.0, 1000.0]
            schedules = ["gpipe", "1f1b"]
            microbatches = [4, 8]
            stages = 4
            requests = 16
            seed = 7
            prompt_tokens = 64
            decode_tokens = 2
            token_budget = 256

            [baseline]
            config = "ACE"
            "#,
        )
        .unwrap();
        assert_eq!(sc.mode, SweepMode::Serving);
        assert_eq!(sc.arrival, ArrivalKind::Bursty { burst: 4 });
        assert_eq!(sc.arrival_rates, vec![250.0, 1000.0]);
        assert_eq!(
            sc.schedules,
            vec![PipeSchedule::GPipe, PipeSchedule::OneFOneB]
        );
        assert_eq!(sc.microbatches, vec![4, 8]);
        assert_eq!((sc.stages, sc.requests, sc.seed), (4, 16, 7));
        assert_eq!((sc.prompt_tokens, sc.decode_tokens), (64, 2));
        assert_eq!(sc.token_budget, 256);
        assert_eq!(sc.baseline, Some(BaselineSpec::Config(SystemConfig::Ace)));
        // 2 topologies x 1 config x 1 workload x 2 rates x 2 schedules x 2 mb.
        assert_eq!(crate::grid::grid_len(&sc), 16);
        let spec = sc.serving_spec(250.0, PipeSchedule::OneFOneB, 4);
        assert_eq!(spec.requests, 16);
        assert_eq!(spec.prompt_tokens, 64);
        spec.validate().unwrap();
    }

    #[test]
    fn serving_defaults_fill_unswept_axes() {
        let sc = Scenario::from_toml_str("mode = \"serving\"\ntopologies = [\"4x4\"]\n").unwrap();
        assert_eq!(sc.mode, SweepMode::Serving);
        assert_eq!(sc.arrival, ArrivalKind::Poisson);
        assert_eq!(sc.arrival_rates, vec![500.0]);
        assert_eq!(sc.schedules, vec![PipeSchedule::GPipe]);
        assert_eq!(sc.microbatches, vec![8]);
        sc.validate().unwrap();
    }

    #[test]
    fn misspelled_serving_keys_get_hints() {
        // A typoed load axis silently running the default 500 rps would
        // invalidate the whole latency study.
        let e = Scenario::from_toml_str("mode = \"serving\"\narival_rates = [100.0]").unwrap_err();
        assert!(
            e.to_string().contains("did you mean 'arrival_rates'"),
            "{e}"
        );
        let e = Scenario::from_toml_str("mode = \"serving\"\nmicrobatch = [4]").unwrap_err();
        assert!(e.to_string().contains("did you mean 'microbatches'"), "{e}");
        // Arrival-process hints survive the TOML layer.
        let e = Scenario::from_toml_str("mode = \"serving\"\narrival = \"poison\"").unwrap_err();
        assert!(e.to_string().contains("did you mean 'poisson'"), "{e}");
        // Schedule hints come from the PipeSchedule parser.
        let e = Scenario::from_toml_str("mode = \"serving\"\nschedules = [\"gpip\"]").unwrap_err();
        assert!(e.to_string().contains("gpipe"), "{e}");
    }

    #[test]
    fn serving_scenario_rejects_bad_values() {
        assert!(Scenario::from_toml_str("mode = \"serving\"\narrival_rates = [0.0]").is_err());
        assert!(Scenario::from_toml_str("mode = \"serving\"\narrival_rates = [-5.0]").is_err());
        assert!(Scenario::from_toml_str("mode = \"serving\"\nstages = 0").is_err());
        assert!(Scenario::from_toml_str("mode = \"serving\"\nrequests = 0").is_err());
        assert!(Scenario::from_toml_str("mode = \"serving\"\ntoken_budget = 0").is_err());
        // Serving baselines compare configs, not collective engines.
        let e = Scenario::from_toml_str("mode = \"serving\"\n[baseline]\nengine = \"ideal\"")
            .unwrap_err();
        assert!(e.to_string().contains("config"), "{e}");
    }

    #[test]
    fn fault_axes_parse_and_default() {
        let sc = Scenario::from_toml_str(
            "topologies = [\"4x2x2\"]\nfaults = [\"none\", \"kill:1@seed:42\"]\n\
             contention = [\"uniform:8\"]\n",
        )
        .unwrap();
        assert_eq!(sc.faults.len(), 2);
        assert_eq!(sc.faults[0], FaultSpec::default());
        assert!(sc.faults[0].is_none());
        assert_eq!(sc.contention, vec!["uniform:8".parse().unwrap()]);
        // Unswept axes default to the single pristine entry.
        assert_eq!(sc.stragglers, vec![StragglerSpec::default()]);
        // Round-trip: the Display spelling re-parses to the same spec.
        let spelled = sc.faults[1].to_string();
        assert_eq!(spelled.parse::<FaultSpec>().unwrap(), sc.faults[1]);
    }

    #[test]
    fn bad_fault_axes_are_rejected_with_their_key() {
        let e = Scenario::from_toml_str("faults = [\"kill\"]").unwrap_err();
        assert!(e.to_string().contains("faults[0]"), "{e}");
        let e = Scenario::from_toml_str("stragglers = [\"lognormal\"]").unwrap_err();
        assert!(e.to_string().contains("stragglers[0]"), "{e}");
        let e = Scenario::from_toml_str("contention = [\"hotspot\"]").unwrap_err();
        assert!(e.to_string().contains("contention[0]"), "{e}");
        // A typoed axis name gets the did-you-mean treatment.
        let e = Scenario::from_toml_str("fault = [\"none\"]").unwrap_err();
        assert!(e.to_string().contains("did you mean 'faults'"), "{e}");
        // Programmatically emptied axes fail validation cleanly.
        let mut sc = Scenario::collective("bad");
        sc.faults = Vec::new();
        assert!(sc.validate().is_err());
    }

    #[test]
    fn engine_spec_display() {
        assert_eq!(EngineSpec::Ideal.to_string(), "ideal");
        assert_eq!(
            EngineSpec::Baseline {
                mem_gbps: 450.0,
                comm_sms: 6
            }
            .to_string(),
            "baseline[mem=450,sms=6]"
        );
        assert_eq!(
            EngineSpec::Ace {
                dma_mem_gbps: 128.0,
                sram_mb: 4,
                fsms: 16
            }
            .to_string(),
            "ace[dma=128,sram=4MB,fsms=16]"
        );
    }
}
