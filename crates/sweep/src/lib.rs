//! Declarative scenario specs and a parallel design-space sweep engine.
//!
//! The ACE paper's evaluation (Figs. 4–12, Tables III–IV) is a family of
//! sweeps over {torus shape × endpoint configuration × workload ×
//! payload size × memory-bandwidth/SM knobs}. This crate turns those
//! bespoke nested loops into data:
//!
//! * [`Scenario`] ([`scenario`]) — a declarative spec naming the axes,
//!   deserializable from a small TOML subset ([`toml`]; the build
//!   environment is std-only, so the parser is hand-rolled),
//! * [`grid`] — deterministic cartesian expansion into [`RunPoint`]s,
//! * [`scheduler`] — the resident [`JobScheduler`]: a worker pool that
//!   outlives a single grid, a `(tier, point)` [`Cache`], coalescing
//!   latest-generation-wins job submission, and an optional write-ahead
//!   [`persist::Journal`],
//! * [`bus`] — the in-process [`EventBus`] broadcasting typed
//!   [`BusEvent`]s ([`BusEvent::CellCompleted`] carries full metrics and
//!   bottleneck attribution),
//! * [`runner`] — the one-shot [`SweepRunner`] frontend (a thin scheduler
//!   client), returning results in grid order regardless of thread
//!   interleaving,
//! * [`service`] + [`protocol`] — the `sweep serve` daemon: newline-
//!   delimited JSON over a unix socket or stdio, crash-safe via the
//!   journal,
//! * [`report`] — CSV/JSON emitters and per-axis min/mean/max speedup
//!   summaries against a named baseline config.
//!
//! # Example
//!
//! ```
//! use ace_sweep::{run_scenario, RunnerOptions, Scenario};
//!
//! let scenario = Scenario::from_toml_str(r#"
//!     name = "quick"
//!     mode = "collective"
//!     topologies = ["2x1x1"]
//!     engines = ["ideal", "baseline"]
//!     ops = ["all-reduce"]
//!     payloads = ["128KB"]
//!     mem_gbps = [450]
//!     comm_sms = [6]
//!
//!     [baseline]
//!     engine = "ideal"
//! "#).unwrap();
//! let outcome = run_scenario(&scenario, RunnerOptions::default()).unwrap();
//! assert_eq!(outcome.results.len(), 2);
//! let csv = ace_sweep::report::to_csv(&outcome);
//! assert!(csv.lines().count() == 3);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bus;
pub mod fidelity;
pub mod grid;
pub mod persist;
pub mod protocol;
pub mod report;
pub mod runner;
pub mod scenario;
pub mod scheduler;
pub mod service;
/// The TOML-subset parser, hoisted to the `ace-toml` crate so workload
/// specs can use it without depending on the sweep engine; re-exported
/// here so `ace_sweep::toml::parse` keeps working.
pub use ace_toml as toml;

pub use bus::{BusEvent, EventBus, Subscription};
pub use fidelity::{Fidelity, Tier};
pub use grid::{expand, grid_len, PointKind, RunPoint};
pub use persist::{
    cache_from_str, cache_to_string, load_cache, save_cache, CacheFileLock, Journal, JournalReplay,
    PendingJob, CACHE_HEADER,
};
pub use report::{
    summarize, to_csv, to_csv_with_attribution, to_json, to_json_with_attribution, AxisSummary,
};
pub use runner::{
    execute, execute_analytic, execute_tier, run_scenario, Cache, Metrics, Progress, RunResult,
    RunnerOptions, SweepOutcome, SweepRunner,
};
pub use scenario::{
    BaselineSpec, CustomWorkload, EngineFamily, EngineSpec, Scenario, ScenarioError, SweepMode,
    WorkloadSel,
};
pub use scheduler::{JobError, JobScheduler, JobTicket};
pub use service::{ServiceOptions, SweepService};
