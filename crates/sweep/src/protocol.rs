//! The sweep service wire protocol: newline-delimited JSON.
//!
//! One request or response per line, each a **flat** JSON object
//! (string / number / boolean / null values only — no nesting), so the
//! protocol stays trivially parseable by `nc`, `awk`, or the hand-rolled
//! reader here (the workspace is std-only; there is no serde).
//!
//! Requests (client → daemon):
//!
//! ```text
//! {"cmd":"submit","path":"/abs/scenario.toml"}
//! {"cmd":"submit","toml":"name = \"x\"\n…","base":"/dir/for/file-refs"}
//! {"cmd":"submit","path":"…","threads":4,"fidelity":"hybrid"}
//! {"cmd":"stats"}
//! {"cmd":"shutdown"}
//! ```
//!
//! Responses (daemon → client), streamed as the job runs:
//!
//! ```text
//! {"event":"accepted","job":1,"scenario":"fig09a","generation":1,"mode":"collective","fidelity":"exact","cells":48}
//! {"event":"batch","job":1,"tier":"exact","queued":40,"cached":8}
//! {"event":"cell","job":1,"tier":"exact","index":1,"total":40,"label":"…","time_us":12.5,"gbps_per_npu":98.2}
//! {"event":"finished","job":1,"scenario":"fig09a","points":48,"executed":40,"analytic_executed":0,"cache_hits":8}
//! {"event":"result","job":1,"csv":"topology,nodes,…"}
//! {"event":"stats","entries":48,"exact":48,"analytic":0}
//! {"event":"superseded","job":1,"scenario":"fig09a"}
//! {"event":"failed","job":1,"error":"…"}
//! {"event":"error","error":"…"}
//! {"event":"shutdown"}
//! ```
//!
//! A `submit` streams `accepted` → (`batch` | `cell`)* → `finished` →
//! `result`; the `result` line carries the full CSV (exactly what
//! `sweep <scenario> --csv` would write) so clients and CI can compare
//! daemon output byte-for-byte against the one-shot CLI.

use std::collections::BTreeMap;

use crate::bus::BusEvent;
use crate::fidelity::Fidelity;

/// A parsed client request.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Submit a scenario: either `toml` inline (with an optional `base`
    /// directory that relative `file:` workload references resolve
    /// against) or `path` to a TOML file the daemon reads.
    Submit {
        /// Inline scenario TOML, if given.
        toml: Option<String>,
        /// Path to a scenario TOML file, if given.
        path: Option<String>,
        /// Base directory for relative `file:` references of inline TOML.
        base: Option<String>,
        /// Worker-thread override for this job (`0`/absent = default).
        threads: Option<usize>,
        /// Fidelity override for this job.
        fidelity: Option<Fidelity>,
    },
    /// Query cache occupancy.
    Stats,
    /// Gracefully stop the daemon.
    Shutdown,
}

/// A scalar JSON value of the flat-object protocol.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// A JSON string (unescaped).
    Str(String),
    /// A JSON number.
    Num(f64),
    /// A JSON boolean.
    Bool(bool),
    /// JSON `null`.
    Null,
}

impl Value {
    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric payload, if this is a number.
    pub fn as_num(&self) -> Option<f64> {
        match self {
            Value::Num(n) => Some(*n),
            _ => None,
        }
    }
}

/// Escapes `s` as the body of a JSON string literal.
pub fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Parses one flat JSON object line into its key → value map.
///
/// # Errors
///
/// Returns a message on malformed JSON or on nested arrays/objects (the
/// protocol is deliberately flat).
pub fn parse_object(line: &str) -> Result<BTreeMap<String, Value>, String> {
    let mut p = Parser {
        chars: line.char_indices().peekable(),
        src: line,
    };
    p.skip_ws();
    p.expect('{')?;
    let mut map = BTreeMap::new();
    p.skip_ws();
    if p.try_consume('}') {
        p.skip_ws();
        return p.finish(map);
    }
    loop {
        p.skip_ws();
        let key = p.string()?;
        p.skip_ws();
        p.expect(':')?;
        p.skip_ws();
        let value = p.value()?;
        map.insert(key, value);
        p.skip_ws();
        if p.try_consume(',') {
            continue;
        }
        p.expect('}')?;
        p.skip_ws();
        return p.finish(map);
    }
}

struct Parser<'a> {
    chars: std::iter::Peekable<std::str::CharIndices<'a>>,
    src: &'a str,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while matches!(self.chars.peek(), Some((_, c)) if c.is_ascii_whitespace()) {
            self.chars.next();
        }
    }

    fn expect(&mut self, want: char) -> Result<(), String> {
        match self.chars.next() {
            Some((_, c)) if c == want => Ok(()),
            Some((i, c)) => Err(format!("expected '{want}' at byte {i}, found '{c}'")),
            None => Err(format!("expected '{want}', found end of line")),
        }
    }

    fn try_consume(&mut self, want: char) -> bool {
        if matches!(self.chars.peek(), Some((_, c)) if *c == want) {
            self.chars.next();
            true
        } else {
            false
        }
    }

    fn finish(&mut self, map: BTreeMap<String, Value>) -> Result<BTreeMap<String, Value>, String> {
        match self.chars.next() {
            None => Ok(map),
            Some((i, c)) => Err(format!("trailing '{c}' at byte {i}")),
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect('"')?;
        let mut out = String::new();
        loop {
            match self.chars.next() {
                None => return Err("unterminated string".into()),
                Some((_, '"')) => return Ok(out),
                Some((_, '\\')) => match self.chars.next() {
                    Some((_, '"')) => out.push('"'),
                    Some((_, '\\')) => out.push('\\'),
                    Some((_, '/')) => out.push('/'),
                    Some((_, 'n')) => out.push('\n'),
                    Some((_, 't')) => out.push('\t'),
                    Some((_, 'r')) => out.push('\r'),
                    Some((_, 'b')) => out.push('\u{8}'),
                    Some((_, 'f')) => out.push('\u{c}'),
                    Some((_, 'u')) => {
                        let mut code = 0u32;
                        for _ in 0..4 {
                            let (i, c) = self.chars.next().ok_or("truncated \\u escape")?;
                            let d = c
                                .to_digit(16)
                                .ok_or_else(|| format!("bad \\u digit '{c}' at byte {i}"))?;
                            code = code * 16 + d;
                        }
                        out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                    }
                    Some((i, c)) => return Err(format!("bad escape '\\{c}' at byte {i}")),
                    None => return Err("truncated escape".into()),
                },
                Some((_, c)) => out.push(c),
            }
        }
    }

    fn value(&mut self) -> Result<Value, String> {
        match self.chars.peek() {
            Some((_, '"')) => Ok(Value::Str(self.string()?)),
            Some((_, 't')) => self.literal("true", Value::Bool(true)),
            Some((_, 'f')) => self.literal("false", Value::Bool(false)),
            Some((_, 'n')) => self.literal("null", Value::Null),
            Some((_, '{')) | Some((_, '[')) => {
                Err("nested objects/arrays are not part of this protocol".into())
            }
            Some(&(start, _)) => {
                let mut end = start;
                while let Some(&(i, c)) = self.chars.peek() {
                    if c == ',' || c == '}' || c.is_ascii_whitespace() {
                        break;
                    }
                    end = i + c.len_utf8();
                    self.chars.next();
                }
                let text = &self.src[start..end];
                text.parse::<f64>()
                    .map(Value::Num)
                    .map_err(|_| format!("bad number '{text}'"))
            }
            None => Err("expected a value, found end of line".into()),
        }
    }

    fn literal(&mut self, text: &str, value: Value) -> Result<Value, String> {
        for want in text.chars() {
            match self.chars.next() {
                Some((_, c)) if c == want => {}
                _ => return Err(format!("bad literal (expected '{text}')")),
            }
        }
        Ok(value)
    }
}

/// Parses one request line.
///
/// # Errors
///
/// Returns a message on malformed JSON, an unknown `cmd`, or a `submit`
/// carrying neither `toml` nor `path` (or both).
pub fn parse_request(line: &str) -> Result<Request, String> {
    let map = parse_object(line)?;
    let cmd = map
        .get("cmd")
        .and_then(Value::as_str)
        .ok_or("missing \"cmd\"")?;
    match cmd {
        "submit" => {
            let field = |k: &str| map.get(k).and_then(Value::as_str).map(str::to_string);
            let toml = field("toml");
            let path = field("path");
            if toml.is_some() == path.is_some() {
                return Err("submit needs exactly one of \"toml\" or \"path\"".into());
            }
            let threads = match map.get("threads") {
                None | Some(Value::Null) => None,
                Some(v) => Some(
                    v.as_num()
                        .filter(|n| n.fract() == 0.0 && *n >= 0.0)
                        .ok_or("bad \"threads\"")? as usize,
                ),
            };
            let fidelity = match map.get("fidelity") {
                None | Some(Value::Null) => None,
                Some(v) => Some(v.as_str().ok_or("bad \"fidelity\"")?.parse::<Fidelity>()?),
            };
            Ok(Request::Submit {
                toml,
                path: field("path"),
                base: field("base"),
                threads,
                fidelity,
            })
        }
        "stats" => Ok(Request::Stats),
        "shutdown" => Ok(Request::Shutdown),
        other => Err(format!("unknown cmd \"{other}\"")),
    }
}

/// Serializes a request as one protocol line (no trailing newline).
pub fn request_line(req: &Request) -> String {
    match req {
        Request::Submit {
            toml,
            path,
            base,
            threads,
            fidelity,
        } => {
            let mut fields = vec![("cmd", "\"submit\"".to_string())];
            if let Some(t) = toml {
                fields.push(("toml", format!("\"{}\"", json_escape(t))));
            }
            if let Some(p) = path {
                fields.push(("path", format!("\"{}\"", json_escape(p))));
            }
            if let Some(b) = base {
                fields.push(("base", format!("\"{}\"", json_escape(b))));
            }
            if let Some(n) = threads {
                fields.push(("threads", n.to_string()));
            }
            if let Some(f) = fidelity {
                fields.push(("fidelity", format!("\"{f}\"")));
            }
            render(&fields)
        }
        Request::Stats => render(&[("cmd", "\"stats\"".to_string())]),
        Request::Shutdown => render(&[("cmd", "\"shutdown\"".to_string())]),
    }
}

fn render(fields: &[(&str, String)]) -> String {
    let body: Vec<String> = fields.iter().map(|(k, v)| format!("\"{k}\":{v}")).collect();
    format!("{{{}}}", body.join(","))
}

fn num(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "null".to_string()
    }
}

/// Renders a job-scoped [`BusEvent`] as its streaming protocol line.
/// Returns `None` for events with no wire representation.
pub fn event_line(ev: &BusEvent) -> Option<String> {
    let line = match ev {
        BusEvent::JobAccepted {
            job,
            scenario,
            generation,
            mode,
            fidelity,
            cells,
        } => render(&[
            ("event", "\"accepted\"".into()),
            ("job", job.to_string()),
            ("scenario", format!("\"{}\"", json_escape(scenario))),
            ("generation", generation.to_string()),
            ("mode", format!("\"{mode}\"")),
            ("fidelity", format!("\"{fidelity}\"")),
            ("cells", cells.to_string()),
        ]),
        BusEvent::BatchStarted {
            job,
            tier,
            queued,
            cached,
        } => render(&[
            ("event", "\"batch\"".into()),
            ("job", job.to_string()),
            ("tier", format!("\"{tier}\"")),
            ("queued", queued.to_string()),
            ("cached", cached.to_string()),
        ]),
        BusEvent::CellCompleted {
            job,
            tier,
            index,
            total,
            point,
            metrics,
        } => render(&[
            ("event", "\"cell\"".into()),
            ("job", job.to_string()),
            ("tier", format!("\"{tier}\"")),
            ("index", index.to_string()),
            ("total", total.to_string()),
            ("label", format!("\"{}\"", json_escape(&point.label()))),
            ("time_us", num(metrics.time_us)),
            ("gbps_per_npu", num(metrics.gbps_per_npu)),
        ]),
        BusEvent::CellFailed {
            job, label, error, ..
        } => render(&[
            ("event", "\"failed\"".into()),
            ("job", job.to_string()),
            ("label", format!("\"{}\"", json_escape(label))),
            ("error", format!("\"{}\"", json_escape(error))),
        ]),
        BusEvent::JobSuperseded { job, scenario, .. } => render(&[
            ("event", "\"superseded\"".into()),
            ("job", job.to_string()),
            ("scenario", format!("\"{}\"", json_escape(scenario))),
        ]),
        BusEvent::JobFinished {
            job,
            scenario,
            points,
            executed,
            analytic_executed,
            cache_hits,
        } => render(&[
            ("event", "\"finished\"".into()),
            ("job", job.to_string()),
            ("scenario", format!("\"{}\"", json_escape(scenario))),
            ("points", points.to_string()),
            ("executed", executed.to_string()),
            ("analytic_executed", analytic_executed.to_string()),
            ("cache_hits", cache_hits.to_string()),
        ]),
        BusEvent::CacheStats {
            entries,
            exact,
            analytic,
        } => render(&[
            ("event", "\"stats\"".into()),
            ("entries", entries.to_string()),
            ("exact", exact.to_string()),
            ("analytic", analytic.to_string()),
        ]),
    };
    Some(line)
}

/// The `result` line closing a successful submit: the job's full CSV,
/// exactly what the one-shot CLI would write.
pub fn result_line(job: u64, csv: &str) -> String {
    render(&[
        ("event", "\"result\"".into()),
        ("job", job.to_string()),
        ("csv", format!("\"{}\"", json_escape(csv))),
    ])
}

/// An `error` line for request-level failures.
pub fn error_line(error: &str) -> String {
    render(&[
        ("event", "\"error\"".into()),
        ("error", format!("\"{}\"", json_escape(error))),
    ])
}

/// The acknowledgement line of a graceful shutdown.
pub fn shutdown_line() -> String {
    render(&[("event", "\"shutdown\"".into())])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn requests_round_trip() {
        let reqs = [
            Request::Submit {
                toml: Some("name = \"x\"\nmode = \"collective\"\n".into()),
                path: None,
                base: Some("/tmp/dir".into()),
                threads: Some(4),
                fidelity: Some(Fidelity::Hybrid),
            },
            Request::Submit {
                toml: None,
                path: Some("/abs/s.toml".into()),
                base: None,
                threads: None,
                fidelity: None,
            },
            Request::Stats,
            Request::Shutdown,
        ];
        for req in reqs {
            let line = request_line(&req);
            assert_eq!(parse_request(&line).unwrap(), req, "line: {line}");
        }
    }

    #[test]
    fn escapes_survive_the_wire() {
        let nasty = "line1\nline\\2 \"quoted\"\ttab\r";
        let line = request_line(&Request::Submit {
            toml: Some(nasty.into()),
            path: None,
            base: None,
            threads: None,
            fidelity: None,
        });
        assert!(!line.contains('\n'), "one request = one line");
        match parse_request(&line).unwrap() {
            Request::Submit { toml: Some(t), .. } => assert_eq!(t, nasty),
            other => panic!("bad parse: {other:?}"),
        }
    }

    #[test]
    fn malformed_requests_are_rejected() {
        assert!(parse_request("").is_err());
        assert!(parse_request("{}").is_err());
        assert!(parse_request("{\"cmd\":\"nope\"}").is_err());
        // Neither toml nor path.
        assert!(parse_request("{\"cmd\":\"submit\"}").is_err());
        // Both toml and path.
        assert!(parse_request("{\"cmd\":\"submit\",\"toml\":\"a\",\"path\":\"b\"}").is_err());
        // Nesting is out of protocol.
        assert!(parse_request("{\"cmd\":\"submit\",\"toml\":{\"x\":1}}").is_err());
        // Trailing garbage.
        assert!(parse_request("{\"cmd\":\"stats\"} extra").is_err());
        // Fractional thread counts.
        assert!(parse_request("{\"cmd\":\"submit\",\"path\":\"p\",\"threads\":1.5}").is_err());
    }

    #[test]
    fn parse_object_handles_scalars() {
        let map =
            parse_object("{\"s\":\"x\",\"n\":-2.5e3,\"t\":true,\"f\":false,\"z\":null,\"i\":42}")
                .unwrap();
        assert_eq!(map["s"], Value::Str("x".into()));
        assert_eq!(map["n"], Value::Num(-2500.0));
        assert_eq!(map["t"], Value::Bool(true));
        assert_eq!(map["f"], Value::Bool(false));
        assert_eq!(map["z"], Value::Null);
        assert_eq!(map["i"], Value::Num(42.0));
        assert_eq!(parse_object("{}").unwrap().len(), 0);
        assert_eq!(parse_object("  { }  ").unwrap().len(), 0);
    }

    #[test]
    fn unicode_escapes_decode() {
        let map = parse_object("{\"s\":\"a\\u0041\\u00e9\"}").unwrap();
        assert_eq!(map["s"], Value::Str("aAé".into()));
    }

    #[test]
    fn event_lines_parse_back() {
        let ev = BusEvent::JobFinished {
            job: 3,
            scenario: "fig09a".into(),
            points: 48,
            executed: 40,
            analytic_executed: 0,
            cache_hits: 8,
        };
        let line = event_line(&ev).unwrap();
        let map = parse_object(&line).unwrap();
        assert_eq!(map["event"], Value::Str("finished".into()));
        assert_eq!(map["job"], Value::Num(3.0));
        assert_eq!(map["cache_hits"], Value::Num(8.0));

        let csv = "a,b\n1,2\n";
        let map = parse_object(&result_line(3, csv)).unwrap();
        assert_eq!(map["csv"], Value::Str(csv.into()));
    }
}
