//! The long-lived sweep daemon: `sweep serve`.
//!
//! A [`SweepService`] wraps one resident [`JobScheduler`] and speaks the
//! [`crate::protocol`] over any byte stream — a unix socket connection,
//! stdin/stdout, or a socketpair in tests. Submissions stream their
//! events back on the same connection and the `(tier, point)` cache,
//! compiled programs, and topology tables stay hot across submissions;
//! that warm path is the whole point of the daemon (see
//! `BENCH_executor.json`'s `serve_warm` entry).
//!
//! Crash safety: with a journal attached, every executed cell is flushed
//! to the write-ahead log before its completion event publishes, and each
//! submission brackets itself with `#pending` / `#done` records. A
//! daemon killed mid-grid restarts by [`SweepService::open`]: the journal
//! replays into the warm cache (so finished cells are never re-simulated)
//! and the unfinished jobs re-run to completion via
//! [`SweepService::resume_pending`].
//!
//! Socket conventions: the CLI defaults the socket path to
//! `<journal>.sock` next to the journal (or `ace-sweep.sock` in the
//! working directory without one); a stale socket file is unlinked before
//! binding, and the file is removed again on graceful shutdown.

use std::io::{BufRead, BufReader, Write};
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

use crate::bus::BusEvent;
use crate::persist::{Journal, PendingJob};
use crate::protocol::{self, Request};
use crate::runner::{RunnerOptions, SweepOutcome};
use crate::scenario::Scenario;
use crate::scheduler::{JobError, JobScheduler};

/// How the daemon should execute jobs by default.
#[derive(Debug, Clone, Default)]
pub struct ServiceOptions {
    /// Default worker threads per job (`0` = machine parallelism);
    /// overridable per submission.
    pub threads: usize,
    /// Worker threads inside each exact simulation (`0`/`1` = serial
    /// engine). Byte-identical results either way; see
    /// [`RunnerOptions::sim_threads`].
    pub sim_threads: usize,
    /// Journal (write-ahead log) path; `None` disables checkpointing.
    pub journal: Option<PathBuf>,
}

/// The resident sweep service (see the [module docs](self)).
pub struct SweepService {
    scheduler: Arc<JobScheduler>,
    options: ServiceOptions,
    shutdown: Arc<AtomicBool>,
    pending: Vec<PendingJob>,
}

impl std::fmt::Debug for SweepService {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SweepService")
            .field("scheduler", &self.scheduler)
            .field("options", &self.options)
            .field("pending", &self.pending.len())
            .finish()
    }
}

impl SweepService {
    /// Opens the service: replays the journal (if configured) into the
    /// scheduler's cache, attaches the journal for write-ahead logging,
    /// and records the jobs that never finished (run them with
    /// [`resume_pending`](SweepService::resume_pending)).
    ///
    /// # Errors
    ///
    /// Returns a message when the journal exists but cannot be replayed.
    pub fn open(options: ServiceOptions) -> Result<SweepService, String> {
        let (scheduler, pending) = match &options.journal {
            Some(path) => {
                let replay = Journal::replay(path)?;
                let scheduler = JobScheduler::with_cache(replay.cache);
                scheduler.set_journal(Some(Journal::open(path)?));
                (scheduler, replay.pending)
            }
            None => (JobScheduler::new(), Vec::new()),
        };
        Ok(SweepService {
            scheduler: Arc::new(scheduler),
            options,
            shutdown: Arc::new(AtomicBool::new(false)),
            pending,
        })
    }

    /// The shared scheduler behind the service.
    pub fn scheduler(&self) -> &Arc<JobScheduler> {
        &self.scheduler
    }

    /// Jobs recovered from the journal that never logged `#done`.
    pub fn pending(&self) -> &[PendingJob] {
        &self.pending
    }

    /// Whether a shutdown request has been received.
    pub fn is_shutdown(&self) -> bool {
        self.shutdown.load(Ordering::SeqCst)
    }

    /// Requests a graceful shutdown (also reachable over the wire).
    pub fn request_shutdown(&self) {
        self.shutdown.store(true, Ordering::SeqCst);
    }

    /// Re-runs every pending job recovered from the journal. Cells the
    /// dead daemon already journaled are served from the replayed cache,
    /// so only the unfinished remainder of each grid actually executes.
    /// Returns `(name, result)` per job, in journal order.
    pub fn resume_pending(
        &mut self,
        mut on_event: impl FnMut(&str, &BusEvent),
    ) -> Vec<(String, Result<SweepOutcome, String>)> {
        let jobs = std::mem::take(&mut self.pending);
        let mut out = Vec::with_capacity(jobs.len());
        for job in jobs {
            let result = self.run_submission(
                &job.toml,
                job.base.as_deref().map(Path::new),
                None,
                None,
                &mut |ev| on_event(&job.name, ev),
            );
            out.push((job.name, result.map(|(_, o)| o).map_err(|e| e.to_string())));
        }
        out
    }

    /// Parses, journals, and runs one submission, streaming its events to
    /// `on_event`. The `#done` record is written only when the job
    /// completes or fails permanently — a superseded generation leaves
    /// the name pending for its successor to close out.
    fn run_submission(
        &self,
        toml: &str,
        base: Option<&Path>,
        threads: Option<usize>,
        fidelity: Option<crate::fidelity::Fidelity>,
        on_event: &mut dyn FnMut(&BusEvent),
    ) -> Result<(u64, SweepOutcome), JobError> {
        let mut scenario =
            Scenario::from_toml_str_at(toml, base).map_err(|e| JobError::Invalid(e.to_string()))?;
        if let Some(f) = fidelity {
            scenario.fidelity = f;
        }
        let ticket = self.scheduler.accept(&scenario)?;
        self.scheduler
            .with_journal(|j| j.append_pending(&scenario.name, toml, base.and_then(Path::to_str)));
        let opts = RunnerOptions {
            threads: threads.unwrap_or(self.options.threads),
            sim_threads: self.options.sim_threads,
        };
        let result = self.scheduler.run_accepted(&ticket, opts, on_event);
        match &result {
            Ok(_) | Err(JobError::Failed(_)) | Err(JobError::Invalid(_)) => {
                // Completed or permanently failed: a restart must not
                // re-run it (a deterministic panic would loop forever).
                self.scheduler
                    .with_journal(|j| j.append_done(&scenario.name));
            }
            Err(JobError::Superseded) => {}
        }
        result.map(|outcome| (ticket.job, outcome))
    }

    /// Speaks the protocol on one byte stream until EOF or a `shutdown`
    /// request: the transport behind every connection type (socket,
    /// stdio, tests).
    ///
    /// # Errors
    ///
    /// Returns the I/O error message when the transport itself fails;
    /// per-request errors are reported in-band as `error` lines.
    pub fn serve_stream(
        &self,
        reader: impl std::io::Read,
        mut writer: impl Write,
    ) -> Result<(), String> {
        for line in BufReader::new(reader).lines() {
            let line = line.map_err(|e| format!("connection read: {e}"))?;
            if line.trim().is_empty() {
                continue;
            }
            let request = match protocol::parse_request(&line) {
                Ok(r) => r,
                Err(e) => {
                    write_line(&mut writer, &protocol::error_line(&e))?;
                    continue;
                }
            };
            match request {
                Request::Submit {
                    toml,
                    path,
                    base,
                    threads,
                    fidelity,
                } => {
                    // Resolve by-path submissions to (text, parent dir) so
                    // both spellings flow through the same journaled run.
                    let resolved = match (&toml, &path) {
                        (Some(t), None) => Ok((t.clone(), base.clone())),
                        (None, Some(p)) => std::fs::read_to_string(p)
                            .map(|text| {
                                let dir = Path::new(p)
                                    .parent()
                                    .filter(|d| !d.as_os_str().is_empty())
                                    .map(|d| d.to_string_lossy().into_owned());
                                (text, dir)
                            })
                            .map_err(|e| format!("cannot read scenario {p}: {e}")),
                        _ => Err("submit needs exactly one of toml/path".to_string()),
                    };
                    let (text, dir) = match resolved {
                        Ok(v) => v,
                        Err(e) => {
                            write_line(&mut writer, &protocol::error_line(&e))?;
                            continue;
                        }
                    };
                    let mut io_err: Option<String> = None;
                    let result = self.run_submission(
                        &text,
                        dir.as_deref().map(Path::new),
                        threads,
                        fidelity,
                        &mut |ev| {
                            if io_err.is_none() {
                                if let Some(line) = protocol::event_line(ev) {
                                    if let Err(e) = write_line(&mut writer, &line) {
                                        io_err = Some(e);
                                    }
                                }
                            }
                        },
                    );
                    if let Some(e) = io_err {
                        return Err(e);
                    }
                    match result {
                        Ok((job, outcome)) => {
                            let csv = crate::report::to_csv(&outcome);
                            write_line(&mut writer, &protocol::result_line(job, &csv))?;
                        }
                        // Superseded/failed already streamed their event
                        // lines through on_event; invalid scenarios get an
                        // explicit error line.
                        Err(JobError::Invalid(msg)) => {
                            write_line(&mut writer, &protocol::error_line(&msg))?;
                        }
                        Err(JobError::Superseded) | Err(JobError::Failed(_)) => {}
                    }
                }
                Request::Stats => {
                    let (entries, exact, analytic) = self.scheduler.cache().tier_counts();
                    let line = protocol::event_line(&BusEvent::CacheStats {
                        entries,
                        exact,
                        analytic,
                    })
                    .expect("stats always serializes");
                    write_line(&mut writer, &line)?;
                }
                Request::Shutdown => {
                    self.request_shutdown();
                    write_line(&mut writer, &protocol::shutdown_line())?;
                    return Ok(());
                }
            }
        }
        Ok(())
    }

    /// Binds `socket_path` and serves connections until a `shutdown`
    /// request arrives. Each connection runs on its own thread; a stale
    /// socket file is unlinked before binding and the socket is removed
    /// again on exit.
    ///
    /// # Errors
    ///
    /// Returns a message when the socket cannot be bound.
    pub fn serve_socket(self: &Arc<Self>, socket_path: impl AsRef<Path>) -> Result<(), String> {
        let socket_path = socket_path.as_ref();
        if socket_path.exists() {
            std::fs::remove_file(socket_path).map_err(|e| {
                format!("cannot remove stale socket {}: {e}", socket_path.display())
            })?;
        }
        let listener = UnixListener::bind(socket_path)
            .map_err(|e| format!("cannot bind {}: {e}", socket_path.display()))?;
        listener
            .set_nonblocking(true)
            .map_err(|e| format!("cannot configure {}: {e}", socket_path.display()))?;
        let mut handlers: Vec<std::thread::JoinHandle<()>> = Vec::new();
        while !self.is_shutdown() {
            match listener.accept() {
                Ok((stream, _)) => {
                    let service = Arc::clone(self);
                    handlers.push(
                        std::thread::Builder::new()
                            .name("ace-sweep-conn".into())
                            .spawn(move || service.handle_socket(stream))
                            .expect("spawn connection handler"),
                    );
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                    std::thread::sleep(Duration::from_millis(50));
                }
                Err(e) => {
                    eprintln!("sweep serve: accept failed: {e}");
                    std::thread::sleep(Duration::from_millis(50));
                }
            }
            handlers.retain(|h| !h.is_finished());
        }
        for h in handlers {
            let _ = h.join();
        }
        let _ = std::fs::remove_file(socket_path);
        Ok(())
    }

    fn handle_socket(&self, stream: UnixStream) {
        let reader = match stream.try_clone() {
            Ok(r) => r,
            Err(e) => {
                eprintln!("sweep serve: cannot clone connection: {e}");
                return;
            }
        };
        if let Err(e) = self.serve_stream(reader, stream) {
            // A client hanging up mid-stream is routine, not fatal.
            eprintln!("sweep serve: connection ended: {e}");
        }
    }
}

fn write_line(writer: &mut impl Write, line: &str) -> Result<(), String> {
    writer
        .write_all(line.as_bytes())
        .and_then(|()| writer.write_all(b"\n"))
        .and_then(|()| writer.flush())
        .map_err(|e| format!("connection write: {e}"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::{parse_object, Value};

    const TINY_TOML: &str = r#"
name = "svc-tiny"
mode = "collective"
topologies = ["2x1x1"]
engines = ["ideal", "baseline"]
ops = ["all-reduce"]
payloads = ["256KB"]
mem_gbps = [128, 450]
comm_sms = [6]
"#;

    fn service() -> SweepService {
        SweepService::open(ServiceOptions {
            threads: 1,
            sim_threads: 0,
            journal: None,
        })
        .unwrap()
    }

    #[test]
    fn submit_streams_accepted_cells_finished_result() {
        let svc = service();
        let request = protocol::request_line(&Request::Submit {
            toml: Some(TINY_TOML.into()),
            path: None,
            base: None,
            threads: None,
            fidelity: None,
        });
        let mut out = Vec::new();
        svc.serve_stream(format!("{request}\n").as_bytes(), &mut out)
            .unwrap();
        let lines: Vec<String> = String::from_utf8(out)
            .unwrap()
            .lines()
            .map(str::to_string)
            .collect();
        let events: Vec<String> = lines
            .iter()
            .map(|l| {
                parse_object(l).unwrap()["event"]
                    .as_str()
                    .unwrap()
                    .to_string()
            })
            .collect();
        assert_eq!(
            events,
            vec!["accepted", "batch", "cell", "cell", "cell", "finished", "stats", "result"]
        );
        // The result line carries the one-shot CLI's CSV byte-for-byte.
        let map = parse_object(lines.last().unwrap()).unwrap();
        let csv = map["csv"].as_str().unwrap();
        let sc = Scenario::from_toml_str(TINY_TOML).unwrap();
        let expected = crate::report::to_csv(
            &crate::runner::run_scenario(
                &sc,
                RunnerOptions {
                    threads: 1,
                    ..Default::default()
                },
            )
            .unwrap(),
        );
        assert_eq!(csv, expected);
    }

    #[test]
    fn stats_and_shutdown_respond_in_band() {
        let svc = service();
        let mut out = Vec::new();
        svc.serve_stream(
            "{\"cmd\":\"stats\"}\n{\"cmd\":\"shutdown\"}\n{\"cmd\":\"stats\"}\n".as_bytes(),
            &mut out,
        )
        .unwrap();
        let text = String::from_utf8(out).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        // The third request is never served: shutdown closes the stream.
        assert_eq!(lines.len(), 2);
        let stats = parse_object(lines[0]).unwrap();
        assert_eq!(stats["entries"], Value::Num(0.0));
        let bye = parse_object(lines[1]).unwrap();
        assert_eq!(bye["event"], Value::Str("shutdown".into()));
        assert!(svc.is_shutdown());
    }

    #[test]
    fn bad_requests_get_error_lines_and_the_stream_survives() {
        let svc = service();
        let mut out = Vec::new();
        svc.serve_stream(
            "this is not json\n{\"cmd\":\"submit\"}\n{\"cmd\":\"stats\"}\n".as_bytes(),
            &mut out,
        )
        .unwrap();
        let text = String::from_utf8(out).unwrap();
        let events: Vec<String> = text
            .lines()
            .map(|l| {
                parse_object(l).unwrap()["event"]
                    .as_str()
                    .unwrap()
                    .to_string()
            })
            .collect();
        assert_eq!(events, vec!["error", "error", "stats"]);
    }

    #[test]
    fn invalid_scenarios_error_in_band() {
        let svc = service();
        let request = protocol::request_line(&Request::Submit {
            toml: Some("name = \"broken\"\nmode = \"collective\"\ntopologies = []\n".into()),
            path: None,
            base: None,
            threads: None,
            fidelity: None,
        });
        let mut out = Vec::new();
        svc.serve_stream(format!("{request}\n").as_bytes(), &mut out)
            .unwrap();
        let text = String::from_utf8(out).unwrap();
        let map = parse_object(text.lines().next().unwrap()).unwrap();
        assert_eq!(map["event"], Value::Str("error".into()));
    }

    #[test]
    fn warm_resubmission_serves_from_cache() {
        let svc = service();
        let request = protocol::request_line(&Request::Submit {
            toml: Some(TINY_TOML.into()),
            path: None,
            base: None,
            threads: None,
            fidelity: None,
        });
        let script = format!("{request}\n{request}\n");
        let mut out = Vec::new();
        svc.serve_stream(script.as_bytes(), &mut out).unwrap();
        let text = String::from_utf8(out).unwrap();
        let finished: Vec<_> = text
            .lines()
            .map(|l| parse_object(l).unwrap())
            .filter(|m| m["event"] == Value::Str("finished".into()))
            .collect();
        assert_eq!(finished.len(), 2);
        assert_eq!(finished[0]["executed"], Value::Num(3.0));
        // Second submission: the resident cache serves everything.
        assert_eq!(finished[1]["executed"], Value::Num(0.0));
        assert_eq!(finished[1]["cache_hits"], Value::Num(4.0));
    }
}
