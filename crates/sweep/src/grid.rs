//! Cartesian expansion of a [`Scenario`] into run points.
//!
//! Expansion is **deterministic**: axes multiply out in declaration order
//! (topology → op → payload → engine → mem → SMs → SRAM → FSMs for
//! collective sweeps; topology → workload → config for training sweeps),
//! so the same scenario always yields the same point list — the anchor
//! for reproducible reports and the runner's determinism guarantee.
//!
//! Engine families drop the knobs they do not consume when resolving to
//! an [`EngineSpec`], so the raw cartesian product contains *duplicate*
//! points (e.g. `ideal` × a 10-value `mem_gbps` axis yields 10 identical
//! points). Duplicates are preserved here — one row per grid cell — and
//! collapsed by the runner's cache so each unique point simulates once.

use ace_collectives::CollectiveOp;
use ace_net::TopologySpec;
use ace_serve::ServingSpec;
use ace_system::{RunConditions, SystemConfig};
use ace_workloads::StragglerSpec;

use crate::scenario::{EngineFamily, EngineSpec, Scenario, SweepMode, WorkloadSel};

/// One cell of the expanded design-space grid. Not `Copy`: training
/// points carry a [`WorkloadSel`], which may reference a custom
/// TOML-defined model.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct RunPoint {
    /// The fabric the point simulates.
    pub topology: TopologySpec,
    /// Fault / contention / straggler conditions applied to the run.
    /// Part of the point's identity: the same coordinates under
    /// different conditions are different cells (and different cache
    /// rows).
    pub conditions: RunConditions,
    /// Mode-specific coordinates.
    pub kind: PointKind,
}

/// Mode-specific coordinates of a [`RunPoint`].
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum PointKind {
    /// A standalone collective.
    Collective {
        /// Resolved endpoint engine.
        engine: EngineSpec,
        /// Operation issued.
        op: CollectiveOp,
        /// Per-node payload in bytes.
        payload_bytes: u64,
    },
    /// A full training loop.
    Training {
        /// Table VI configuration.
        config: SystemConfig,
        /// Workload to train.
        workload: WorkloadSel,
        /// Simulated iterations.
        iterations: u32,
        /// Fig. 12 embedding optimization.
        optimized_embedding: bool,
    },
    /// A continuous-batching serving run.
    Serving {
        /// Table VI configuration.
        config: SystemConfig,
        /// Workload whose forward pass serves requests.
        workload: WorkloadSel,
        /// Full serving parameters (arrival process, schedule, budget).
        spec: ServingSpec,
    },
}

impl RunPoint {
    /// A short human-readable label: `4x2x2 ace[dma=128,sram=4MB,fsms=16] all-reduce 64MB`.
    /// Non-pristine conditions are appended in brackets.
    pub fn label(&self) -> String {
        let mut label = self.base_label();
        if !self.conditions.is_pristine() {
            label.push_str(&format!(" [{}]", self.conditions));
        }
        label
    }

    fn base_label(&self) -> String {
        match &self.kind {
            PointKind::Collective {
                engine,
                op,
                payload_bytes,
            } => format!(
                "{} {engine} {op} {}",
                self.topology,
                crate::report::human_bytes(*payload_bytes)
            ),
            PointKind::Training {
                config,
                workload,
                iterations,
                ..
            } => format!("{} {config} {workload} x{iterations}", self.topology),
            PointKind::Serving {
                config,
                workload,
                spec,
            } => format!(
                "{} {config} {workload} {}@{}rps mb{}",
                self.topology, spec.schedule, spec.rate_rps, spec.microbatches
            ),
        }
    }
}

/// Expands `scenario` into its full cartesian point list (duplicates
/// from dropped knobs included). The scenario must be
/// [valid](Scenario::validate).
pub fn expand(scenario: &Scenario) -> Vec<RunPoint> {
    let conditions = conditions_product(scenario);
    let mut points = Vec::with_capacity(grid_len(scenario));
    match scenario.mode {
        SweepMode::Collective => {
            for &topology in &scenario.topologies {
                for &op in &scenario.ops {
                    for &payload_bytes in &scenario.payload_bytes {
                        for &family in &scenario.engines {
                            for &mem in &scenario.mem_gbps {
                                for &sms in &scenario.comm_sms {
                                    for &sram in &scenario.sram_mb {
                                        for &fsms in &scenario.fsms {
                                            let engine = resolve(family, mem, sms, sram, fsms);
                                            for conditions in &conditions {
                                                points.push(RunPoint {
                                                    topology,
                                                    conditions: conditions.clone(),
                                                    kind: PointKind::Collective {
                                                        engine,
                                                        op,
                                                        payload_bytes,
                                                    },
                                                });
                                            }
                                        }
                                    }
                                }
                            }
                        }
                    }
                }
            }
        }
        SweepMode::Training => {
            for &topology in &scenario.topologies {
                for workload in &scenario.workloads {
                    for &config in &scenario.configs {
                        for conditions in &conditions {
                            points.push(RunPoint {
                                topology,
                                conditions: conditions.clone(),
                                kind: PointKind::Training {
                                    config,
                                    workload: workload.clone(),
                                    iterations: scenario.iterations,
                                    optimized_embedding: scenario.optimized_embedding,
                                },
                            });
                        }
                    }
                }
            }
        }
        SweepMode::Serving => {
            for &topology in &scenario.topologies {
                for workload in &scenario.workloads {
                    for &config in &scenario.configs {
                        for &rate in &scenario.arrival_rates {
                            for &schedule in &scenario.schedules {
                                for &microbatches in &scenario.microbatches {
                                    for conditions in &conditions {
                                        points.push(RunPoint {
                                            topology,
                                            conditions: conditions.clone(),
                                            kind: PointKind::Serving {
                                                config,
                                                workload: workload.clone(),
                                                spec: scenario.serving_spec(
                                                    rate,
                                                    schedule,
                                                    microbatches,
                                                ),
                                            },
                                        });
                                    }
                                }
                            }
                        }
                    }
                }
            }
        }
    }
    points
}

/// The fault × contention × straggler product, innermost in the
/// expansion order. Collective points have no compute tasks, so the
/// straggler axis is pinned to `det` there — like an engine family
/// dropping a knob, this produces duplicate cells that the runner's
/// cache collapses, keeping the grid size the exact axis product.
pub(crate) fn conditions_product(scenario: &Scenario) -> Vec<RunConditions> {
    let mut out = Vec::with_capacity(
        scenario.faults.len() * scenario.contention.len() * scenario.stragglers.len(),
    );
    for faults in &scenario.faults {
        for contention in &scenario.contention {
            for straggler in &scenario.stragglers {
                let straggler = match scenario.mode {
                    SweepMode::Collective => StragglerSpec::default(),
                    SweepMode::Training | SweepMode::Serving => *straggler,
                };
                out.push(RunConditions {
                    faults: faults.clone(),
                    contention: *contention,
                    straggler,
                });
            }
        }
    }
    out
}

/// The size of the raw cartesian grid (including duplicate cells).
pub fn grid_len(scenario: &Scenario) -> usize {
    let conditions = scenario.faults.len() * scenario.contention.len() * scenario.stragglers.len();
    match scenario.mode {
        SweepMode::Collective => {
            scenario.topologies.len()
                * scenario.ops.len()
                * scenario.payload_bytes.len()
                * scenario.engines.len()
                * scenario.mem_gbps.len()
                * scenario.comm_sms.len()
                * scenario.sram_mb.len()
                * scenario.fsms.len()
                * conditions
        }
        SweepMode::Training => {
            scenario.topologies.len()
                * scenario.workloads.len()
                * scenario.configs.len()
                * conditions
        }
        SweepMode::Serving => {
            scenario.topologies.len()
                * scenario.workloads.len()
                * scenario.configs.len()
                * scenario.arrival_rates.len()
                * scenario.schedules.len()
                * scenario.microbatches.len()
                * conditions
        }
    }
}

/// Resolves an engine family against the knob axes, dropping knobs the
/// family does not consume.
fn resolve(family: EngineFamily, mem: f64, sms: u32, sram: u64, fsms: usize) -> EngineSpec {
    match family {
        EngineFamily::Ideal => EngineSpec::Ideal,
        EngineFamily::Baseline => EngineSpec::Baseline {
            mem_gbps: mem,
            comm_sms: sms,
        },
        EngineFamily::Ace => EngineSpec::Ace {
            dma_mem_gbps: mem,
            sram_mb: sram,
            fsms,
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fig05_like() -> Scenario {
        let mut sc = Scenario::collective("fig05");
        sc.topologies = vec![
            TopologySpec::torus3(4, 2, 2).unwrap(),
            TopologySpec::torus3(4, 4, 4).unwrap(),
        ];
        sc.mem_gbps = vec![64.0, 128.0, 450.0];
        sc.comm_sms = vec![80];
        sc
    }

    #[test]
    fn expansion_count_is_axis_product() {
        let sc = fig05_like();
        let points = expand(&sc);
        // 2 topologies x 1 op x 1 payload x 3 engines x 3 mem x 1 sms x 1 sram x 1 fsm.
        assert_eq!(points.len(), 18);
        assert_eq!(points.len(), grid_len(&sc));
    }

    #[test]
    fn expansion_order_is_deterministic_and_axis_major() {
        let sc = fig05_like();
        let a = expand(&sc);
        let b = expand(&sc);
        assert_eq!(a, b);
        // First topology fills the first half.
        assert!(a[..9].iter().all(|p| p.topology.nodes() == 16));
        assert!(a[9..].iter().all(|p| p.topology.nodes() == 64));
        // Engine axis is outer to the mem axis: ideal, ideal, ideal, then baselines.
        let fams: Vec<EngineFamily> = a[..9]
            .iter()
            .map(|p| match p.kind {
                PointKind::Collective { engine, .. } => engine.family(),
                _ => unreachable!(),
            })
            .collect();
        assert_eq!(
            fams,
            vec![
                EngineFamily::Ideal,
                EngineFamily::Ideal,
                EngineFamily::Ideal,
                EngineFamily::Baseline,
                EngineFamily::Baseline,
                EngineFamily::Baseline,
                EngineFamily::Ace,
                EngineFamily::Ace,
                EngineFamily::Ace,
            ]
        );
    }

    #[test]
    fn dropped_knobs_produce_duplicate_points() {
        let sc = fig05_like();
        let points = expand(&sc);
        // The three ideal points per topology are identical cells.
        assert_eq!(points[0], points[1]);
        assert_eq!(points[1], points[2]);
        // Baseline points differ along the mem axis.
        assert_ne!(points[3], points[4]);
        // Unique count: per topology 1 ideal + 3 baseline + 3 ace = 7.
        let unique: std::collections::HashSet<_> = points.iter().collect();
        assert_eq!(unique.len(), 14);
    }

    #[test]
    fn conditions_expand_innermost_and_collective_pins_straggler() {
        let mut sc = fig05_like();
        sc.faults = vec!["none".parse().unwrap(), "kill:1@seed:42".parse().unwrap()];
        sc.stragglers = vec!["det".parse().unwrap(), "lognormal:0.2".parse().unwrap()];
        let points = expand(&sc);
        // 18 base cells x 2 faults x 1 contention x 2 stragglers.
        assert_eq!(points.len(), 72);
        assert_eq!(points.len(), grid_len(&sc));
        // Conditions are innermost; collective mode pins the straggler
        // axis to det, so adjacent straggler cells are duplicates.
        assert_eq!(points[0], points[1]);
        assert_ne!(points[0], points[2]);
        assert!(points[0].conditions.is_pristine());
        assert!(points[0].label().ends_with("64MB"), "{}", points[0].label());
        assert!(
            points[2].label().contains("kill:1"),
            "{}",
            points[2].label()
        );
    }

    #[test]
    fn training_keeps_the_straggler_axis() {
        let mut sc = Scenario::training("jitter");
        sc.stragglers = vec!["det".parse().unwrap(), "lognormal:0.2".parse().unwrap()];
        let points = expand(&sc);
        // 1 topology x 1 workload x 5 configs x 2 stragglers, all unique.
        assert_eq!(points.len(), 10);
        let unique: std::collections::HashSet<_> = points.iter().collect();
        assert_eq!(unique.len(), 10);
    }

    #[test]
    fn training_expansion() {
        use ace_workloads::BuiltinWorkload;
        let mut sc = Scenario::training("fig11");
        sc.workloads = vec![
            WorkloadSel::builtin(BuiltinWorkload::Resnet50),
            WorkloadSel::builtin(BuiltinWorkload::Gnmt),
        ];
        let points = expand(&sc);
        // 1 topology x 2 workloads x 5 configs.
        assert_eq!(points.len(), 10);
        let unique: std::collections::HashSet<_> = points.iter().collect();
        assert_eq!(unique.len(), 10);
        assert!(points[0].label().contains("resnet50"));
    }
}
