//! Sweep reports: CSV and JSON emitters plus per-axis summary
//! aggregation.
//!
//! All output is deterministic: fixed column order, fixed float
//! formatting, rows in grid order. A parallel run therefore emits a CSV
//! byte-identical to a single-threaded run of the same scenario.

use crate::grid::{PointKind, RunPoint};
use crate::runner::{RunResult, SweepOutcome};
use crate::scenario::EngineSpec;
use ace_net::NetworkParams;

/// The fixed CSV column set (a superset across the three sweep modes;
/// inapplicable cells are empty).
pub const CSV_COLUMNS: [&str; 39] = [
    "topology",
    "nodes",
    "engine",
    "op",
    "payload_bytes",
    "mem_gbps",
    "comm_sms",
    "sram_mb",
    "fsms",
    "config",
    "workload",
    "iterations",
    "arrival",
    "arrival_rate",
    "schedule",
    "microbatches",
    "faults",
    "contention",
    "straggler",
    "failed_links",
    "degradation_pct",
    "time_us",
    "completion_cycles",
    "gbps_per_npu",
    "mem_traffic_bytes",
    "network_bytes",
    "compute_us",
    "exposed_comm_us",
    "ttft_p50_us",
    "ttft_p95_us",
    "ttft_p99_us",
    "e2e_p50_us",
    "e2e_p95_us",
    "e2e_p99_us",
    "goodput_rps",
    "past_schedules",
    "fidelity",
    "cache_hit",
    "speedup_vs_baseline",
];

/// The optional bottleneck-attribution columns appended by
/// [`to_csv_with_attribution`] / [`to_json_with_attribution`] (cycles;
/// they sum to `completion_cycles` — the attribution total is not a
/// column of its own). Kept out of [`CSV_COLUMNS`] so default output is
/// byte-stable across releases.
pub const ATTRIBUTION_COLUMNS: [&str; 7] = [
    "attr_compute_cycles",
    "attr_network_cycles",
    "attr_hbm_cycles",
    "attr_dma_cycles",
    "attr_bus_cycles",
    "attr_proc_cycles",
    "attr_other_cycles",
];

/// Formats `bytes` with a binary-power suffix when exact (`64MB`),
/// falling back to raw bytes.
pub fn human_bytes(bytes: u64) -> String {
    for (shift, suffix) in [(30, "GB"), (20, "MB"), (10, "KB")] {
        if bytes >= (1 << shift) && bytes.is_multiple_of(1 << shift) {
            return format!("{}{suffix}", bytes >> shift);
        }
    }
    format!("{bytes}B")
}

/// One row's cell values in [`CSV_COLUMNS`] order.
fn row_cells(r: &RunResult) -> Vec<String> {
    let mut engine = String::new();
    let mut op = String::new();
    let mut payload = String::new();
    let mut mem = String::new();
    let mut sms = String::new();
    let mut sram = String::new();
    let mut fsm = String::new();
    let mut config = String::new();
    let mut workload = String::new();
    let mut iters = String::new();
    let mut arrival = String::new();
    let mut arrival_rate = String::new();
    let mut schedule = String::new();
    let mut microbatches = String::new();
    let mut serving_cells = vec![String::new(); 7];
    match &r.point.kind {
        PointKind::Collective {
            engine: spec,
            op: o,
            payload_bytes,
        } => {
            engine = spec.family().name().to_string();
            op = o.to_string();
            payload = payload_bytes.to_string();
            match *spec {
                EngineSpec::Ideal => {}
                EngineSpec::Baseline { mem_gbps, comm_sms } => {
                    mem = format_f64(mem_gbps);
                    sms = comm_sms.to_string();
                }
                EngineSpec::Ace {
                    dma_mem_gbps,
                    sram_mb,
                    fsms,
                } => {
                    mem = format_f64(dma_mem_gbps);
                    sram = sram_mb.to_string();
                    fsm = fsms.to_string();
                }
            }
        }
        PointKind::Training {
            config: c,
            workload: w,
            iterations,
            ..
        } => {
            config = c.to_string();
            workload = w.to_string();
            iters = iterations.to_string();
        }
        PointKind::Serving {
            config: c,
            workload: w,
            spec,
        } => {
            config = c.to_string();
            workload = w.to_string();
            arrival = spec.arrival.to_string();
            arrival_rate = format_f64(spec.rate_rps);
            schedule = spec.schedule.to_string();
            microbatches = spec.microbatches.to_string();
            let s = &r.metrics.serving;
            serving_cells = [
                s.ttft_p50_us,
                s.ttft_p95_us,
                s.ttft_p99_us,
                s.e2e_p50_us,
                s.e2e_p95_us,
                s.e2e_p99_us,
                s.goodput_rps,
            ]
            .iter()
            .map(|v| format!("{v:.3}"))
            .collect();
        }
    }
    // `failed_links` / `degradation_pct` come from re-resolving the fault
    // plan against the row's topology — cheap, and spares RunResult a
    // field that only reports care about. Pristine rows short-circuit.
    let (failed_links, degradation_pct) = if r.point.conditions.is_pristine() {
        (0, 0.0)
    } else {
        match r
            .point
            .conditions
            .resolve(r.point.topology, &NetworkParams::paper_default())
        {
            Ok(plan) => (plan.failed_links(), plan.degradation_pct()),
            Err(_) => (0, 0.0),
        }
    };
    let m = &r.metrics;
    let mut cells = vec![
        r.point.topology.to_string(),
        r.point.topology.nodes().to_string(),
        engine,
        op,
        payload,
        mem,
        sms,
        sram,
        fsm,
        config,
        workload,
        iters,
        arrival,
        arrival_rate,
        schedule,
        microbatches,
        r.point.conditions.faults.to_string(),
        r.point.conditions.contention.to_string(),
        r.point.conditions.straggler.to_string(),
        failed_links.to_string(),
        format!("{degradation_pct:.3}"),
        format!("{:.3}", m.time_us),
        m.completion_cycles.to_string(),
        format!("{:.3}", m.gbps_per_npu),
        m.mem_traffic_bytes.to_string(),
        m.network_bytes.to_string(),
        format!("{:.3}", m.compute_us),
        format!("{:.3}", m.exposed_comm_us),
    ];
    cells.extend(serving_cells);
    cells.extend([
        m.past_schedules.to_string(),
        r.fidelity.to_string(),
        if r.cache_hit { "1" } else { "0" }.to_string(),
        r.speedup_vs_baseline
            .map(|s| format!("{s:.4}"))
            .unwrap_or_default(),
    ]);
    cells
}

/// The attribution cells of one row, in [`ATTRIBUTION_COLUMNS`] order
/// (which is [`ace_trace::Attribution::buckets`] order by construction).
fn attribution_cells(r: &RunResult) -> Vec<String> {
    r.metrics
        .attribution
        .buckets()
        .iter()
        .map(|(_, v)| v.to_string())
        .collect()
}

/// Renders the outcome as CSV (header + one row per grid cell).
pub fn to_csv(outcome: &SweepOutcome) -> String {
    csv_impl(outcome, false)
}

/// [`to_csv`] plus the [`ATTRIBUTION_COLUMNS`]: each row's
/// `completion_cycles` decomposed into compute / per-pipe-bound / other
/// buckets. A separate emitter so default output stays byte-stable.
pub fn to_csv_with_attribution(outcome: &SweepOutcome) -> String {
    csv_impl(outcome, true)
}

fn csv_impl(outcome: &SweepOutcome, attribution: bool) -> String {
    let mut out = String::new();
    out.push_str(&CSV_COLUMNS.join(","));
    if attribution {
        out.push(',');
        out.push_str(&ATTRIBUTION_COLUMNS.join(","));
    }
    out.push('\n');
    for r in &outcome.results {
        let mut cells = row_cells(r);
        if attribution {
            cells.extend(attribution_cells(r));
        }
        out.push_str(&cells.join(","));
        out.push('\n');
    }
    out
}

fn format_f64(v: f64) -> String {
    // `Display` prints integral floats without a trailing `.0`, which is
    // what scenario authors wrote ("128"), and is deterministic.
    format!("{v}")
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

fn json_num(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "null".to_string()
    }
}

/// Renders the outcome (rows + per-axis summary) as JSON.
pub fn to_json(outcome: &SweepOutcome) -> String {
    json_impl(outcome, false)
}

/// [`to_json`] plus per-row attribution fields (see
/// [`ATTRIBUTION_COLUMNS`]). A separate emitter so default output stays
/// byte-stable.
pub fn to_json_with_attribution(outcome: &SweepOutcome) -> String {
    json_impl(outcome, true)
}

fn json_impl(outcome: &SweepOutcome, attribution: bool) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str(&format!(
        "  \"scenario\": \"{}\",\n",
        json_escape(&outcome.scenario)
    ));
    out.push_str(&format!("  \"mode\": \"{}\",\n", outcome.mode));
    out.push_str(&format!("  \"fidelity\": \"{}\",\n", outcome.fidelity));
    out.push_str(&format!("  \"points\": {},\n", outcome.results.len()));
    out.push_str(&format!("  \"executed\": {},\n", outcome.executed));
    out.push_str(&format!(
        "  \"analytic_executed\": {},\n",
        outcome.analytic_executed
    ));
    out.push_str(&format!("  \"cache_hits\": {},\n", outcome.cache_hits));
    out.push_str("  \"results\": [\n");
    for (i, r) in outcome.results.iter().enumerate() {
        let cells = row_cells(r);
        let mut fields: Vec<String> = Vec::with_capacity(CSV_COLUMNS.len());
        for (name, cell) in CSV_COLUMNS.iter().zip(&cells) {
            if cell.is_empty() {
                continue;
            }
            // Numeric columns emit bare numbers; the rest are strings.
            let is_string = matches!(
                *name,
                "topology"
                    | "engine"
                    | "op"
                    | "config"
                    | "workload"
                    | "fidelity"
                    | "arrival"
                    | "schedule"
                    | "faults"
                    | "contention"
                    | "straggler"
            );
            if is_string {
                fields.push(format!("\"{name}\": \"{}\"", json_escape(cell)));
            } else if *name == "cache_hit" {
                fields.push(format!("\"cache_hit\": {}", cell == "1"));
            } else {
                fields.push(format!("\"{name}\": {cell}"));
            }
        }
        if attribution {
            for (name, cell) in ATTRIBUTION_COLUMNS.iter().zip(attribution_cells(r)) {
                fields.push(format!("\"{name}\": {cell}"));
            }
        }
        let sep = if i + 1 == outcome.results.len() {
            ""
        } else {
            ","
        };
        out.push_str(&format!("    {{{}}}{sep}\n", fields.join(", ")));
    }
    out.push_str("  ],\n");
    out.push_str("  \"summary\": [\n");
    let summaries = summarize(outcome);
    for (i, s) in summaries.iter().enumerate() {
        let sep = if i + 1 == summaries.len() { "" } else { "," };
        out.push_str(&format!(
            "    {{\"axis\": \"{}\", \"value\": \"{}\", \"count\": {}, \"min_speedup\": {}, \"mean_speedup\": {}, \"max_speedup\": {}}}{sep}\n",
            json_escape(&s.axis),
            json_escape(&s.value),
            s.count,
            json_num(s.min),
            json_num(s.mean),
            json_num(s.max),
        ));
    }
    out.push_str("  ]\n");
    out.push_str("}\n");
    out
}

/// Speedup statistics of one axis value (e.g. `mem_gbps = 128`).
#[derive(Debug, Clone, PartialEq)]
pub struct AxisSummary {
    /// Axis name (`topology`, `engine`, `mem_gbps`, `config`, ...).
    pub axis: String,
    /// The axis value this row aggregates.
    pub value: String,
    /// Number of grid cells at this value carrying a speedup.
    pub count: usize,
    /// Minimum speedup vs the scenario baseline.
    pub min: f64,
    /// Arithmetic mean speedup.
    pub mean: f64,
    /// Maximum speedup.
    pub max: f64,
}

/// The (axis, value) coordinates a point contributes to.
fn axis_values(point: &RunPoint) -> Vec<(&'static str, String)> {
    let mut v = vec![("topology", point.topology.to_string())];
    v.push(("faults", point.conditions.faults.to_string()));
    v.push(("contention", point.conditions.contention.to_string()));
    v.push(("straggler", point.conditions.straggler.to_string()));
    match &point.kind {
        PointKind::Collective {
            engine,
            op,
            payload_bytes,
        } => {
            v.push(("engine", engine.family().name().to_string()));
            v.push(("op", op.to_string()));
            v.push(("payload", human_bytes(*payload_bytes)));
            match *engine {
                EngineSpec::Ideal => {}
                EngineSpec::Baseline { mem_gbps, comm_sms } => {
                    v.push(("mem_gbps", format_f64(mem_gbps)));
                    v.push(("comm_sms", comm_sms.to_string()));
                }
                EngineSpec::Ace {
                    dma_mem_gbps,
                    sram_mb,
                    fsms,
                } => {
                    v.push(("mem_gbps", format_f64(dma_mem_gbps)));
                    v.push(("sram_mb", sram_mb.to_string()));
                    v.push(("fsms", fsms.to_string()));
                }
            }
        }
        PointKind::Training {
            config, workload, ..
        } => {
            v.push(("config", config.to_string()));
            v.push(("workload", workload.to_string()));
        }
        PointKind::Serving {
            config,
            workload,
            spec,
        } => {
            v.push(("config", config.to_string()));
            v.push(("workload", workload.to_string()));
            v.push(("arrival_rate", format_f64(spec.rate_rps)));
            v.push(("schedule", spec.schedule.to_string()));
            v.push(("microbatches", spec.microbatches.to_string()));
        }
    }
    v
}

/// Aggregates speedup-vs-baseline per axis value, for every axis with at
/// least two distinct values among rows that carry a speedup. Axis and
/// value order follow first appearance in the grid, so the summary is
/// deterministic.
pub fn summarize(outcome: &SweepOutcome) -> Vec<AxisSummary> {
    // axis -> ordered (value, speedups)
    type ValueSamples = Vec<(String, Vec<f64>)>;
    let mut axes: Vec<(&'static str, ValueSamples)> = Vec::new();
    for r in &outcome.results {
        let Some(speedup) = r.speedup_vs_baseline else {
            continue;
        };
        for (axis, value) in axis_values(&r.point) {
            let entry = match axes.iter_mut().find(|(a, _)| *a == axis) {
                Some(e) => e,
                None => {
                    axes.push((axis, Vec::new()));
                    axes.last_mut().expect("just pushed")
                }
            };
            match entry.1.iter_mut().find(|(v, _)| *v == value) {
                Some((_, samples)) => samples.push(speedup),
                None => entry.1.push((value, vec![speedup])),
            }
        }
    }
    let mut out = Vec::new();
    for (axis, values) in axes {
        if values.len() < 2 {
            continue;
        }
        for (value, samples) in values {
            let count = samples.len();
            let min = samples.iter().copied().fold(f64::INFINITY, f64::min);
            let max = samples.iter().copied().fold(f64::NEG_INFINITY, f64::max);
            let mean = samples.iter().sum::<f64>() / count as f64;
            out.push(AxisSummary {
                axis: axis.to_string(),
                value,
                count,
                min,
                mean,
                max,
            });
        }
    }
    out
}

/// Renders the axis summary as an aligned text table for terminals.
pub fn summary_table(summaries: &[AxisSummary]) -> String {
    if summaries.is_empty() {
        return String::new();
    }
    let mut out = String::new();
    out.push_str(&format!(
        "{:<12} {:>20} {:>6} {:>10} {:>10} {:>10}\n",
        "axis", "value", "count", "min", "mean", "max"
    ));
    for s in summaries {
        out.push_str(&format!(
            "{:<12} {:>20} {:>6} {:>9.3}x {:>9.3}x {:>9.3}x\n",
            s.axis, s.value, s.count, s.min, s.mean, s.max
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::{run_scenario, RunnerOptions};
    use crate::scenario::{BaselineSpec, EngineFamily, Scenario};
    use ace_net::TopologySpec;

    fn outcome() -> SweepOutcome {
        let mut sc = Scenario::collective("report-test");
        sc.topologies = vec![TopologySpec::torus3(2, 1, 1).unwrap()];
        sc.engines = vec![EngineFamily::Ideal, EngineFamily::Baseline];
        sc.payload_bytes = vec![128 * 1024];
        sc.mem_gbps = vec![128.0, 450.0];
        sc.comm_sms = vec![6];
        sc.baseline = Some(BaselineSpec::Engine(EngineSpec::Ideal));
        run_scenario(
            &sc,
            RunnerOptions {
                threads: 1,
                ..Default::default()
            },
        )
        .unwrap()
    }

    #[test]
    fn csv_shape_and_header() {
        let out = outcome();
        let csv = to_csv(&out);
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines.len(), 1 + out.results.len());
        assert!(lines[0].starts_with("topology,nodes,engine,"));
        for line in &lines[1..] {
            assert_eq!(line.split(',').count(), CSV_COLUMNS.len());
        }
        // Ideal rows leave the knob columns empty.
        assert!(lines[1].contains("ideal"));
    }

    #[test]
    fn json_is_structurally_sound() {
        let json = to_json(&outcome());
        // Cheap structural checks (no JSON parser in a std-only build):
        // balanced braces/brackets and the expected top-level keys.
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert_eq!(json.matches('[').count(), json.matches(']').count());
        for key in [
            "\"scenario\"",
            "\"results\"",
            "\"summary\"",
            "\"cache_hits\"",
        ] {
            assert!(json.contains(key), "missing {key}");
        }
    }

    #[test]
    fn summary_covers_multi_valued_axes_only() {
        let out = outcome();
        let sums = summarize(&out);
        // engine has 2 values; mem_gbps has 2 (only baseline rows carry it);
        // topology/op/payload have 1 value each and are dropped.
        assert!(sums.iter().any(|s| s.axis == "engine"));
        assert!(sums.iter().any(|s| s.axis == "mem_gbps"));
        assert!(!sums.iter().any(|s| s.axis == "topology"));
        for s in &sums {
            assert!(s.min <= s.mean && s.mean <= s.max);
            assert!(s.count > 0);
        }
        let table = summary_table(&sums);
        assert!(table.contains("engine"));
    }

    #[test]
    fn attribution_emitters_extend_but_never_change_default_output() {
        let out = outcome();
        let csv = to_csv(&out);
        let csv_a = to_csv_with_attribution(&out);
        // Default output is untouched; the attribution variant appends
        // exactly the extra columns to every line.
        assert!(!csv.contains("attr_compute_cycles"));
        assert!(csv_a.lines().next().unwrap().ends_with("attr_other_cycles"));
        for (plain, ext) in csv.lines().zip(csv_a.lines()) {
            assert!(ext.starts_with(plain), "attribution row diverged");
            assert_eq!(
                ext.split(',').count(),
                CSV_COLUMNS.len() + ATTRIBUTION_COLUMNS.len()
            );
        }
        // Buckets in each row sum to that row's completion_cycles.
        for (r, line) in out.results.iter().zip(csv_a.lines().skip(1)) {
            let cells: Vec<&str> = line.split(',').collect();
            let sum: u64 = cells[CSV_COLUMNS.len()..]
                .iter()
                .map(|c| c.parse::<u64>().unwrap())
                .sum();
            assert_eq!(sum, r.metrics.completion_cycles);
        }
        let json_a = to_json_with_attribution(&out);
        assert!(json_a.contains("\"attr_network_cycles\":"));
        assert!(!to_json(&out).contains("attr_network_cycles"));
    }

    #[test]
    fn fault_columns_report_failed_links_and_degradation() {
        let mut sc = Scenario::collective("fault-report");
        sc.topologies = vec![TopologySpec::torus3(4, 4, 1).unwrap()];
        sc.engines = vec![EngineFamily::Ideal];
        sc.payload_bytes = vec![128 * 1024];
        sc.faults = vec!["none".parse().unwrap(), "kill:1@seed:42".parse().unwrap()];
        let out = run_scenario(
            &sc,
            RunnerOptions {
                threads: 1,
                ..Default::default()
            },
        )
        .unwrap();
        let csv = to_csv(&out);
        let lines: Vec<&str> = csv.lines().collect();
        let header: Vec<&str> = lines[0].split(',').collect();
        let fl = header.iter().position(|c| *c == "failed_links").unwrap();
        let dp = header.iter().position(|c| *c == "degradation_pct").unwrap();
        let fa = header.iter().position(|c| *c == "faults").unwrap();
        let pristine: Vec<&str> = lines[1].split(',').collect();
        let degraded: Vec<&str> = lines[2].split(',').collect();
        assert_eq!(pristine[fa], "none");
        assert_eq!(pristine[fl], "0");
        assert_eq!(pristine[dp], "0.000");
        assert_eq!(degraded[fa], "kill:1@seed:42");
        assert_eq!(degraded[fl], "1");
        assert!(degraded[dp].parse::<f64>().unwrap() > 0.0);
        // Degraded rows must not be slower to *parse* than run: the JSON
        // view carries the same identity fields as strings.
        let json = to_json(&out);
        assert!(json.contains("\"faults\": \"kill:1@seed:42\""));
        assert!(json.contains("\"failed_links\": 1"));
    }

    #[test]
    fn human_bytes_suffixes() {
        assert_eq!(human_bytes(64 << 20), "64MB");
        assert_eq!(human_bytes(8 << 10), "8KB");
        assert_eq!(human_bytes(1 << 30), "1GB");
        assert_eq!(human_bytes(1000), "1000B");
        assert_eq!(human_bytes(3 << 19), "1536KB");
    }

    #[test]
    fn parallel_csv_is_byte_identical_to_serial() {
        let mut sc = Scenario::collective("determinism");
        sc.topologies = vec![TopologySpec::torus3(2, 1, 1).unwrap()];
        sc.engines = vec![EngineFamily::Baseline];
        sc.payload_bytes = vec![128 * 1024];
        sc.mem_gbps = vec![64.0, 128.0, 450.0];
        sc.comm_sms = vec![2, 6];
        let serial = run_scenario(
            &sc,
            RunnerOptions {
                threads: 1,
                ..Default::default()
            },
        )
        .unwrap();
        let parallel = run_scenario(
            &sc,
            RunnerOptions {
                threads: 8,
                ..Default::default()
            },
        )
        .unwrap();
        assert_eq!(to_csv(&serial), to_csv(&parallel));
        assert_eq!(to_json(&serial), to_json(&parallel));
    }
}
