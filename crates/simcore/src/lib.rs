//! Discrete-event simulation primitives shared by every crate in the ACE
//! reproduction.
//!
//! The simulator models a distributed deep-learning training platform at
//! cycle granularity. Everything in the platform that can be contended for —
//! memory bandwidth, the NPU-AFI bus, streaming multiprocessors driving the
//! network, fabric links, ACE's SRAM ports and ALUs — is expressed as a
//! [`BandwidthServer`] or a [`SlotServer`]: FIFO resources that serialize
//! requests and report when each request starts and finishes. Contention and
//! queuing delays *emerge* from server serialization rather than being
//! painted on afterwards.
//!
//! # Example
//!
//! ```
//! use ace_simcore::{BandwidthServer, Frequency, SimTime};
//!
//! // A 900 GB/s HBM stack at the paper's 1245 MHz NPU clock.
//! let freq = Frequency::from_mhz(1245.0);
//! let mut hbm = BandwidthServer::new(freq.bytes_per_cycle(900.0));
//!
//! // Two back-to-back 1 MiB reads serialize behind each other.
//! let first = hbm.request(SimTime::ZERO, 1 << 20);
//! let second = hbm.request(SimTime::ZERO, 1 << 20);
//! assert!(second.start > first.start);
//! assert!(second.end.cycles() >= 2 * first.start.cycles());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod event;
mod server;
mod stats;
mod time;

pub use event::EventQueue;
pub use server::{BandwidthServer, Grant, SlotServer};
pub use stats::{BucketCursor, RateMeter, Summary, TimeSeries, UtilizationTracker};
pub use time::{Frequency, SimTime};

/// The paper's NPU clock frequency: 1245 MHz (Section V).
pub const NPU_FREQ_MHZ: f64 = 1245.0;

/// Returns the platform-default NPU frequency used across the workspace.
///
/// ```
/// let f = ace_simcore::npu_frequency();
/// assert!((f.hz() - 1.245e9).abs() < 1.0);
/// ```
pub fn npu_frequency() -> Frequency {
    Frequency::from_mhz(NPU_FREQ_MHZ)
}
