//! Cycle-typed simulation time and clock-frequency conversions.

use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// A point in simulated time, measured in NPU clock cycles.
///
/// `SimTime` is a newtype over `u64` so that cycle counts cannot be confused
/// with byte counts or other integers flowing through the simulator.
///
/// ```
/// use ace_simcore::SimTime;
/// let t = SimTime::from_cycles(100) + SimTime::from_cycles(20);
/// assert_eq!(t.cycles(), 120);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(u64);

impl SimTime {
    /// Time zero: the start of the simulation.
    pub const ZERO: SimTime = SimTime(0);

    /// The largest representable time; useful as an "infinity" sentinel.
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Creates a time from a raw cycle count.
    pub const fn from_cycles(cycles: u64) -> Self {
        SimTime(cycles)
    }

    /// Returns the raw cycle count.
    pub const fn cycles(self) -> u64 {
        self.0
    }

    /// Returns the later of `self` and `other`.
    pub fn max(self, other: SimTime) -> SimTime {
        SimTime(self.0.max(other.0))
    }

    /// Returns the earlier of `self` and `other`.
    pub fn min(self, other: SimTime) -> SimTime {
        SimTime(self.0.min(other.0))
    }

    /// Saturating subtraction: the duration from `earlier` to `self`,
    /// clamped at zero if `earlier` is actually later.
    pub fn saturating_since(self, earlier: SimTime) -> u64 {
        self.0.saturating_sub(earlier.0)
    }

    /// Converts this time to seconds under clock `freq`.
    pub fn to_seconds(self, freq: Frequency) -> f64 {
        self.0 as f64 / freq.hz()
    }

    /// Converts this time to microseconds under clock `freq`.
    pub fn to_micros(self, freq: Frequency) -> f64 {
        self.to_seconds(freq) * 1e6
    }
}

impl Add for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimTime) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl Add<u64> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: u64) -> SimTime {
        SimTime(self.0 + rhs)
    }
}

impl AddAssign<u64> for SimTime {
    fn add_assign(&mut self, rhs: u64) {
        self.0 += rhs;
    }
}

impl Sub for SimTime {
    type Output = u64;
    /// Duration in cycles from `rhs` to `self`.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if `rhs` is later than `self`.
    fn sub(self, rhs: SimTime) -> u64 {
        debug_assert!(self.0 >= rhs.0, "negative duration");
        self.0 - rhs.0
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}cyc", self.0)
    }
}

/// A clock frequency, used to convert between cycles, seconds, and
/// bandwidth figures quoted in GB/s.
///
/// ```
/// use ace_simcore::Frequency;
/// let f = Frequency::from_mhz(1245.0);
/// // 200 GB/s intra-package link at 1245 MHz moves ~160.6 bytes per cycle.
/// let bpc = f.bytes_per_cycle(200.0);
/// assert!((bpc - 160.64).abs() < 0.1);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Frequency {
    hz: f64,
}

impl Frequency {
    /// Creates a frequency from megahertz.
    ///
    /// # Panics
    ///
    /// Panics if `mhz` is not strictly positive and finite.
    pub fn from_mhz(mhz: f64) -> Self {
        assert!(mhz.is_finite() && mhz > 0.0, "frequency must be positive");
        Frequency { hz: mhz * 1e6 }
    }

    /// Creates a frequency from gigahertz.
    pub fn from_ghz(ghz: f64) -> Self {
        Self::from_mhz(ghz * 1e3)
    }

    /// Returns the frequency in hertz.
    pub fn hz(self) -> f64 {
        self.hz
    }

    /// Converts a bandwidth in GB/s (decimal gigabytes) to bytes per cycle.
    pub fn bytes_per_cycle(self, gbps: f64) -> f64 {
        gbps * 1e9 / self.hz
    }

    /// Converts a bytes-per-cycle figure back to GB/s.
    pub fn gbps(self, bytes_per_cycle: f64) -> f64 {
        bytes_per_cycle * self.hz / 1e9
    }

    /// Number of whole cycles in `seconds` of wall time, rounded up.
    pub fn cycles_in(self, seconds: f64) -> u64 {
        (seconds * self.hz).ceil() as u64
    }

    /// The number of cycles needed to move `bytes` at `gbps`, rounded up,
    /// and always at least one cycle for a non-empty transfer.
    pub fn transfer_cycles(self, bytes: u64, gbps: f64) -> u64 {
        if bytes == 0 {
            return 0;
        }
        let cycles = bytes as f64 / self.bytes_per_cycle(gbps);
        (cycles.ceil() as u64).max(1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn simtime_arithmetic_roundtrips() {
        let a = SimTime::from_cycles(10);
        let b = a + 5;
        assert_eq!(b.cycles(), 15);
        assert_eq!(b - a, 5);
        assert_eq!(a.max(b), b);
        assert_eq!(a.min(b), a);
    }

    #[test]
    fn simtime_saturating_since_clamps() {
        let early = SimTime::from_cycles(5);
        let late = SimTime::from_cycles(9);
        assert_eq!(late.saturating_since(early), 4);
        assert_eq!(early.saturating_since(late), 0);
    }

    #[test]
    fn simtime_display_mentions_cycles() {
        assert_eq!(SimTime::from_cycles(42).to_string(), "42cyc");
    }

    #[test]
    fn frequency_conversions_are_consistent() {
        let f = Frequency::from_mhz(1245.0);
        let bpc = f.bytes_per_cycle(900.0);
        assert!((f.gbps(bpc) - 900.0).abs() < 1e-9);
    }

    #[test]
    fn frequency_from_ghz_matches_mhz() {
        assert_eq!(
            Frequency::from_ghz(1.245).hz(),
            Frequency::from_mhz(1245.0).hz()
        );
    }

    #[test]
    fn seconds_conversion() {
        let f = Frequency::from_mhz(1000.0);
        let t = SimTime::from_cycles(1_000_000);
        assert!((t.to_seconds(f) - 1e-3).abs() < 1e-12);
        assert!((t.to_micros(f) - 1000.0).abs() < 1e-9);
    }

    #[test]
    fn transfer_cycles_rounds_up_and_has_floor() {
        let f = Frequency::from_mhz(1245.0);
        // 256-byte packet on a 25 GB/s inter-package link: ~12.75 cycles.
        assert_eq!(f.transfer_cycles(256, 25.0), 13);
        assert_eq!(f.transfer_cycles(0, 25.0), 0);
        assert_eq!(f.transfer_cycles(1, 10_000.0), 1);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_frequency_rejected() {
        let _ = Frequency::from_mhz(0.0);
    }
}
