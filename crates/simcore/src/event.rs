//! A deterministic discrete-event queue.

use crate::SimTime;

/// A time-ordered event queue driving the simulation forward.
///
/// The queue is popped once per simulated event — tens of millions of
/// times per design-space point — so the heap is tuned for that load:
/// a 4-ary min-heap in structure-of-arrays layout (ordering keys in one
/// dense array, payloads in another) with hole-based sifting. Probing the
/// four children of a node touches a single cache line of keys, and the
/// packed `time << 64 | seq` key makes each probe one scalar comparison.
/// Payloads must be `Copy`, which every event type in the simulator is.
///
/// Events with equal timestamps are delivered in insertion order (FIFO),
/// which keeps the simulation deterministic across runs.
///
/// ```
/// use ace_simcore::{EventQueue, SimTime};
///
/// let mut q = EventQueue::new();
/// q.schedule(SimTime::from_cycles(20), "late");
/// q.schedule(SimTime::from_cycles(10), "early");
/// let (t, e) = q.pop().unwrap();
/// assert_eq!((t.cycles(), e), (10, "early"));
/// ```
#[derive(Debug, Clone)]
pub struct EventQueue<E> {
    /// Packed `time << 64 | seq` ordering keys, heap-ordered.
    keys: Vec<u128>,
    /// Event payloads, parallel to `keys`.
    events: Vec<E>,
    next_seq: u64,
    now: SimTime,
    past_schedules: u64,
    pops: u64,
}

/// Heap arity: the four children of a node occupy one 64-byte cache line
/// of the key array, and the tree is half as deep as a binary heap's.
const ARITY: usize = 4;

fn key_time(key: u128) -> SimTime {
    SimTime::from_cycles((key >> 64) as u64)
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// Creates an empty queue positioned at time zero.
    pub fn new() -> Self {
        Self::with_now(SimTime::ZERO)
    }

    /// Creates an empty queue whose clock starts at `now` — the
    /// constructor partitioned simulations use to fork per-partition
    /// queues that agree with the parent clock.
    pub fn with_now(now: SimTime) -> Self {
        EventQueue {
            keys: Vec::new(),
            events: Vec::new(),
            next_seq: 0,
            now,
            past_schedules: 0,
            pops: 0,
        }
    }

    /// The timestamp of the most recently popped event.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of events that were scheduled in the past and clamped to the
    /// queue's current time — always zero in a correct simulation.
    pub fn past_schedules(&self) -> u64 {
        self.past_schedules
    }

    /// Total events delivered so far — the dispatch count
    /// instrumentation uses for sampling cadence (e.g. a queue-depth
    /// sample every N pops) without keeping its own counter.
    pub fn pops(&self) -> u64 {
        self.pops
    }

    /// Returns the time of the next pending event without popping it.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.keys.first().map(|&k| key_time(k))
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.keys.len()
    }

    /// Whether the queue has no pending events.
    pub fn is_empty(&self) -> bool {
        self.keys.is_empty()
    }

    /// Advances the clock to `t` without delivering anything (no-op when
    /// `t` is in the past). Used when re-joining partitioned queues: the
    /// parent clock must catch up to the furthest partition before
    /// absorbing its leftovers.
    pub fn advance_to(&mut self, t: SimTime) {
        self.now = self.now.max(t);
    }

    /// Folds another queue's delivery counters (and clock) into this one,
    /// so a simulation that temporarily fanned out over partitioned
    /// queues reports the same `pops`/`past_schedules` totals as a serial
    /// run.
    pub fn absorb_counters(&mut self, other: &EventQueue<E>) {
        self.pops += other.pops;
        self.past_schedules += other.past_schedules;
        self.now = self.now.max(other.now);
    }

    /// Removes and returns every pending entry as `(time, low-64 key,
    /// event)` in unspecified order, leaving the clock and counters
    /// untouched. Re-inserting an entry through
    /// [`schedule_keyed`](EventQueue::schedule_keyed) with the returned
    /// key reconstructs its exact ordering key.
    pub fn drain_entries(&mut self) -> Vec<(SimTime, u64, E)> {
        let keys = std::mem::take(&mut self.keys);
        let events = std::mem::take(&mut self.events);
        keys.into_iter()
            .zip(events)
            .map(|(k, e)| (key_time(k), k as u64, e))
            .collect()
    }
}

impl<E: Copy> EventQueue<E> {
    /// Schedules `event` to fire at absolute time `at`.
    ///
    /// Scheduling in the past is a logic error in the caller; the queue
    /// tolerates it by delivering the event at the current time, but debug
    /// builds assert and every build counts the violation in
    /// [`past_schedules`](EventQueue::past_schedules) so release-mode
    /// sweeps can surface it in reports.
    pub fn schedule(&mut self, at: SimTime, event: E) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.schedule_raw(at, seq, event);
    }

    /// Schedules `event` with an explicit low-64 tie-break key instead of
    /// the insertion sequence number. Events at equal times then pop in
    /// `key` order regardless of scheduling order, which is what lets a
    /// domain-partitioned simulation reproduce the serial engine's event
    /// order exactly: the key is derived from event *content*, so the
    /// interleaving in which partitions scheduled them cannot matter.
    ///
    /// Callers mixing `schedule` and `schedule_keyed` on one queue are
    /// responsible for keeping the key spaces orderable (the executor
    /// keeps plain sequence keys below `2^60` and content keys above).
    pub fn schedule_keyed(&mut self, at: SimTime, key: u64, event: E) {
        self.schedule_raw(at, key, event);
    }

    fn schedule_raw(&mut self, at: SimTime, low: u64, event: E) {
        debug_assert!(at >= self.now, "event scheduled in the past");
        if at < self.now {
            self.past_schedules += 1;
        }
        let time = at.max(self.now);
        let key = (time.cycles() as u128) << 64 | low as u128;
        // Hole-based sift-up: walk ancestors down into the hole and place
        // the new entry once, instead of swapping at every level.
        let mut hole = self.keys.len();
        self.keys.push(key);
        self.events.push(event);
        while hole > 0 {
            let parent = (hole - 1) / ARITY;
            if self.keys[parent] <= key {
                break;
            }
            self.keys[hole] = self.keys[parent];
            self.events[hole] = self.events[parent];
            hole = parent;
        }
        self.keys[hole] = key;
        self.events[hole] = event;
    }

    /// Schedules `event` to fire `delay` cycles from the current time.
    pub fn schedule_in(&mut self, delay: u64, event: E) {
        self.schedule(self.now + delay, event);
    }

    /// Pops the earliest event, advancing the queue's clock to its time.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        self.pop_keyed().map(|(t, _, e)| (t, e))
    }

    /// Pops the earliest event together with its low-64 ordering key (the
    /// sequence number for [`schedule`](EventQueue::schedule), the caller
    /// key for [`schedule_keyed`](EventQueue::schedule_keyed)).
    pub fn pop_keyed(&mut self) -> Option<(SimTime, u64, E)> {
        let key = *self.keys.first()?;
        let event = self.events[0];
        let last_key = self.keys.pop().expect("nonempty");
        let last_event = self.events.pop().expect("nonempty");
        let len = self.keys.len();
        if len > 0 {
            // Hole-based sift-down of the displaced last entry.
            let mut hole = 0;
            loop {
                let first_child = hole * ARITY + 1;
                if first_child >= len {
                    break;
                }
                let mut best = first_child;
                let mut best_key = self.keys[first_child];
                let child_end = (first_child + ARITY).min(len);
                for c in first_child + 1..child_end {
                    if self.keys[c] < best_key {
                        best = c;
                        best_key = self.keys[c];
                    }
                }
                if last_key <= best_key {
                    break;
                }
                self.keys[hole] = best_key;
                self.events[hole] = self.events[best];
                hole = best;
            }
            self.keys[hole] = last_key;
            self.events[hole] = last_event;
        }
        let time = key_time(key);
        self.now = time;
        self.pops += 1;
        Some((time, key as u64, event))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_cycles(30), 3);
        q.schedule(SimTime::from_cycles(10), 1);
        q.schedule(SimTime::from_cycles(20), 2);
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, vec![1, 2, 3]);
    }

    #[test]
    fn equal_times_are_fifo() {
        let mut q = EventQueue::new();
        let t = SimTime::from_cycles(5);
        for i in 0..100 {
            q.schedule(t, i);
        }
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn interleaved_schedule_and_pop_stay_ordered() {
        // Exercise the 4-ary sift paths with a deterministic shuffle.
        let mut q = EventQueue::new();
        let mut x: u64 = 0x9e3779b97f4a7c15;
        for _ in 0..500 {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            q.schedule(SimTime::from_cycles(x % 10_000), x);
        }
        let mut popped = Vec::new();
        for _ in 0..250 {
            popped.push(q.pop().unwrap().0.cycles());
        }
        // Everything scheduled from here on lands at/after `now`.
        for i in 0..250u64 {
            q.schedule(SimTime::from_cycles(q.now().cycles() + i * 7), i);
        }
        while let Some((t, _)) = q.pop() {
            popped.push(t.cycles());
        }
        assert_eq!(popped.len(), 750);
        assert!(popped.windows(2).all(|w| w[0] <= w[1]), "pops out of order");
    }

    #[test]
    fn clock_advances_with_pops() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_cycles(7), ());
        assert_eq!(q.now(), SimTime::ZERO);
        q.pop();
        assert_eq!(q.now(), SimTime::from_cycles(7));
    }

    #[test]
    fn schedule_in_is_relative_to_now() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_cycles(10), "a");
        q.pop();
        q.schedule_in(5, "b");
        assert_eq!(q.peek_time(), Some(SimTime::from_cycles(15)));
    }

    #[test]
    #[cfg(not(debug_assertions))]
    fn past_schedules_are_counted_in_release() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_cycles(10), "a");
        q.pop();
        assert_eq!(q.past_schedules(), 0);
        q.schedule(SimTime::from_cycles(3), "late");
        assert_eq!(q.past_schedules(), 1);
        // The clamped event still delivers at the current time.
        assert_eq!(q.pop().unwrap().0, SimTime::from_cycles(10));
    }

    #[test]
    fn on_time_schedules_do_not_count() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_cycles(5), ());
        q.pop();
        q.schedule(SimTime::from_cycles(5), ());
        assert_eq!(q.past_schedules(), 0);
    }

    #[test]
    fn len_and_empty_track_contents() {
        let mut q = EventQueue::new();
        assert!(q.is_empty());
        q.schedule(SimTime::from_cycles(1), ());
        assert_eq!(q.len(), 1);
        q.pop();
        assert!(q.is_empty());
    }

    #[test]
    fn keyed_ties_pop_in_key_order_regardless_of_insertion() {
        let t = SimTime::from_cycles(5);
        // Two opposite insertion orders must deliver identically.
        let mut a = EventQueue::new();
        for k in [9u64, 3, 7, 1] {
            a.schedule_keyed(t, k, k);
        }
        let mut b = EventQueue::new();
        for k in [1u64, 7, 3, 9] {
            b.schedule_keyed(t, k, k);
        }
        let drain = |q: &mut EventQueue<u64>| -> Vec<(u64, u64)> {
            std::iter::from_fn(|| q.pop_keyed().map(|(_, k, e)| (k, e))).collect()
        };
        let da = drain(&mut a);
        assert_eq!(da, drain(&mut b));
        assert_eq!(da, vec![(1, 1), (3, 3), (7, 7), (9, 9)]);
    }

    #[test]
    fn plain_and_keyed_schedules_coexist() {
        // Plain sequence keys (small) beat content keys (large) at ties.
        let mut q = EventQueue::new();
        let t = SimTime::from_cycles(5);
        q.schedule_keyed(t, 1 << 60, "keyed");
        q.schedule(t, "plain");
        assert_eq!(q.pop().unwrap().1, "plain");
        assert_eq!(q.pop().unwrap().1, "keyed");
    }

    #[test]
    fn drain_entries_round_trips_through_schedule_keyed() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_cycles(3), 30);
        q.schedule_keyed(SimTime::from_cycles(1), 7, 10);
        q.schedule_keyed(SimTime::from_cycles(2), 4, 20);
        let entries = q.drain_entries();
        assert!(q.is_empty());
        assert_eq!(q.pops(), 0, "draining is not delivery");
        let mut r = EventQueue::new();
        for (at, key, ev) in entries {
            r.schedule_keyed(at, key, ev);
        }
        let order: Vec<i32> = std::iter::from_fn(|| r.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, vec![10, 20, 30]);
    }

    #[test]
    fn with_now_and_absorb_counters_rejoin_partitions() {
        let mut main: EventQueue<()> = EventQueue::new();
        main.schedule(SimTime::from_cycles(2), ());
        main.pop();
        let mut part: EventQueue<()> = EventQueue::with_now(main.now());
        assert_eq!(part.now(), SimTime::from_cycles(2));
        part.schedule(SimTime::from_cycles(9), ());
        part.pop();
        main.absorb_counters(&part);
        assert_eq!(main.pops(), 2);
        assert_eq!(main.now(), SimTime::from_cycles(9));
        main.advance_to(SimTime::from_cycles(4));
        assert_eq!(main.now(), SimTime::from_cycles(9), "advance never rewinds");
        main.advance_to(SimTime::from_cycles(12));
        assert_eq!(main.now(), SimTime::from_cycles(12));
    }

    #[test]
    fn pops_count_deliveries() {
        let mut q = EventQueue::new();
        assert_eq!(q.pops(), 0);
        q.schedule(SimTime::from_cycles(1), ());
        q.schedule(SimTime::from_cycles(2), ());
        q.pop();
        assert_eq!(q.pops(), 1);
        q.pop();
        assert!(q.pop().is_none());
        assert_eq!(q.pops(), 2, "empty pops do not count");
    }
}
