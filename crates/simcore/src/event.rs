//! A deterministic discrete-event queue.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::SimTime;

/// An event scheduled for a particular simulation time.
///
/// Events with equal timestamps are delivered in insertion order (FIFO),
/// which keeps the simulation deterministic across runs.
#[derive(Debug, Clone)]
pub struct EventEntry<E> {
    /// When the event fires.
    pub time: SimTime,
    /// Monotonic sequence number used to break timestamp ties.
    pub seq: u64,
    /// The event payload.
    pub event: E,
}

impl<E> PartialEq for EventEntry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}

impl<E> Eq for EventEntry<E> {}

impl<E> PartialOrd for EventEntry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> Ord for EventEntry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert so the earliest event pops first.
        other
            .time
            .cmp(&self.time)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// A time-ordered event queue driving the simulation forward.
///
/// ```
/// use ace_simcore::{EventQueue, SimTime};
///
/// let mut q = EventQueue::new();
/// q.schedule(SimTime::from_cycles(20), "late");
/// q.schedule(SimTime::from_cycles(10), "early");
/// let (t, e) = q.pop().unwrap();
/// assert_eq!((t.cycles(), e), (10, "early"));
/// ```
#[derive(Debug, Clone)]
pub struct EventQueue<E> {
    heap: BinaryHeap<EventEntry<E>>,
    next_seq: u64,
    now: SimTime,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// Creates an empty queue positioned at time zero.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            next_seq: 0,
            now: SimTime::ZERO,
        }
    }

    /// The timestamp of the most recently popped event.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Schedules `event` to fire at absolute time `at`.
    ///
    /// Scheduling in the past is a logic error in the caller; the queue
    /// tolerates it by delivering the event at the current time, but debug
    /// builds assert.
    pub fn schedule(&mut self, at: SimTime, event: E) {
        debug_assert!(at >= self.now, "event scheduled in the past");
        let entry = EventEntry {
            time: at.max(self.now),
            seq: self.next_seq,
            event,
        };
        self.next_seq += 1;
        self.heap.push(entry);
    }

    /// Schedules `event` to fire `delay` cycles from the current time.
    pub fn schedule_in(&mut self, delay: u64, event: E) {
        self.schedule(self.now + delay, event);
    }

    /// Pops the earliest event, advancing the queue's clock to its time.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        self.heap.pop().map(|entry| {
            self.now = entry.time;
            (entry.time, entry.event)
        })
    }

    /// Returns the time of the next pending event without popping it.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|e| e.time)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether the queue has no pending events.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_cycles(30), 3);
        q.schedule(SimTime::from_cycles(10), 1);
        q.schedule(SimTime::from_cycles(20), 2);
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, vec![1, 2, 3]);
    }

    #[test]
    fn equal_times_are_fifo() {
        let mut q = EventQueue::new();
        let t = SimTime::from_cycles(5);
        for i in 0..100 {
            q.schedule(t, i);
        }
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn clock_advances_with_pops() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_cycles(7), ());
        assert_eq!(q.now(), SimTime::ZERO);
        q.pop();
        assert_eq!(q.now(), SimTime::from_cycles(7));
    }

    #[test]
    fn schedule_in_is_relative_to_now() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_cycles(10), "a");
        q.pop();
        q.schedule_in(5, "b");
        assert_eq!(q.peek_time(), Some(SimTime::from_cycles(15)));
    }

    #[test]
    fn len_and_empty_track_contents() {
        let mut q = EventQueue::new();
        assert!(q.is_empty());
        q.schedule(SimTime::from_cycles(1), ());
        assert_eq!(q.len(), 1);
        q.pop();
        assert!(q.is_empty());
    }
}
