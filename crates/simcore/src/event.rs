//! A deterministic discrete-event queue.

use crate::SimTime;

/// A time-ordered event queue driving the simulation forward.
///
/// The queue is popped once per simulated event — tens of millions of
/// times per design-space point — so the heap is tuned for that load:
/// a 4-ary min-heap in structure-of-arrays layout (ordering keys in one
/// dense array, payloads in another) with hole-based sifting. Probing the
/// four children of a node touches a single cache line of keys, and the
/// packed `time << 64 | seq` key makes each probe one scalar comparison.
/// Payloads must be `Copy`, which every event type in the simulator is.
///
/// Events with equal timestamps are delivered in insertion order (FIFO),
/// which keeps the simulation deterministic across runs.
///
/// ```
/// use ace_simcore::{EventQueue, SimTime};
///
/// let mut q = EventQueue::new();
/// q.schedule(SimTime::from_cycles(20), "late");
/// q.schedule(SimTime::from_cycles(10), "early");
/// let (t, e) = q.pop().unwrap();
/// assert_eq!((t.cycles(), e), (10, "early"));
/// ```
#[derive(Debug, Clone)]
pub struct EventQueue<E> {
    /// Packed `time << 64 | seq` ordering keys, heap-ordered.
    keys: Vec<u128>,
    /// Event payloads, parallel to `keys`.
    events: Vec<E>,
    next_seq: u64,
    now: SimTime,
    past_schedules: u64,
    pops: u64,
}

/// Heap arity: the four children of a node occupy one 64-byte cache line
/// of the key array, and the tree is half as deep as a binary heap's.
const ARITY: usize = 4;

fn key_time(key: u128) -> SimTime {
    SimTime::from_cycles((key >> 64) as u64)
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// Creates an empty queue positioned at time zero.
    pub fn new() -> Self {
        EventQueue {
            keys: Vec::new(),
            events: Vec::new(),
            next_seq: 0,
            now: SimTime::ZERO,
            past_schedules: 0,
            pops: 0,
        }
    }

    /// The timestamp of the most recently popped event.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of events that were scheduled in the past and clamped to the
    /// queue's current time — always zero in a correct simulation.
    pub fn past_schedules(&self) -> u64 {
        self.past_schedules
    }

    /// Total events delivered so far — the dispatch count
    /// instrumentation uses for sampling cadence (e.g. a queue-depth
    /// sample every N pops) without keeping its own counter.
    pub fn pops(&self) -> u64 {
        self.pops
    }

    /// Returns the time of the next pending event without popping it.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.keys.first().map(|&k| key_time(k))
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.keys.len()
    }

    /// Whether the queue has no pending events.
    pub fn is_empty(&self) -> bool {
        self.keys.is_empty()
    }
}

impl<E: Copy> EventQueue<E> {
    /// Schedules `event` to fire at absolute time `at`.
    ///
    /// Scheduling in the past is a logic error in the caller; the queue
    /// tolerates it by delivering the event at the current time, but debug
    /// builds assert and every build counts the violation in
    /// [`past_schedules`](EventQueue::past_schedules) so release-mode
    /// sweeps can surface it in reports.
    pub fn schedule(&mut self, at: SimTime, event: E) {
        debug_assert!(at >= self.now, "event scheduled in the past");
        if at < self.now {
            self.past_schedules += 1;
        }
        let time = at.max(self.now);
        let key = (time.cycles() as u128) << 64 | self.next_seq as u128;
        self.next_seq += 1;
        // Hole-based sift-up: walk ancestors down into the hole and place
        // the new entry once, instead of swapping at every level.
        let mut hole = self.keys.len();
        self.keys.push(key);
        self.events.push(event);
        while hole > 0 {
            let parent = (hole - 1) / ARITY;
            if self.keys[parent] <= key {
                break;
            }
            self.keys[hole] = self.keys[parent];
            self.events[hole] = self.events[parent];
            hole = parent;
        }
        self.keys[hole] = key;
        self.events[hole] = event;
    }

    /// Schedules `event` to fire `delay` cycles from the current time.
    pub fn schedule_in(&mut self, delay: u64, event: E) {
        self.schedule(self.now + delay, event);
    }

    /// Pops the earliest event, advancing the queue's clock to its time.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        let key = *self.keys.first()?;
        let event = self.events[0];
        let last_key = self.keys.pop().expect("nonempty");
        let last_event = self.events.pop().expect("nonempty");
        let len = self.keys.len();
        if len > 0 {
            // Hole-based sift-down of the displaced last entry.
            let mut hole = 0;
            loop {
                let first_child = hole * ARITY + 1;
                if first_child >= len {
                    break;
                }
                let mut best = first_child;
                let mut best_key = self.keys[first_child];
                let child_end = (first_child + ARITY).min(len);
                for c in first_child + 1..child_end {
                    if self.keys[c] < best_key {
                        best = c;
                        best_key = self.keys[c];
                    }
                }
                if last_key <= best_key {
                    break;
                }
                self.keys[hole] = best_key;
                self.events[hole] = self.events[best];
                hole = best;
            }
            self.keys[hole] = last_key;
            self.events[hole] = last_event;
        }
        let time = key_time(key);
        self.now = time;
        self.pops += 1;
        Some((time, event))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_cycles(30), 3);
        q.schedule(SimTime::from_cycles(10), 1);
        q.schedule(SimTime::from_cycles(20), 2);
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, vec![1, 2, 3]);
    }

    #[test]
    fn equal_times_are_fifo() {
        let mut q = EventQueue::new();
        let t = SimTime::from_cycles(5);
        for i in 0..100 {
            q.schedule(t, i);
        }
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn interleaved_schedule_and_pop_stay_ordered() {
        // Exercise the 4-ary sift paths with a deterministic shuffle.
        let mut q = EventQueue::new();
        let mut x: u64 = 0x9e3779b97f4a7c15;
        for _ in 0..500 {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            q.schedule(SimTime::from_cycles(x % 10_000), x);
        }
        let mut popped = Vec::new();
        for _ in 0..250 {
            popped.push(q.pop().unwrap().0.cycles());
        }
        // Everything scheduled from here on lands at/after `now`.
        for i in 0..250u64 {
            q.schedule(SimTime::from_cycles(q.now().cycles() + i * 7), i);
        }
        while let Some((t, _)) = q.pop() {
            popped.push(t.cycles());
        }
        assert_eq!(popped.len(), 750);
        assert!(popped.windows(2).all(|w| w[0] <= w[1]), "pops out of order");
    }

    #[test]
    fn clock_advances_with_pops() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_cycles(7), ());
        assert_eq!(q.now(), SimTime::ZERO);
        q.pop();
        assert_eq!(q.now(), SimTime::from_cycles(7));
    }

    #[test]
    fn schedule_in_is_relative_to_now() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_cycles(10), "a");
        q.pop();
        q.schedule_in(5, "b");
        assert_eq!(q.peek_time(), Some(SimTime::from_cycles(15)));
    }

    #[test]
    #[cfg(not(debug_assertions))]
    fn past_schedules_are_counted_in_release() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_cycles(10), "a");
        q.pop();
        assert_eq!(q.past_schedules(), 0);
        q.schedule(SimTime::from_cycles(3), "late");
        assert_eq!(q.past_schedules(), 1);
        // The clamped event still delivers at the current time.
        assert_eq!(q.pop().unwrap().0, SimTime::from_cycles(10));
    }

    #[test]
    fn on_time_schedules_do_not_count() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_cycles(5), ());
        q.pop();
        q.schedule(SimTime::from_cycles(5), ());
        assert_eq!(q.past_schedules(), 0);
    }

    #[test]
    fn len_and_empty_track_contents() {
        let mut q = EventQueue::new();
        assert!(q.is_empty());
        q.schedule(SimTime::from_cycles(1), ());
        assert_eq!(q.len(), 1);
        q.pop();
        assert!(q.is_empty());
    }

    #[test]
    fn pops_count_deliveries() {
        let mut q = EventQueue::new();
        assert_eq!(q.pops(), 0);
        q.schedule(SimTime::from_cycles(1), ());
        q.schedule(SimTime::from_cycles(2), ());
        q.pop();
        assert_eq!(q.pops(), 1);
        q.pop();
        assert!(q.pop().is_none());
        assert_eq!(q.pops(), 2, "empty pops do not count");
    }
}
