//! FIFO resource servers: the building blocks for every contended resource
//! in the platform model.

use crate::SimTime;

/// The outcome of a server request: when the request begins service and
/// when it completes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Grant {
    /// When the resource starts serving this request.
    pub start: SimTime,
    /// When the request's last byte (or slot) completes.
    pub end: SimTime,
}

impl Grant {
    /// Queuing delay: cycles spent waiting before service began.
    pub fn wait(&self, requested_at: SimTime) -> u64 {
        self.start.saturating_since(requested_at)
    }

    /// Service duration in cycles.
    pub fn service(&self) -> u64 {
        self.end - self.start
    }
}

/// A FIFO bandwidth resource with a fixed bytes-per-cycle capacity.
///
/// Models memory-bandwidth partitions, buses, per-SM drive capacity, link
/// serialization, SRAM ports, and ALU throughput. Each [`request`] occupies
/// the server for `bytes / capacity` cycles starting no earlier than the
/// completion of the previous request; the returned [`Grant`] reports both
/// the queuing delay and the completion time.
///
/// The server accumulates fractional cycles so that long streams of small
/// requests do not lose bandwidth to per-request rounding.
///
/// ```
/// use ace_simcore::{BandwidthServer, SimTime};
/// let mut s = BandwidthServer::new(64.0); // 64 bytes/cycle
/// let g = s.request(SimTime::ZERO, 640);
/// assert_eq!(g.end.cycles(), 10);
/// ```
///
/// [`request`]: BandwidthServer::request
#[derive(Debug, Clone)]
pub struct BandwidthServer {
    bytes_per_cycle: f64,
    /// Completion time of the most recent request, with sub-cycle precision.
    busy_until: f64,
    busy_cycles: f64,
    bytes_served: u64,
}

impl BandwidthServer {
    /// Creates a server with the given capacity in bytes per cycle.
    ///
    /// # Panics
    ///
    /// Panics if `bytes_per_cycle` is not strictly positive and finite.
    pub fn new(bytes_per_cycle: f64) -> Self {
        assert!(
            bytes_per_cycle.is_finite() && bytes_per_cycle > 0.0,
            "server capacity must be positive"
        );
        BandwidthServer {
            bytes_per_cycle,
            busy_until: 0.0,
            busy_cycles: 0.0,
            bytes_served: 0,
        }
    }

    /// The configured capacity in bytes per cycle.
    pub fn capacity(&self) -> f64 {
        self.bytes_per_cycle
    }

    /// Replaces the server capacity (used by design-space sweeps). Pending
    /// history is kept.
    ///
    /// # Panics
    ///
    /// Panics if `bytes_per_cycle` is not strictly positive and finite.
    pub fn set_capacity(&mut self, bytes_per_cycle: f64) {
        assert!(
            bytes_per_cycle.is_finite() && bytes_per_cycle > 0.0,
            "server capacity must be positive"
        );
        self.bytes_per_cycle = bytes_per_cycle;
    }

    /// Requests service for `bytes` at time `now`, returning when the
    /// transfer starts and ends. Zero-byte requests complete immediately
    /// without occupying the server.
    pub fn request(&mut self, now: SimTime, bytes: u64) -> Grant {
        if bytes == 0 {
            return Grant {
                start: now,
                end: now,
            };
        }
        let start_f = self.busy_until.max(now.cycles() as f64);
        // A true division, not a precomputed-reciprocal multiply: the
        // extra rounding of `bytes * (1/capacity)` lands above the exact
        // quotient at exact-cycle points (e.g. 26606 B at 20.08 B/cycle),
        // padding transfers with a spurious cycle and compounding through
        // `busy_until`.
        let duration = bytes as f64 / self.bytes_per_cycle;
        let end_f = start_f + duration;
        self.busy_until = end_f;
        self.busy_cycles += duration;
        self.bytes_served += bytes;
        Grant {
            start: SimTime::from_cycles(start_f.floor() as u64),
            end: SimTime::from_cycles(end_f.ceil() as u64),
        }
    }

    /// The earliest time a new request issued at `now` would start service.
    pub fn next_free(&self, now: SimTime) -> SimTime {
        SimTime::from_cycles((self.busy_until.max(now.cycles() as f64)).ceil() as u64)
    }

    /// Whether the server would make a request issued at `now` wait.
    pub fn is_busy_at(&self, now: SimTime) -> bool {
        self.busy_until > now.cycles() as f64
    }

    /// Total bytes served so far.
    pub fn bytes_served(&self) -> u64 {
        self.bytes_served
    }

    /// Cycles spent actively serving requests (not waiting).
    pub fn busy_cycles(&self) -> f64 {
        self.busy_cycles
    }

    /// Fraction of the interval `[0, horizon]` this server spent busy.
    pub fn utilization(&self, horizon: SimTime) -> f64 {
        if horizon.cycles() == 0 {
            return 0.0;
        }
        (self.busy_cycles / horizon.cycles() as f64).min(1.0)
    }
}

/// A FIFO resource with `k` identical slots, each serving one request at a
/// time for a caller-specified duration.
///
/// Models ACE's pool of programmable FSMs (each FSM owns one in-flight chunk
/// step at a time) and the DMA engines. Requests are dispatched to the
/// earliest-free slot.
///
/// ```
/// use ace_simcore::{SlotServer, SimTime};
/// let mut fsm_pool = SlotServer::new(2);
/// let a = fsm_pool.request(SimTime::ZERO, 100);
/// let b = fsm_pool.request(SimTime::ZERO, 100);
/// let c = fsm_pool.request(SimTime::ZERO, 100);
/// assert_eq!(a.start, SimTime::ZERO);
/// assert_eq!(b.start, SimTime::ZERO);
/// // Third request waits for a slot.
/// assert_eq!(c.start.cycles(), 100);
/// ```
#[derive(Debug, Clone)]
pub struct SlotServer {
    slots: Vec<SimTime>,
    busy_cycles: u64,
    requests: u64,
}

impl SlotServer {
    /// Creates a server with `k` parallel slots.
    ///
    /// # Panics
    ///
    /// Panics if `k` is zero.
    pub fn new(k: usize) -> Self {
        assert!(k > 0, "slot server needs at least one slot");
        SlotServer {
            slots: vec![SimTime::ZERO; k],
            busy_cycles: 0,
            requests: 0,
        }
    }

    /// Number of slots.
    pub fn slots(&self) -> usize {
        self.slots.len()
    }

    /// Requests one slot for `duration` cycles starting no earlier than
    /// `now`. Returns the grant for the earliest-available slot.
    pub fn request(&mut self, now: SimTime, duration: u64) -> Grant {
        // Manual scan: the pool is tiny (FSM groups hold ~4 slots) and
        // this runs once per chunk step.
        let mut idx = 0;
        let mut free_at = self.slots[0];
        for (i, &t) in self.slots.iter().enumerate().skip(1) {
            if t < free_at {
                idx = i;
                free_at = t;
            }
        }
        let start = free_at.max(now);
        let end = start + duration;
        self.slots[idx] = end;
        self.busy_cycles += duration;
        self.requests += 1;
        Grant { start, end }
    }

    /// The earliest time any slot is free for a request issued at `now`.
    pub fn next_free(&self, now: SimTime) -> SimTime {
        self.slots
            .iter()
            .copied()
            .min()
            .expect("slot server has at least one slot")
            .max(now)
    }

    /// Number of requests served so far.
    pub fn requests(&self) -> u64 {
        self.requests
    }

    /// Aggregate slot-busy cycles across all slots.
    pub fn busy_cycles(&self) -> u64 {
        self.busy_cycles
    }

    /// Average per-slot utilization over `[0, horizon]`.
    pub fn utilization(&self, horizon: SimTime) -> f64 {
        if horizon.cycles() == 0 {
            return 0.0;
        }
        (self.busy_cycles as f64 / (horizon.cycles() as f64 * self.slots.len() as f64)).min(1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bandwidth_server_serializes_fifo() {
        let mut s = BandwidthServer::new(10.0);
        let a = s.request(SimTime::ZERO, 100); // 10 cycles
        let b = s.request(SimTime::ZERO, 100);
        assert_eq!(a.start, SimTime::ZERO);
        assert_eq!(a.end.cycles(), 10);
        assert_eq!(b.start.cycles(), 10);
        assert_eq!(b.end.cycles(), 20);
    }

    #[test]
    fn bandwidth_server_idles_until_request_time() {
        let mut s = BandwidthServer::new(10.0);
        let g = s.request(SimTime::from_cycles(50), 100);
        assert_eq!(g.start.cycles(), 50);
        assert_eq!(g.end.cycles(), 60);
        assert!(!s.is_busy_at(SimTime::from_cycles(61)));
        assert!(s.is_busy_at(SimTime::from_cycles(55)));
    }

    #[test]
    fn bandwidth_server_fractional_cycles_accumulate() {
        let mut s = BandwidthServer::new(3.0);
        // 100 requests of 1 byte each = 100/3 cycles total, not 100 cycles.
        let mut last = Grant {
            start: SimTime::ZERO,
            end: SimTime::ZERO,
        };
        for _ in 0..100 {
            last = s.request(SimTime::ZERO, 1);
        }
        assert_eq!(last.end.cycles(), (100.0f64 / 3.0).ceil() as u64);
    }

    #[test]
    fn bandwidth_server_zero_bytes_is_free() {
        let mut s = BandwidthServer::new(1.0);
        s.request(SimTime::ZERO, 10);
        let g = s.request(SimTime::ZERO, 0);
        assert_eq!(g.start, SimTime::ZERO);
        assert_eq!(g.end, SimTime::ZERO);
    }

    #[test]
    fn bandwidth_server_tracks_accounting() {
        let mut s = BandwidthServer::new(10.0);
        s.request(SimTime::ZERO, 100);
        s.request(SimTime::ZERO, 50);
        assert_eq!(s.bytes_served(), 150);
        assert!((s.busy_cycles() - 15.0).abs() < 1e-9);
        assert!((s.utilization(SimTime::from_cycles(30)) - 0.5).abs() < 1e-9);
    }

    #[test]
    fn set_capacity_changes_future_service() {
        let mut s = BandwidthServer::new(10.0);
        let slow = s.request(SimTime::ZERO, 100);
        s.set_capacity(100.0);
        let fast = s.request(slow.end, 100);
        assert!(fast.service() < slow.service());
        assert_eq!(s.capacity(), 100.0);
    }

    #[test]
    fn grant_reports_wait_and_service() {
        let mut s = BandwidthServer::new(10.0);
        s.request(SimTime::ZERO, 100);
        let g = s.request(SimTime::ZERO, 100);
        assert_eq!(g.wait(SimTime::ZERO), 10);
        assert_eq!(g.service(), 10);
    }

    #[test]
    fn slot_server_parallelism() {
        let mut s = SlotServer::new(3);
        let grants: Vec<Grant> = (0..6).map(|_| s.request(SimTime::ZERO, 10)).collect();
        assert!(grants[..3].iter().all(|g| g.start == SimTime::ZERO));
        assert!(grants[3..].iter().all(|g| g.start.cycles() == 10));
        assert_eq!(s.requests(), 6);
    }

    #[test]
    fn slot_server_next_free() {
        let mut s = SlotServer::new(1);
        s.request(SimTime::ZERO, 10);
        assert_eq!(s.next_free(SimTime::ZERO).cycles(), 10);
        assert_eq!(s.next_free(SimTime::from_cycles(20)).cycles(), 20);
    }

    #[test]
    fn slot_server_utilization() {
        let mut s = SlotServer::new(2);
        s.request(SimTime::ZERO, 10);
        assert!((s.utilization(SimTime::from_cycles(10)) - 0.5).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "at least one slot")]
    fn slot_server_rejects_zero_slots() {
        let _ = SlotServer::new(0);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn bandwidth_server_rejects_zero_capacity() {
        let _ = BandwidthServer::new(0.0);
    }
}
