//! Statistics recorders: bucketed time series, busy-time trackers, rate
//! meters, and scalar summaries.

use crate::SimTime;

/// A time series that accumulates samples into fixed-width time buckets.
///
/// Figure 10 in the paper reports compute/network utilization averaged over
/// 1 K-cycle windows; `TimeSeries` reproduces that bucketing.
///
/// ```
/// use ace_simcore::{SimTime, TimeSeries};
/// let mut ts = TimeSeries::new(1000);
/// ts.add(SimTime::from_cycles(100), 1.0);
/// ts.add(SimTime::from_cycles(900), 1.0);
/// ts.add(SimTime::from_cycles(1500), 4.0);
/// assert_eq!(ts.bucket_totals(), vec![2.0, 4.0]);
/// ```
#[derive(Debug, Clone)]
pub struct TimeSeries {
    bucket_cycles: u64,
    buckets: Vec<f64>,
}

impl TimeSeries {
    /// Creates a series with the given bucket width in cycles.
    ///
    /// # Panics
    ///
    /// Panics if `bucket_cycles` is zero.
    pub fn new(bucket_cycles: u64) -> Self {
        assert!(bucket_cycles > 0, "bucket width must be positive");
        TimeSeries {
            bucket_cycles,
            buckets: Vec::new(),
        }
    }

    /// Bucket width in cycles.
    pub fn bucket_cycles(&self) -> u64 {
        self.bucket_cycles
    }

    /// Adds `value` to the bucket containing time `at`.
    pub fn add(&mut self, at: SimTime, value: f64) {
        let idx = (at.cycles() / self.bucket_cycles) as usize;
        if idx >= self.buckets.len() {
            self.buckets.resize(idx + 1, 0.0);
        }
        self.buckets[idx] += value;
    }

    /// Spreads `value` uniformly over the interval `[start, end)`, crediting
    /// each bucket in proportion to its overlap with the interval.
    ///
    /// A zero-width interval carries no time and therefore contributes
    /// nothing. The final segment receives `value` minus everything already
    /// credited, so the per-bucket contributions sum to `value` *exactly*
    /// instead of drifting by f64 rounding.
    pub fn add_interval(&mut self, start: SimTime, end: SimTime, value: f64) {
        if end <= start {
            return;
        }
        let total = (end - start) as f64;
        let mut emitted = 0.0;
        let mut cursor = start.cycles();
        while cursor < end.cycles() {
            let bucket_end = (cursor / self.bucket_cycles + 1) * self.bucket_cycles;
            let seg_end = bucket_end.min(end.cycles());
            let credit = if seg_end == end.cycles() {
                // Last segment: close the books exactly.
                value - emitted
            } else {
                value * ((seg_end - cursor) as f64 / total)
            };
            emitted += credit;
            self.add(SimTime::from_cycles(cursor), credit);
            cursor = seg_end;
        }
    }

    /// Credits each bucket overlapping `[start, end)` with its overlap
    /// width in cycles — the busy-time accounting used by link-utilization
    /// meters. Equivalent to `add_interval(start, end, (end - start) as
    /// f64)` but with pure integer segment arithmetic on the hot path.
    pub fn add_busy(&mut self, start: SimTime, end: SimTime) {
        let mut cursor = BucketCursor::default();
        self.add_busy_at(&mut cursor, start, end);
    }

    /// Like [`add_busy`](TimeSeries::add_busy), but caches the last bucket
    /// written in `cur`. For a near-monotone interval stream (e.g. one
    /// FIFO link's grants, whose starts never move backwards by more than
    /// the sub-cycle rounding of the previous end) the common same-bucket
    /// case then needs no division at all, which matters when this runs
    /// once per simulated message. The cursor is purely a cache: any
    /// stream stays correct, a miss just pays the division.
    pub fn add_busy_at(&mut self, cur: &mut BucketCursor, start: SimTime, end: SimTime) {
        if end <= start {
            return;
        }
        let mut s = start.cycles();
        let e = end.cycles();
        while s < e {
            if s >= cur.end || s + self.bucket_cycles < cur.end {
                // Outside the cached bucket (or cold cursor): locate the
                // bucket by division once.
                cur.idx = s / self.bucket_cycles;
                cur.end = (cur.idx + 1) * self.bucket_cycles;
            }
            if cur.idx as usize >= self.buckets.len() {
                self.buckets.resize(cur.idx as usize + 1, 0.0);
            }
            let seg = e.min(cur.end);
            self.buckets[cur.idx as usize] += (seg - s) as f64;
            if seg == cur.end {
                // Roll to the next bucket without dividing.
                cur.idx += 1;
                cur.end += self.bucket_cycles;
            }
            s = seg;
        }
    }

    /// Per-bucket totals, one entry per bucket from time zero.
    pub fn bucket_totals(&self) -> Vec<f64> {
        self.buckets.clone()
    }

    /// Per-bucket averages assuming `value` entries are per-cycle rates.
    pub fn bucket_means(&self) -> Vec<f64> {
        self.buckets
            .iter()
            .map(|v| v / self.bucket_cycles as f64)
            .collect()
    }

    /// Number of buckets recorded.
    pub fn len(&self) -> usize {
        self.buckets.len()
    }

    /// Whether no samples have been recorded.
    pub fn is_empty(&self) -> bool {
        self.buckets.is_empty()
    }

    /// Sum across all buckets.
    pub fn total(&self) -> f64 {
        self.buckets.iter().sum()
    }

    /// Folds another series into this one bucket-by-bucket, extending to
    /// the longer of the two. Both series must share a bucket width.
    ///
    /// For busy-time series (integer-valued buckets well below 2^53) the
    /// result is exact, so a simulation that metered disjoint link
    /// partitions separately merges to the byte-identical totals a serial
    /// run would have produced.
    ///
    /// # Panics
    ///
    /// Panics if the bucket widths differ.
    pub fn merge(&mut self, other: &TimeSeries) {
        assert_eq!(
            self.bucket_cycles, other.bucket_cycles,
            "merging series with different bucket widths"
        );
        if other.buckets.len() > self.buckets.len() {
            self.buckets.resize(other.buckets.len(), 0.0);
        }
        for (b, v) in self.buckets.iter_mut().zip(&other.buckets) {
            *b += v;
        }
    }
}

/// Remembers the last [`TimeSeries`] bucket written by one monotone
/// interval stream, so consecutive writes into the same bucket skip the
/// index division (see [`TimeSeries::add_busy_at`]).
#[derive(Debug, Clone, Copy, Default)]
pub struct BucketCursor {
    /// Cached bucket index.
    idx: u64,
    /// Exclusive cycle bound of the cached bucket (0 = cold).
    end: u64,
}

/// Tracks the busy fraction of a resource by accumulating disjoint busy
/// intervals. Overlapping intervals are merged at insertion cost O(1) by
/// clamping to the furthest end seen, so it is exact for the FIFO servers
/// whose busy intervals never overlap.
#[derive(Debug, Clone, Default)]
pub struct UtilizationTracker {
    busy: u64,
    frontier: SimTime,
    last_end: SimTime,
}

impl UtilizationTracker {
    /// Creates an empty tracker.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records a busy interval `[start, end)`. Portions overlapping earlier
    /// intervals are not double-counted.
    pub fn record(&mut self, start: SimTime, end: SimTime) {
        let start = start.max(self.frontier);
        if end > start {
            self.busy += end - start;
            self.frontier = end;
        }
        self.last_end = self.last_end.max(end);
    }

    /// Total busy cycles recorded.
    pub fn busy_cycles(&self) -> u64 {
        self.busy
    }

    /// End of the latest interval seen.
    pub fn horizon(&self) -> SimTime {
        self.last_end
    }

    /// Busy fraction over `[0, horizon]`.
    pub fn utilization(&self, horizon: SimTime) -> f64 {
        if horizon.cycles() == 0 {
            return 0.0;
        }
        (self.busy as f64 / horizon.cycles() as f64).min(1.0)
    }
}

/// Measures achieved throughput: bytes moved over an observation window.
#[derive(Debug, Clone, Default)]
pub struct RateMeter {
    bytes: u64,
    first: Option<SimTime>,
    last: SimTime,
}

impl RateMeter {
    /// Creates an empty meter.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records `bytes` completing at time `at`.
    pub fn record(&mut self, at: SimTime, bytes: u64) {
        self.bytes += bytes;
        if self.first.is_none() {
            self.first = Some(at);
        }
        self.last = self.last.max(at);
    }

    /// Total bytes recorded.
    pub fn bytes(&self) -> u64 {
        self.bytes
    }

    /// Achieved bytes/cycle over `[0, end-of-window]`.
    pub fn rate(&self) -> f64 {
        if self.last.cycles() == 0 {
            return 0.0;
        }
        self.bytes as f64 / self.last.cycles() as f64
    }

    /// End of the observation window.
    pub fn window_end(&self) -> SimTime {
        self.last
    }

    /// Folds another meter's observations into this one: byte counts add,
    /// the observation window widens to cover both. Merging partition-
    /// local meters in any order reproduces the serial meter exactly.
    pub fn merge(&mut self, other: &RateMeter) {
        self.bytes += other.bytes;
        self.first = match (self.first, other.first) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (a, b) => a.or(b),
        };
        self.last = self.last.max(other.last);
    }
}

/// Running scalar summary: count, mean, min, max.
///
/// ```
/// use ace_simcore::Summary;
/// let mut s = Summary::new();
/// for v in [1.0, 2.0, 3.0] { s.add(v); }
/// assert_eq!(s.mean(), 2.0);
/// assert_eq!(s.min(), 1.0);
/// assert_eq!(s.max(), 3.0);
/// ```
#[derive(Debug, Clone, Default)]
pub struct Summary {
    count: u64,
    sum: f64,
    min: f64,
    max: f64,
}

impl Summary {
    /// Creates an empty summary.
    pub fn new() -> Self {
        Summary {
            count: 0,
            sum: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Adds a sample.
    pub fn add(&mut self, v: f64) {
        self.count += 1;
        self.sum += v;
        self.min = self.min.min(v);
        self.max = self.max.max(v);
    }

    /// Number of samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Mean of samples, or 0 if empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }

    /// Minimum sample.
    ///
    /// # Panics
    ///
    /// Panics if the summary is empty.
    pub fn min(&self) -> f64 {
        assert!(self.count > 0, "empty summary has no min");
        self.min
    }

    /// Maximum sample.
    ///
    /// # Panics
    ///
    /// Panics if the summary is empty.
    pub fn max(&self) -> f64 {
        assert!(self.count > 0, "empty summary has no max");
        self.max
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn timeseries_buckets_samples() {
        let mut ts = TimeSeries::new(10);
        ts.add(SimTime::from_cycles(0), 1.0);
        ts.add(SimTime::from_cycles(9), 1.0);
        ts.add(SimTime::from_cycles(10), 5.0);
        assert_eq!(ts.bucket_totals(), vec![2.0, 5.0]);
        assert_eq!(ts.total(), 7.0);
        assert_eq!(ts.len(), 2);
    }

    #[test]
    fn timeseries_interval_split_proportionally() {
        let mut ts = TimeSeries::new(10);
        // Interval [5, 25) = 20 cycles: 5 in bucket 0, 10 in bucket 1, 5 in bucket 2.
        ts.add_interval(SimTime::from_cycles(5), SimTime::from_cycles(25), 20.0);
        let t = ts.bucket_totals();
        assert_eq!(t, vec![5.0, 10.0, 5.0]);
    }

    #[test]
    fn timeseries_degenerate_interval_contributes_nothing() {
        // A zero-width interval carries no time: crediting the full value
        // to `[start, start)` would invent mass out of nothing.
        let mut ts = TimeSeries::new(10);
        ts.add_interval(SimTime::from_cycles(3), SimTime::from_cycles(3), 2.0);
        assert!(ts.is_empty());
        ts.add_interval(SimTime::from_cycles(9), SimTime::from_cycles(3), 2.0);
        assert!(ts.is_empty());
    }

    #[test]
    fn timeseries_interval_mass_is_conserved_exactly() {
        // The per-bucket contributions must sum to the value *exactly* —
        // awkward widths whose per-segment fractions are not representable
        // in binary would otherwise drift by f64 rounding.
        let mut ts = TimeSeries::new(7);
        let value = 0.1 + 0.2; // deliberately non-representable
        ts.add_interval(SimTime::from_cycles(3), SimTime::from_cycles(46), value);
        assert_eq!(ts.total(), value, "residual must close the books");
        let mut ts = TimeSeries::new(1000);
        let mut expected = 0.0;
        for i in 0..100u64 {
            let v = 1.0 / (i + 3) as f64;
            ts.add_interval(
                SimTime::from_cycles(i * 137),
                SimTime::from_cycles(i * 137 + 2501),
                v,
            );
            expected += v;
        }
        assert!(
            (ts.total() - expected).abs() < 1e-12 * expected,
            "accumulated drift: {} vs {}",
            ts.total(),
            expected
        );
    }

    #[test]
    fn timeseries_add_busy_matches_add_interval() {
        let mut a = TimeSeries::new(10);
        let mut b = TimeSeries::new(10);
        for (s, e) in [(5u64, 25u64), (25, 26), (99, 131), (7, 7)] {
            a.add_busy(SimTime::from_cycles(s), SimTime::from_cycles(e));
            b.add_interval(
                SimTime::from_cycles(s),
                SimTime::from_cycles(e),
                e.saturating_sub(s) as f64,
            );
        }
        assert_eq!(a.bucket_totals(), b.bucket_totals());
    }

    #[test]
    fn timeseries_means_divide_by_width() {
        let mut ts = TimeSeries::new(4);
        ts.add(SimTime::from_cycles(0), 2.0);
        assert_eq!(ts.bucket_means(), vec![0.5]);
    }

    #[test]
    fn utilization_tracker_merges_overlap() {
        let mut u = UtilizationTracker::new();
        u.record(SimTime::from_cycles(0), SimTime::from_cycles(10));
        u.record(SimTime::from_cycles(5), SimTime::from_cycles(15));
        assert_eq!(u.busy_cycles(), 15);
        assert!((u.utilization(SimTime::from_cycles(30)) - 0.5).abs() < 1e-9);
        assert_eq!(u.horizon(), SimTime::from_cycles(15));
    }

    #[test]
    fn utilization_tracker_ignores_contained_intervals() {
        let mut u = UtilizationTracker::new();
        u.record(SimTime::from_cycles(0), SimTime::from_cycles(100));
        u.record(SimTime::from_cycles(10), SimTime::from_cycles(20));
        assert_eq!(u.busy_cycles(), 100);
    }

    #[test]
    fn rate_meter_reports_throughput() {
        let mut m = RateMeter::new();
        m.record(SimTime::from_cycles(50), 100);
        m.record(SimTime::from_cycles(100), 100);
        assert_eq!(m.bytes(), 200);
        assert!((m.rate() - 2.0).abs() < 1e-9);
        assert_eq!(m.window_end(), SimTime::from_cycles(100));
    }

    #[test]
    fn timeseries_merge_matches_interleaved_recording() {
        // Record one interval stream into a single series, and the same
        // stream partitioned across two series that are then merged.
        let spans = [(5u64, 25u64), (30, 31), (99, 131), (200, 260)];
        let mut whole = TimeSeries::new(10);
        let mut a = TimeSeries::new(10);
        let mut b = TimeSeries::new(10);
        for (i, &(s, e)) in spans.iter().enumerate() {
            let (s, e) = (SimTime::from_cycles(s), SimTime::from_cycles(e));
            whole.add_busy(s, e);
            if i % 2 == 0 { &mut a } else { &mut b }.add_busy(s, e);
        }
        a.merge(&b);
        assert_eq!(a.bucket_totals(), whole.bucket_totals());
        assert_eq!(a.len(), whole.len());
        // Merging an empty series is a no-op.
        a.merge(&TimeSeries::new(10));
        assert_eq!(a.bucket_totals(), whole.bucket_totals());
    }

    #[test]
    #[should_panic(expected = "different bucket widths")]
    fn timeseries_merge_rejects_mismatched_widths() {
        TimeSeries::new(10).merge(&TimeSeries::new(20));
    }

    #[test]
    fn rate_meter_merge_combines_windows() {
        let mut a = RateMeter::new();
        a.record(SimTime::from_cycles(50), 100);
        let mut b = RateMeter::new();
        b.record(SimTime::from_cycles(10), 40);
        b.record(SimTime::from_cycles(200), 60);
        a.merge(&b);
        assert_eq!(a.bytes(), 200);
        assert_eq!(a.window_end(), SimTime::from_cycles(200));
        assert!((a.rate() - 1.0).abs() < 1e-9);
        // Merging an empty meter changes nothing, in either direction.
        let mut empty = RateMeter::new();
        empty.merge(&a);
        assert_eq!(empty.bytes(), 200);
        a.merge(&RateMeter::new());
        assert_eq!(a.bytes(), 200);
    }

    #[test]
    fn empty_rate_meter_is_zero() {
        let m = RateMeter::new();
        assert_eq!(m.rate(), 0.0);
        assert_eq!(m.bytes(), 0);
    }

    #[test]
    fn summary_tracks_extremes() {
        let mut s = Summary::new();
        s.add(3.0);
        s.add(-1.0);
        assert_eq!(s.count(), 2);
        assert_eq!(s.mean(), 1.0);
        assert_eq!(s.min(), -1.0);
        assert_eq!(s.max(), 3.0);
    }

    #[test]
    fn empty_summary_mean_is_zero() {
        assert_eq!(Summary::new().mean(), 0.0);
    }
}
