//! The continuous-batching serving simulation.
//!
//! Requests arrive open-loop, queue FIFO, and are served in *rounds*: a
//! round folds one decode token per running request plus as many queued
//! prompts as the token budget admits into a single forward-only pipeline
//! pass over the model. Each round is lowered to a multi-timeline
//! [`Program`] — per-microbatch stage kernels chained by stage-boundary
//! send-recv activation transfers — and executed by the event-driven
//! executor (exact tier) or the α–β critical-path walker (analytic tier).
//! Rounds with the same token count run the same program, so durations
//! are memoized per run; a serving simulation with thousands of decode
//! rounds pays for only a handful of distinct simulations.

use std::collections::{HashMap, VecDeque};

use ace_collectives::CollectiveOp;
use ace_compute::{KernelDesc, NpuParams};
use ace_net::{NetworkParams, TopologySpec};
use ace_system::{
    analytic_program_run_with_conditions, ExecutorOptions, RunConditions, SystemConfig, TrainingSim,
};
use ace_trace::NullTracer;
use ace_workloads::{Parallelism, PipeSchedule, Program, TaskPhase, Workload};

use crate::spec::ServingSpec;

/// Which simulator executes each round.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ServingTier {
    /// The event-driven collective executor (cycle-exact).
    Exact,
    /// The closed-form α–β critical-path walk.
    Analytic,
}

/// Knobs of one [`simulate`] call that are not part of the point's
/// identity: results are byte-identical across `sim_threads` values, and
/// the tier is keyed separately by the sweep cache.
#[derive(Debug, Clone, Copy)]
pub struct ServingOptions {
    /// Simulation tier.
    pub tier: ServingTier,
    /// Event-loop workers per exact round simulation (0 or 1 = serial).
    pub sim_threads: usize,
}

impl Default for ServingOptions {
    fn default() -> ServingOptions {
        ServingOptions {
            tier: ServingTier::Exact,
            sim_threads: 1,
        }
    }
}

/// Per-request latency record, cycle-exact.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RequestRecord {
    /// Request index in arrival order.
    pub id: u32,
    /// Arrival instant, cycles.
    pub arrival_cycles: u64,
    /// Time to first token: prefill-round completion minus arrival.
    pub ttft_cycles: u64,
    /// End-to-end latency: last-decode-round completion minus arrival.
    pub e2e_cycles: u64,
}

/// The result of a serving simulation.
#[derive(Debug, Clone)]
pub struct ServingOutcome {
    /// One record per served request, in arrival order.
    pub requests: Vec<RequestRecord>,
    /// Completion instant of the last round, cycles.
    pub makespan_cycles: u64,
    /// Rounds executed (each one forward pipeline pass).
    pub rounds: u32,
    /// Distinct round programs actually simulated (the rest were served
    /// from the per-run duration memo).
    pub simulated_rounds: u32,
    /// Queue depth (arrived, not yet admitted) sampled at each round
    /// start: `(cycles, depth)`.
    pub queue_depth: Vec<(u64, u32)>,
    /// Compute-busy cycles summed over rounds.
    pub compute_cycles: u64,
    /// Exposed-communication cycles summed over rounds.
    pub exposed_cycles: u64,
    /// Per-node HBM communication traffic summed over rounds, bytes.
    pub mem_traffic_bytes: u64,
    /// Fabric bytes summed over rounds.
    pub network_bytes: u64,
    /// Events scheduled in the past and clamped (exact tier invariant
    /// counter; always 0 in a correct simulation).
    pub past_schedules: u64,
    /// NPU clock the cycle counts are against, Hz.
    pub freq_hz: f64,
}

/// The exact order statistic of `values` at percentile `p`: the smallest
/// element with at least `ceil(p/100 · n)` elements ≤ it. No
/// interpolation — the returned value is always one that actually
/// occurred.
fn percentile(sorted: &[u64], p: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let n = sorted.len();
    let rank = (p / 100.0 * n as f64).ceil() as usize;
    sorted[rank.clamp(1, n) - 1]
}

impl ServingOutcome {
    fn sorted(&self, f: impl Fn(&RequestRecord) -> u64) -> Vec<u64> {
        let mut v: Vec<u64> = self.requests.iter().map(f).collect();
        v.sort_unstable();
        v
    }

    /// Time-to-first-token percentile, microseconds (exact order
    /// statistic).
    pub fn ttft_percentile_us(&self, p: f64) -> f64 {
        percentile(&self.sorted(|r| r.ttft_cycles), p) as f64 / self.freq_hz * 1e6
    }

    /// End-to-end latency percentile, microseconds (exact order
    /// statistic).
    pub fn e2e_percentile_us(&self, p: f64) -> f64 {
        percentile(&self.sorted(|r| r.e2e_cycles), p) as f64 / self.freq_hz * 1e6
    }

    /// Completed requests per second of simulated time.
    pub fn goodput_rps(&self) -> f64 {
        if self.makespan_cycles == 0 {
            return 0.0;
        }
        self.requests.len() as f64 / (self.makespan_cycles as f64 / self.freq_hz)
    }

    /// Makespan in microseconds.
    pub fn makespan_us(&self) -> f64 {
        self.makespan_cycles as f64 / self.freq_hz * 1e6
    }
}

/// Per-stage cost model derived from the workload: fused forward kernels
/// for the contiguous layer partition `cut(s) = s·L/S`, plus the
/// activation bytes crossing each stage boundary (the boundary layer's
/// comm payload, like the training pipeline lowering).
///
/// Serving a tensor-parallel workload ([`Parallelism::Model`]) adds a
/// per-stage forward all-reduce — Megatron-style inference synchronizes
/// the stage's output activation across the tensor-parallel group, so
/// the payload is the stage's boundary-activation proxy (its last
/// layer's comm bytes, the same sizing the boundary transfer uses).
/// Data-parallel workloads keep their collectives in the skipped
/// backward pass and serve with send-recv boundaries only.
struct StageModel {
    fwd: Vec<KernelDesc>,
    boundary_bytes: Vec<u64>,
    /// Per-stage tensor-parallel all-reduce payload; all zero unless the
    /// workload is model-parallel.
    tp_bytes: Vec<u64>,
}

impl StageModel {
    fn new(workload: &Workload, stages: usize) -> Result<StageModel, String> {
        let layers = workload.layers();
        if layers.len() < stages {
            return Err(format!(
                "workload '{}' has {} layers; cannot split into {stages} pipeline stages",
                workload.name(),
                layers.len()
            ));
        }
        let tensor_parallel = workload.parallelism() == Parallelism::Model;
        let cut = |s: usize| s * layers.len() / stages;
        let mut fwd = Vec::with_capacity(stages);
        let mut boundary_bytes = Vec::with_capacity(stages.saturating_sub(1));
        let mut tp_bytes = Vec::with_capacity(stages);
        for s in 0..stages {
            let group = &layers[cut(s)..cut(s + 1)];
            let (mut flops, mut bytes) = (0.0, 0.0);
            for l in group {
                flops += l.fwd().flops();
                bytes += l.fwd().mem_bytes();
            }
            fwd.push(KernelDesc::new(format!("serve-stage{s}"), flops, bytes));
            let tp = group
                .last()
                .and_then(|l| l.comm())
                .map(|c| c.bytes)
                .unwrap_or(0);
            tp_bytes.push(if tensor_parallel { tp } else { 0 });
            if s + 1 < stages {
                let boundary = &layers[cut(s + 1) - 1];
                boundary_bytes.push(boundary.comm().map(|c| c.bytes).unwrap_or(0));
            }
        }
        Ok(StageModel {
            fwd,
            boundary_bytes,
            tp_bytes,
        })
    }

    /// Lowers one round over `tokens` tokens to a forward-only pipeline
    /// program. The workload's forward pass is calibrated to
    /// `prompt_tokens` tokens, so kernels and activation transfers scale
    /// by `tokens / prompt_tokens`, split across `microbatches`.
    fn round_program(&self, spec: &ServingSpec, tokens: u64) -> Program {
        let s_n = self.fwd.len();
        let m_n = spec.microbatches.max(1) as usize;
        let scale = tokens as f64 / spec.prompt_tokens as f64;
        let micro_scale = scale / m_n as f64;
        let mut p = Program::new(
            "serving-round",
            Parallelism::Pipeline {
                stages: s_n as u32,
                microbatches: m_n as u32,
                schedule: spec.schedule,
            },
            1,
        );
        let per_micro = |b: u64| {
            let round = (b as f64 * scale) as u64;
            round.div_ceil(m_n as u64).min(round).max(u64::from(b > 0))
        };
        let micro_bytes: Vec<u64> = self.boundary_bytes.iter().map(|&b| per_micro(b)).collect();
        let tp_micro: Vec<u64> = self.tp_bytes.iter().map(|&b| per_micro(b)).collect();
        // Stage-major emission keeps the schedule topological: stage s
        // only waits on stage s-1 transfers already scheduled.
        let mut xfer: Vec<Option<ace_workloads::TaskId>> = vec![None; m_n];
        for s in 0..s_n {
            for (m, slot) in xfer.iter_mut().enumerate() {
                let waits = match slot.take() {
                    Some(t) => vec![t],
                    None => Vec::new(),
                };
                let kernel = KernelDesc::new(
                    format!("serve-s{s}-m{m}"),
                    self.fwd[s].flops() * micro_scale,
                    self.fwd[s].mem_bytes() * micro_scale,
                );
                let c = p.add_compute_on(s, kernel, TaskPhase::Forward, 0, waits);
                // Tensor-parallel stages all-reduce their activations
                // before handing them to the next stage.
                let done = if tp_micro[s] > 0 {
                    p.add_collective_on(
                        s,
                        CollectiveOp::AllReduce,
                        tp_micro[s],
                        TaskPhase::Forward,
                        0,
                        vec![c],
                    )
                } else {
                    c
                };
                if s + 1 < s_n {
                    *slot = Some(p.add_collective_on(
                        s,
                        CollectiveOp::SendRecv,
                        micro_bytes[s],
                        TaskPhase::Forward,
                        0,
                        vec![done],
                    ));
                }
            }
        }
        p
    }
}

/// Lowers the cold-start prefill round of `spec` on `workload` — a single
/// admitted prompt, split across the spec's stages and microbatches — to
/// its forward-only pipeline [`Program`]. This is the representative
/// round tracing tools re-run with event recording enabled; the serving
/// loop itself synthesizes (and memoizes) one such program per distinct
/// round token count.
///
/// # Errors
///
/// Returns a message when the spec is inconsistent or the workload has
/// fewer layers than requested stages.
pub fn first_round_program(workload: &Workload, spec: &ServingSpec) -> Result<Program, String> {
    spec.validate()?;
    let stages = (spec.stages as usize).min(workload.layers().len()).max(1);
    let model = StageModel::new(workload, stages)?;
    Ok(model.round_program(spec, u64::from(spec.prompt_tokens)))
}

/// A request mid-service: decode rounds left until its last token.
struct Active {
    id: u32,
    remaining: u32,
}

/// Runs one serving simulation: `spec.requests` requests generated by
/// `spec.arrival` at `spec.rate_rps`, continuously batched onto
/// `workload` partitioned into `spec.stages` pipeline stages on
/// `topology` under `config`.
pub fn simulate(
    config: SystemConfig,
    workload: &Workload,
    topology: impl Into<TopologySpec>,
    spec: &ServingSpec,
    opts: &ServingOptions,
) -> Result<ServingOutcome, String> {
    simulate_with_conditions(
        config,
        workload,
        topology,
        spec,
        opts,
        &RunConditions::default(),
    )
}

/// [`simulate`] under explicit [`RunConditions`]: every round program
/// runs on the degraded fabric (faults resolved once, stragglers applied
/// per round program), so the outcome's TTFT/e2e percentiles answer
/// "does this topology hold its latency target with k failed links".
/// Conditions are part of a run's identity — they are a separate
/// parameter, not a [`ServingOptions`] knob, because options must never
/// change results.
pub fn simulate_with_conditions(
    config: SystemConfig,
    workload: &Workload,
    topology: impl Into<TopologySpec>,
    spec: &ServingSpec,
    opts: &ServingOptions,
    conditions: &RunConditions,
) -> Result<ServingOutcome, String> {
    spec.validate()?;
    let topology = topology.into();
    let freq = ace_simcore::npu_frequency();
    let hz = freq.hz();
    let stages = (spec.stages as usize).min(workload.layers().len()).max(1);
    let model = StageModel::new(workload, stages)?;
    let arrivals = spec
        .arrival
        .generate(spec.rate_rps, spec.seed, spec.requests as usize, hz)?;

    let mut outcome = ServingOutcome {
        requests: Vec::with_capacity(arrivals.len()),
        makespan_cycles: 0,
        rounds: 0,
        simulated_rounds: 0,
        queue_depth: Vec::new(),
        compute_cycles: 0,
        exposed_cycles: 0,
        mem_traffic_bytes: 0,
        network_bytes: 0,
        past_schedules: 0,
        freq_hz: hz,
    };

    // Round-duration memo: a round's program is a pure function of its
    // token count, so identical rounds (every steady-state decode round,
    // typically) simulate once.
    #[derive(Clone, Copy)]
    struct RoundCost {
        cycles: u64,
        compute: u64,
        exposed: u64,
        mem_traffic: u64,
        network: u64,
        past: u64,
    }
    let mut memo: HashMap<u64, RoundCost> = HashMap::new();
    let mut simulated = 0u32;
    let mut run_round = |tokens: u64| -> Result<RoundCost, String> {
        if let Some(cached) = memo.get(&tokens) {
            return Ok(*cached);
        }
        simulated += 1;
        let program = model.round_program(spec, tokens);
        debug_assert!(program.validate().is_ok());
        let cost = match opts.tier {
            ServingTier::Exact => {
                let report = TrainingSim::from_program_with_conditions(
                    config,
                    program,
                    topology,
                    NpuParams::paper_default(),
                    NetworkParams::paper_default(),
                    ExecutorOptions {
                        sim_threads: opts.sim_threads.max(1),
                        ..Default::default()
                    },
                    conditions,
                    NullTracer,
                )
                .map_err(|e| e.to_string())?
                .run();
                RoundCost {
                    cycles: report.total_cycles().max(1),
                    compute: report.compute_cycles(),
                    exposed: report.exposed_comm_cycles(),
                    mem_traffic: report.comm_mem_traffic_bytes(),
                    network: report.network_bytes(),
                    past: report.past_schedules(),
                }
            }
            ServingTier::Analytic => {
                let est =
                    analytic_program_run_with_conditions(config, &program, topology, conditions)
                        .map_err(|e| e.to_string())?;
                RoundCost {
                    cycles: (est.total_cycles.round() as u64).max(1),
                    compute: est.compute_cycles.round() as u64,
                    exposed: est.exposed_cycles.round() as u64,
                    mem_traffic: est.mem_traffic_bytes,
                    network: est.network_bytes,
                    past: 0,
                }
            }
        };
        memo.insert(tokens, cost);
        Ok(cost)
    };

    // 1F1B steady-state injection: a draining round holds stage 0 for
    // M/(M+S-1) of its duration (the forward-occupancy share), so the
    // next round can start that early; GPipe is a full barrier.
    let m = spec.microbatches.max(1) as u64;
    let s = stages as u64;
    let occupancy = |d: u64| (d * m).div_ceil(m + s - 1);

    let mut pending: VecDeque<(u32, u64)> = arrivals
        .iter()
        .enumerate()
        .map(|(i, &t)| (i as u32, t))
        .collect();
    let mut active: VecDeque<Active> = VecDeque::new();
    // ttft[i] is recorded at prefill completion; e2e at last decode.
    let mut ttft: Vec<u64> = vec![0; arrivals.len()];
    let mut prev_start = 0u64;
    let mut prev_occupancy = 0u64;
    let mut completion_frontier = 0u64;
    let mut now = 0u64;

    while !pending.is_empty() || !active.is_empty() {
        // The earliest instant work exists.
        let mut t = now;
        if active.is_empty() {
            if let Some(&(_, first)) = pending.front() {
                t = t.max(first);
            }
        }
        outcome
            .queue_depth
            .push((t, pending.iter().filter(|&&(_, a)| a <= t).count() as u32));

        // Form the batch: one decode token per running request, then
        // FIFO prompt admission under the token budget.
        let mut tokens = active.len() as u64;
        let mut admitted: Vec<(u32, u64)> = Vec::new();
        while let Some(&(id, arr)) = pending.front() {
            if arr > t || tokens + u64::from(spec.prompt_tokens) > u64::from(spec.token_budget) {
                break;
            }
            tokens += u64::from(spec.prompt_tokens);
            admitted.push((id, arr));
            pending.pop_front();
        }
        debug_assert!(tokens > 0, "rounds always carry at least one token");

        let cost = run_round(tokens)?;
        outcome.compute_cycles += cost.compute;
        outcome.exposed_cycles += cost.exposed;
        outcome.mem_traffic_bytes += cost.mem_traffic;
        outcome.network_bytes += cost.network;
        outcome.past_schedules += cost.past;

        // Place the round on the clock.
        let (start, completion) = match spec.schedule {
            PipeSchedule::GPipe => (t, t + cost.cycles),
            PipeSchedule::OneFOneB => {
                let start = t.max(prev_start + prev_occupancy);
                // Rounds retire in order: completion is monotone even
                // when a small round is injected behind a large one.
                (start, completion_frontier.max(start + cost.cycles))
            }
        };
        prev_start = start;
        prev_occupancy = occupancy(cost.cycles);
        completion_frontier = completion;
        outcome.rounds += 1;
        now = match spec.schedule {
            // Barrier: nothing new is admitted before the drain.
            PipeSchedule::GPipe => completion,
            // Injection: the next round may start once stage 0 frees.
            PipeSchedule::OneFOneB => start + prev_occupancy,
        };

        // Retire this round's tokens.
        for a in active.iter_mut() {
            a.remaining -= 1;
        }
        while let Some(front) = active.front() {
            if front.remaining > 0 {
                break;
            }
            let done = active.pop_front().unwrap();
            let arr = arrivals[done.id as usize];
            outcome.requests.push(RequestRecord {
                id: done.id,
                arrival_cycles: arr,
                ttft_cycles: ttft[done.id as usize],
                e2e_cycles: completion.saturating_sub(arr),
            });
        }
        for (id, arr) in admitted {
            let first = completion.saturating_sub(arr);
            ttft[id as usize] = first;
            if spec.decode_tokens == 0 {
                outcome.requests.push(RequestRecord {
                    id,
                    arrival_cycles: arr,
                    ttft_cycles: first,
                    e2e_cycles: first,
                });
            } else {
                active.push_back(Active {
                    id,
                    remaining: spec.decode_tokens,
                });
            }
        }
        outcome.makespan_cycles = outcome.makespan_cycles.max(completion);
    }

    outcome.simulated_rounds = simulated;
    outcome.requests.sort_unstable_by_key(|r| r.id);
    Ok(outcome)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arrival::ArrivalKind;
    use ace_net::TopologySpec;

    fn topo() -> TopologySpec {
        "4x4".parse().unwrap()
    }

    fn quick_spec() -> ServingSpec {
        ServingSpec {
            arrival: ArrivalKind::Poisson,
            rate_rps: 2000.0,
            requests: 12,
            seed: 7,
            prompt_tokens: 64,
            decode_tokens: 3,
            token_budget: 256,
            stages: 4,
            microbatches: 4,
            schedule: PipeSchedule::GPipe,
        }
    }

    #[test]
    fn exact_order_statistics_have_no_interpolation() {
        let v: Vec<u64> = vec![10, 20, 30, 40, 50, 60, 70, 80, 90, 100];
        assert_eq!(percentile(&v, 50.0), 50);
        assert_eq!(percentile(&v, 95.0), 100);
        assert_eq!(percentile(&v, 99.0), 100);
        assert_eq!(percentile(&v, 100.0), 100);
        assert_eq!(percentile(&[42], 50.0), 42);
        assert_eq!(percentile(&[], 99.0), 0);
        // p90 of 10 elements is exactly the 9th order statistic.
        assert_eq!(percentile(&v, 90.0), 90);
    }

    #[test]
    fn serving_is_deterministic_for_a_seed() {
        let spec = quick_spec();
        let w = Workload::transformer_lm();
        let a = simulate(
            SystemConfig::Ace,
            &w,
            topo(),
            &spec,
            &ServingOptions::default(),
        )
        .unwrap();
        let b = simulate(
            SystemConfig::Ace,
            &w,
            topo(),
            &spec,
            &ServingOptions::default(),
        )
        .unwrap();
        assert_eq!(a.requests, b.requests);
        assert_eq!(a.makespan_cycles, b.makespan_cycles);
        let c = simulate(
            SystemConfig::Ace,
            &w,
            topo(),
            &ServingSpec {
                seed: 8,
                ..quick_spec()
            },
            &ServingOptions::default(),
        )
        .unwrap();
        assert_ne!(a.requests, c.requests, "a different seed moves arrivals");
    }

    #[test]
    fn every_request_is_served_and_latencies_are_ordered() {
        let spec = quick_spec();
        let w = Workload::transformer_lm();
        let out = simulate(
            SystemConfig::Ace,
            &w,
            topo(),
            &spec,
            &ServingOptions::default(),
        )
        .unwrap();
        assert_eq!(out.requests.len(), spec.requests as usize);
        for r in &out.requests {
            assert!(r.ttft_cycles > 0);
            assert!(r.e2e_cycles >= r.ttft_cycles, "decode cannot precede TTFT");
        }
        assert!(out.rounds > spec.decode_tokens);
        assert!(out.simulated_rounds <= out.rounds);
        assert!(out.goodput_rps() > 0.0);
        assert!(out.ttft_percentile_us(50.0) <= out.ttft_percentile_us(99.0));
    }

    #[test]
    fn token_budget_caps_admission_per_round() {
        // Budget of exactly one prompt: requests prefill one at a time,
        // so there are at least `requests` prefill rounds.
        let spec = ServingSpec {
            token_budget: 70,
            decode_tokens: 0,
            ..quick_spec()
        };
        let w = Workload::transformer_lm();
        let out = simulate(
            SystemConfig::Ace,
            &w,
            topo(),
            &spec,
            &ServingOptions::default(),
        )
        .unwrap();
        assert!(out.rounds >= spec.requests);
        assert_eq!(out.requests.len(), spec.requests as usize);
    }

    #[test]
    fn injection_beats_the_barrier_under_load() {
        // One burst delivers every request at the same instant, so both
        // schedules see identical round compositions (admission is
        // budget-limited, not timing-limited) and 1F1B's steady-state
        // injection must not finish later than GPipe's barrier.
        let burst_spec = ServingSpec {
            arrival: ArrivalKind::Bursty { burst: 12 },
            ..quick_spec()
        };
        let w = Workload::transformer_lm();
        let gpipe = simulate(
            SystemConfig::Ace,
            &w,
            topo(),
            &burst_spec,
            &ServingOptions::default(),
        )
        .unwrap();
        let inject = simulate(
            SystemConfig::Ace,
            &w,
            topo(),
            &ServingSpec {
                schedule: PipeSchedule::OneFOneB,
                ..burst_spec
            },
            &ServingOptions::default(),
        )
        .unwrap();
        assert!(
            inject.makespan_cycles <= gpipe.makespan_cycles,
            "1f1b {} > gpipe {}",
            inject.makespan_cycles,
            gpipe.makespan_cycles
        );
    }

    #[test]
    fn analytic_tier_agrees_on_shape() {
        let spec = quick_spec();
        let w = Workload::transformer_lm();
        let exact = simulate(
            SystemConfig::Ace,
            &w,
            topo(),
            &spec,
            &ServingOptions::default(),
        )
        .unwrap();
        let analytic = simulate(
            SystemConfig::Ace,
            &w,
            topo(),
            &spec,
            &ServingOptions {
                tier: ServingTier::Analytic,
                sim_threads: 1,
            },
        )
        .unwrap();
        assert_eq!(analytic.requests.len(), exact.requests.len());
        assert!(analytic.makespan_cycles > 0);
        // The α–β estimate tracks the exact makespan within 2x.
        let ratio = analytic.makespan_cycles as f64 / exact.makespan_cycles as f64;
        assert!((0.5..2.0).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    fn sim_threads_do_not_change_the_outcome() {
        let spec = quick_spec();
        let w = Workload::transformer_lm();
        let serial = simulate(
            SystemConfig::Ace,
            &w,
            topo(),
            &spec,
            &ServingOptions::default(),
        )
        .unwrap();
        let parallel = simulate(
            SystemConfig::Ace,
            &w,
            topo(),
            &spec,
            &ServingOptions {
                tier: ServingTier::Exact,
                sim_threads: 4,
            },
        )
        .unwrap();
        assert_eq!(serial.requests, parallel.requests);
        assert_eq!(serial.makespan_cycles, parallel.makespan_cycles);
    }
}
