//! The serving-point specification: everything that identifies one
//! serving simulation besides the topology, system config and workload.

use std::fmt;
use std::hash::{Hash, Hasher};
use std::str::FromStr;

use ace_workloads::PipeSchedule;

use crate::arrival::ArrivalKind;

/// One serving simulation's parameters. Forms part of a sweep cache key,
/// so it has value equality ([`Eq`]/[`Hash`] treat the rate by bit
/// pattern) and a canonical single-cell spelling
/// ([`cache_key`](ServingSpec::cache_key) /
/// [`from_cache_key`](ServingSpec::from_cache_key)) free of `,` and
/// whitespace.
#[derive(Debug, Clone)]
pub struct ServingSpec {
    /// The arrival-process family.
    pub arrival: ArrivalKind,
    /// Mean arrival rate, requests per second (the load axis).
    pub rate_rps: f64,
    /// Number of requests to serve (the run length).
    pub requests: u32,
    /// Arrival-process seed.
    pub seed: u64,
    /// Prompt length in tokens; one prefill costs one forward pass of
    /// the workload at this token count.
    pub prompt_tokens: u32,
    /// Output tokens generated after the first (TTFT) token; each costs
    /// one decode token per round.
    pub decode_tokens: u32,
    /// Continuous-batching token budget per round: admitted prompts plus
    /// one decode token per running request must fit.
    pub token_budget: u32,
    /// Pipeline stages the model is partitioned into (1 = no pipeline).
    pub stages: u32,
    /// Microbatches each round is split into.
    pub microbatches: u32,
    /// Round-admission policy: [`PipeSchedule::GPipe`] drains each round
    /// before the next starts; [`PipeSchedule::OneFOneB`] injects the
    /// next round when stage 0 frees.
    pub schedule: PipeSchedule,
}

impl Default for ServingSpec {
    fn default() -> ServingSpec {
        ServingSpec {
            arrival: ArrivalKind::Poisson,
            rate_rps: 500.0,
            requests: 64,
            seed: 1,
            prompt_tokens: 128,
            decode_tokens: 8,
            token_budget: 512,
            stages: 4,
            microbatches: 8,
            schedule: PipeSchedule::GPipe,
        }
    }
}

impl PartialEq for ServingSpec {
    fn eq(&self, other: &Self) -> bool {
        self.arrival == other.arrival
            && self.rate_rps.to_bits() == other.rate_rps.to_bits()
            && self.requests == other.requests
            && self.seed == other.seed
            && self.prompt_tokens == other.prompt_tokens
            && self.decode_tokens == other.decode_tokens
            && self.token_budget == other.token_budget
            && self.stages == other.stages
            && self.microbatches == other.microbatches
            && self.schedule == other.schedule
    }
}

impl Eq for ServingSpec {}

impl Hash for ServingSpec {
    fn hash<H: Hasher>(&self, state: &mut H) {
        self.arrival.hash(state);
        self.rate_rps.to_bits().hash(state);
        self.requests.hash(state);
        self.seed.hash(state);
        self.prompt_tokens.hash(state);
        self.decode_tokens.hash(state);
        self.token_budget.hash(state);
        self.stages.hash(state);
        self.microbatches.hash(state);
        self.schedule.hash(state);
    }
}

impl ServingSpec {
    /// Checks internal consistency (positive rate, budget large enough
    /// to ever admit a prompt, at least one microbatch and stage).
    pub fn validate(&self) -> Result<(), String> {
        if !(self.rate_rps.is_finite() && self.rate_rps > 0.0) {
            return Err(format!(
                "arrival rate must be positive, got {}",
                self.rate_rps
            ));
        }
        if self.requests == 0 {
            return Err("requests must be at least 1".into());
        }
        if self.prompt_tokens == 0 {
            return Err("prompt_tokens must be at least 1".into());
        }
        if self.token_budget < self.prompt_tokens {
            return Err(format!(
                "token_budget {} cannot fit a single {}-token prompt",
                self.token_budget, self.prompt_tokens
            ));
        }
        if self.stages == 0 {
            return Err("stages must be at least 1".into());
        }
        if self.microbatches == 0 {
            return Err("microbatches must be at least 1".into());
        }
        Ok(())
    }

    /// The canonical single-cell spelling, `key=value` pairs joined with
    /// `;` — contains no `,` or whitespace, so it embeds in CSV cells
    /// and persisted cache rows. Trace arrivals carry their content
    /// fingerprint (`trace:<path>#<fp>`).
    pub fn cache_key(&self) -> String {
        format!(
            "arrival={};rate={};requests={};seed={};prompt={};decode={};budget={};\
             stages={};microbatches={};schedule={}",
            self.arrival.cache_key(),
            self.rate_rps,
            self.requests,
            self.seed,
            self.prompt_tokens,
            self.decode_tokens,
            self.token_budget,
            self.stages,
            self.microbatches,
            self.schedule,
        )
    }

    /// Parses the [`cache_key`](ServingSpec::cache_key) spelling. Trace
    /// arrivals are restored by identity (path + fingerprint), not
    /// re-read from disk.
    pub fn from_cache_key(s: &str) -> Result<ServingSpec, String> {
        let mut spec = ServingSpec::default();
        let mut seen = 0u32;
        for pair in s.split(';') {
            let (key, value) = pair
                .split_once('=')
                .ok_or_else(|| format!("serving spec entry '{pair}' is not key=value"))?;
            let uint = |what: &str| -> Result<u32, String> {
                value
                    .parse::<u32>()
                    .map_err(|_| format!("bad serving {what} '{value}'"))
            };
            match key {
                "arrival" => spec.arrival = ArrivalKind::from_cache_key(value)?,
                "rate" => {
                    spec.rate_rps = value
                        .parse::<f64>()
                        .map_err(|_| format!("bad serving rate '{value}'"))?
                }
                "requests" => spec.requests = uint("requests")?,
                "seed" => {
                    spec.seed = value
                        .parse::<u64>()
                        .map_err(|_| format!("bad serving seed '{value}'"))?
                }
                "prompt" => spec.prompt_tokens = uint("prompt")?,
                "decode" => spec.decode_tokens = uint("decode")?,
                "budget" => spec.token_budget = uint("budget")?,
                "stages" => spec.stages = uint("stages")?,
                "microbatches" => spec.microbatches = uint("microbatches")?,
                "schedule" => spec.schedule = value.parse::<PipeSchedule>()?,
                other => return Err(format!("unknown serving spec key '{other}'")),
            }
            seen += 1;
        }
        if seen != 10 {
            return Err(format!("serving spec '{s}' has {seen} of 10 fields"));
        }
        spec.validate()?;
        Ok(spec)
    }
}

impl fmt::Display for ServingSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.cache_key())
    }
}

impl FromStr for ServingSpec {
    type Err = String;

    fn from_str(s: &str) -> Result<ServingSpec, String> {
        ServingSpec::from_cache_key(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cache_key_round_trips() {
        let spec = ServingSpec {
            arrival: ArrivalKind::Bursty { burst: 8 },
            rate_rps: 750.5,
            requests: 96,
            seed: 42,
            prompt_tokens: 256,
            decode_tokens: 16,
            token_budget: 1024,
            stages: 8,
            microbatches: 4,
            schedule: PipeSchedule::OneFOneB,
        };
        let key = spec.cache_key();
        assert!(!key.contains(',') && !key.contains(' '), "{key}");
        let back = ServingSpec::from_cache_key(&key).unwrap();
        assert_eq!(back, spec);
        assert_eq!(back.cache_key(), key);
    }

    #[test]
    fn validation_catches_impossible_budgets() {
        let spec = ServingSpec {
            token_budget: 64,
            prompt_tokens: 128,
            ..ServingSpec::default()
        };
        let e = spec.validate().unwrap_err();
        assert!(e.contains("cannot fit"), "{e}");
        assert!(ServingSpec::default().validate().is_ok());
    }

    #[test]
    fn partial_keys_are_rejected() {
        let e = ServingSpec::from_cache_key("rate=100").unwrap_err();
        assert!(e.contains("of 10 fields"), "{e}");
        let e = ServingSpec::from_cache_key("nope").unwrap_err();
        assert!(e.contains("key=value"), "{e}");
    }
}
