//! Open-loop request arrival processes.
//!
//! Arrival processes are *shape* families — Poisson, bursty, or a
//! replayed trace — normalized so the mean arrival rate is a separate
//! sweep axis ([`ServingSpec::rate_rps`](crate::ServingSpec)). Every
//! process is a deterministic function of its seed: the same
//! (kind, rate, seed, n) always produces the same arrival instants, so
//! serving sweeps are reproducible and cacheable.

use std::fmt;
use std::hash::{Hash, Hasher};
use std::str::FromStr;
use std::sync::Arc;

/// SplitMix64: a tiny, high-quality, seedable PRNG (Steele et al.,
/// "Fast splittable pseudorandom number generators"). One u64 of state,
/// full-period, and — unlike the platform RNG — identical on every
/// machine, which the byte-identical-reports guarantee requires.
#[derive(Debug, Clone)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Seeds the generator. Any seed (including 0) is fine.
    pub fn new(seed: u64) -> SplitMix64 {
        SplitMix64 { state: seed }
    }

    /// The next raw 64-bit draw.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// A uniform draw in `[0, 1)` with 53 bits of precision.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// A replayed arrival trace: the file path plus its content fingerprint.
/// Two references denote the same process iff path *and* fingerprint
/// match (editing the file invalidates cached results instead of
/// silently serving stale rows); the parsed instants are `None` for
/// references deserialized from a persisted cache, which are only ever
/// served by identity, never re-simulated.
#[derive(Debug, Clone)]
pub struct TraceRef {
    path: String,
    fingerprint: u64,
    /// Arrival instants in seconds, non-decreasing, first at 0.
    times: Option<Arc<Vec<f64>>>,
}

impl PartialEq for TraceRef {
    fn eq(&self, other: &Self) -> bool {
        self.path == other.path && self.fingerprint == other.fingerprint
    }
}

impl Eq for TraceRef {}

impl Hash for TraceRef {
    fn hash<H: Hasher>(&self, state: &mut H) {
        self.path.hash(state);
        self.fingerprint.hash(state);
    }
}

impl TraceRef {
    /// The path as written in the scenario (also the cache-key spelling).
    pub fn path(&self) -> &str {
        &self.path
    }

    /// FNV-1a hash of the trace file contents.
    pub fn fingerprint(&self) -> u64 {
        self.fingerprint
    }
}

/// FNV-1a, the trace-file content fingerprint (the same function the
/// sweep layer uses for custom workload TOMLs).
fn fnv1a(text: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in text.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// The arrival-process family. The mean rate is *not* part of the kind —
/// it is a separate sweep axis — so one spelling sweeps cleanly across
/// load levels.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum ArrivalKind {
    /// Memoryless arrivals: exponential inter-arrival gaps.
    Poisson,
    /// Bursts of `burst` simultaneous requests at Poisson-spaced burst
    /// epochs; the epoch rate is `rate / burst` so the mean request rate
    /// is preserved.
    Bursty {
        /// Requests per burst (≥ 1).
        burst: u32,
    },
    /// Arrival instants replayed from a trace file (one timestamp in
    /// seconds per line; `#` comments and blank lines ignored), rescaled
    /// so the mean rate matches the sweep axis and extended periodically
    /// when more requests are asked for than the trace holds.
    Trace(TraceRef),
}

impl ArrivalKind {
    /// Parses an axis spelling: `poisson`, `bursty:<n>`, or
    /// `trace:<path>` (resolved relative to `base` when relative).
    pub fn parse(s: &str, base: Option<&std::path::Path>) -> Result<ArrivalKind, String> {
        let s = s.trim();
        if let Some(path) = s.strip_prefix("trace:") {
            let path = path.trim();
            if path.is_empty() {
                return Err("'trace:' needs a path to an arrival trace file".into());
            }
            if path.contains(',') || path.contains('#') || path.contains(';') {
                return Err(format!(
                    "trace path '{path}' must not contain ',', ';' or '#' (cache-key syntax)"
                ));
            }
            let resolved = match base {
                Some(dir) if std::path::Path::new(path).is_relative() => dir.join(path),
                _ => std::path::Path::new(path).to_path_buf(),
            };
            let text = std::fs::read_to_string(&resolved)
                .map_err(|e| format!("cannot read arrival trace {}: {e}", resolved.display()))?;
            let times = parse_trace(&text)
                .map_err(|e| format!("arrival trace {}: {e}", resolved.display()))?;
            return Ok(ArrivalKind::Trace(TraceRef {
                path: path.to_string(),
                fingerprint: fnv1a(&text),
                times: Some(Arc::new(times)),
            }));
        }
        if let Some(burst) = s.strip_prefix("bursty:") {
            let burst: u32 = burst
                .trim()
                .parse()
                .map_err(|_| format!("bad burst size '{burst}' (want bursty:<n>)"))?;
            if burst == 0 {
                return Err("burst size must be at least 1".into());
            }
            return Ok(ArrivalKind::Bursty { burst });
        }
        match s {
            "poisson" => Ok(ArrivalKind::Poisson),
            "bursty" => Ok(ArrivalKind::Bursty { burst: 4 }),
            other => Err(ace_net::unknown_spelling::<ArrivalKind>(other)),
        }
    }

    /// Parses the persisted cache-key spelling: like
    /// [`parse`](ArrivalKind::parse), except traces appear as
    /// `trace:<path>#<fingerprint>` and are *not* re-read from disk.
    pub fn from_cache_key(s: &str) -> Result<ArrivalKind, String> {
        if let Some(rest) = s.strip_prefix("trace:") {
            let (path, fp) = rest
                .rsplit_once('#')
                .ok_or_else(|| format!("trace key '{s}' is missing '#<fingerprint>'"))?;
            let fingerprint =
                u64::from_str_radix(fp, 16).map_err(|_| format!("bad trace fingerprint '{fp}'"))?;
            return Ok(ArrivalKind::Trace(TraceRef {
                path: path.to_string(),
                fingerprint,
                times: None,
            }));
        }
        Self::parse(s, None)
    }

    /// The cache-key spelling: round-trips through
    /// [`from_cache_key`](ArrivalKind::from_cache_key).
    pub fn cache_key(&self) -> String {
        match self {
            ArrivalKind::Trace(t) => format!("trace:{}#{:x}", t.path, t.fingerprint),
            other => other.to_string(),
        }
    }

    /// Generates `n` arrival instants in clock cycles at `hz`, mean rate
    /// `rate_rps` requests per second, deterministically from `seed`.
    /// The result is non-decreasing.
    pub fn generate(
        &self,
        rate_rps: f64,
        seed: u64,
        n: usize,
        hz: f64,
    ) -> Result<Vec<u64>, String> {
        if !(rate_rps.is_finite() && rate_rps > 0.0) {
            return Err(format!("arrival rate must be positive, got {rate_rps}"));
        }
        let mean_gap_cycles = hz / rate_rps;
        let mut rng = SplitMix64::new(seed);
        // Inverse-CDF exponential gaps: -ln(1-u) has mean 1.
        let mut exp = move || -(1.0 - rng.next_f64()).ln();
        let mut out = Vec::with_capacity(n);
        match self {
            ArrivalKind::Poisson => {
                let mut t = 0.0f64;
                for _ in 0..n {
                    t += exp() * mean_gap_cycles;
                    out.push(t as u64);
                }
            }
            ArrivalKind::Bursty { burst } => {
                let burst = (*burst).max(1) as usize;
                let epoch_gap = mean_gap_cycles * burst as f64;
                let mut t = 0.0f64;
                while out.len() < n {
                    t += exp() * epoch_gap;
                    for _ in 0..burst.min(n - out.len()) {
                        out.push(t as u64);
                    }
                }
            }
            ArrivalKind::Trace(trace) => {
                let times = trace.times.as_ref().ok_or_else(|| {
                    format!(
                        "arrival trace '{}' was deserialized from a cache and cannot generate",
                        trace.path
                    )
                })?;
                if times.is_empty() {
                    return Err(format!("arrival trace '{}' is empty", trace.path));
                }
                // Rescale the trace shape so its mean inter-arrival gap
                // is 1/rate, then extend periodically past the end.
                let span = times.last().unwrap() - times[0];
                let mean_gap = if times.len() > 1 {
                    span / (times.len() - 1) as f64
                } else {
                    1.0
                };
                let scale = if mean_gap > 0.0 {
                    (1.0 / rate_rps) / mean_gap
                } else {
                    0.0
                };
                // The periodic extension shifts by one full span plus one
                // mean gap, so the seam gap matches the interior.
                let period = span + mean_gap;
                for i in 0..n {
                    let lap = (i / times.len()) as f64;
                    let t = (times[i % times.len()] - times[0] + lap * period) * scale * hz;
                    out.push(t as u64);
                }
            }
        }
        Ok(out)
    }
}

/// Parses a trace file body: one timestamp (seconds) per line, `#`
/// comments and blank lines ignored, non-decreasing.
fn parse_trace(text: &str) -> Result<Vec<f64>, String> {
    let mut times = Vec::new();
    for (i, line) in text.lines().enumerate() {
        let line = line.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        let t: f64 = line
            .parse()
            .map_err(|_| format!("line {}: bad timestamp '{line}'", i + 1))?;
        if !t.is_finite() || t < 0.0 {
            return Err(format!("line {}: timestamp must be finite and >= 0", i + 1));
        }
        if let Some(&prev) = times.last() {
            if t < prev {
                return Err(format!("line {}: timestamps must be non-decreasing", i + 1));
            }
        }
        times.push(t);
    }
    if times.is_empty() {
        return Err("no timestamps found".into());
    }
    Ok(times)
}

impl fmt::Display for ArrivalKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ArrivalKind::Poisson => f.write_str("poisson"),
            ArrivalKind::Bursty { burst } => write!(f, "bursty:{burst}"),
            ArrivalKind::Trace(t) => write!(f, "trace:{}", t.path),
        }
    }
}

impl ace_net::Spelling for ArrivalKind {
    const WHAT: &'static str = "arrival process";

    fn keywords() -> &'static [&'static str] {
        &["poisson", "bursty", "trace"]
    }

    fn spellings() -> &'static str {
        "poisson | bursty:<n> | trace:<path>"
    }

    /// [`ArrivalKind::parse`] minus the base-path parameter (trace files
    /// resolve relative to the working directory). The unknown-keyword
    /// arm of `parse` already uses [`ace_net::unknown_spelling`], so both
    /// routes word errors identically.
    fn parse_spelling(s: &str) -> Result<ArrivalKind, ace_net::SpellingError> {
        ArrivalKind::parse(s, None).map_err(ace_net::SpellingError::Invalid)
    }
}

impl FromStr for ArrivalKind {
    type Err = String;

    fn from_str(s: &str) -> Result<ArrivalKind, String> {
        ArrivalKind::parse(s, None)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splitmix_is_deterministic_and_uniformish() {
        let mut a = SplitMix64::new(42);
        let mut b = SplitMix64::new(42);
        let mut sum = 0.0;
        for _ in 0..1000 {
            let x = a.next_f64();
            assert_eq!(x, b.next_f64());
            assert!((0.0..1.0).contains(&x));
            sum += x;
        }
        assert!((sum / 1000.0 - 0.5).abs() < 0.05, "mean {}", sum / 1000.0);
    }

    #[test]
    fn poisson_hits_the_requested_mean_rate() {
        let hz = 1.0e9;
        let arr = ArrivalKind::Poisson.generate(1000.0, 7, 4000, hz).unwrap();
        assert!(arr.windows(2).all(|w| w[0] <= w[1]));
        // 4000 arrivals at 1000 rps ≈ 4 seconds = 4e9 cycles (±10 %).
        let span = *arr.last().unwrap() as f64;
        assert!((span / 4.0e9 - 1.0).abs() < 0.1, "span {span}");
    }

    #[test]
    fn same_seed_same_arrivals_different_seed_different() {
        let k = ArrivalKind::Poisson;
        let a = k.generate(500.0, 1, 100, 1.0e9).unwrap();
        let b = k.generate(500.0, 1, 100, 1.0e9).unwrap();
        let c = k.generate(500.0, 2, 100, 1.0e9).unwrap();
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn bursty_clusters_and_preserves_rate() {
        let arr = ArrivalKind::Bursty { burst: 8 }
            .generate(1000.0, 3, 4000, 1.0e9)
            .unwrap();
        // Arrivals come in ties of 8.
        assert_eq!(arr[0], arr[7]);
        assert!(arr[8] > arr[7]);
        let span = *arr.last().unwrap() as f64;
        assert!((span / 4.0e9 - 1.0).abs() < 0.2, "span {span}");
    }

    #[test]
    fn trace_parses_rescales_and_extends() {
        let text = "# a trace\n0.0\n0.001\n\n0.003\n";
        let times = parse_trace(text).unwrap();
        assert_eq!(times.len(), 3);
        let kind = ArrivalKind::Trace(TraceRef {
            path: "t.txt".into(),
            fingerprint: fnv1a(text),
            times: Some(Arc::new(times)),
        });
        // 6 arrivals from a 3-entry trace: periodic extension, mean gap
        // normalized to 1/rate.
        let arr = kind.generate(1000.0, 0, 6, 1.0e9).unwrap();
        assert_eq!(arr.len(), 6);
        assert!(arr.windows(2).all(|w| w[0] <= w[1]));
        let mean_gap = (*arr.last().unwrap() - arr[0]) as f64 / 5.0;
        assert!((mean_gap / 1.0e6 - 1.0).abs() < 0.01, "gap {mean_gap}");
    }

    #[test]
    fn spellings_round_trip_and_misspellings_get_hints() {
        for s in ["poisson", "bursty:8"] {
            let k: ArrivalKind = s.parse().unwrap();
            assert_eq!(k.to_string(), s);
            assert_eq!(ArrivalKind::from_cache_key(&k.cache_key()).unwrap(), k);
        }
        let e = "poison".parse::<ArrivalKind>().unwrap_err();
        assert!(e.contains("did you mean 'poisson'"), "{e}");
        let e = "burstly".parse::<ArrivalKind>().unwrap_err();
        assert!(e.contains("bursty"), "{e}");
    }

    #[test]
    fn trace_cache_key_round_trips_without_reading_the_file() {
        let t = ArrivalKind::Trace(TraceRef {
            path: "load.txt".into(),
            fingerprint: 0xdead_beef,
            times: None,
        });
        let key = t.cache_key();
        assert_eq!(key, "trace:load.txt#deadbeef");
        let back = ArrivalKind::from_cache_key(&key).unwrap();
        assert_eq!(back, t);
    }
}
