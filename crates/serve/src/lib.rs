//! Continuous-batching inference serving on the Program IR.
//!
//! Training sweeps answer "how fast is one iteration"; serving asks a
//! different question — "what latency do *requests* see under load". This
//! crate closes that gap on top of the existing simulator stack:
//!
//! * an **open-loop request generator** ([`ArrivalKind`]) produces
//!   deterministic arrival processes (Poisson, bursty, or replayed from a
//!   trace file) from a seed, independent of service rate;
//! * a **continuous-batching scheduler** ([`simulate`]) admits requests
//!   FIFO under a token budget, folds running requests' decode steps and
//!   newly admitted prompts into *rounds*, and lowers every round to a
//!   forward-only multi-timeline [`Program`](ace_workloads::Program) —
//!   per-microbatch stage kernels plus stage-boundary send-recv activation
//!   transfers — executed by the event-driven collective executor
//!   ([exact](ServingTier::Exact)) or the α–β critical-path walker
//!   ([analytic](ServingTier::Analytic));
//! * **latency metrics** ([`ServingOutcome`]): cycle-exact per-request
//!   TTFT and E2E, exact-order-statistic p50/p95/p99 (no interpolation),
//!   goodput, and a queue-depth time series.
//!
//! The pipeline `schedule` axis picks the round-admission policy:
//! `gpipe` drains each round completely before admitting the next
//! (barrier-synchronized), while `1f1b` injects the next round as soon as
//! stage 0 frees up (steady-state occupancy `D·M/(M+S-1)` of a round of
//! duration `D` over `M` microbatches and `S` stages), overlapping rounds
//! the way a one-forward-one-backward schedule overlaps microbatches.
//!
//! # Example
//!
//! ```
//! use ace_serve::{ArrivalKind, ServingOptions, ServingSpec, simulate};
//! use ace_system::SystemConfig;
//! use ace_workloads::Workload;
//!
//! let spec = ServingSpec {
//!     rate_rps: 500.0,
//!     requests: 16,
//!     ..ServingSpec::default()
//! };
//! let topo: ace_net::TopologySpec = "switch:16".parse().unwrap();
//! let outcome = simulate(
//!     SystemConfig::Ace,
//!     &Workload::transformer_lm(),
//!     topo,
//!     &spec,
//!     &ServingOptions::default(),
//! )
//! .unwrap();
//! assert_eq!(outcome.requests.len(), 16);
//! assert!(outcome.ttft_percentile_us(99.0) > 0.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod arrival;
mod sim;
mod spec;

pub use arrival::{ArrivalKind, SplitMix64, TraceRef};
pub use sim::{
    first_round_program, simulate, simulate_with_conditions, RequestRecord, ServingOptions,
    ServingOutcome, ServingTier,
};
pub use spec::ServingSpec;
